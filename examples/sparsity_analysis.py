"""Shadowy-sparsity analysis of a model (the paper's Figure 4 / Figure 9 view).

Profiles per-layer attention and MLP sparsity under the different mask
strategies (per-token, uniform "shadowy", head-specific, Longformer/BigBird,
threshold-filtered MLP blocks) on real batches, and prints the per-head
atomic patterns the exposer selects.

Usage::

    python examples/sparsity_analysis.py
"""

from repro import build_model
from repro.analysis import ascii_bar_chart, format_table, model_sparsity_profile
from repro.data import E2EDatasetGenerator


def main() -> None:
    model = build_model("opt-small", seed=0)
    generator = E2EDatasetGenerator(seed=0)
    batches = generator.token_batches(1, batch_size=2, seq_len=256,
                                      vocab_size=model.config.vocab_size)
    profiles = model_sparsity_profile(model, batches, block_size=32)

    rows = []
    for profile in profiles:
        rows.append([profile.layer,
                     f"{profile.attention_head_specific:.2f}",
                     f"{profile.attention_shadowy:.2f}",
                     f"{profile.attention_longformer:.2f}",
                     f"{profile.attention_bigbird:.2f}",
                     f"{profile.mlp_shadowy:.2f}",
                     f"{profile.mlp_filtered[0.03]:.2f}"])
    print(format_table(
        ["layer", "attn head-specific", "attn shadowy", "longformer", "bigbird",
         "mlp shadowy", "mlp filtered @3%"],
        rows, title="Per-layer sparsity ratios (higher = more computation skipped)"))

    print("\nPer-head atomic patterns selected by the exposer (layer 0):")
    for head, pattern in enumerate(profiles[0].head_patterns):
        print(f"  head {head}: {pattern}")

    print("\nMLP filtered sparsity vs importance threshold (layer 1):")
    thresholds = sorted(profiles[1].mlp_filtered)
    print(ascii_bar_chart([f"threshold {t:.0%}" for t in thresholds],
                          [profiles[1].mlp_filtered[t] for t in thresholds],
                          title=""))


if __name__ == "__main__":
    main()
