"""Quickstart: accelerate LoRA fine-tuning of an OPT model with LongExposure.

Runs in well under a minute on a laptop CPU.  The flow is the one described
in the paper's Figure 3: collect calibration data from the frozen backbone,
train the sequence-oriented predictors offline, apply a PEFT method, install
the sparse backends and fine-tune — then compare against the dense baseline.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    FineTuner,
    LongExposure,
    LongExposureConfig,
    TrainingConfig,
    build_model,
    get_peft_method,
)
from repro.data import E2EDatasetGenerator


def main() -> None:
    model_name = "opt-tiny"
    seq_len, batch_size, steps = 128, 2, 6

    print(f"== LongExposure quickstart: {model_name}, seq={seq_len} ==")
    generator = E2EDatasetGenerator(seed=0)

    # --- dense PEFT baseline -------------------------------------------------
    dense_model = build_model(model_name, seed=0)
    batches = generator.token_batches(4, batch_size, seq_len,
                                      vocab_size=dense_model.config.vocab_size)
    dense_model, result = get_peft_method("lora")(dense_model)
    print(f"LoRA: {result.summary()}")
    dense_tuner = FineTuner(dense_model, TrainingConfig(learning_rate=1e-3))
    dense_report = dense_tuner.train([batches[i % len(batches)] for i in range(steps)])
    print(f"dense PEFT   : {dense_report.breakdown_table()}")

    # --- PEFT + LongExposure --------------------------------------------------
    sparse_model = build_model(model_name, seed=0)
    engine = LongExposure(LongExposureConfig(block_size=16, predictor_epochs=5))
    engine.prepare(sparse_model, batches[:1])          # offline: collect + train predictors
    sparse_model, _ = get_peft_method("lora")(sparse_model)
    engine.install(sparse_model)                        # swap in the sparse kernels
    sparse_tuner = FineTuner(sparse_model, TrainingConfig(learning_rate=1e-3), engine=engine)
    sparse_report = sparse_tuner.train([batches[i % len(batches)] for i in range(steps)])
    engine.uninstall(sparse_model)
    print(f"+LongExposure: {sparse_report.breakdown_table()}")

    speedup = dense_report.mean_step_ms() / sparse_report.mean_step_ms()
    print(f"\nfinal loss  dense={dense_report.final_loss:.4f} "
          f"sparse={sparse_report.final_loss:.4f}")
    print(f"step speedup {speedup:.2f}x "
          f"(attention block sparsity {engine.stats.mean_attention_sparsity():.2f}, "
          f"MLP block sparsity {engine.stats.mean_mlp_sparsity():.2f})")
    print(engine.summary())


if __name__ == "__main__":
    main()
