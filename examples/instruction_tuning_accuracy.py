"""Instruction tuning with accuracy validation (the paper's Table IV workflow).

Fine-tunes an OPT model on the synthetic Alpaca-like corpus twice — once with
plain LoRA and once with LoRA + LongExposure — and evaluates both on the five
downstream multiple-choice suites, demonstrating that the sparsified path
preserves downstream accuracy.

Usage::

    python examples/instruction_tuning_accuracy.py
"""

from repro import (
    FineTuner,
    LongExposure,
    LongExposureConfig,
    TrainingConfig,
    build_model,
    get_peft_method,
)
from repro.analysis import format_table
from repro.data import AlpacaDatasetGenerator, build_task_suite, evaluate_model_on_task


def finetune(use_longexposure: bool, steps: int = 12, seq_len: int = 64):
    model = build_model("opt-tiny", seed=0)
    generator = AlpacaDatasetGenerator(seed=0)
    batches = generator.token_batches(4, batch_size=2, seq_len=seq_len,
                                      vocab_size=model.config.vocab_size)
    engine = None
    if use_longexposure:
        engine = LongExposure(LongExposureConfig(block_size=16, predictor_epochs=5))
        engine.prepare(model, batches[:1])
    model, _ = get_peft_method("lora")(model)
    if engine is not None:
        engine.install(model)
    tuner = FineTuner(model, TrainingConfig(learning_rate=5e-3), engine=engine)
    report = tuner.train([batches[i % len(batches)] for i in range(steps)])
    if engine is not None:
        engine.uninstall(model)
    return model, report


def main() -> None:
    suite = build_task_suite(examples_per_task=12, seed=1)
    rows = []
    models = {}
    for label, flag in [("LoRA", False), ("LoRA + LongExposure", True)]:
        model, report = finetune(flag)
        models[label] = model
        print(f"{label}: final LM loss {report.final_loss:.4f}, "
              f"mean step {report.mean_step_ms():.1f} ms")

    for task_name in suite.names():
        row = [task_name]
        for label in ["LoRA", "LoRA + LongExposure"]:
            result = evaluate_model_on_task(models[label], suite.tasks[task_name],
                                            suite.tokenizer,
                                            vocab_size=models[label].config.vocab_size,
                                            max_examples=10)
            row.append(f"{result['accuracy']:.2%} ± {result['stderr']:.2%}")
        rows.append(row)
    print("\n" + format_table(["task", "LoRA", "LoRA + LongExposure"], rows,
                              title="Downstream accuracy after instruction tuning"))


if __name__ == "__main__":
    main()
