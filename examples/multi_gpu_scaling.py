"""Strong-scaling study with simulated data-parallel workers (Figure 14 workflow).

Holds the global batch fixed, splits it across 1/2/4 simulated workers, and
reports the step time, speedup and parallel efficiency of LongExposure-
accelerated LoRA fine-tuning.  Communication is modelled with a ring
all-reduce over the (tiny) PEFT gradient volume.

Usage::

    python examples/multi_gpu_scaling.py
"""

from repro import LongExposure, LongExposureConfig, build_model, get_peft_method
from repro.analysis import format_table
from repro.data import E2EDatasetGenerator
from repro.optim import Adam
from repro.runtime import DataParallelSimulator


def main() -> None:
    seq_len, global_batch = 128, 4
    model = build_model("opt-tiny", seed=0)
    generator = E2EDatasetGenerator(seed=0)
    batches = generator.token_batches(1, global_batch, seq_len,
                                      vocab_size=model.config.vocab_size)

    engine = LongExposure(LongExposureConfig(block_size=16, predictor_epochs=4))
    engine.prepare(model, batches)
    model, result = get_peft_method("lora")(model)
    engine.install(model)
    optimizer = Adam(model.trainable_parameters(), lr=1e-4)

    def step(shard):
        loss, _ = model.loss(shard)
        loss.backward()
        optimizer.step()
        optimizer.zero_grad()
        model.zero_grad()

    simulator = DataParallelSimulator(step_fn=step,
                                      gradient_bytes=result.trainable_parameters * 4)
    results = simulator.run(batches[0], worker_counts=[1, 2, 4], repeats=2)
    engine.uninstall(model)

    rows = [[r.num_workers, f"{r.step_time_s * 1e3:.1f}", f"{r.compute_time_s * 1e3:.1f}",
             f"{r.communication_time_s * 1e6:.1f}", f"{r.speedup_vs_single:.2f}x",
             f"{r.efficiency:.0%}"] for r in results]
    print(format_table(
        ["workers", "step ms", "compute ms", "all-reduce us", "speedup", "efficiency"],
        rows, title="Strong scaling of LongExposure + LoRA (simulated data parallelism)"))
    print("\nPEFT gradients are tiny, so the all-reduce cost is negligible and the "
          "scaling stays near-linear — the paper's Figure 14 conclusion.")


if __name__ == "__main__":
    main()
