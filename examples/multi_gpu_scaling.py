"""Strong-scaling study on the real data-parallel backend (Figure 14 workflow).

Holds the global batch fixed and trains the same LongExposure-accelerated
LoRA model at 1, 2 and 4 worker *processes* using
:class:`repro.runtime.DataParallelTrainer`: every worker steps its shard of
each batch, gradients meet in a flat-buffer chunked all-reduce over shared
memory, and the replicated optimizer tail keeps parameters bitwise-identical
across ranks (the final table prints the cross-rank parameter digest as the
replication certificate).

The communication column is the measured per-step gradient-exchange time —
tiny for PEFT gradient volumes, which is the paper's Figure 14 argument.
The speedup column only shows near-linear scaling when the host has cores
to scale over; on a single-core machine the workers time-slice one CPU and
the script says so rather than pretending.

Usage::

    PYTHONPATH=src python examples/multi_gpu_scaling.py
"""

import functools
import os

from repro import (CaptureConfig, FineTuner, LongExposure,
                   LongExposureConfig, TrainingConfig, build_model,
                   get_peft_method)
from repro.analysis import format_table
from repro.data import E2EDatasetGenerator
from repro.optim import Adam
from repro.runtime import DataParallelTrainer

SEQ_LEN, GLOBAL_BATCH, STEPS = 128, 4, 6


def make_tuner(seq_len: int = SEQ_LEN) -> FineTuner:
    """Runs inside every worker process; must be deterministic across ranks."""
    model = build_model("opt-tiny", seed=0)
    generator = E2EDatasetGenerator(seed=0)
    calibration = generator.token_batches(1, GLOBAL_BATCH, seq_len,
                                          vocab_size=model.config.vocab_size)
    engine = LongExposure(LongExposureConfig(block_size=16, predictor_epochs=4))
    engine.prepare(model, calibration)
    model, _ = get_peft_method("lora")(model)
    engine.install(model)
    optimizer = Adam(model.trainable_parameters(), lr=1e-4)
    return FineTuner(model,
                     TrainingConfig(capture=CaptureConfig(enabled=True)),
                     optimizer=optimizer, engine=engine)


def main() -> None:
    generator = E2EDatasetGenerator(seed=0)
    vocab = build_model("opt-tiny").config.vocab_size
    data = generator.token_batches(STEPS, GLOBAL_BATCH, SEQ_LEN,
                                   vocab_size=vocab)

    factory = functools.partial(make_tuner, SEQ_LEN)
    rows, base = [], None
    for workers in (1, 2, 4):
        with DataParallelTrainer(factory, workers=workers,
                                 step_timeout_s=300.0) as trainer:
            report = trainer.train(data)
        steps_per_s = report.steps_per_second()
        base = base or steps_per_s
        rows.append([workers, f"{1000.0 / steps_per_s:.1f}",
                     f"{report.mean_comm_ms():.2f}",
                     f"{steps_per_s / base:.2f}x",
                     f"{steps_per_s / base / workers:.0%}",
                     report.param_digest[:12]])

    print(format_table(
        ["workers", "step ms", "comm ms", "speedup", "efficiency", "digest"],
        rows, title="Strong scaling of LongExposure + LoRA "
                    "(shared-memory data parallelism)"))
    cores = os.cpu_count() or 1
    if cores <= 1:
        print("\nThis host has a single CPU: the worker processes time-slice "
              "one core, so no wall-clock speedup is possible — the comm "
              "column still shows the (tiny) PEFT all-reduce cost the paper's "
              "Figure 14 argument rests on.")
    else:
        print(f"\n{cores} CPUs available; PEFT gradients are tiny, so the "
              "all-reduce cost stays negligible and scaling tracks the core "
              "count — the paper's Figure 14 conclusion.")


if __name__ == "__main__":
    main()
