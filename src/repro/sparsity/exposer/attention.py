"""Head-specific attention mask derivation (Shadowy-sparsity Exposer).

During fine-tuning the attention scores form an ``(s, s)`` matrix per head;
a uniform mask that must retain the important scores of *every* head (the
"shadowy" approach) ends up nearly dense.  The exposer instead derives one
mask per head: block-reduce that head's attention mass, keep the blocks that
carry it, and snap the result to the nearest atomic pattern from the pool so
the dynamic-aware operators can reuse their offline layouts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.sparsity.patterns import PatternPool, block_count, causal_block_mask


@dataclass
class AttentionSparsityReport:
    """Sparsity statistics of one attention layer for one batch.

    ``*_sparsity`` values are fractions of the *causal* score blocks that can
    be skipped (higher is sparser / cheaper).
    """

    per_head_sparsity: np.ndarray        # (heads,)
    head_specific_sparsity: float        # LongExposure: mean over heads
    shadowy_sparsity: float              # uniform mask covering all heads
    per_token_sparsity: float            # mean sparsity of individual tokens
    head_patterns: List[str]             # matched atomic pattern per head

    def summary(self) -> str:
        return (f"head-specific={self.head_specific_sparsity:.3f} "
                f"shadowy={self.shadowy_sparsity:.3f} "
                f"per-token={self.per_token_sparsity:.3f}")


class AttentionExposer:
    """Derives per-head block masks from exact attention probabilities."""

    def __init__(self, pattern_pool: PatternPool, block_size: int,
                 coverage: float = 0.95, score_threshold: float = 0.02):
        if not 0.0 < coverage <= 1.0:
            raise ValueError("coverage must be in (0, 1]")
        self.pattern_pool = pattern_pool
        self.block_size = block_size
        self.coverage = coverage
        self.score_threshold = score_threshold

    # -- block reduction ---------------------------------------------------------
    def block_reduce(self, probs: np.ndarray) -> np.ndarray:
        """Reduce attention probabilities to per-block mass.

        ``probs`` has shape ``(batch, heads, seq, seq)``; the result has shape
        ``(heads, n_blocks, n_blocks)`` — summed over the batch and over the
        elements of each block, then zeroed above the causal diagonal.

        The reduction runs in two per-axis stages (``np.add.reduceat`` over
        the contiguous key axis, then over the query axis) instead of one
        strided 6-D reshape-sum: the first stage is a contiguous inner
        reduction that shrinks the array by ``block_size`` before any strided
        work happens, and ragged sequence lengths need no zero-padding copy
        because ``reduceat`` segments simply end early.  This is the hot part
        of every oracle-mode attention call.
        """
        probs = np.asarray(probs)
        if probs.ndim == 3:
            probs = probs[None]
        batch, heads, seq, _ = probs.shape
        bs = self.block_size
        n_blocks = block_count(seq, bs)
        starts = np.arange(0, seq, bs)
        key_reduced = np.add.reduceat(probs, starts, axis=3)     # (b, h, seq, nb)
        reduced = np.add.reduceat(key_reduced, starts, axis=2)   # (b, h, nb, nb)
        reduced = reduced.sum(axis=0)
        reduced *= causal_block_mask(n_blocks)[None]
        return reduced

    # -- mask derivation -----------------------------------------------------------
    def masks_from_block_mass(self, block_mass: np.ndarray
                              ) -> Tuple[np.ndarray, List[str]]:
        """Pattern-snapped masks from an already-reduced per-block mass.

        Split out of :meth:`head_block_masks` so callers that compute the
        ``(heads, n_blocks, n_blocks)`` mass themselves — the streaming
        oracle path accumulates it tile by tile without ever holding the
        full probability matrix — share the exact matching logic.
        """
        heads, n_blocks, _ = block_mass.shape
        names = self.pattern_pool.match_many(block_mass, coverage=self.coverage)
        masks = np.stack([self.pattern_pool.mask(name, n_blocks) for name in names])
        return masks, names

    def head_block_masks(self, probs: np.ndarray) -> Tuple[np.ndarray, List[str]]:
        """Per-head boolean block masks and their matched atomic pattern names."""
        return self.masks_from_block_mass(self.block_reduce(probs))

    def raw_block_masks(self, probs: np.ndarray) -> np.ndarray:
        """Coverage-based masks *without* snapping to atomic patterns.

        Keeps, per head, the smallest set of highest-mass blocks whose
        cumulative mass reaches ``coverage``.  Used to measure how much
        sparsity exists before the pattern-pool constraint (tests, Figure 9
        analysis).
        """
        block_mass = self.block_reduce(probs)
        heads, n_blocks, _ = block_mass.shape
        causal = causal_block_mask(n_blocks)
        masks = np.zeros_like(block_mass, dtype=bool)
        for h in range(heads):
            mass = block_mass[h]
            total = mass.sum()
            if total <= 0:
                masks[h] = causal
                continue
            flat = mass.reshape(-1)
            order = np.argsort(flat)[::-1]
            cumulative = np.cumsum(flat[order])
            needed = int(np.searchsorted(cumulative, self.coverage * total)) + 1
            keep = order[:needed]
            mask = np.zeros(n_blocks * n_blocks, dtype=bool)
            mask[keep] = True
            masks[h] = mask.reshape(n_blocks, n_blocks) & causal
            np.fill_diagonal(masks[h], True)
        return masks

    def uniform_block_mask(self, probs: np.ndarray) -> np.ndarray:
        """The "shadowy" baseline: one mask that covers all heads at once."""
        per_head = self.raw_block_masks(probs)
        return np.any(per_head, axis=0)

    # -- statistics -------------------------------------------------------------------
    def analyze(self, probs: np.ndarray) -> AttentionSparsityReport:
        """Full sparsity report for one layer (drives Figure 9's left panel)."""
        probs = np.asarray(probs)
        if probs.ndim == 3:
            probs = probs[None]
        masks, names = self.head_block_masks(probs)
        heads, n_blocks, _ = masks.shape
        causal_total = causal_block_mask(n_blocks).sum()
        per_head_sparsity = 1.0 - masks.sum(axis=(1, 2)) / causal_total
        uniform = self.uniform_block_mask(probs)
        shadowy = 1.0 - uniform.sum() / causal_total

        # Per-token sparsity: fraction of keys each individual query can skip
        # (threshold on its own normalised attention row).
        norm = probs / np.maximum(probs.max(axis=-1, keepdims=True), 1e-12)
        token_keep = (norm > self.score_threshold)
        causal_elems = np.tril(np.ones(probs.shape[-2:], dtype=bool))
        per_token = 1.0 - token_keep[..., causal_elems].sum() / (
            probs.shape[0] * probs.shape[1] * causal_elems.sum())

        return AttentionSparsityReport(
            per_head_sparsity=per_head_sparsity,
            head_specific_sparsity=float(per_head_sparsity.mean()),
            shadowy_sparsity=float(shadowy),
            per_token_sparsity=float(per_token),
            head_patterns=names,
        )
