"""Shadowy-sparsity Exposer (paper Section IV).

Derives structured, exploitable sparse patterns from the heavily-overlapped
("shadowy") sparsity of sequence inputs:

* :class:`AttentionExposer` — per-head block masks chosen so each head keeps
  the blocks carrying most of its own attention mass, instead of one uniform
  mask shared by all heads;
* :class:`MLPExposer` — neuron-block importance filtering that treats
  weakly-activated neurons as inactive, turning scattered ReLU sparsity into
  block-wise structured sparsity.

Both classes also compute the "shadowy" reference statistics (uniform mask /
raw union sparsity) used as the ablation baseline in Figure 9.
"""

from repro.sparsity.exposer.attention import AttentionExposer, AttentionSparsityReport
from repro.sparsity.exposer.mlp import MLPExposer, MLPSparsityReport

__all__ = [
    "AttentionExposer",
    "AttentionSparsityReport",
    "MLPExposer",
    "MLPSparsityReport",
]
