"""MLP neuron-block importance filtering (Shadowy-sparsity Exposer).

Per token, ReLU zeroes most hidden neurons; over a whole sequence the union
of activated neurons is much denser and scattered ("shadowy").  The exposer
scores each neuron *block* by how much activation mass it carries over the
sequence and filters out blocks below a threshold expressed as a fraction of
the peak block importance (the paper sweeps 1 %–5 %).  The surviving blocks
form a structured, hardware-friendly sparse pattern that the neuron-sparse
operators consume directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass
class MLPSparsityReport:
    """Sparsity statistics of one MLP layer for one batch."""

    per_token_sparsity: float        # mean fraction of neurons inactive per token
    shadowy_sparsity: float          # fraction of neurons inactive across the union
    filtered_sparsity: float         # block sparsity after importance filtering
    active_blocks: np.ndarray        # indices of the surviving neuron blocks
    n_blocks: int
    threshold: float

    def summary(self) -> str:
        return (f"per-token={self.per_token_sparsity:.3f} "
                f"shadowy={self.shadowy_sparsity:.3f} "
                f"filtered={self.filtered_sparsity:.3f} "
                f"({len(self.active_blocks)}/{self.n_blocks} blocks)")


class MLPExposer:
    """Filters neuron blocks by activation importance."""

    def __init__(self, block_size: int, threshold: float = 0.02,
                 min_active_blocks: int = 1):
        if not 0.0 <= threshold < 1.0:
            raise ValueError("threshold must be in [0, 1)")
        self.block_size = block_size
        self.threshold = threshold
        self.min_active_blocks = max(1, int(min_active_blocks))

    def block_importance(self, activations: np.ndarray) -> np.ndarray:
        """Per-block importance: mean |activation| mass over batch and sequence.

        ``activations`` has shape ``(batch, seq, hidden)`` (post-ReLU).
        """
        activations = np.asarray(activations)
        if activations.ndim == 2:
            activations = activations[None]
        hidden = activations.shape[-1]
        bs = self.block_size
        n_blocks = -(-hidden // bs)
        padded = n_blocks * bs
        flat = np.abs(activations).reshape(-1, hidden).sum(axis=0)
        if padded != hidden:
            flat = np.pad(flat, (0, padded - hidden))
        return flat.reshape(n_blocks, bs).sum(axis=1)

    def active_blocks(self, activations: np.ndarray,
                      threshold: Optional[float] = None) -> np.ndarray:
        """Indices of neuron blocks whose importance exceeds the filter threshold."""
        threshold = self.threshold if threshold is None else threshold
        importance = self.block_importance(activations)
        peak = importance.max()
        if peak <= 0:
            return np.arange(min(self.min_active_blocks, importance.shape[0]))
        keep = np.nonzero(importance >= threshold * peak)[0]
        if keep.size < self.min_active_blocks:
            keep = np.argsort(importance)[::-1][:self.min_active_blocks]
            keep = np.sort(keep)
        return keep.astype(np.int64)

    def block_labels(self, activations: np.ndarray,
                     threshold: Optional[float] = None) -> np.ndarray:
        """Binary per-block activity labels (training targets for the predictor)."""
        importance = self.block_importance(activations)
        labels = np.zeros(importance.shape[0], dtype=np.float32)
        labels[self.active_blocks(activations, threshold)] = 1.0
        return labels

    def analyze(self, activations: np.ndarray,
                threshold: Optional[float] = None) -> MLPSparsityReport:
        """Full sparsity report for one layer (drives Figure 9's left panel)."""
        activations = np.asarray(activations)
        if activations.ndim == 2:
            activations = activations[None]
        threshold = self.threshold if threshold is None else threshold
        hidden = activations.shape[-1]
        flat = activations.reshape(-1, hidden)
        per_token = float((flat <= 0).mean())
        union_active = (flat > 0).any(axis=0)
        shadowy = float(1.0 - union_active.mean())
        active = self.active_blocks(activations, threshold)
        n_blocks = self.block_importance(activations).shape[0]
        filtered = float(1.0 - active.size / n_blocks)
        return MLPSparsityReport(
            per_token_sparsity=per_token,
            shadowy_sparsity=shadowy,
            filtered_sparsity=filtered,
            active_blocks=active,
            n_blocks=n_blocks,
            threshold=threshold,
        )
