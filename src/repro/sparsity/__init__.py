"""LongExposure: the paper's primary contribution.

The package mirrors the three components of the system (paper Sections
IV-VI):

* :mod:`repro.sparsity.exposer` — the *Shadowy-sparsity Exposer*: head-
  specific attention block masks and the importance-filtered MLP neuron
  blocks that turn shadowy (heavily overlapped) sparsity back into
  structured, exploitable sparsity.
* :mod:`repro.sparsity.predictor` — the *Sequence-oriented Predictor*:
  small low-rank networks that predict the sparse patterns at runtime from
  the layer inputs, trained offline on data collected from the frozen model
  with noise augmentation and a recall-weighted loss.
* :mod:`repro.sparsity.ops` — the *Dynamic-aware Operators*: block-sparse
  SDD/DSD attention kernels driven by an offline-constructed pattern-layout
  pool with online per-head combination, and neuron-centric sparse MLP
  kernels with memory-coalescing-friendly weight layouts.
* :mod:`repro.sparsity.engine` — the end-to-end system that wires the three
  components into any PEFT-adapted model by swapping the attention and MLP
  execution backends.
"""

from repro.sparsity.config import LongExposureConfig
from repro.sparsity.patterns import (
    AtomicPattern,
    PatternPool,
    block_count,
    build_default_pool,
)
from repro.sparsity.engine import LongExposure, SparseAttentionBackend, SparseMLPBackend

__all__ = [
    "LongExposureConfig",
    "AtomicPattern",
    "PatternPool",
    "block_count",
    "build_default_pool",
    "LongExposure",
    "SparseAttentionBackend",
    "SparseMLPBackend",
]
