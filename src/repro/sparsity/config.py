"""Configuration of the LongExposure system."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass
class LongExposureConfig:
    """Knobs of the end-to-end LongExposure engine.

    Attributes
    ----------
    block_size:
        Side length of the attention score blocks and the MLP neuron blocks
        (``blk_size`` in the paper's Section V).  Sequence lengths and the MLP
        hidden dimension are processed in units of this block.
    attention_coverage:
        Fraction of total attention probability mass a head's block mask must
        retain when the exposer derives the ground-truth mask (recall-oriented,
        paper Section V-B).
    mlp_threshold:
        Neuron-block importance filter threshold, expressed as a fraction of
        the peak block importance (the paper sweeps 1 %–5 % in Figure 9).
    predictor_rank:
        Rank ``r`` of the low-rank approximation matrices in the attention
        predictor (``r << d``).
    downsample:
        Whether the attention predictor down-samples the sequence dimension
        from ``s`` to ``~sqrt(s)`` before computing approximate scores.
    predictor_noise_std:
        Standard deviation of the Gaussian noise added to predictor training
        inputs (data augmentation for robustness to evolving PEFT parameters).
    predictor_pos_weight:
        Positive-class weight of the predictor BCE loss; values > 1 prioritise
        recall over precision as the paper prescribes.
    predictor_epochs / predictor_lr / predictor_batch:
        Offline predictor-training schedule.
    optimize_attention / optimize_mlp:
        Component switches.  ``optimize_mlp`` is disabled automatically for
        GeLU models (GPT-2), matching the paper's Figure 13 setup.
    oracle_mode:
        If True, the engine uses the exposer's exact (ground-truth) masks at
        runtime instead of predictor outputs.  Used for ablations and tests;
        the paper's "shadowy" baselines correspond to uniform oracle masks.
    calibrate_predictors:
        Fit per-layer/per-head decision thresholds and the pattern-snap bar
        against the oracle masks after predictor training (see
        :mod:`repro.sparsity.predictor.calibration`).  Calibration closes the
        predicted-vs-oracle block-density gap and makes the probes robust to
        sequence lengths away from their training grid; disabling it restores
        the fixed-threshold sigmoid-mass prediction path.
    calibration_lengths:
        Sequence-length grid of the calibration pass.  Empty (the default)
        calibrates at the lengths of the calibration batches; an explicit
        grid (e.g. ``(128, 256, 512)``) additionally fits thresholds at each
        listed length (truncating the calibration batches), with log-linear
        interpolation between grid points at runtime.
    predict_interval:
        Refresh the predicted (or oracle) sparsity patterns every this many
        fine-tuning steps; between refreshes the sparse backends reuse the
        last layout / active-block set.  ``1`` (the default) re-derives the
        masks on every step, exactly as before the scheduler existed; values
        > 1 amortise the mask-derivation cost over adjacent steps, whose
        masks barely change between consecutive fine-tuning steps.  The step
        counter is advanced by :meth:`LongExposure.advance_step` (the trainer
        calls it once per step); the engine records per-layer mask drift and
        reuse rates so the accuracy cost of a given interval is observable.
    mlp_offload_inactive:
        Whether the memory model assumes inactive neuron blocks stay on the
        host ("LongExposure (optimal)" curve in Figure 8).
    streaming_attention:
        Route the sparse attention backends and the oracle exposer through
        the streaming (online-softmax) kernels: block-sparse attention
        streams one active block per query-row segment at a time, and the
        oracle mask derivation computes its block mass with a two-pass
        K-tile sweep — neither ever materialises a full ``(seq, seq)``
        score matrix, breaking the O(s²) attention-memory wall for long
        contexts.  Masks and results match the materializing path up to
        accumulation order.
    seed:
        RNG seed for predictor initialisation and training shuffles.
    """

    block_size: int = 32
    attention_coverage: float = 0.90
    attention_threshold: float = 0.02
    mlp_threshold: float = 0.03
    predictor_rank: int = 8
    downsample: bool = True
    predictor_noise_std: float = 0.02
    predictor_pos_weight: float = 4.0
    predictor_epochs: int = 30
    predictor_lr: float = 1e-2
    predictor_batch: int = 16
    optimize_attention: bool = True
    optimize_mlp: bool = True
    oracle_mode: bool = False
    calibrate_predictors: bool = True
    calibration_lengths: Tuple[int, ...] = ()
    predict_interval: int = 1
    mlp_offload_inactive: bool = False
    streaming_attention: bool = False
    min_active_mlp_blocks: int = 1
    seed: int = 0

    def __post_init__(self):
        if self.block_size <= 0 or self.block_size & (self.block_size - 1):
            raise ValueError("block_size must be a positive power of two")
        if not 0.0 < self.attention_coverage <= 1.0:
            raise ValueError("attention_coverage must be in (0, 1]")
        if not 0.0 <= self.mlp_threshold < 1.0:
            raise ValueError("mlp_threshold must be in [0, 1)")
        if self.predictor_rank <= 0:
            raise ValueError("predictor_rank must be positive")
        if self.predict_interval < 1:
            raise ValueError("predict_interval must be >= 1")
        self.calibration_lengths = tuple(self.calibration_lengths)
        if any(length <= 0 for length in self.calibration_lengths):
            raise ValueError("calibration_lengths must be positive")
