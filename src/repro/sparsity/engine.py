"""End-to-end LongExposure engine.

The engine is what a user of the library touches: it takes a (PEFT-adapted)
model, prepares the sparsity machinery offline, and then swaps the attention
and MLP execution backends of every decoder block so that fine-tuning runs
through the dynamic-aware sparse operators.

Workflow (mirrors the paper's system diagram, Figure 3)::

    model = build_model("opt-small")
    engine = LongExposure(LongExposureConfig())
    engine.prepare(model, calibration_batches)   # collect data, train predictors,
                                                 # construct offline layout pool
    model, result = get_peft_method("lora")(model)
    engine.install(model)                        # swap in sparse backends
    ... fine-tune as usual ...
    engine.uninstall(model)                      # restore dense kernels

Component switches:

* ``optimize_attention`` — per-head block-sparse attention via the predicted
  atomic patterns (all model families);
* ``optimize_mlp`` — neuron-block-sparse MLP execution (ReLU models only;
  disabled automatically for GeLU models such as GPT-2, cf. Figure 13);
* ``oracle_mode`` — bypass the predictors and use the exposer's exact masks
  (ablations and tests).

The engine records per-step statistics (prediction overhead, achieved block
sparsity) in :attr:`LongExposure.stats` so the benchmark harness can report
the breakdowns of Figures 9, 10 and 12.

Choosing ``predict_interval``
-----------------------------

Mask derivation — the predictor probes (or, in oracle mode, the exposer's
dense softmax) plus layout combination — runs per layer per step and is the
dominant sparse-step cost once the sparse kernels themselves are fast.
Because adjacent fine-tuning steps barely move the activations, their masks
barely move either, so ``LongExposureConfig.predict_interval = K`` lets every
sparse backend reuse its last layout / active-block set for ``K - 1`` steps
and re-derive on the ``K``-th.  The trainer advances the schedule by calling
:meth:`LongExposure.advance_step` once per step.  Guidance:

* ``K = 1`` (default) — masks re-derived every step; bitwise-identical to the
  pre-scheduler engine.  Use for ablations and when inputs change abruptly
  between steps (e.g. wildly varying sequence content).
* ``K = 4``–``8`` — the sweet spot for ordinary fine-tuning: prediction cost
  drops by ~``K`` while the recorded mask drift between refreshes
  (:meth:`EngineStats.mean_attention_drift`) stays in the low percent range.
* Watch ``stats.mean_attention_drift()`` / ``mean_mlp_drift()``: if drift
  between refreshes grows past a few percent of the active blocks, lower
  ``K`` — the reused mask is starving blocks the model now attends to.

A sequence-length change always forces a refresh (the block grid itself
changes), so bucketed-length loaders interact safely with any ``K``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.models.base import CausalLMModel
from repro.nn.attention import DenseAttentionBackend, MultiHeadAttention, causal_mask
from repro.tensor import arena as _tensor_arena
from repro.tensor import fused as _fused
from repro.nn.mlp import DenseMLPBackend, MLPBlock
from repro.peft.lora import LoRALinear
from repro.sparsity.config import LongExposureConfig
from repro.sparsity.exposer import AttentionExposer, MLPExposer
from repro.sparsity.ops.block_sparse import block_sparse_attention
from repro.sparsity.ops.geometry_cache import LayoutGeometryCache
from repro.sparsity.ops.layout import LayoutPool, MultiHeadLayout, layout_from_block_masks
from repro.sparsity.ops.neuron_sparse import (
    NeuronSparseWeights,
    expand_block_indices,
    neuron_sparse_linear_pair,
)
from repro.sparsity.patterns import PatternPool, build_default_pool
from repro.sparsity.predictor import (
    AttentionCalibration,
    AttentionPredictor,
    MLPCalibration,
    MLPPredictor,
    PredictorMetrics,
    PredictorTrainingConfig,
    calibrate_attention_predictor,
    calibrate_mlp_predictor,
    collect_layer_data,
    train_attention_predictor,
    train_mlp_predictor,
)


def _unwrap(module):
    """Unwrap adapter-style wrappers (``_AdaptedSubLayer``) to the real sub-layer."""
    inner = getattr(module, "inner", None)
    while inner is not None:
        module = inner
        inner = getattr(module, "inner", None)
    return module


@dataclass
class LayerScheduleStats:
    """Per-layer prediction-scheduler staleness statistics.

    ``drift`` is the symmetric-difference fraction between the masks of two
    consecutive refreshes (``|old Δ new| / |old ∪ new|`` over active blocks):
    0.0 means the refresh reproduced the reused mask exactly, 1.0 means the
    two masks share nothing.  It is the observable accuracy cost of running
    with ``predict_interval > 1``.
    """

    refreshes: int = 0
    reuses: int = 0
    drift_mean: float = 0.0
    drift_samples: int = 0

    def record_refresh(self, drift: Optional[float] = None) -> None:
        self.refreshes += 1
        if drift is not None:
            self.drift_samples += 1
            self.drift_mean += (float(drift) - self.drift_mean) / self.drift_samples

    def reuse_rate(self) -> float:
        total = self.reuses + self.refreshes
        return self.reuses / total if total else 0.0


@dataclass
class EngineStats:
    """Running statistics collected while the sparse backends execute.

    Sparsity observations are folded into a running mean + sample count at
    record time (O(1) memory) instead of appended to per-call lists — a long
    fine-tuning run makes millions of backend calls, and the seed's
    unbounded lists grew linearly with step count.

    ``prediction_seconds`` counts only mask derivation (probes / oracle
    exposer / layout combination); ``backend_seconds`` counts the whole
    sparse backend call including the kernels, so
    :meth:`prediction_fraction` is the Figure-10 prediction-overhead share.
    Per-layer scheduler staleness (refresh counts, reuse hit rates, mask
    drift between refreshes) lives in :attr:`attention_layers` /
    :attr:`mlp_layers`.
    """

    prediction_seconds: float = 0.0
    backend_seconds: float = 0.0
    attention_calls: int = 0
    mlp_calls: int = 0
    attention_sparsity_mean: float = 0.0
    attention_sparsity_samples: int = 0
    mlp_sparsity_mean: float = 0.0
    mlp_sparsity_samples: int = 0
    attention_layers: Dict[int, LayerScheduleStats] = field(default_factory=dict)
    mlp_layers: Dict[int, LayerScheduleStats] = field(default_factory=dict)

    def reset(self) -> None:
        self.prediction_seconds = 0.0
        self.backend_seconds = 0.0
        self.attention_calls = 0
        self.mlp_calls = 0
        self.attention_sparsity_mean = 0.0
        self.attention_sparsity_samples = 0
        self.mlp_sparsity_mean = 0.0
        self.mlp_sparsity_samples = 0
        self.attention_layers = {}
        self.mlp_layers = {}

    def record_attention_sparsity(self, value: float) -> None:
        self.attention_sparsity_samples += 1
        self.attention_sparsity_mean += (
            (float(value) - self.attention_sparsity_mean) / self.attention_sparsity_samples)

    def record_mlp_sparsity(self, value: float) -> None:
        self.mlp_sparsity_samples += 1
        self.mlp_sparsity_mean += (
            (float(value) - self.mlp_sparsity_mean) / self.mlp_sparsity_samples)

    def mean_attention_sparsity(self) -> float:
        return self.attention_sparsity_mean if self.attention_sparsity_samples else 0.0

    def mean_mlp_sparsity(self) -> float:
        return self.mlp_sparsity_mean if self.mlp_sparsity_samples else 0.0

    # -- prediction scheduler ----------------------------------------------------
    def attention_layer(self, index: int) -> LayerScheduleStats:
        return self.attention_layers.setdefault(index, LayerScheduleStats())

    def mlp_layer(self, index: int) -> LayerScheduleStats:
        return self.mlp_layers.setdefault(index, LayerScheduleStats())

    @staticmethod
    def _aggregate_reuse_rate(layers: Dict[int, LayerScheduleStats]) -> float:
        reuses = sum(s.reuses for s in layers.values())
        total = reuses + sum(s.refreshes for s in layers.values())
        return reuses / total if total else 0.0

    @staticmethod
    def _aggregate_drift(layers: Dict[int, LayerScheduleStats]) -> float:
        samples = sum(s.drift_samples for s in layers.values())
        if not samples:
            return 0.0
        return sum(s.drift_mean * s.drift_samples for s in layers.values()) / samples

    def attention_reuse_rate(self) -> float:
        """Fraction of attention backend calls served from the reused layout."""
        return self._aggregate_reuse_rate(self.attention_layers)

    def mlp_reuse_rate(self) -> float:
        """Fraction of MLP backend calls served from the reused block set."""
        return self._aggregate_reuse_rate(self.mlp_layers)

    def mean_attention_drift(self) -> float:
        """Mean mask drift between consecutive attention refreshes (all layers)."""
        return self._aggregate_drift(self.attention_layers)

    def mean_mlp_drift(self) -> float:
        """Mean active-block drift between consecutive MLP refreshes (all layers)."""
        return self._aggregate_drift(self.mlp_layers)

    def layout_reuse_counts(self) -> Dict[str, int]:
        """Aggregate reuse/refresh counters (JSON-friendly, for the profiler)."""
        return {
            "attention_reuses": sum(s.reuses for s in self.attention_layers.values()),
            "attention_refreshes": sum(s.refreshes for s in self.attention_layers.values()),
            "mlp_reuses": sum(s.reuses for s in self.mlp_layers.values()),
            "mlp_refreshes": sum(s.refreshes for s in self.mlp_layers.values()),
        }

    def prediction_fraction(self) -> float:
        """Prediction seconds over total sparse-backend seconds (Figure 10)."""
        if self.backend_seconds <= 0.0:
            return 0.0
        return self.prediction_seconds / self.backend_seconds


def _layout_block_keys(layout: MultiHeadLayout) -> np.ndarray:
    """Unique sorted int64 key per active block of a layout."""
    nb = np.int64(layout.n_blocks)
    return (layout.heads * nb + layout.rows) * nb + layout.cols


def _layout_drift(old: Optional[MultiHeadLayout],
                  new: MultiHeadLayout) -> Optional[float]:
    """Symmetric-difference fraction between two layouts' active-block sets.

    Returns ``None`` when the layouts are not comparable (no predecessor, or
    the block grid changed) — callers skip the drift sample in that case.
    """
    if old is None or old.n_blocks != new.n_blocks or old.n_heads != new.n_heads:
        return None
    if old is new or old.signature() == new.signature():
        return 0.0
    return _active_block_drift(_layout_block_keys(old), _layout_block_keys(new))


def _active_block_drift(old: Optional[np.ndarray],
                        new: np.ndarray) -> Optional[float]:
    """Symmetric-difference fraction between two sorted active-block index sets."""
    if old is None:
        return None
    if old.shape == new.shape and np.array_equal(old, new):
        return 0.0
    inter = np.intersect1d(old, new, assume_unique=True).size
    union = old.size + new.size - inter
    return float(old.size + new.size - 2 * inter) / max(union, 1)


class SparseAttentionBackend:
    """Block-sparse attention kernel driven by the layer's predictor.

    With ``predict_interval > 1`` the backend keeps the layout of its last
    refresh and reuses it until the engine's step counter reaches the next
    scheduled refresh (or the sequence length changes, which invalidates the
    block grid).  Refresh/reuse counts and the mask drift observed at each
    refresh are recorded per layer in :class:`EngineStats`.
    """

    def __init__(self, engine: "LongExposure", layer_index: int):
        self.engine = engine
        self.layer_index = layer_index
        self.last_layout: Optional[MultiHeadLayout] = None
        self._layout_seq_len: Optional[int] = None
        self._last_refresh_step: int = 0

    def reset_schedule(self) -> None:
        """Forget the reused layout; the next call re-derives the masks."""
        self.last_layout = None
        self._layout_seq_len = None
        self._last_refresh_step = 0

    def _reusable(self, seq_len: int) -> bool:
        # The deadline is computed from the *current* interval, so lowering
        # (or raising) predict_interval mid-run takes effect immediately.
        engine = self.engine
        return (engine.config.predict_interval > 1
                and self.last_layout is not None
                and self._layout_seq_len == seq_len
                and engine.step_index
                < self._last_refresh_step + engine.config.predict_interval)

    def __call__(self, module: MultiHeadAttention, q, k, v, attn_mask, x=None):
        engine = self.engine
        stats = engine.stats
        call_start = time.perf_counter()
        seq_len = q.shape[2]
        if self._reusable(seq_len):
            layout = self.last_layout
            stats.attention_layer(self.layer_index).reuses += 1
        else:
            start = time.perf_counter()
            if engine.config.oracle_mode or x is None:
                layout = engine.oracle_attention_layout(module, q, k, seq_len)
            else:
                predictor = engine.attention_predictors[self.layer_index]
                patterns = predictor.predict_patterns(x.data)
                layout = engine.layout_pool.combine(patterns, seq_len)
            stats.prediction_seconds += time.perf_counter() - start
            stats.attention_layer(self.layer_index).record_refresh(
                _layout_drift(self.last_layout, layout))
            self.last_layout = layout
            self._layout_seq_len = seq_len
            self._last_refresh_step = engine.step_index
        stats.attention_calls += 1
        stats.record_attention_sparsity(layout.sparsity())
        out = block_sparse_attention(
            q, k, v, layout, cache=engine.geometry_cache,
            streaming=True if engine.config.streaming_attention else None)
        stats.backend_seconds += time.perf_counter() - call_start
        return out


class SparseMLPBackend:
    """Neuron-block-sparse MLP kernel driven by the layer's predictor.

    Scheduling mirrors :class:`SparseAttentionBackend`: with
    ``predict_interval > 1`` the active-block set of the last refresh is
    reused until the next scheduled step (the set depends only on the hidden
    dimension, so no sequence-length invalidation applies).
    """

    def __init__(self, engine: "LongExposure", layer_index: int):
        self.engine = engine
        self.layer_index = layer_index
        self.weight_cache: Optional[NeuronSparseWeights] = None
        self.last_active_blocks: Optional[np.ndarray] = None
        self._last_refresh_step: int = 0
        # Set on first call when the layer's fc1/fc2 carry LoRA adapters and
        # the backend permanently routes to the dense kernel; the full-step
        # scheduler (refresh_due) skips such backends.
        self._dense_fallback = False

    def reset_schedule(self) -> None:
        """Forget the reused block set; the next call re-derives it."""
        self.last_active_blocks = None
        self._last_refresh_step = 0

    def _reusable(self) -> bool:
        engine = self.engine
        return (engine.config.predict_interval > 1
                and self.last_active_blocks is not None
                and engine.step_index
                < self._last_refresh_step + engine.config.predict_interval)

    def _cache_for(self, mlp: MLPBlock) -> Optional[NeuronSparseWeights]:
        fc1, fc2 = mlp.fc1, mlp.fc2
        if isinstance(fc1, LoRALinear) or isinstance(fc2, LoRALinear):
            return None
        frozen = not fc1.weight.requires_grad and not fc2.weight.requires_grad
        if not frozen:
            return None
        if self.weight_cache is None:
            self.weight_cache = NeuronSparseWeights(fc1.weight.data, fc2.weight.data,
                                                    coalesced=True)
        return self.weight_cache

    def __call__(self, module: MLPBlock, x):
        engine = self.engine
        mlp = _unwrap(module)
        if isinstance(mlp.fc1, LoRALinear) or isinstance(mlp.fc2, LoRALinear):
            # LoRA inside the MLP changes the effective fc1/fc2 weights, so
            # the frozen-weight sparse path does not apply; fall back to the
            # dense kernel for this layer (the default LoRA placement targets
            # the attention projections, so this path is rare).
            self._dense_fallback = True
            return DenseMLPBackend()(mlp, x)

        stats = engine.stats
        call_start = time.perf_counter()
        if self._reusable():
            active_blocks = self.last_active_blocks
            stats.mlp_layer(self.layer_index).reuses += 1
        else:
            start = time.perf_counter()
            if engine.config.oracle_mode:
                active_blocks = engine.oracle_mlp_blocks(mlp, x)
            else:
                predictor = engine.mlp_predictors[self.layer_index]
                active_blocks = predictor.predict_active_blocks(x.data)
            stats.prediction_seconds += time.perf_counter() - start
            stats.mlp_layer(self.layer_index).record_refresh(
                _active_block_drift(self.last_active_blocks, active_blocks))
            self.last_active_blocks = active_blocks
            self._last_refresh_step = engine.step_index
        stats.mlp_calls += 1

        n_blocks = -(-mlp.hidden_dim // engine.config.block_size)
        stats.record_mlp_sparsity(1.0 - active_blocks.size / n_blocks)

        active_neurons = expand_block_indices(active_blocks, engine.config.block_size,
                                              mlp.hidden_dim)
        cache = self._cache_for(mlp)
        out = neuron_sparse_linear_pair(
            x, mlp.fc1.weight, mlp.fc1.bias, mlp.fc2.weight, mlp.fc2.bias,
            active_neurons, activation=mlp.activation_name, cache=cache)
        stats.backend_seconds += time.perf_counter() - call_start
        return out


class LongExposure:
    """The LongExposure system: exposer + predictors + dynamic-aware operators."""

    def __init__(self, config: Optional[LongExposureConfig] = None,
                 pattern_pool: Optional[PatternPool] = None):
        self.config = config or LongExposureConfig()
        self.pattern_pool = pattern_pool or build_default_pool()
        self.layout_pool = LayoutPool(self.pattern_pool, self.config.block_size)
        # Derived-geometry memo shared by every sparse attention backend this
        # engine installs; set to None to force per-call recomputation.
        self.geometry_cache: Optional[LayoutGeometryCache] = LayoutGeometryCache()
        self.attention_exposer = AttentionExposer(
            self.pattern_pool, self.config.block_size,
            coverage=self.config.attention_coverage,
            score_threshold=self.config.attention_threshold)
        self.mlp_exposer = MLPExposer(self.config.block_size,
                                      threshold=self.config.mlp_threshold,
                                      min_active_blocks=self.config.min_active_mlp_blocks)
        self.attention_predictors: List[AttentionPredictor] = []
        self.mlp_predictors: List[MLPPredictor] = []
        self.predictor_metrics: Dict[str, List[PredictorMetrics]] = {
            "attention": [], "mlp": []}
        # Per-layer fitted calibrations (populated by prepare() when
        # config.calibrate_predictors is set; parallel to the predictor lists).
        self.attention_calibrations: List[AttentionCalibration] = []
        self.mlp_calibrations: List[MLPCalibration] = []
        self.stats = EngineStats()
        self._installed_blocks: List = []
        self._sparse_backends: List = []
        self._prepared = False
        # Prediction-scheduler step counter: advanced once per fine-tuning
        # step by the trainer (advance_step); backends compare it against
        # their next scheduled refresh.
        self.step_index = 0

    # -- offline preparation -----------------------------------------------------
    def prepare(self, model: CausalLMModel, calibration_batches: Sequence[np.ndarray],
                training_config: Optional[PredictorTrainingConfig] = None,
                seq_lens: Optional[Sequence[int]] = None) -> None:
        """Collect data from the frozen model and train the per-layer predictors.

        Must be called on the backbone *before* PEFT wrapping.  In oracle mode
        only the offline layout pool is constructed (no predictors needed).
        """
        config = self.config
        seq_lens = list(seq_lens or [np.asarray(b).shape[-1] for b in calibration_batches])
        self.layout_pool.construct(seq_lens)

        mlp_enabled = config.optimize_mlp and model.config.activation == "relu"
        self.attention_calibrations = []
        self.mlp_calibrations = []
        if config.oracle_mode:
            self._prepared = True
            return

        training_config = training_config or PredictorTrainingConfig(
            epochs=config.predictor_epochs, lr=config.predictor_lr,
            batch_size=config.predictor_batch, noise_std=config.predictor_noise_std,
            pos_weight=config.predictor_pos_weight, seed=config.seed)

        collected = collect_layer_data(model, calibration_batches)
        self.attention_predictors = []
        self.mlp_predictors = []
        self.predictor_metrics = {"attention": [], "mlp": []}
        for layer_index, data in enumerate(collected):
            merged = data.merged()
            if config.optimize_attention:
                predictor = AttentionPredictor(
                    model.config.dim, model.config.num_heads, config.predictor_rank,
                    config.block_size, self.pattern_pool,
                    threshold=config.attention_threshold,
                    coverage=config.attention_coverage,
                    seed=config.seed + layer_index)
                metrics = train_attention_predictor(
                    predictor, merged["attention_inputs"], merged["attention_probs"],
                    self.attention_exposer, training_config)
                self.attention_predictors.append(predictor)
                self.predictor_metrics["attention"].append(metrics)
            if mlp_enabled:
                predictor = MLPPredictor(
                    model.config.dim, model.config.hidden_dim, config.block_size,
                    min_active_blocks=config.min_active_mlp_blocks,
                    seed=config.seed + 1000 + layer_index)
                metrics = train_mlp_predictor(
                    predictor, merged["mlp_inputs"], merged["mlp_activations"],
                    self.mlp_exposer, training_config)
                self.mlp_predictors.append(predictor)
                self.predictor_metrics["mlp"].append(metrics)
        if config.calibrate_predictors:
            self._calibrate_predictors(model, calibration_batches, collected)
        self._prepared = True

    def _calibrate_predictors(self, model: CausalLMModel,
                              calibration_batches: Sequence[np.ndarray],
                              collected) -> None:
        """Fit per-layer decision thresholds and snap bars against the oracle.

        The whole grid is served from the *one* collection pass ``prepare()``
        already ran: shorter grid lengths are exact prefixes of the recorded
        full-length activations (causal model — see
        :meth:`CollectedLayerData.merged`), so no extra frozen-model pass
        runs per grid length.  Each trained predictor is then calibrated on
        the per-length oracle masks (see
        :mod:`repro.sparsity.predictor.calibration`).

        The grid is anchored on the *actual* token lengths of the calibration
        batches (prepare's ``seq_lens`` parameter only declares layout-pool
        lengths and may differ from them).
        """
        config = self.config
        native = sorted({int(np.asarray(b).shape[-1]) for b in calibration_batches})
        lengths = sorted(set(int(s) for s in config.calibration_lengths) | set(native)
                         ) if config.calibration_lengths else native
        self.layout_pool.construct(lengths)

        # length -> [merged dict per layer]; each layer's recordings are
        # concatenated exactly once per grid length (the attention probs
        # alone are O(n·heads·seq²) — re-merging per consumer would copy
        # them four times per layer per length).
        merged_by_length: Dict[int, list] = {}
        batch_lengths = [int(np.asarray(b).shape[-1]) for b in calibration_batches]
        for length in lengths:
            if not any(bl >= length for bl in batch_lengths):
                continue   # no calibration batch long enough for this length
            truncate = None if all(bl == length for bl in batch_lengths) else length
            merged_by_length[length] = [layer.merged(truncate_to=truncate)
                                        for layer in collected]

        self.attention_calibrations = []
        for layer_index, predictor in enumerate(self.attention_predictors):
            calibration = calibrate_attention_predictor(
                predictor, self.attention_exposer,
                {length: merged[layer_index]["attention_inputs"]
                 for length, merged in merged_by_length.items()},
                {length: merged[layer_index]["attention_probs"]
                 for length, merged in merged_by_length.items()})
            predictor.set_calibration(calibration)
            self.attention_calibrations.append(calibration)

        self.mlp_calibrations = []
        for layer_index, predictor in enumerate(self.mlp_predictors):
            calibration = calibrate_mlp_predictor(
                predictor, self.mlp_exposer,
                {length: merged[layer_index]["mlp_inputs"]
                 for length, merged in merged_by_length.items()},
                {length: merged[layer_index]["mlp_activations"]
                 for length, merged in merged_by_length.items()})
            predictor.set_calibration(calibration)
            self.mlp_calibrations.append(calibration)

    # -- calibration reporting ---------------------------------------------------
    def calibration_gap(self) -> Dict[str, float]:
        """Mean |predicted − oracle| density gap recorded at calibration time."""
        out: Dict[str, float] = {}
        if self.attention_calibrations:
            out["attention"] = float(np.mean(
                [c.mean_gap() for c in self.attention_calibrations]))
        if self.mlp_calibrations:
            out["mlp"] = float(np.mean(
                [c.mean_gap() for c in self.mlp_calibrations]))
        return out

    # -- oracle (exposer-driven) paths ------------------------------------------------
    def oracle_attention_layout(self, module: MultiHeadAttention, q, k,
                                seq_len: int) -> MultiHeadLayout:
        """Exact-mask layout computed from the current Q/K (ablation mode).

        The dense softmax runs every layer of every oracle step (it is what
        the exposer reads), so it reuses the score buffer in place the same
        way the fused kernels do — the masked fill / max-subtract / exp /
        normalise chain allocates no ``(batch, heads, seq, seq)``
        temporaries beyond the matmul output.  Values are identical to the
        previous out-of-place form.

        With ``config.streaming_attention`` the full score matrix is never
        formed: :meth:`_streaming_oracle_block_mass` accumulates the
        exposer's per-block probability mass with a two-pass K-tile sweep
        in O(seq * tile) scratch, and the pattern matching runs on that
        mass directly.
        """
        scale = float(1.0 / np.sqrt(module.head_dim))
        if self.config.streaming_attention:
            block_mass = self._streaming_oracle_block_mass(q.data, k.data,
                                                           scale, seq_len)
            masks, names = self.attention_exposer.masks_from_block_mass(
                block_mass)
            return self.layout_pool.combine(list(names), seq_len)
        score_shape = q.shape[:-1] + (k.shape[2],)
        scores = np.matmul(q.data, np.swapaxes(k.data, -1, -2),
                           out=_tensor_arena.empty(score_shape, q.data.dtype))
        scores *= scale
        causal = causal_mask(seq_len)
        np.copyto(scores, np.float32(-1e9), where=~causal)
        scores -= scores.max(axis=-1, keepdims=True)
        np.exp(scores, out=scores)
        np.multiply(scores, causal, out=scores)
        denom = scores.sum(axis=-1, keepdims=True)
        # Causal rows always keep their diagonal, so the max-subtracted
        # exp-sum is >= 1 and the shared zero-row guard never fires — the
        # swap from the old ``np.maximum(denom, 1e-12)`` clamp is exact.
        _fused.guard_zero_rows(denom)
        scores /= denom
        masks, names = self.attention_exposer.head_block_masks(scores)
        # The dense score buffer is the biggest per-layer temporary of oracle
        # mode; recycling it here lets every layer of the step share one.
        _tensor_arena.release(scores)
        return self.layout_pool.combine(list(names), seq_len)

    def _streaming_oracle_block_mass(self, q: np.ndarray, k: np.ndarray,
                                     scale: float, seq_len: int) -> np.ndarray:
        """Exposer block mass via a two-pass streaming softmax sweep.

        Pass 1 computes the per-row logsumexp with the same online max/sum
        rescaling as :func:`repro.tensor.fused.streaming_attention`; pass 2
        re-streams the K tiles, recomputes each probability tile from the
        saved logsumexp and immediately folds it into the per-key-block
        column reduction.  The tile width is the streaming tile rounded to a
        block multiple so tile edges never split a block.  Scratch:
        O(batch * heads * seq * tile), never O(seq²).
        """
        from repro.sparsity.patterns import block_count, causal_block_mask

        bs = self.config.block_size
        tile = max(bs, (_fused.streaming_tile() // bs) * bs)
        tile = min(tile, seq_len)
        causal = causal_mask(seq_len)
        batch, heads = q.shape[0], q.shape[1]
        dtype = q.dtype
        kT = np.swapaxes(k, -1, -2)
        red_shape = (batch, heads, seq_len, 1)
        tiles = tuple((j0, min(j0 + tile, seq_len))
                      for j0 in range(0, seq_len, tile))

        lse = _tensor_arena.empty(red_shape, dtype)
        m_buf = _tensor_arena.empty(red_shape, dtype)
        red = _tensor_arena.empty(red_shape, dtype)
        corr = _tensor_arena.empty(red_shape, dtype)
        m_buf.fill(-np.inf)
        lse.fill(0.0)
        for j0, j1 in tiles:
            s = _tensor_arena.empty((batch, heads, seq_len, j1 - j0), dtype)
            np.matmul(q, kT[..., j0:j1], out=s)
            s *= scale
            np.copyto(s, np.float32(-1e9), where=~causal[:, j0:j1])
            s.max(axis=-1, keepdims=True, out=red)
            np.maximum(m_buf, red, out=red)
            np.subtract(m_buf, red, out=corr)
            np.exp(corr, out=corr)
            np.copyto(m_buf, red)
            s -= m_buf
            np.exp(s, out=s)
            np.multiply(s, causal[:, j0:j1], out=s)
            lse *= corr
            s.sum(axis=-1, keepdims=True, out=red)
            lse += red
            _tensor_arena.release(s)
        _fused.guard_zero_rows(lse)
        np.log(lse, out=lse)
        lse += m_buf
        _tensor_arena.release(m_buf, red, corr)

        n_blocks = block_count(seq_len, bs)
        key_reduced = _tensor_arena.zeros(
            (batch, heads, seq_len, n_blocks), dtype)
        for j0, j1 in tiles:
            s = _tensor_arena.empty((batch, heads, seq_len, j1 - j0), dtype)
            np.matmul(q, kT[..., j0:j1], out=s)
            s *= scale
            np.copyto(s, np.float32(-1e9), where=~causal[:, j0:j1])
            s -= lse
            np.exp(s, out=s)
            np.multiply(s, causal[:, j0:j1], out=s)
            starts = np.arange(0, j1 - j0, bs)
            b0 = j0 // bs
            np.add.reduceat(s, starts, axis=3,
                            out=key_reduced[..., b0:b0 + starts.shape[0]])
            _tensor_arena.release(s)
        _tensor_arena.release(lse)

        row_starts = np.arange(0, seq_len, bs)
        reduced = np.add.reduceat(key_reduced, row_starts, axis=2)
        _tensor_arena.release(key_reduced)
        block_mass = reduced.sum(axis=0)
        block_mass *= causal_block_mask(n_blocks)[None]
        return block_mass

    def oracle_mlp_blocks(self, mlp: MLPBlock, x) -> np.ndarray:
        """Exact active neuron blocks computed from the current input (ablation mode)."""
        x2d = x.data.reshape(-1, mlp.dim)
        pre = np.matmul(x2d, mlp.fc1.weight.data.T,
                        out=_tensor_arena.empty((x2d.shape[0], mlp.hidden_dim),
                                                x2d.dtype))
        pre += mlp.fc1.bias.data
        np.maximum(pre, 0.0, out=pre)
        act = pre.reshape(*x.data.shape[:-1], mlp.hidden_dim)
        blocks = self.mlp_exposer.active_blocks(act)
        _tensor_arena.release(pre)
        return blocks

    # -- backend installation --------------------------------------------------------
    def install(self, model: CausalLMModel) -> None:
        """Swap the dense attention/MLP backends of every block for sparse ones."""
        if not self._prepared:
            raise RuntimeError("call prepare() before install()")
        config = self.config
        mlp_enabled = config.optimize_mlp and model.config.activation == "relu"
        if (config.optimize_attention and not config.oracle_mode
                and len(self.attention_predictors) != len(model.blocks)):
            raise RuntimeError("predictors were prepared for a different model depth")
        self._installed_blocks = []
        self._sparse_backends = []
        for layer_index, block in enumerate(model.blocks):
            attention = _unwrap(block.attention)
            mlp = _unwrap(block.mlp)
            entry = {"attention": attention, "mlp": mlp,
                     "attention_backend": attention.backend, "mlp_backend": mlp.backend}
            if config.optimize_attention:
                attention.backend = SparseAttentionBackend(self, layer_index)
                self._sparse_backends.append(attention.backend)
            if mlp_enabled:
                mlp.backend = SparseMLPBackend(self, layer_index)
                self._sparse_backends.append(mlp.backend)
            self._installed_blocks.append(entry)

    def uninstall(self, model: CausalLMModel) -> None:
        """Restore the dense backends recorded at install time."""
        for entry in self._installed_blocks:
            entry["attention"].backend = entry["attention_backend"]
            entry["mlp"].backend = entry["mlp_backend"]
        self._installed_blocks = []
        self._sparse_backends = []

    # -- prediction scheduling -----------------------------------------------------
    def advance_step(self) -> None:
        """Advance the scheduler by one fine-tuning step (trainer calls this)."""
        self.step_index += 1

    def reset_schedule(self) -> None:
        """Zero the step counter and drop every backend's reused masks.

        The next forward pass re-derives all masks regardless of
        ``predict_interval`` — used when switching modes mid-run (benchmarks,
        ablations) or when restarting fine-tuning on new data.
        """
        self.step_index = 0
        for backend in self._sparse_backends:
            backend.reset_schedule()

    def refresh_due(self, seq_len: int) -> bool:
        """Whether any installed backend will re-derive its masks this step.

        The full-step compiler records probes/oracle exposers *between* ops
        nowhere — they are Python control flow, not kernel calls — so a step
        that refreshes any mask must run interpreted.  MLP backends that
        permanently route to the dense kernel (LoRA inside the MLP) never
        refresh and are skipped.
        """
        for backend in self._sparse_backends:
            if isinstance(backend, SparseAttentionBackend):
                if not backend._reusable(seq_len):
                    return True
            elif isinstance(backend, SparseMLPBackend):
                if backend._dense_fallback:
                    continue
                if not backend._reusable():
                    return True
        return False

    def refresh_due_next(self, seq_len: int) -> bool:
        """Whether :meth:`refresh_due` will hold on the *next* step.

        The data-parallel worker harness decides before calling
        ``FineTuner.step`` (which advances the scheduler itself) whether the
        coming step re-derives masks — on such steps rank 0 refreshes and
        broadcasts its layouts while the other ranks adopt them instead of
        probing their own shards.  Computed by evaluating the schedule one
        step ahead; backend state is untouched.
        """
        self.step_index += 1
        try:
            return self.refresh_due(seq_len)
        finally:
            self.step_index -= 1

    def export_layouts(self) -> list:
        """Picklable snapshot of every backend's current masks.

        Entries mirror the backend order of :meth:`layout_state`; attention
        backends export ``("attn", layout, seq_len)`` and MLP backends
        ``("mlp", active_blocks)``.  The masks are tiny (per-head block
        patterns and block-index vectors), which is what makes broadcasting
        them from rank 0 cheaper than letting every worker probe its own
        shard — and keeps all workers computing with the *same* layouts.
        """
        state = []
        for backend in self._sparse_backends:
            if isinstance(backend, SparseAttentionBackend):
                state.append(("attn", backend.last_layout,
                              backend._layout_seq_len))
            elif isinstance(backend, SparseMLPBackend):
                state.append(("mlp", backend.last_active_blocks))
        return state

    def adopt_layouts(self, state: list, refresh_step: Optional[int] = None) -> None:
        """Install layouts exported by another engine replica (rank 0).

        Marks every backend as freshly refreshed at ``refresh_step`` (default
        the current step index), so the scheduled reuse window restarts
        exactly as if the backend had derived the masks itself; drift against
        the previously reused masks is recorded per layer as usual.
        """
        if len(state) != len(self._sparse_backends):
            raise ValueError(f"layout snapshot covers {len(state)} backends, "
                             f"engine has {len(self._sparse_backends)}")
        step = self.step_index if refresh_step is None else int(refresh_step)
        for backend, entry in zip(self._sparse_backends, state):
            if isinstance(backend, SparseAttentionBackend):
                kind, layout, seq_len = entry
                if kind != "attn":
                    raise ValueError(f"expected attention entry, got {kind!r}")
                if layout is not None:
                    self.stats.attention_layer(backend.layer_index).record_refresh(
                        _layout_drift(backend.last_layout, layout))
                backend.last_layout = layout
                backend._layout_seq_len = seq_len
                backend._last_refresh_step = step
            elif isinstance(backend, SparseMLPBackend):
                kind, active_blocks = entry
                if kind != "mlp":
                    raise ValueError(f"expected mlp entry, got {kind!r}")
                if active_blocks is not None:
                    self.stats.mlp_layer(backend.layer_index).record_refresh(
                        _active_block_drift(backend.last_active_blocks,
                                            active_blocks))
                backend.last_active_blocks = active_blocks
                backend._last_refresh_step = step

    def layout_state(self) -> tuple:
        """Hashable snapshot of every backend's reused masks.

        The full-step plan closes over layout geometry (gather indices,
        active-neuron weight slices), so the step capture compares this
        snapshot after each refresh step and drops the compiled plan when it
        changed.  Equal signatures mean the closed-over geometry is still
        exactly the one the masks describe.
        """
        state = []
        for backend in self._sparse_backends:
            if isinstance(backend, SparseAttentionBackend):
                layout = backend.last_layout
                state.append(None if layout is None else layout.signature())
            elif isinstance(backend, SparseMLPBackend):
                blocks = backend.last_active_blocks
                state.append(None if blocks is None else blocks.tobytes())
        return tuple(state)

    # -- reporting -----------------------------------------------------------------
    def mean_predictor_recall(self) -> Dict[str, float]:
        """Average recall of the trained predictors (paper quotes 96.35 % for MLP)."""
        out = {}
        for kind, metrics in self.predictor_metrics.items():
            if metrics:
                out[kind] = float(np.mean([m.recall for m in metrics]))
        return out

    def summary(self) -> str:
        lines = [f"LongExposure(block_size={self.config.block_size}, "
                 f"oracle={self.config.oracle_mode})"]
        recalls = self.mean_predictor_recall()
        for kind, value in recalls.items():
            lines.append(f"  {kind} predictor mean recall: {value:.4f}")
        for kind, gap in self.calibration_gap().items():
            lines.append(f"  {kind} calibration density gap: {gap:.4f}")
        if self.attention_calibrations:
            grid = self.attention_calibrations[0].grid_lengths()
            lines.append(f"  calibration grid: {grid} "
                         f"(snap bar {self.attention_calibrations[0].snap_coverage:.2f})")
        lines.append(f"  mean attention block sparsity: {self.stats.mean_attention_sparsity():.3f}")
        lines.append(f"  mean MLP block sparsity: {self.stats.mean_mlp_sparsity():.3f}")
        lines.append(f"  prediction overhead: {self.stats.prediction_seconds * 1000:.2f} ms")
        if self.config.predict_interval > 1:
            lines.append(
                f"  predict_interval={self.config.predict_interval}: "
                f"attention reuse {self.stats.attention_reuse_rate():.2f} "
                f"(drift {self.stats.mean_attention_drift():.4f}), "
                f"mlp reuse {self.stats.mlp_reuse_rate():.2f} "
                f"(drift {self.stats.mean_mlp_drift():.4f})")
        return "\n".join(lines)
