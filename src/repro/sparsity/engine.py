"""End-to-end LongExposure engine.

The engine is what a user of the library touches: it takes a (PEFT-adapted)
model, prepares the sparsity machinery offline, and then swaps the attention
and MLP execution backends of every decoder block so that fine-tuning runs
through the dynamic-aware sparse operators.

Workflow (mirrors the paper's system diagram, Figure 3)::

    model = build_model("opt-small")
    engine = LongExposure(LongExposureConfig())
    engine.prepare(model, calibration_batches)   # collect data, train predictors,
                                                 # construct offline layout pool
    model, result = get_peft_method("lora")(model)
    engine.install(model)                        # swap in sparse backends
    ... fine-tune as usual ...
    engine.uninstall(model)                      # restore dense kernels

Component switches:

* ``optimize_attention`` — per-head block-sparse attention via the predicted
  atomic patterns (all model families);
* ``optimize_mlp`` — neuron-block-sparse MLP execution (ReLU models only;
  disabled automatically for GeLU models such as GPT-2, cf. Figure 13);
* ``oracle_mode`` — bypass the predictors and use the exposer's exact masks
  (ablations and tests).

The engine records per-step statistics (prediction overhead, achieved block
sparsity) in :attr:`LongExposure.stats` so the benchmark harness can report
the breakdowns of Figures 9, 10 and 12.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.models.base import CausalLMModel
from repro.nn.attention import DenseAttentionBackend, MultiHeadAttention, causal_mask
from repro.nn.mlp import DenseMLPBackend, MLPBlock
from repro.peft.lora import LoRALinear
from repro.sparsity.config import LongExposureConfig
from repro.sparsity.exposer import AttentionExposer, MLPExposer
from repro.sparsity.ops.block_sparse import block_sparse_attention
from repro.sparsity.ops.geometry_cache import LayoutGeometryCache
from repro.sparsity.ops.layout import LayoutPool, MultiHeadLayout, layout_from_block_masks
from repro.sparsity.ops.neuron_sparse import (
    NeuronSparseWeights,
    expand_block_indices,
    neuron_sparse_linear_pair,
)
from repro.sparsity.patterns import PatternPool, build_default_pool
from repro.sparsity.predictor import (
    AttentionPredictor,
    MLPPredictor,
    PredictorMetrics,
    PredictorTrainingConfig,
    collect_layer_data,
    train_attention_predictor,
    train_mlp_predictor,
)


def _unwrap(module):
    """Unwrap adapter-style wrappers (``_AdaptedSubLayer``) to the real sub-layer."""
    inner = getattr(module, "inner", None)
    while inner is not None:
        module = inner
        inner = getattr(module, "inner", None)
    return module


@dataclass
class EngineStats:
    """Running statistics collected while the sparse backends execute.

    Sparsity observations are folded into a running mean + sample count at
    record time (O(1) memory) instead of appended to per-call lists — a long
    fine-tuning run makes millions of backend calls, and the seed's
    unbounded lists grew linearly with step count.
    """

    prediction_seconds: float = 0.0
    attention_calls: int = 0
    mlp_calls: int = 0
    attention_sparsity_mean: float = 0.0
    attention_sparsity_samples: int = 0
    mlp_sparsity_mean: float = 0.0
    mlp_sparsity_samples: int = 0

    def reset(self) -> None:
        self.prediction_seconds = 0.0
        self.attention_calls = 0
        self.mlp_calls = 0
        self.attention_sparsity_mean = 0.0
        self.attention_sparsity_samples = 0
        self.mlp_sparsity_mean = 0.0
        self.mlp_sparsity_samples = 0

    def record_attention_sparsity(self, value: float) -> None:
        self.attention_sparsity_samples += 1
        self.attention_sparsity_mean += (
            (float(value) - self.attention_sparsity_mean) / self.attention_sparsity_samples)

    def record_mlp_sparsity(self, value: float) -> None:
        self.mlp_sparsity_samples += 1
        self.mlp_sparsity_mean += (
            (float(value) - self.mlp_sparsity_mean) / self.mlp_sparsity_samples)

    def mean_attention_sparsity(self) -> float:
        return self.attention_sparsity_mean if self.attention_sparsity_samples else 0.0

    def mean_mlp_sparsity(self) -> float:
        return self.mlp_sparsity_mean if self.mlp_sparsity_samples else 0.0


class SparseAttentionBackend:
    """Block-sparse attention kernel driven by the layer's predictor."""

    def __init__(self, engine: "LongExposure", layer_index: int):
        self.engine = engine
        self.layer_index = layer_index
        self.last_layout: Optional[MultiHeadLayout] = None

    def __call__(self, module: MultiHeadAttention, q, k, v, attn_mask, x=None):
        engine = self.engine
        seq_len = q.shape[2]
        start = time.perf_counter()
        if engine.config.oracle_mode or x is None:
            layout = engine.oracle_attention_layout(module, q, k, seq_len)
        else:
            predictor = engine.attention_predictors[self.layer_index]
            patterns = predictor.predict_patterns(x.data)
            layout = engine.layout_pool.combine(patterns, seq_len)
        engine.stats.prediction_seconds += time.perf_counter() - start
        engine.stats.attention_calls += 1
        engine.stats.record_attention_sparsity(layout.sparsity())
        self.last_layout = layout
        return block_sparse_attention(q, k, v, layout, cache=engine.geometry_cache)


class SparseMLPBackend:
    """Neuron-block-sparse MLP kernel driven by the layer's predictor."""

    def __init__(self, engine: "LongExposure", layer_index: int):
        self.engine = engine
        self.layer_index = layer_index
        self.weight_cache: Optional[NeuronSparseWeights] = None
        self.last_active_blocks: Optional[np.ndarray] = None

    def _cache_for(self, mlp: MLPBlock) -> Optional[NeuronSparseWeights]:
        fc1, fc2 = mlp.fc1, mlp.fc2
        if isinstance(fc1, LoRALinear) or isinstance(fc2, LoRALinear):
            return None
        frozen = not fc1.weight.requires_grad and not fc2.weight.requires_grad
        if not frozen:
            return None
        if self.weight_cache is None:
            self.weight_cache = NeuronSparseWeights(fc1.weight.data, fc2.weight.data,
                                                    coalesced=True)
        return self.weight_cache

    def __call__(self, module: MLPBlock, x):
        engine = self.engine
        mlp = _unwrap(module)
        if isinstance(mlp.fc1, LoRALinear) or isinstance(mlp.fc2, LoRALinear):
            # LoRA inside the MLP changes the effective fc1/fc2 weights, so
            # the frozen-weight sparse path does not apply; fall back to the
            # dense kernel for this layer (the default LoRA placement targets
            # the attention projections, so this path is rare).
            return DenseMLPBackend()(mlp, x)

        start = time.perf_counter()
        if engine.config.oracle_mode:
            active_blocks = engine.oracle_mlp_blocks(mlp, x)
        else:
            predictor = engine.mlp_predictors[self.layer_index]
            active_blocks = predictor.predict_active_blocks(x.data)
        engine.stats.prediction_seconds += time.perf_counter() - start
        engine.stats.mlp_calls += 1

        n_blocks = -(-mlp.hidden_dim // engine.config.block_size)
        engine.stats.record_mlp_sparsity(1.0 - active_blocks.size / n_blocks)
        self.last_active_blocks = active_blocks

        active_neurons = expand_block_indices(active_blocks, engine.config.block_size,
                                              mlp.hidden_dim)
        cache = self._cache_for(mlp)
        return neuron_sparse_linear_pair(
            x, mlp.fc1.weight, mlp.fc1.bias, mlp.fc2.weight, mlp.fc2.bias,
            active_neurons, activation=mlp.activation_name, cache=cache)


class LongExposure:
    """The LongExposure system: exposer + predictors + dynamic-aware operators."""

    def __init__(self, config: Optional[LongExposureConfig] = None,
                 pattern_pool: Optional[PatternPool] = None):
        self.config = config or LongExposureConfig()
        self.pattern_pool = pattern_pool or build_default_pool()
        self.layout_pool = LayoutPool(self.pattern_pool, self.config.block_size)
        # Derived-geometry memo shared by every sparse attention backend this
        # engine installs; set to None to force per-call recomputation.
        self.geometry_cache: Optional[LayoutGeometryCache] = LayoutGeometryCache()
        self.attention_exposer = AttentionExposer(
            self.pattern_pool, self.config.block_size,
            coverage=self.config.attention_coverage,
            score_threshold=self.config.attention_threshold)
        self.mlp_exposer = MLPExposer(self.config.block_size,
                                      threshold=self.config.mlp_threshold,
                                      min_active_blocks=self.config.min_active_mlp_blocks)
        self.attention_predictors: List[AttentionPredictor] = []
        self.mlp_predictors: List[MLPPredictor] = []
        self.predictor_metrics: Dict[str, List[PredictorMetrics]] = {
            "attention": [], "mlp": []}
        self.stats = EngineStats()
        self._installed_blocks: List = []
        self._prepared = False

    # -- offline preparation -----------------------------------------------------
    def prepare(self, model: CausalLMModel, calibration_batches: Sequence[np.ndarray],
                training_config: Optional[PredictorTrainingConfig] = None,
                seq_lens: Optional[Sequence[int]] = None) -> None:
        """Collect data from the frozen model and train the per-layer predictors.

        Must be called on the backbone *before* PEFT wrapping.  In oracle mode
        only the offline layout pool is constructed (no predictors needed).
        """
        config = self.config
        seq_lens = list(seq_lens or [np.asarray(b).shape[-1] for b in calibration_batches])
        self.layout_pool.construct(seq_lens)

        mlp_enabled = config.optimize_mlp and model.config.activation == "relu"
        if config.oracle_mode:
            self._prepared = True
            return

        training_config = training_config or PredictorTrainingConfig(
            epochs=config.predictor_epochs, lr=config.predictor_lr,
            batch_size=config.predictor_batch, noise_std=config.predictor_noise_std,
            pos_weight=config.predictor_pos_weight, seed=config.seed)

        collected = collect_layer_data(model, calibration_batches)
        self.attention_predictors = []
        self.mlp_predictors = []
        self.predictor_metrics = {"attention": [], "mlp": []}
        for layer_index, data in enumerate(collected):
            merged = data.merged()
            if config.optimize_attention:
                predictor = AttentionPredictor(
                    model.config.dim, model.config.num_heads, config.predictor_rank,
                    config.block_size, self.pattern_pool,
                    threshold=config.attention_threshold,
                    coverage=config.attention_coverage,
                    seed=config.seed + layer_index)
                metrics = train_attention_predictor(
                    predictor, merged["attention_inputs"], merged["attention_probs"],
                    self.attention_exposer, training_config)
                self.attention_predictors.append(predictor)
                self.predictor_metrics["attention"].append(metrics)
            if mlp_enabled:
                predictor = MLPPredictor(
                    model.config.dim, model.config.hidden_dim, config.block_size,
                    min_active_blocks=config.min_active_mlp_blocks,
                    seed=config.seed + 1000 + layer_index)
                metrics = train_mlp_predictor(
                    predictor, merged["mlp_inputs"], merged["mlp_activations"],
                    self.mlp_exposer, training_config)
                self.mlp_predictors.append(predictor)
                self.predictor_metrics["mlp"].append(metrics)
        self._prepared = True

    # -- oracle (exposer-driven) paths ------------------------------------------------
    def oracle_attention_layout(self, module: MultiHeadAttention, q, k,
                                seq_len: int) -> MultiHeadLayout:
        """Exact-mask layout computed from the current Q/K (ablation mode).

        The dense softmax runs every layer of every oracle step (it is what
        the exposer reads), so it reuses the score buffer in place the same
        way the fused kernels do — the masked fill / max-subtract / exp /
        normalise chain allocates no ``(batch, heads, seq, seq)``
        temporaries beyond the matmul output.  Values are identical to the
        previous out-of-place form.
        """
        scale = 1.0 / np.sqrt(module.head_dim)
        scores = np.matmul(q.data, np.swapaxes(k.data, -1, -2))
        scores *= scale
        causal = causal_mask(seq_len)
        np.copyto(scores, np.float32(-1e9), where=~causal)
        scores -= scores.max(axis=-1, keepdims=True)
        np.exp(scores, out=scores)
        np.multiply(scores, causal, out=scores)
        denom = scores.sum(axis=-1, keepdims=True)
        np.maximum(denom, 1e-12, out=denom)
        scores /= denom
        masks, names = self.attention_exposer.head_block_masks(scores)
        return self.layout_pool.combine(list(names), seq_len)

    def oracle_mlp_blocks(self, mlp: MLPBlock, x) -> np.ndarray:
        """Exact active neuron blocks computed from the current input (ablation mode)."""
        pre = x.data.reshape(-1, mlp.dim) @ mlp.fc1.weight.data.T
        pre += mlp.fc1.bias.data
        np.maximum(pre, 0.0, out=pre)
        act = pre.reshape(*x.data.shape[:-1], mlp.hidden_dim)
        return self.mlp_exposer.active_blocks(act)

    # -- backend installation --------------------------------------------------------
    def install(self, model: CausalLMModel) -> None:
        """Swap the dense attention/MLP backends of every block for sparse ones."""
        if not self._prepared:
            raise RuntimeError("call prepare() before install()")
        config = self.config
        mlp_enabled = config.optimize_mlp and model.config.activation == "relu"
        if (config.optimize_attention and not config.oracle_mode
                and len(self.attention_predictors) != len(model.blocks)):
            raise RuntimeError("predictors were prepared for a different model depth")
        self._installed_blocks = []
        for layer_index, block in enumerate(model.blocks):
            attention = _unwrap(block.attention)
            mlp = _unwrap(block.mlp)
            entry = {"attention": attention, "mlp": mlp,
                     "attention_backend": attention.backend, "mlp_backend": mlp.backend}
            if config.optimize_attention:
                attention.backend = SparseAttentionBackend(self, layer_index)
            if mlp_enabled:
                mlp.backend = SparseMLPBackend(self, layer_index)
            self._installed_blocks.append(entry)

    def uninstall(self, model: CausalLMModel) -> None:
        """Restore the dense backends recorded at install time."""
        for entry in self._installed_blocks:
            entry["attention"].backend = entry["attention_backend"]
            entry["mlp"].backend = entry["mlp_backend"]
        self._installed_blocks = []

    # -- reporting -----------------------------------------------------------------
    def mean_predictor_recall(self) -> Dict[str, float]:
        """Average recall of the trained predictors (paper quotes 96.35 % for MLP)."""
        out = {}
        for kind, metrics in self.predictor_metrics.items():
            if metrics:
                out[kind] = float(np.mean([m.recall for m in metrics]))
        return out

    def summary(self) -> str:
        lines = [f"LongExposure(block_size={self.config.block_size}, "
                 f"oracle={self.config.oracle_mode})"]
        recalls = self.mean_predictor_recall()
        for kind, value in recalls.items():
            lines.append(f"  {kind} predictor mean recall: {value:.4f}")
        lines.append(f"  mean attention block sparsity: {self.stats.mean_attention_sparsity():.3f}")
        lines.append(f"  mean MLP block sparsity: {self.stats.mean_mlp_sparsity():.3f}")
        lines.append(f"  prediction overhead: {self.stats.prediction_seconds * 1000:.2f} ms")
        return "\n".join(lines)
