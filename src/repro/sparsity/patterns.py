"""Atomic sparse attention patterns and the offline pattern pool.

Section VI-A of the paper observes that practical sparse-attention masks are
combinations of a small set of *atomic* patterns (sliding window, global
tokens, strides, block diagonal, ...).  LongExposure therefore pre-computes
the block layouts of a pool of atomic patterns offline ("Offline Pool
Construction") and, at runtime, merely looks up the layout of the pattern
predicted for each head and shifts it by the head offset ("Online Pattern
Combination").

A pattern here is a boolean matrix over the *block grid*: entry ``(i, j)``
says whether the block of attention scores covering query block ``i`` and key
block ``j`` is computed.  All patterns are causal (upper-triangular blocks are
never active) because the models are decoder-only.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np


def block_count(seq_len: int, block_size: int) -> int:
    """Number of blocks needed to cover ``seq_len`` (ceil division)."""
    if seq_len <= 0 or block_size <= 0:
        raise ValueError("seq_len and block_size must be positive")
    return -(-seq_len // block_size)


@functools.lru_cache(maxsize=128)
def _cached_causal_block_mask(n_blocks: int) -> np.ndarray:
    mask = np.tril(np.ones((n_blocks, n_blocks), dtype=bool))
    # Shared across every caller at this grid size; freeze it so an
    # accidental in-place edit cannot poison later lookups (callers that
    # combine it always allocate via ``&`` / ``*`` / ``astype``).
    mask.setflags(write=False)
    return mask


def causal_block_mask(n_blocks: int) -> np.ndarray:
    """Full causal block mask (every block on or below the diagonal).

    Cached per grid size and returned read-only: the exposer, the predictors
    and the layout builders all consult it on every mask derivation, and the
    block grids in play at any time form a tiny set.
    """
    return _cached_causal_block_mask(int(n_blocks))


@dataclass(frozen=True)
class AtomicPattern:
    """A named atomic sparse pattern over a causal block grid."""

    name: str
    builder: Callable[[int], np.ndarray]

    def mask(self, n_blocks: int) -> np.ndarray:
        """Boolean block mask of shape ``(n_blocks, n_blocks)`` (causal)."""
        mask = self.builder(n_blocks) & causal_block_mask(n_blocks)
        # The diagonal must always be present: a token always attends to its
        # own block, and removing it would starve the softmax rows.
        np.fill_diagonal(mask, True)
        return mask

    def density(self, n_blocks: int) -> float:
        """Fraction of *causal* blocks that this pattern activates."""
        mask = self.mask(n_blocks)
        causal = causal_block_mask(n_blocks)
        return float(mask.sum() / causal.sum())


# -- atomic pattern builders -------------------------------------------------

def _local(window: int) -> Callable[[int], np.ndarray]:
    def build(n: int) -> np.ndarray:
        idx = np.arange(n)
        return (idx[:, None] - idx[None, :] < window) & (idx[:, None] - idx[None, :] >= 0)
    return build


def _global(width: int) -> Callable[[int], np.ndarray]:
    def build(n: int) -> np.ndarray:
        mask = np.zeros((n, n), dtype=bool)
        w = min(width, n)
        mask[:, :w] = True   # every query attends to the first blocks (sinks)
        mask[:w, :] = True   # the first queries attend broadly
        return mask
    return build


def _strided(stride: int) -> Callable[[int], np.ndarray]:
    def build(n: int) -> np.ndarray:
        idx = np.arange(n)
        return (idx[:, None] - idx[None, :]) % stride == 0
    return build


def _diagonal() -> Callable[[int], np.ndarray]:
    def build(n: int) -> np.ndarray:
        return np.eye(n, dtype=bool)
    return build


def _dense() -> Callable[[int], np.ndarray]:
    def build(n: int) -> np.ndarray:
        return np.ones((n, n), dtype=bool)
    return build


def _combine(*builders: Callable[[int], np.ndarray]) -> Callable[[int], np.ndarray]:
    def build(n: int) -> np.ndarray:
        mask = np.zeros((n, n), dtype=bool)
        for b in builders:
            mask |= b(n)
        return mask
    return build


def build_default_pool(extra: Optional[Sequence[AtomicPattern]] = None) -> "PatternPool":
    """The default atomic pattern pool used by the engine.

    Ordered roughly by density so that pattern matching can pick the cheapest
    pattern that reaches the required coverage.
    """
    patterns = [
        AtomicPattern("diag", _diagonal()),
        AtomicPattern("local2", _local(2)),
        AtomicPattern("local2+global1", _combine(_local(2), _global(1))),
        AtomicPattern("local4", _local(4)),
        AtomicPattern("local4+global1", _combine(_local(4), _global(1))),
        AtomicPattern("strided2+local2", _combine(_strided(2), _local(2))),
        AtomicPattern("local4+global2", _combine(_local(4), _global(2))),
        AtomicPattern("local8+global2", _combine(_local(8), _global(2))),
        AtomicPattern("dense", _dense()),
    ]
    if extra:
        patterns.extend(extra)
    return PatternPool(patterns)


class PatternPool:
    """Pool of atomic patterns with offline-precomputed block layouts.

    ``layout(name, n_blocks)`` returns the ``(rows, cols)`` index arrays of
    the active blocks — the "lookup tables" of Figure 6.  Layouts are cached
    per (pattern, n_blocks) pair, so the expensive index construction happens
    once (offline) and runtime work reduces to a dictionary lookup plus an
    offset shift.
    """

    def __init__(self, patterns: Sequence[AtomicPattern]):
        if not patterns:
            raise ValueError("pattern pool cannot be empty")
        self.patterns: Dict[str, AtomicPattern] = {p.name: p for p in patterns}
        self._ordered: List[AtomicPattern] = sorted(patterns,
                                                    key=lambda p: p.density(16))
        self._layout_cache: Dict[Tuple[str, int], Tuple[np.ndarray, np.ndarray]] = {}
        self._mask_cache: Dict[Tuple[str, int], np.ndarray] = {}
        # n_blocks -> (P, n_blocks²) float64 matrix of the ordered pattern
        # masks, used by the vectorised match_many (one GEMM per call).
        self._mask_matrix_cache: Dict[int, np.ndarray] = {}

    # -- offline construction ---------------------------------------------------
    def precompute(self, n_blocks: int) -> None:
        """Populate the layout cache for every pattern at ``n_blocks``."""
        for name in self.patterns:
            self.layout(name, n_blocks)

    def names(self) -> List[str]:
        return [p.name for p in self._ordered]

    def mask(self, name: str, n_blocks: int) -> np.ndarray:
        key = (name, n_blocks)
        if key not in self._mask_cache:
            self._mask_cache[key] = self.patterns[name].mask(n_blocks)
        return self._mask_cache[key]

    def layout(self, name: str, n_blocks: int) -> Tuple[np.ndarray, np.ndarray]:
        """Active block coordinates ``(rows, cols)`` for a pattern."""
        key = (name, n_blocks)
        if key not in self._layout_cache:
            mask = self.mask(name, n_blocks)
            rows, cols = np.nonzero(mask)
            self._layout_cache[key] = (rows.astype(np.int64), cols.astype(np.int64))
        return self._layout_cache[key]

    def cost(self, name: str, n_blocks: int) -> int:
        """Number of active blocks (proportional to compute cost)."""
        rows, _ = self.layout(name, n_blocks)
        return int(rows.shape[0])

    # -- pattern matching -----------------------------------------------------------
    def match(self, block_scores: np.ndarray, coverage: float = 0.95) -> str:
        """Pick the cheapest atomic pattern covering ``coverage`` of the mass.

        ``block_scores`` is a non-negative ``(n_blocks, n_blocks)`` matrix of
        per-block attention mass (already causal).  The match criterion is
        recall-oriented: the selected pattern must retain at least ``coverage``
        of the total mass; among the patterns that do, the one with the fewest
        active blocks wins.  ``dense`` always qualifies, so the method is
        total.
        """
        block_scores = np.asarray(block_scores, dtype=np.float64)
        if block_scores.ndim != 2 or block_scores.shape[0] != block_scores.shape[1]:
            raise ValueError("block_scores must be a square matrix")
        n_blocks = block_scores.shape[0]
        total = block_scores.sum()
        if total <= 0:
            return self._ordered[0].name
        best_name = "dense"
        for pattern in self._ordered:
            mask = self.mask(pattern.name, n_blocks)
            covered = block_scores[mask].sum() / total
            if covered >= coverage:
                best_name = pattern.name
                break
        return best_name

    def _mask_matrix(self, n_blocks: int) -> np.ndarray:
        """Stacked ``(P, n_blocks²)`` float64 masks in :attr:`_ordered` order."""
        cached = self._mask_matrix_cache.get(n_blocks)
        if cached is None:
            cached = np.stack([
                self.mask(p.name, n_blocks).reshape(-1).astype(np.float64)
                for p in self._ordered])
            self._mask_matrix_cache[n_blocks] = cached
        return cached

    def snap_masks(self, masks: np.ndarray, coverage: float = 0.95) -> List[str]:
        """Snap binary per-head block masks onto the nearest pool patterns.

        ``masks`` is boolean with shape ``(heads, n_blocks, n_blocks)``.  For
        every head the cheapest pattern retaining at least ``coverage`` of the
        mask's active blocks is selected — :meth:`match` semantics with the
        thresholded mask itself as the mass, which is how the calibrated
        predictors recover the oracle's structured layouts from free-form
        thresholded masks.  ``dense`` is a superset of every causal mask, so
        snapping is total: the result always names a pool pattern and the
        returned patterns are causal with a guaranteed diagonal (the pool
        enforces both), whatever the input mask looked like.
        """
        masks = np.asarray(masks)
        if masks.ndim != 3 or masks.shape[-1] != masks.shape[-2]:
            raise ValueError("masks must have shape (heads, n, n)")
        return self.match_many(masks.astype(np.float64), coverage=coverage)

    def match_many(self, block_scores: np.ndarray, coverage: float = 0.95) -> List[str]:
        """Vector version of :meth:`match` over the leading (head) dimension.

        All heads are matched against all patterns with a single
        ``(heads, n_blocks²) @ (n_blocks², P)`` product instead of the scalar
        per-head, per-pattern masked sums — the matcher runs once per layer
        per refresh inside the fine-tuning hot loop, and the Python
        double-loop used to dominate its cost.  Selection semantics are those
        of :meth:`match`: the first pattern in density order retaining
        ``coverage`` of the head's mass wins.
        """
        block_scores = np.asarray(block_scores, dtype=np.float64)
        if block_scores.ndim != 3 or block_scores.shape[-1] != block_scores.shape[-2]:
            raise ValueError("block_scores must have shape (heads, n, n)")
        n_heads, n_blocks, _ = block_scores.shape
        flat = block_scores.reshape(n_heads, -1)
        covered = flat @ self._mask_matrix(n_blocks).T          # (heads, P)
        totals = flat.sum(axis=1)
        qualifies = covered >= coverage * totals[:, None]
        first = np.argmax(qualifies, axis=1)
        names: List[str] = []
        for head in range(n_heads):
            if totals[head] <= 0:
                names.append(self._ordered[0].name)
            elif qualifies[head, first[head]]:
                names.append(self._ordered[first[head]].name)
            else:
                names.append("dense")
        return names
