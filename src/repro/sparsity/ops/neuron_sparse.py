"""Neuron-centric sparse MLP operators (paper Section VI-B).

The ReLU sparsity of an OPT MLP block is column/row structured: if a hidden
neuron is inactive for the whole (filtered) sequence, the corresponding
*column* of the first linear layer and *row* of the second linear layer can
be skipped entirely, in the forward and in the backward pass.

Two ideas from the paper are realised here:

* **Neuron sparsity** — :func:`neuron_sparse_linear_pair` accepts the indices
  of the active neurons and gathers only those weight slices before running
  otherwise-standard (tiled, BLAS-backed) matmuls; no sparse data format or
  conversion is involved, matching the "inherently compatible with the
  conventional tiling algorithm" claim.
* **Memory coalescing** — the weights of the two linear layers are accessed
  neuron-wise along different axes (columns of fc1's ``(hidden, d)`` matrix
  are its *rows* in our PyTorch-style layout; fc2's ``(d, hidden)`` matrix is
  accessed along *columns*).  :class:`NeuronSparseWeights` keeps a transposed
  contiguous copy of fc2 so both gathers are contiguous row gathers.  This is
  valid during PEFT because the backbone weights are frozen; the cache is
  invalidated explicitly if they change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.tensor import Tensor
from repro.tensor import arena as _arena
from repro.tensor import plan as _plan
from repro.tensor.tensor import custom_op


def expand_block_indices(active_blocks: np.ndarray, block_size: int,
                         hidden_dim: int) -> np.ndarray:
    """Expand active neuron-block indices to sorted neuron indices."""
    active_blocks = np.asarray(active_blocks, dtype=np.int64)
    if active_blocks.size == 0:
        return np.zeros(0, dtype=np.int64)
    offsets = np.arange(block_size, dtype=np.int64)
    neurons = (active_blocks[:, None] * block_size + offsets[None, :]).reshape(-1)
    neurons = neurons[neurons < hidden_dim]
    return np.sort(neurons)


@dataclass
class NeuronSparseWeights:
    """Cached, coalescing-friendly views of a frozen MLP's weights.

    ``fc1_weight`` is stored ``(hidden, d)`` so gathering active neurons is a
    contiguous row gather already; ``fc2_weight`` is ``(d, hidden)`` so we
    keep ``fc2_weight_t`` = its transpose, C-contiguous, and gather rows of
    that instead of strided columns.
    """

    fc1_weight: np.ndarray
    fc2_weight: np.ndarray
    coalesced: bool = True
    fc2_weight_t: Optional[np.ndarray] = field(default=None, repr=False)
    _fc2_version: int = 0

    def __post_init__(self):
        if self.coalesced:
            self.refresh()

    def refresh(self) -> None:
        """Rebuild the transposed copy (call if the frozen weights changed)."""
        self.fc2_weight_t = np.ascontiguousarray(self.fc2_weight.T)
        self._fc2_version += 1

    def gather(self, active: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return (fc1_active, fc2_active_t) slices for the active neurons.

        ``fc1_active`` has shape ``(n_active, d)``; ``fc2_active_t`` has shape
        ``(n_active, d)`` — i.e. already transposed so the second matmul is
        ``hidden_activations @ fc2_active_t``.
        """
        n_active = active.shape[0]
        fc1_active = np.take(self.fc1_weight, active, axis=0, mode="clip",
                             out=_arena.empty((n_active, self.fc1_weight.shape[1]),
                                              self.fc1_weight.dtype))
        if self.coalesced and self.fc2_weight_t is not None:
            fc2_active_t = np.take(self.fc2_weight_t, active, axis=0, mode="clip",
                                   out=_arena.empty(
                                       (n_active, self.fc2_weight_t.shape[1]),
                                       self.fc2_weight_t.dtype))
        else:
            fc2_active_t = self.fc2_weight[:, active].T
        return fc1_active, fc2_active_t


def neuron_sparse_matmul(x: np.ndarray, weight: np.ndarray,
                         active: np.ndarray, axis: int = 0) -> np.ndarray:
    """Standalone neuron-sparse matmul used by the operator micro-benchmarks.

    ``axis=0`` treats rows of ``weight`` as neurons (fc1-style: returns
    ``x @ weight[active].T``); ``axis=1`` treats columns as neurons
    (fc2-style: returns ``x[..., :len(active)] @ weight[:, active].T`` — the
    caller supplies activations already restricted to the active neurons).
    """
    active = np.asarray(active, dtype=np.int64)
    if axis == 0:
        return np.matmul(x, weight[active].T)
    if axis == 1:
        return np.matmul(x, weight[:, active].T)
    raise ValueError("axis must be 0 or 1")


def neuron_sparse_linear_pair(x: Tensor,
                              fc1_weight: Tensor, fc1_bias: Tensor,
                              fc2_weight: Tensor, fc2_bias: Tensor,
                              active_neurons: np.ndarray,
                              activation: str = "relu",
                              cache: Optional[NeuronSparseWeights] = None) -> Tensor:
    """Sparse execution of ``fc2(act(fc1(x)))`` restricted to active neurons.

    Parameters
    ----------
    x:
        Input of shape ``(batch, seq, d)``.
    fc1_weight, fc1_bias, fc2_weight, fc2_bias:
        The MLP parameters (PyTorch layouts: fc1 ``(hidden, d)``, fc2
        ``(d, hidden)``).
    active_neurons:
        Sorted integer indices of the hidden neurons to compute.
    activation:
        ``"relu"`` (the only activation with exact zeros; GeLU models do not
        use this path).
    cache:
        Optional :class:`NeuronSparseWeights` holding coalescing-friendly
        copies of the frozen weights.

    The custom backward produces gradients only for the active columns/rows
    of the weight matrices (zeros elsewhere), for the active bias entries and
    for ``x`` — inactive neurons are excluded from gradient work exactly as
    derived in the paper's Section II-D.
    """
    active = np.asarray(active_neurons, dtype=np.int64)
    if active.size == 0:
        raise ValueError("neuron_sparse_linear_pair requires at least one active neuron")
    if activation != "relu":
        raise ValueError("neuron-sparse MLP execution requires a ReLU activation")

    x_data = x.data
    batch_shape = x_data.shape[:-1]
    d_model = x_data.shape[-1]
    hidden_dim = fc1_weight.data.shape[0]

    rec = _plan._RECORDER
    if rec is not None and not x_data.flags.c_contiguous:
        # ``reshape`` below would copy per call — no stable replay form.
        rec.fail("neuron-sparse MLP over a non-contiguous activation")
        rec = None
    if rec is not None and any(t.requires_grad for t in
                               (fc1_weight, fc1_bias, fc2_weight, fc2_bias)):
        # The replay thunk closes over weight gathers copied at record time;
        # trainable base weights (full fine-tuning / oracle studies) would go
        # stale after the first optimizer step.  The compiled regime is PEFT
        # with a frozen base — degrade to the backward-only replay here.
        rec.fail("neuron-sparse MLP with trainable base weights")
        rec = None

    x2d = x_data.reshape(-1, d_model)
    n_rows = x2d.shape[0]
    n_active = active.shape[0]

    if rec is not None:
        # Recorded form: the active-neuron set and the frozen weights are
        # constant for the plan's lifetime (a layout change invalidates the
        # whole plan), so the weight gathers happen once here at record time
        # and the replay thunk runs only the two matmuls + ReLU over
        # plan-owned buffers.
        fc1_active = fc1_weight.data[active]
        if cache is not None and cache.coalesced and cache.fc2_weight_t is not None:
            fc2_active_t = cache.fc2_weight_t[active]
        else:
            fc2_active_t = fc2_weight.data[:, active].T
        b1_active = fc1_bias.data[active]
        fc1_active_T = fc1_active.T
        fc2_b = fc2_bias.data
        pre = np.empty((n_rows, n_active), x2d.dtype)
        act_mask = np.empty((n_rows, n_active), bool)
        hidden = np.empty((n_rows, n_active), x2d.dtype)
        out2d = np.empty((n_rows, d_model), x2d.dtype)

        def run():
            # nonlocal: the += are in-place ufunc calls rebinding the names
            # to the very same buffers — keep them free variables.
            nonlocal pre, out2d
            np.matmul(x2d, fc1_active_T, out=pre)
            pre += b1_active
            np.greater(pre, 0, out=act_mask)
            np.multiply(pre, act_mask, out=hidden)
            np.matmul(hidden, fc2_active_t, out=out2d)
            out2d += fc2_b

        run()
        rec.record(run, (x_data,), (pre, act_mask, hidden, out2d),
                   tag="neuron_sparse_mlp")
    else:
        if cache is not None:
            fc1_active, fc2_active_t = cache.gather(active)
        else:
            fc1_active = fc1_weight.data[active]
            fc2_active_t = fc2_weight.data[:, active].T
        b1_active = fc1_bias.data[active]
        pre = np.matmul(x2d, fc1_active.T,
                        out=_arena.empty((n_rows, n_active), x2d.dtype))
        pre += b1_active
        act_mask = pre > 0
        hidden = np.multiply(pre, act_mask,
                             out=_arena.empty((n_rows, n_active), pre.dtype))
        _arena.release(pre)
        out2d = np.matmul(hidden, fc2_active_t,
                          out=_arena.empty((n_rows, d_model), hidden.dtype))
        out2d += fc2_bias.data
    out = out2d.reshape(*batch_shape, d_model)

    def backward(grad_out: np.ndarray):
        # Gradients are produced only for the parents that will consume them:
        # during PEFT fine-tuning the backbone fc1/fc2 are frozen, so their
        # (hidden, d)-sized zero fills and scatter matmuls are dead work the
        # autograd loop would discard anyway.
        grad2d = grad_out.reshape(-1, d_model)
        grad_fc2_bias = grad2d.sum(axis=0) if fc2_bias.requires_grad else None
        grad_fc2 = None
        if fc2_weight.requires_grad:
            # Only active rows of the (hidden, d) transposed view, i.e.
            # active columns of the (d, hidden) weight.
            grad_fc2_active = hidden.T @ grad2d              # (n_active, d)
            grad_fc2 = _arena.zeros(fc2_weight.shape, fc2_weight.data.dtype)
            grad_fc2[:, active] = grad_fc2_active.T
        # Through the activation.
        grad_hidden = np.matmul(grad2d, fc2_active_t.T,
                                out=_arena.empty((n_rows, n_active), grad2d.dtype))
        grad_hidden *= act_mask                               # (N, n_active)
        grad_fc1 = grad_b1 = None
        if fc1_weight.requires_grad:
            grad_fc1_active = grad_hidden.T @ x2d             # (n_active, d)
            grad_fc1 = _arena.zeros(fc1_weight.shape, fc1_weight.data.dtype)
            grad_fc1[active] = grad_fc1_active
        if fc1_bias.requires_grad:
            grad_b1 = _arena.zeros(fc1_bias.shape, fc1_bias.data.dtype)
            grad_b1[active] = grad_hidden.sum(axis=0)
        # Input gradient.
        grad_x = np.matmul(grad_hidden, fc1_active,
                           out=_arena.empty((n_rows, d_model), grad_hidden.dtype)
                           ).reshape(x_data.shape)
        _arena.release(grad_hidden, hidden, fc1_active, fc2_active_t)
        return grad_x, grad_fc1, grad_b1, grad_fc2, grad_fc2_bias

    return custom_op(out, (x, fc1_weight, fc1_bias, fc2_weight, fc2_bias), backward)
