"""Block layouts for multi-head block-sparse attention.

This module implements the two-stage approach of the paper's Figure 6:

* **Offline pool construction** — :class:`LayoutPool` pre-computes, for every
  atomic pattern and block-grid size, the flat index arrays describing which
  score blocks are active ("lookup tables").  This happens once, before
  fine-tuning starts.
* **Online pattern combination** — :meth:`LayoutPool.combine` takes the list
  of per-head pattern names chosen by the predictor for the current batch and
  assembles a :class:`MultiHeadLayout` by concatenating the cached per-pattern
  tables and adding the per-head offset.  The combination is a handful of
  NumPy concatenations and an ``argsort`` — no per-block Python work — so the
  dynamic nature of the sparse patterns does not reintroduce the indexing
  cost that was moved offline.

The layout is sorted by ``(head, query_row_block)`` and carries the row-
segment boundaries needed by the block-sparse softmax (``np.*.reduceat``
works on contiguous segments), as well as everything the backward pass needs
to scatter gradients back.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sparsity.patterns import PatternPool, block_count, causal_block_mask


@dataclass
class MultiHeadLayout:
    """Flattened description of the active blocks of all attention heads.

    Attributes
    ----------
    n_heads, n_blocks, block_size:
        Geometry of the block grid.
    heads, rows, cols:
        1-D int arrays of equal length ``nnz`` listing the active blocks,
        sorted by ``(head, row, col)``.
    row_segment_starts:
        Start offsets (into the ``nnz`` axis) of each contiguous
        ``(head, row)`` group — the unit over which the sparse softmax
        normalises.
    pattern_names:
        The per-head atomic pattern names this layout was combined from
        (empty for custom masks).
    """

    n_heads: int
    n_blocks: int
    block_size: int
    heads: np.ndarray
    rows: np.ndarray
    cols: np.ndarray
    row_segment_starts: np.ndarray
    pattern_names: Tuple[str, ...] = ()
    # Lazily-computed column-sorted view used by the backward pass to turn the
    # (head, key-column) gradient scatter into a contiguous segmented reduce.
    _col_geometry: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = None
    # Lazily-computed content signature (see signature()).
    _signature: Optional[Tuple] = None

    @property
    def nnz(self) -> int:
        """Number of active blocks across all heads."""
        return int(self.heads.shape[0])

    def signature(self) -> Tuple:
        """Hashable content signature identifying this layout's active blocks.

        Two layouts with the same geometry and active-block set produce the
        same signature even when they are distinct objects (e.g. built by
        ``layout_from_block_masks`` on different steps), which is what lets
        :class:`~repro.sparsity.ops.geometry_cache.LayoutGeometryCache` share
        derived geometry across them.  Computed once and memoized; the index
        arrays are treated as immutable after construction.
        """
        if self._signature is None:
            object.__setattr__(self, "_signature", (
                self.n_heads, self.n_blocks, self.block_size,
                self.heads.tobytes(), self.rows.tobytes(), self.cols.tobytes(),
            ))
        return self._signature

    def col_geometry(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(permutation, segment starts, segment heads, segment cols).

        Sorting the active blocks by ``(head, col)`` lets the backward pass
        accumulate the dK / dV contributions of each key block with
        ``np.add.reduceat`` instead of a slow element-wise ``np.add.at``
        scatter.  Computed once per layout and cached (layouts themselves are
        cached by the layout pool, so this is effectively offline work).
        """
        if self._col_geometry is None:
            order = np.lexsort((self.rows, self.cols, self.heads))
            heads_sorted = self.heads[order]
            cols_sorted = self.cols[order]
            keys = heads_sorted.astype(np.int64) * self.n_blocks + cols_sorted
            change = np.empty(keys.shape[0], dtype=bool)
            if keys.shape[0]:
                change[0] = True
                change[1:] = keys[1:] != keys[:-1]
            starts = np.nonzero(change)[0].astype(np.int64)
            object.__setattr__(self, "_col_geometry",
                               (order, starts, heads_sorted[starts], cols_sorted[starts]))
        return self._col_geometry

    @property
    def total_causal_blocks(self) -> int:
        """Number of blocks a dense causal computation would touch."""
        return int(self.n_heads * (self.n_blocks * (self.n_blocks + 1)) // 2)

    def density(self) -> float:
        """Active fraction of the causal block grid (1.0 = dense)."""
        return self.nnz / max(self.total_causal_blocks, 1)

    def sparsity(self) -> float:
        """1 - density: fraction of causal blocks skipped."""
        return 1.0 - self.density()

    def head_mask(self, head: int) -> np.ndarray:
        """Boolean block mask of a single head (for inspection / tests)."""
        mask = np.zeros((self.n_blocks, self.n_blocks), dtype=bool)
        sel = self.heads == head
        mask[self.rows[sel], self.cols[sel]] = True
        return mask

    def to_dense_mask(self, seq_len: int) -> np.ndarray:
        """Expand to an element-level boolean mask ``(heads, seq, seq)``."""
        bs = self.block_size
        mask = np.zeros((self.n_heads, self.n_blocks * bs, self.n_blocks * bs), dtype=bool)
        for h, r, c in zip(self.heads, self.rows, self.cols):
            mask[h, r * bs:(r + 1) * bs, c * bs:(c + 1) * bs] = True
        # Element-level causality inside diagonal blocks.
        causal = np.tril(np.ones((seq_len, seq_len), dtype=bool))
        return mask[:, :seq_len, :seq_len] & causal


def _sort_layout(heads: np.ndarray, rows: np.ndarray, cols: np.ndarray
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    order = np.lexsort((cols, rows, heads))
    return heads[order], rows[order], cols[order]


def _row_segments(heads: np.ndarray, rows: np.ndarray, n_blocks: int) -> np.ndarray:
    """Start indices of each contiguous (head, row) group in a sorted layout."""
    if heads.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    keys = heads.astype(np.int64) * n_blocks + rows.astype(np.int64)
    change = np.empty(keys.shape[0], dtype=bool)
    change[0] = True
    change[1:] = keys[1:] != keys[:-1]
    return np.nonzero(change)[0].astype(np.int64)


def layout_from_block_masks(block_masks: np.ndarray, block_size: int,
                            pattern_names: Tuple[str, ...] = ()) -> MultiHeadLayout:
    """Build a layout directly from per-head boolean block masks.

    ``block_masks`` has shape ``(heads, n_blocks, n_blocks)``.  Used by oracle
    mode, the baselines (Longformer / BigBird / shadowy) and the tests; the
    production path goes through :class:`LayoutPool.combine`.
    """
    block_masks = np.asarray(block_masks, dtype=bool)
    if block_masks.ndim != 3:
        raise ValueError("block_masks must have shape (heads, n_blocks, n_blocks)")
    n_heads, n_blocks, _ = block_masks.shape
    causal = causal_block_mask(n_blocks)
    block_masks = block_masks & causal
    # Guarantee the diagonal so no softmax row is empty.
    diag = np.eye(n_blocks, dtype=bool)
    block_masks = block_masks | diag[None, :, :]
    heads, rows, cols = np.nonzero(block_masks)
    heads, rows, cols = _sort_layout(heads.astype(np.int64), rows.astype(np.int64),
                                     cols.astype(np.int64))
    return MultiHeadLayout(
        n_heads=n_heads, n_blocks=n_blocks, block_size=block_size,
        heads=heads, rows=rows, cols=cols,
        row_segment_starts=_row_segments(heads, rows, n_blocks),
        pattern_names=pattern_names,
    )


class LayoutPool:
    """Offline-constructed pool of per-pattern layouts with online combination.

    ``combined_cache_size`` bounds the LRU of combined multi-head layouts:
    repeated predicted pattern combinations (the common fine-tuning case —
    the predictor draws from a small atomic pool) are pure cache hits, while
    a pathological stream of never-repeating combinations cannot grow memory
    without limit.
    """

    def __init__(self, pattern_pool: PatternPool, block_size: int,
                 combined_cache_size: int = 256):
        if combined_cache_size <= 0:
            raise ValueError("combined_cache_size must be positive")
        self.pattern_pool = pattern_pool
        self.block_size = block_size
        self.combined_cache_size = combined_cache_size
        # (pattern name, n_blocks) -> sorted (rows, cols) with row segments
        self._tables: Dict[Tuple[str, int], Tuple[np.ndarray, np.ndarray]] = {}
        self._combined_cache: "OrderedDict[Tuple[int, Tuple[str, ...]], MultiHeadLayout]" = OrderedDict()
        self.combine_hits = 0
        self.combine_misses = 0

    # -- offline ------------------------------------------------------------------
    def construct(self, seq_lens: Sequence[int]) -> None:
        """Pre-compute lookup tables for every pattern at the given sequence lengths."""
        for seq_len in seq_lens:
            n_blocks = block_count(seq_len, self.block_size)
            for name in self.pattern_pool.names():
                self._table(name, n_blocks)

    def _table(self, name: str, n_blocks: int) -> Tuple[np.ndarray, np.ndarray]:
        key = (name, n_blocks)
        if key not in self._tables:
            rows, cols = self.pattern_pool.layout(name, n_blocks)
            order = np.lexsort((cols, rows))
            self._tables[key] = (rows[order], cols[order])
        return self._tables[key]

    def table_count(self) -> int:
        """Number of cached per-pattern lookup tables (for tests/inspection)."""
        return len(self._tables)

    # -- online -------------------------------------------------------------------
    def combine(self, head_patterns: Sequence[str], seq_len: int) -> MultiHeadLayout:
        """Combine per-head pattern names into a multi-head layout.

        Only an offset shift and concatenation happen here; the per-pattern
        index arrays come from the offline tables.  Combined layouts are
        cached by the tuple of pattern names, so repeated batches with the
        same predicted patterns pay nothing.
        """
        names = tuple(head_patterns)
        n_blocks = block_count(seq_len, self.block_size)
        cache_key = (n_blocks, names)
        cached = self._combined_cache.get(cache_key)
        if cached is not None:
            self.combine_hits += 1
            self._combined_cache.move_to_end(cache_key)
            return cached
        self.combine_misses += 1

        heads_list: List[np.ndarray] = []
        rows_list: List[np.ndarray] = []
        cols_list: List[np.ndarray] = []
        for head, name in enumerate(names):
            rows, cols = self._table(name, n_blocks)
            heads_list.append(np.full(rows.shape[0], head, dtype=np.int64))
            rows_list.append(rows)
            cols_list.append(cols)
        heads = np.concatenate(heads_list)
        rows = np.concatenate(rows_list)
        cols = np.concatenate(cols_list)
        # Per-pattern tables are already (row, col) sorted and heads are
        # appended in order, so the concatenation is already (head, row, col)
        # sorted — no argsort needed on the hot path.
        layout = MultiHeadLayout(
            n_heads=len(names), n_blocks=n_blocks, block_size=self.block_size,
            heads=heads, rows=rows, cols=cols,
            row_segment_starts=_row_segments(heads, rows, n_blocks),
            pattern_names=names,
        )
        self._combined_cache[cache_key] = layout
        if len(self._combined_cache) > self.combined_cache_size:
            self._combined_cache.popitem(last=False)
        return layout

    def dense_layout(self, n_heads: int, seq_len: int) -> MultiHeadLayout:
        """Layout equivalent to dense causal attention (for reference runs)."""
        return self.combine(["dense"] * n_heads, seq_len)
