"""Dynamic-aware sparse operators (paper Section VI).

Two families of kernels:

* block-sparse attention (:mod:`repro.sparsity.ops.block_sparse`) — the SDD
  (sparse = dense x dense) score computation and DSD (dense = sparse x dense)
  context computation over the blocks selected by per-head masks, driven by
  :class:`repro.sparsity.ops.layout.MultiHeadLayout` which implements the
  offline lookup-table pool and online per-head combination of Figure 6;
* neuron-sparse MLP (:mod:`repro.sparsity.ops.neuron_sparse`) — column/row
  gathered matrix multiplications that only load the neuron blocks predicted
  active, with an optional transposed ("coalesced") weight layout mirroring
  the paper's memory-coalescing optimisation.

The index geometry the block-sparse kernels derive from a layout (softmax
segment boundaries, per-block element masks, the column-sorted backward
permutation) is memoized by
:class:`repro.sparsity.ops.geometry_cache.LayoutGeometryCache`, keyed by
layout content — repeated predicted patterns across fine-tuning steps pay
the index-construction cost once.

All operators register fused custom backwards, so skipping a block in the
forward pass also skips its gradient work — the property derived in the
paper's Section II-D.
"""

from repro.sparsity.ops.layout import LayoutPool, MultiHeadLayout
from repro.sparsity.ops.geometry_cache import (
    BlockGeometry,
    LayoutGeometryCache,
    compute_block_geometry,
)
from repro.sparsity.ops.block_sparse import (
    BlockSparseMatrix,
    block_sparse_attention,
    block_sparse_sdd,
    block_sparse_dsd,
    dense_attention_reference,
)
from repro.sparsity.ops.neuron_sparse import (
    NeuronSparseWeights,
    neuron_sparse_linear_pair,
    neuron_sparse_matmul,
)

__all__ = [
    "LayoutPool",
    "MultiHeadLayout",
    "BlockGeometry",
    "LayoutGeometryCache",
    "compute_block_geometry",
    "BlockSparseMatrix",
    "block_sparse_attention",
    "block_sparse_sdd",
    "block_sparse_dsd",
    "dense_attention_reference",
    "NeuronSparseWeights",
    "neuron_sparse_linear_pair",
    "neuron_sparse_matmul",
]
