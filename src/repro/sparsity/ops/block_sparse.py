"""Block-sparse attention operators (SDD / DSD) and the fused training op.

The attention computation under a per-head block mask decomposes into two
sparse matrix multiplications (paper Section VI-A):

* **SDD** (``sparse = dense x dense``): only the score blocks listed in the
  layout are computed from Q and K;
* **DSD** (``dense = sparse x dense``): the sparse probability blocks are
  multiplied with V to produce the dense context.

Both are implemented as *block-gathered batched matmuls*: the active blocks
of Q/K/V are gathered with fancy indexing into a ``(batch, nnz, block, ·)``
stack and a single ``np.matmul`` call processes all of them, so the per-block
work is done by BLAS and the Python overhead is independent of the number of
blocks.  The row-wise softmax across blocks of the same query row uses
``np.maximum.reduceat`` / ``np.add.reduceat`` over the (head, row)-sorted
layout, which is why :class:`~repro.sparsity.ops.layout.MultiHeadLayout`
guarantees that ordering.

:1func:`block_sparse_attention` is the fused autograd op used during
fine-tuning: its custom backward touches exactly the same blocks as the
forward, realising the paper's observation that inactive positions drop out
of the gradient computation as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.sparsity.ops.geometry_cache import (
    LayoutGeometryCache,
    block_element_mask,
    compute_block_geometry,
    segment_geometry,
)
from repro.sparsity.ops.layout import MultiHeadLayout
from repro.tensor import Tensor
from repro.tensor import fused as _fused
from repro.tensor import reference as _reference
from repro.tensor.tensor import custom_op

_NEG_INF = np.float32(-1e9)

# Backwards-compatible aliases: the geometry helpers moved to
# repro.sparsity.ops.geometry_cache so they can be memoized per layout.
_segment_geometry = segment_geometry
_block_element_mask = block_element_mask


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------

def _pad_to_blocks(x: np.ndarray, block_size: int, axis: int) -> np.ndarray:
    """Zero-pad ``x`` along ``axis`` so its length is a block multiple."""
    length = x.shape[axis]
    remainder = length % block_size
    if remainder == 0:
        return x
    pad = [(0, 0)] * x.ndim
    pad[axis] = (0, block_size - remainder)
    return np.pad(x, pad)


def _blockify(x: np.ndarray, block_size: int) -> np.ndarray:
    """(batch, heads, seq, dim) -> (batch, heads, n_blocks, block, dim)."""
    batch, heads, seq, dim = x.shape
    n_blocks = seq // block_size
    return x.reshape(batch, heads, n_blocks, block_size, dim)


# ---------------------------------------------------------------------------
# standalone SDD / DSD kernels (numpy level, used by the operator benchmarks)
# ---------------------------------------------------------------------------

@dataclass
class BlockSparseMatrix:
    """Blocks of a sparse (batch, heads, seq, seq) matrix plus their layout."""

    data: np.ndarray            # (batch, nnz, block, block)
    layout: MultiHeadLayout
    seq_len: int

    def to_dense(self) -> np.ndarray:
        """Materialise the dense (batch, heads, seq, seq) matrix (tests only)."""
        bs = self.layout.block_size
        batch = self.data.shape[0]
        full = self.layout.n_blocks * bs
        dense = np.zeros((batch, self.layout.n_heads, full, full), dtype=self.data.dtype)
        for idx, (h, r, c) in enumerate(zip(self.layout.heads, self.layout.rows,
                                            self.layout.cols)):
            dense[:, h, r * bs:(r + 1) * bs, c * bs:(c + 1) * bs] = self.data[:, idx]
        return dense[:, :, :self.seq_len, :self.seq_len]


def block_sparse_sdd(q: np.ndarray, k: np.ndarray, layout: MultiHeadLayout,
                     scale: float = 1.0) -> BlockSparseMatrix:
    """Compute only the active blocks of ``Q @ K^T`` (SDD kernel).

    ``q``/``k`` have shape ``(batch, heads, seq, dim)``; the result holds the
    ``(batch, nnz, block, block)`` stack of active score blocks.
    """
    bs = layout.block_size
    seq_len = q.shape[2]
    q_pad = _blockify(_pad_to_blocks(q, bs, axis=2), bs)
    k_pad = _blockify(_pad_to_blocks(k, bs, axis=2), bs)
    q_blk = q_pad[:, layout.heads, layout.rows]                 # (batch, nnz, bs, dim)
    k_blk = k_pad[:, layout.heads, layout.cols]
    scores = np.matmul(q_blk, np.swapaxes(k_blk, -1, -2)) * scale
    return BlockSparseMatrix(data=scores, layout=layout, seq_len=seq_len)


def block_sparse_dsd(blocks: BlockSparseMatrix, v: np.ndarray) -> np.ndarray:
    """Multiply sparse probability blocks with dense ``V`` (DSD kernel).

    Returns the dense context of shape ``(batch, heads, seq, dim)``.
    """
    layout = blocks.layout
    bs = layout.block_size
    batch, _, seq_len, dim = v.shape
    v_pad = _blockify(_pad_to_blocks(v, bs, axis=2), bs)
    v_blk = v_pad[:, layout.heads, layout.cols]                 # (batch, nnz, bs, dim)
    ctx_blk = np.matmul(blocks.data, v_blk)                     # (batch, nnz, bs, dim)

    starts = layout.row_segment_starts
    _, seg_heads, seg_rows = _segment_geometry(layout)
    ctx_seg = np.add.reduceat(ctx_blk, starts, axis=1)          # (batch, nseg, bs, dim)
    out = np.zeros((batch, layout.n_heads, layout.n_blocks, bs, dim), dtype=v.dtype)
    out[:, seg_heads, seg_rows] = ctx_seg
    return out.reshape(batch, layout.n_heads, layout.n_blocks * bs, dim)[:, :, :seq_len]


def dense_attention_reference(q: np.ndarray, k: np.ndarray, v: np.ndarray,
                              mask: Optional[np.ndarray] = None,
                              scale: Optional[float] = None) -> np.ndarray:
    """Plain dense softmax attention used as the comparison baseline."""
    scale = scale if scale is not None else 1.0 / np.sqrt(q.shape[-1])
    scores = np.matmul(q, np.swapaxes(k, -1, -2)) * scale
    if mask is not None:
        scores = np.where(mask, scores, _NEG_INF)
    scores = scores - scores.max(axis=-1, keepdims=True)
    probs = np.exp(scores)
    if mask is not None:
        probs = probs * mask
    denom = probs.sum(axis=-1, keepdims=True)
    probs = probs / np.where(denom == 0, 1.0, denom)
    return np.matmul(probs, v)


# ---------------------------------------------------------------------------
# fused block-sparse attention (autograd op used during fine-tuning)
# ---------------------------------------------------------------------------

def block_sparse_attention(q: Tensor, k: Tensor, v: Tensor, layout: MultiHeadLayout,
                           scale: Optional[float] = None,
                           cache: Optional[LayoutGeometryCache] = None) -> Tensor:
    """Fused block-sparse ``softmax(QK^T) V`` with a block-sparse backward.

    Parameters
    ----------
    q, k, v:
        Tensors of shape ``(batch, heads, seq, head_dim)``.
    layout:
        Active blocks per head, produced by the layout pool (predicted
        patterns) or from exposer masks (oracle mode).
    scale:
        Score scaling; defaults to ``1/sqrt(head_dim)``.
    cache:
        Optional :class:`~repro.sparsity.ops.geometry_cache.LayoutGeometryCache`.
        When given, the derived index geometry (softmax segments, element
        masks, the column-sorted backward permutation) is looked up instead
        of recomputed — repeated layouts across fine-tuning steps then pay
        zero index-construction cost.  Results are identical either way.

    The softmax normalises over the *union of active blocks in each query
    row*, with causal masking inside diagonal blocks.  The backward pass
    computes gradients for Q, K and V only through the active blocks, so both
    compute and gradient work scale with ``layout.nnz`` rather than with the
    full ``seq²`` score matrix.

    The whole SDD → masked-softmax → DSD chain is one tape node.  Forward and
    backward reuse their big ``(batch, nnz, block, block)`` buffers in place
    (masked fill / exp / normalise all mutate the score buffer; the softmax
    backward mutates the dP buffer), so beyond the block gathers each pass
    owns exactly one score-sized array — the same treatment
    :func:`repro.tensor.fused.scaled_dot_product_attention` gives the dense
    core.  With :func:`repro.tensor.fused.set_fused_kernels` disabled the
    call routes to the primitive-composition twin
    :func:`repro.tensor.reference.block_sparse_attention` instead, so the
    sparse path participates in the same fused/taped A-B switch as the dense
    kernels.
    """
    bs = layout.block_size
    batch, n_heads, seq_len, head_dim = q.shape
    if n_heads != layout.n_heads:
        raise ValueError(f"layout has {layout.n_heads} heads, tensors have {n_heads}")

    if not _fused.fused_kernels_enabled():
        return _reference.block_sparse_attention(q, k, v, layout, scale=scale)

    scale = scale if scale is not None else 1.0 / np.sqrt(head_dim)

    q_pad = _blockify(_pad_to_blocks(q.data, bs, axis=2), bs)
    k_pad = _blockify(_pad_to_blocks(k.data, bs, axis=2), bs)
    v_pad = _blockify(_pad_to_blocks(v.data, bs, axis=2), bs)
    padded_len = layout.n_blocks * bs

    heads, rows, cols = layout.heads, layout.rows, layout.cols
    starts = layout.row_segment_starts
    geom = (cache.lookup(layout, seq_len) if cache is not None
            else compute_block_geometry(layout, seq_len))
    seg_ids, seg_heads, seg_rows = geom.seg_ids, geom.seg_heads, geom.seg_rows

    q_blk = q_pad[:, heads, rows]                                # (batch, nnz, bs, dim)
    k_blk = k_pad[:, heads, cols]
    v_blk = v_pad[:, heads, cols]

    # Scores buffer: scaled, masked, exponentiated and normalised in place —
    # it leaves this block as the probability stack, with no `np.where(...)` /
    # exp / divide temporaries ever materialised.
    scores = np.matmul(q_blk, np.swapaxes(k_blk, -1, -2))
    scores *= scale
    allowed_f32 = geom.element_mask_f32                          # (nnz, bs, bs)
    np.copyto(scores, _NEG_INF, where=geom.neg_element_mask[None])

    # Row-wise softmax across all blocks sharing a (head, query-row) segment.
    block_max = scores.max(axis=-1)                              # (batch, nnz, bs)
    seg_max = np.maximum.reduceat(block_max, starts, axis=1)     # (batch, nseg, bs)
    row_max = seg_max[:, seg_ids]                                # (batch, nnz, bs)
    scores -= row_max[..., None]
    np.exp(scores, out=scores)
    np.multiply(scores, allowed_f32[None], out=scores)
    block_sum = scores.sum(axis=-1)                              # (batch, nnz, bs)
    seg_sum = np.add.reduceat(block_sum, starts, axis=1)
    row_sum = seg_sum[:, seg_ids]                                # fresh gather: safe to fix up in place
    np.copyto(row_sum, 1.0, where=row_sum == 0.0)
    scores /= row_sum[..., None]
    probs = scores                                               # (batch, nnz, bs, bs)

    ctx_blk = np.matmul(probs, v_blk)                            # (batch, nnz, bs, dim)
    ctx_seg = np.add.reduceat(ctx_blk, starts, axis=1)
    out = np.zeros((batch, n_heads, layout.n_blocks, bs, head_dim), dtype=q.data.dtype)
    out[:, seg_heads, seg_rows] = ctx_seg
    out = out.reshape(batch, n_heads, padded_len, head_dim)[:, :, :seq_len]

    n_blocks = layout.n_blocks
    col_order, col_starts = geom.col_order, geom.col_starts
    col_seg_heads, col_seg_cols = geom.col_seg_heads, geom.col_seg_cols

    def _scatter_to_cols(contrib: np.ndarray) -> np.ndarray:
        """Accumulate per-block contributions onto their (head, col) blocks."""
        contrib_sorted = contrib[:, col_order]
        seg = np.add.reduceat(contrib_sorted, col_starts, axis=1)
        out_blocks = np.zeros((batch, n_heads, n_blocks, bs, head_dim), dtype=np.float32)
        out_blocks[:, col_seg_heads, col_seg_cols] = seg
        return out_blocks.reshape(batch, n_heads, padded_len, head_dim)

    def backward(grad_out: np.ndarray):
        grad_out_pad = _blockify(_pad_to_blocks(grad_out, bs, axis=2), bs)
        dout_blk = grad_out_pad[:, heads, rows]                  # (batch, nnz, bs, dim)

        # dV: P^T @ dOut accumulated onto (head, col) blocks.
        dv = _scatter_to_cols(np.matmul(np.swapaxes(probs, -1, -2), dout_blk))

        # dP, then the softmax backward carried out in the same buffer
        # (dS = probs * (dP - inner_row) * scale, written into dP).
        dS = np.matmul(dout_blk, np.swapaxes(v_blk, -1, -2))     # (batch, nnz, bs, bs)
        inner_blk = np.einsum("...ij,...ij->...i", dS, probs)    # (batch, nnz, bs)
        inner_seg = np.add.reduceat(inner_blk, starts, axis=1)
        inner_row = inner_seg[:, seg_ids]
        dS -= inner_row[..., None]
        dS *= probs
        dS *= scale

        # dQ: contributions land on (head, row) blocks — contiguous segments.
        dq_contrib = np.matmul(dS, k_blk)                        # (batch, nnz, bs, dim)
        dq_seg = np.add.reduceat(dq_contrib, starts, axis=1)
        dq = np.zeros((batch, n_heads, n_blocks, bs, head_dim), dtype=np.float32)
        dq[:, seg_heads, seg_rows] = dq_seg
        dq = dq.reshape(batch, n_heads, padded_len, head_dim)

        # dK: dS^T @ Q accumulated onto (head, col) blocks.
        dk = _scatter_to_cols(np.matmul(np.swapaxes(dS, -1, -2), q_blk))

        return (dq[:, :, :seq_len], dk[:, :, :seq_len], dv[:, :, :seq_len])

    return custom_op(out, (q, k, v), backward)
