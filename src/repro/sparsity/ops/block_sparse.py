"""Block-sparse attention operators (SDD / DSD) and the fused training op.

The attention computation under a per-head block mask decomposes into two
sparse matrix multiplications (paper Section VI-A):

* **SDD** (``sparse = dense x dense``): only the score blocks listed in the
  layout are computed from Q and K;
* **DSD** (``dense = sparse x dense``): the sparse probability blocks are
  multiplied with V to produce the dense context.

Both are implemented as *block-gathered batched matmuls*: the active blocks
of Q/K/V are gathered with fancy indexing into a ``(batch, nnz, block, ·)``
stack and a single ``np.matmul`` call processes all of them, so the per-block
work is done by BLAS and the Python overhead is independent of the number of
blocks.  The row-wise softmax across blocks of the same query row uses
:func:`_segment_reduce` (per-segment ``ufunc.reduce`` slabs, a drop-in for
``reduceat``) over the (head, row)-sorted layout, which is why
:class:`~repro.sparsity.ops.layout.MultiHeadLayout` guarantees that ordering.

:1func:`block_sparse_attention` is the fused autograd op used during
fine-tuning: its custom backward touches exactly the same blocks as the
forward, realising the paper's observation that inactive positions drop out
of the gradient computation as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.sparsity.ops.geometry_cache import (
    LayoutGeometryCache,
    block_element_mask,
    compute_block_geometry,
    segment_geometry,
)
from repro.sparsity.ops.layout import MultiHeadLayout
from repro.tensor import Tensor
from repro.tensor import arena as _arena
from repro.tensor import fused as _fused
from repro.tensor import plan as _plan
from repro.tensor import reference as _reference
from repro.tensor.tensor import custom_op

_NEG_INF = np.float32(-1e9)


def _segment_reduce(ufunc, arr: np.ndarray, starts: np.ndarray,
                    out: np.ndarray) -> np.ndarray:
    """Per-segment ``ufunc.reduce`` along axis 1 (replaces ``reduceat``).

    ``ufunc.reduceat`` walks its fast path element by element; a short Python
    loop issuing one contiguous-slab ``ufunc.reduce`` per segment keeps the
    reduction inside NumPy's pairwise SIMD loop instead — measured ~6x
    (``add``) to ~13x (``maximum``) faster at the block-sparse softmax's
    segment shapes, with the per-segment Python overhead amortised over the
    whole ``(batch, ..., block)`` slab.  Edge semantics mirror ``reduceat``:
    a length-1 (or degenerate empty) segment passes ``arr[:, starts[i]]``
    through unchanged.
    """
    n = arr.shape[1]
    n_seg = starts.shape[0]
    for i in range(n_seg):
        s = starts[i]
        e = starts[i + 1] if i + 1 < n_seg else n
        if e - s <= 1:
            np.copyto(out[:, i], arr[:, s])
        else:
            ufunc.reduce(arr[:, s:e], axis=1, out=out[:, i])
    return out

# Backwards-compatible aliases: the geometry helpers moved to
# repro.sparsity.ops.geometry_cache so they can be memoized per layout.
_segment_geometry = segment_geometry
_block_element_mask = block_element_mask


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------

def _pad_to_blocks(x: np.ndarray, block_size: int, axis: int) -> np.ndarray:
    """Zero-pad ``x`` along ``axis`` so its length is a block multiple."""
    length = x.shape[axis]
    remainder = length % block_size
    if remainder == 0:
        return x
    pad = [(0, 0)] * x.ndim
    pad[axis] = (0, block_size - remainder)
    return np.pad(x, pad)


def _blockify(x: np.ndarray, block_size: int) -> np.ndarray:
    """(batch, heads, seq, dim) -> (batch, heads, n_blocks, block, dim)."""
    batch, heads, seq, dim = x.shape
    n_blocks = seq // block_size
    return x.reshape(batch, heads, n_blocks, block_size, dim)


def _blockify_arena(x: np.ndarray, block_size: int) -> np.ndarray:
    """Pad + blockify, routing any reshape copy through the buffer arena.

    Contiguous inputs blockify as a free view (as before); non-contiguous
    inputs (head-transposed Q/K/V) would silently copy inside ``reshape`` —
    that copy lands in a recycled arena buffer instead.  Values identical.
    """
    x = _pad_to_blocks(x, block_size, axis=2)
    batch, heads, seq, dim = x.shape
    n_blocks = seq // block_size
    if x.flags["C_CONTIGUOUS"]:
        return x.reshape(batch, heads, n_blocks, block_size, dim)
    buf = _arena.empty((batch, heads, n_blocks, block_size, dim), x.dtype)
    np.copyto(buf.reshape(batch, heads, seq, dim), x)
    return buf


# ---------------------------------------------------------------------------
# standalone SDD / DSD kernels (numpy level, used by the operator benchmarks)
# ---------------------------------------------------------------------------

@dataclass
class BlockSparseMatrix:
    """Blocks of a sparse (batch, heads, seq, seq) matrix plus their layout."""

    data: np.ndarray            # (batch, nnz, block, block)
    layout: MultiHeadLayout
    seq_len: int

    def to_dense(self) -> np.ndarray:
        """Materialise the dense (batch, heads, seq, seq) matrix (tests only)."""
        bs = self.layout.block_size
        batch = self.data.shape[0]
        full = self.layout.n_blocks * bs
        dense = np.zeros((batch, self.layout.n_heads, full, full), dtype=self.data.dtype)
        for idx, (h, r, c) in enumerate(zip(self.layout.heads, self.layout.rows,
                                            self.layout.cols)):
            dense[:, h, r * bs:(r + 1) * bs, c * bs:(c + 1) * bs] = self.data[:, idx]
        return dense[:, :, :self.seq_len, :self.seq_len]


def block_sparse_sdd(q: np.ndarray, k: np.ndarray, layout: MultiHeadLayout,
                     scale: float = 1.0) -> BlockSparseMatrix:
    """Compute only the active blocks of ``Q @ K^T`` (SDD kernel).

    ``q``/``k`` have shape ``(batch, heads, seq, dim)``; the result holds the
    ``(batch, nnz, block, block)`` stack of active score blocks.
    """
    bs = layout.block_size
    seq_len = q.shape[2]
    q_pad = _blockify(_pad_to_blocks(q, bs, axis=2), bs)
    k_pad = _blockify(_pad_to_blocks(k, bs, axis=2), bs)
    q_blk = q_pad[:, layout.heads, layout.rows]                 # (batch, nnz, bs, dim)
    k_blk = k_pad[:, layout.heads, layout.cols]
    scores = np.matmul(q_blk, np.swapaxes(k_blk, -1, -2)) * scale
    return BlockSparseMatrix(data=scores, layout=layout, seq_len=seq_len)


def block_sparse_dsd(blocks: BlockSparseMatrix, v: np.ndarray) -> np.ndarray:
    """Multiply sparse probability blocks with dense ``V`` (DSD kernel).

    Returns the dense context of shape ``(batch, heads, seq, dim)``.
    """
    layout = blocks.layout
    bs = layout.block_size
    batch, _, seq_len, dim = v.shape
    v_pad = _blockify(_pad_to_blocks(v, bs, axis=2), bs)
    v_blk = v_pad[:, layout.heads, layout.cols]                 # (batch, nnz, bs, dim)
    ctx_blk = np.matmul(blocks.data, v_blk)                     # (batch, nnz, bs, dim)

    starts = layout.row_segment_starts
    _, seg_heads, seg_rows = _segment_geometry(layout)
    ctx_seg = np.add.reduceat(ctx_blk, starts, axis=1)          # (batch, nseg, bs, dim)
    out = np.zeros((batch, layout.n_heads, layout.n_blocks, bs, dim), dtype=v.dtype)
    out[:, seg_heads, seg_rows] = ctx_seg
    return out.reshape(batch, layout.n_heads, layout.n_blocks * bs, dim)[:, :, :seq_len]


def dense_attention_reference(q: np.ndarray, k: np.ndarray, v: np.ndarray,
                              mask: Optional[np.ndarray] = None,
                              scale: Optional[float] = None) -> np.ndarray:
    """Plain dense softmax attention used as the comparison baseline."""
    scale = float(scale) if scale is not None else float(1.0 / np.sqrt(q.shape[-1]))
    scores = np.matmul(q, np.swapaxes(k, -1, -2)) * scale
    if mask is not None:
        scores = np.where(mask, scores, _NEG_INF)
    scores = scores - scores.max(axis=-1, keepdims=True)
    probs = np.exp(scores)
    if mask is not None:
        probs = probs * mask
    denom = probs.sum(axis=-1, keepdims=True)
    probs = probs / _fused.guard_zero_rows(denom)
    return np.matmul(probs, v)


# ---------------------------------------------------------------------------
# fused block-sparse attention (autograd op used during fine-tuning)
# ---------------------------------------------------------------------------

def block_sparse_attention(q: Tensor, k: Tensor, v: Tensor, layout: MultiHeadLayout,
                           scale: Optional[float] = None,
                           cache: Optional[LayoutGeometryCache] = None,
                           streaming: Optional[bool] = None) -> Tensor:
    """Fused block-sparse ``softmax(QK^T) V`` with a block-sparse backward.

    Parameters
    ----------
    q, k, v:
        Tensors of shape ``(batch, heads, seq, head_dim)``.
    layout:
        Active blocks per head, produced by the layout pool (predicted
        patterns) or from exposer masks (oracle mode).
    scale:
        Score scaling; defaults to ``1/sqrt(head_dim)``.
    cache:
        Optional :class:`~repro.sparsity.ops.geometry_cache.LayoutGeometryCache`.
        When given, the derived index geometry (softmax segments, element
        masks, the column-sorted backward permutation) is looked up instead
        of recomputed — repeated layouts across fine-tuning steps then pay
        zero index-construction cost.  Results are identical either way.
    streaming:
        Route through :func:`streaming_block_sparse_attention` (score
        scratch proportional to the number of query-row segments instead of
        the number of active blocks).  ``None`` follows the global
        :func:`repro.tensor.fused.streaming_attention_enabled` switch.

    The softmax normalises over the *union of active blocks in each query
    row*, with causal masking inside diagonal blocks.  The backward pass
    computes gradients for Q, K and V only through the active blocks, so both
    compute and gradient work scale with ``layout.nnz`` rather than with the
    full ``seq²`` score matrix.

    The whole SDD → masked-softmax → DSD chain is one tape node.  Forward and
    backward reuse their big ``(batch, nnz, block, block)`` buffers in place
    (masked fill / exp / normalise all mutate the score buffer; the softmax
    backward mutates the dP buffer), so beyond the block gathers each pass
    owns exactly one score-sized array — the same treatment
    :func:`repro.tensor.fused.scaled_dot_product_attention` gives the dense
    core.  With :func:`repro.tensor.fused.set_fused_kernels` disabled the
    call routes to the primitive-composition twin
    :func:`repro.tensor.reference.block_sparse_attention` instead, so the
    sparse path participates in the same fused/taped A-B switch as the dense
    kernels.
    """
    bs = layout.block_size
    batch, n_heads, seq_len, head_dim = q.shape
    if n_heads != layout.n_heads:
        raise ValueError(f"layout has {layout.n_heads} heads, tensors have {n_heads}")

    if not _fused.fused_kernels_enabled():
        return _reference.block_sparse_attention(q, k, v, layout, scale=scale)
    if streaming is None:
        streaming = _fused.streaming_attention_enabled()
    if streaming:
        return streaming_block_sparse_attention(q, k, v, layout, scale=scale,
                                                cache=cache)

    scale = float(scale) if scale is not None else float(1.0 / np.sqrt(head_dim))
    dtype = q.data.dtype

    padded_len = layout.n_blocks * bs
    heads, rows, cols = layout.heads, layout.rows, layout.cols
    starts = layout.row_segment_starts
    nnz = layout.nnz
    geom = (cache.lookup(layout, seq_len) if cache is not None
            else compute_block_geometry(layout, seq_len))
    seg_ids, seg_heads, seg_rows = geom.seg_ids, geom.seg_heads, geom.seg_rows
    n_blocks = layout.n_blocks
    n_row_segs = seg_heads.shape[0]
    allowed_f32 = geom.element_mask_f32                          # (nnz, bs, bs)

    # Block gathers as linearised ``np.take`` into recycled buffers (values
    # identical to the fancy-indexed ``pad[:, heads, rows]`` form).
    def _gather(pad: np.ndarray, gather_idx: np.ndarray) -> np.ndarray:
        flat = pad.reshape(batch, n_heads * n_blocks, bs, -1)
        return np.take(flat, gather_idx, axis=1, mode="clip",
                       out=_arena.empty((batch, nnz, bs, flat.shape[-1]),
                                        pad.dtype))

    rec = _plan._RECORDER
    if rec is not None and seq_len % bs != 0:
        # Padding allocates per call; no stable replay form — PR-5 fallback.
        rec.fail("block-sparse attention over a padded sequence")
        rec = None
    if rec is not None:
        # Recorded form: the whole SDD -> masked-softmax -> DSD chain over
        # plan-owned buffers, replayed as one entry.  Identical instruction
        # stream to the interpreted branch below — only buffer provenance
        # differs (plain allocations, bound once; the arena must never
        # reclaim plan state).
        q_data, k_data, v_data = q.data, k.data, v.data

        def _stage(x):
            # Contiguous activations blockify as a free, stable view; the
            # head-transposed layout needs a copy refreshed each replay.
            if x.flags["C_CONTIGUOUS"]:
                return x.reshape(batch, n_heads, n_blocks, bs, head_dim), None
            buf = np.empty((batch, n_heads, n_blocks, bs, head_dim), x.dtype)
            return buf, buf.reshape(batch, n_heads, seq_len, head_dim)

        q_pad, q_fill = _stage(q_data)
        k_pad, k_fill = _stage(k_data)
        v_pad, v_fill = _stage(v_data)
        copies = tuple((fill, src) for fill, src in
                       ((q_fill, q_data), (k_fill, k_data), (v_fill, v_data))
                       if fill is not None)
        q_flat = q_pad.reshape(batch, n_heads * n_blocks, bs, head_dim)
        k_flat = k_pad.reshape(batch, n_heads * n_blocks, bs, head_dim)
        v_flat = v_pad.reshape(batch, n_heads * n_blocks, bs, head_dim)
        q_blk = np.empty((batch, nnz, bs, head_dim), dtype)
        k_blk = np.empty((batch, nnz, bs, head_dim), dtype)
        v_blk = np.empty((batch, nnz, bs, head_dim), dtype)
        k_blk_t = np.swapaxes(k_blk, -1, -2)
        scores = np.empty((batch, nnz, bs, bs), dtype)
        block_red = np.empty((batch, nnz, bs), dtype)
        seg_red = np.empty((batch, n_row_segs, bs), dtype)
        row_red = np.empty((batch, nnz, bs), dtype)
        zero_rows = np.empty((batch, nnz, bs), bool)
        ctx_blk = np.empty((batch, nnz, bs, head_dim), dtype)
        ctx_seg = np.empty((batch, n_row_segs, bs, head_dim), dtype)
        out5 = np.empty((batch, n_heads, n_blocks, bs, head_dim), dtype)
        out5_flat = out5.reshape(batch, n_heads * n_blocks, bs, head_dim)
        neg_mask = geom.neg_element_mask[None]
        allowed = allowed_f32[None]
        row_gather, col_gather = geom.row_gather, geom.col_gather
        row_uncovered = geom.row_uncovered

        def run():
            # The augmented assignments below are in-place ufunc calls; the
            # nonlocal keeps ``scores`` a free variable (the rebinding is to
            # the same buffer object every replay).
            nonlocal scores
            for fill, src in copies:
                np.copyto(fill, src)
            np.take(q_flat, row_gather, axis=1, mode="clip", out=q_blk)
            np.take(k_flat, col_gather, axis=1, mode="clip", out=k_blk)
            np.take(v_flat, col_gather, axis=1, mode="clip", out=v_blk)
            np.matmul(q_blk, k_blk_t, out=scores)
            scores *= scale
            np.copyto(scores, _NEG_INF, where=neg_mask)
            scores.max(axis=-1, out=block_red)
            _segment_reduce(np.maximum, block_red, starts, seg_red)
            np.take(seg_red, seg_ids, axis=1, mode="clip", out=row_red)
            scores -= row_red[..., None]
            np.exp(scores, out=scores)
            np.multiply(scores, allowed, out=scores)
            scores.sum(axis=-1, out=block_red)
            _segment_reduce(np.add, block_red, starts, seg_red)
            np.take(seg_red, seg_ids, axis=1, mode="clip", out=row_red)
            _fused.guard_zero_rows(row_red, scratch=zero_rows)
            scores /= row_red[..., None]
            np.matmul(scores, v_blk, out=ctx_blk)
            _segment_reduce(np.add, ctx_blk, starts, ctx_seg)
            out5[:, seg_heads, seg_rows] = ctx_seg
            if row_uncovered.size:
                out5_flat[:, row_uncovered] = 0.0

        run()
        rec.record(run, (q_data, k_data, v_data),
                   (q_pad, k_pad, v_pad, q_blk, k_blk, v_blk, scores,
                    block_red, seg_red, row_red, zero_rows, ctx_blk, ctx_seg,
                    out5),
                   tag="block_sparse_attention")
        probs = scores                                           # (batch, nnz, bs, bs)
        out = out5.reshape(batch, n_heads, padded_len, head_dim)[:, :, :seq_len]
    else:
        q_pad = _blockify_arena(q.data, bs)
        k_pad = _blockify_arena(k.data, bs)
        v_pad = _blockify_arena(v.data, bs)

        q_blk = _gather(q_pad, geom.row_gather)                  # (batch, nnz, bs, dim)
        k_blk = _gather(k_pad, geom.col_gather)
        v_blk = _gather(v_pad, geom.col_gather)
        _arena.release(q_pad, k_pad, v_pad)

        # Scores buffer: scaled, masked, exponentiated and normalised in
        # place — it leaves this block as the probability stack, with no
        # `np.where(...)` / exp / divide temporaries ever materialised.
        scores = np.matmul(q_blk, np.swapaxes(k_blk, -1, -2),
                           out=_arena.empty((batch, nnz, bs, bs), dtype))
        scores *= scale
        np.copyto(scores, _NEG_INF, where=geom.neg_element_mask[None])

        # Row-wise softmax across blocks sharing a (head, query-row) segment.
        block_max = scores.max(axis=-1,
                               out=_arena.empty((batch, nnz, bs), dtype))
        seg_max = _segment_reduce(np.maximum, block_max, starts,
                                  _arena.empty((batch, n_row_segs, bs), dtype))
        row_max = np.take(seg_max, seg_ids, axis=1, mode="clip",
                          out=_arena.empty((batch, nnz, bs), dtype))
        scores -= row_max[..., None]
        _arena.release(block_max, seg_max, row_max)
        np.exp(scores, out=scores)
        np.multiply(scores, allowed_f32[None], out=scores)
        block_sum = scores.sum(axis=-1,
                               out=_arena.empty((batch, nnz, bs), dtype))
        seg_sum = _segment_reduce(np.add, block_sum, starts,
                                  _arena.empty((batch, n_row_segs, bs), dtype))
        row_sum = np.take(seg_sum, seg_ids, axis=1, mode="clip",  # fresh gather: safe to fix up in place
                          out=_arena.empty((batch, nnz, bs), dtype))
        _fused.guard_zero_rows(row_sum)
        scores /= row_sum[..., None]
        _arena.release(block_sum, seg_sum, row_sum)
        probs = scores                                           # (batch, nnz, bs, bs)

    out_shape5 = (batch, n_heads, n_blocks, bs, head_dim)

    def _scatter_to_rows(seg: np.ndarray, buf_dtype) -> np.ndarray:
        """Place (head, row)-segment sums into a full block grid buffer."""
        out_blocks = _arena.empty(out_shape5, buf_dtype)
        out_blocks[:, seg_heads, seg_rows] = seg
        if geom.row_uncovered.size:
            out_blocks.reshape(batch, n_heads * n_blocks, bs, head_dim)[
                :, geom.row_uncovered] = 0.0
        return out_blocks

    if rec is None:
        ctx_blk = np.matmul(probs, v_blk,
                            out=_arena.empty((batch, nnz, bs, head_dim), dtype))
        ctx_seg = _segment_reduce(np.add, ctx_blk, starts,
                                  _arena.empty((batch, n_row_segs, bs, head_dim),
                                               dtype))
        out = _scatter_to_rows(ctx_seg, dtype)
        _arena.release(ctx_blk, ctx_seg)
        out = out.reshape(batch, n_heads, padded_len, head_dim)[:, :, :seq_len]

    col_order, col_starts = geom.col_order, geom.col_starts
    col_seg_heads, col_seg_cols = geom.col_seg_heads, geom.col_seg_cols
    n_col_segs = col_seg_heads.shape[0]

    def _scatter_to_cols(contrib: np.ndarray) -> np.ndarray:
        """Accumulate per-block contributions onto their (head, col) blocks."""
        contrib_sorted = np.take(contrib, col_order, axis=1, mode="clip",
                                 out=_arena.empty(contrib.shape, contrib.dtype))
        seg = _segment_reduce(np.add, contrib_sorted, col_starts,
                              _arena.empty((batch, n_col_segs, bs, head_dim),
                                           np.float32))
        _arena.release(contrib_sorted)
        out_blocks = _arena.empty(out_shape5, np.float32)
        out_blocks[:, col_seg_heads, col_seg_cols] = seg
        if geom.col_uncovered.size:
            out_blocks.reshape(batch, n_heads * n_blocks, bs, head_dim)[
                :, geom.col_uncovered] = 0.0
        _arena.release(seg)
        return out_blocks.reshape(batch, n_heads, padded_len, head_dim)

    def backward(grad_out: np.ndarray):
        grad_out_pad = _blockify_arena(grad_out, bs)
        dout_blk = _gather(grad_out_pad, geom.row_gather)        # (batch, nnz, bs, dim)
        _arena.release(grad_out_pad)

        # dV: P^T @ dOut accumulated onto (head, col) blocks.
        dv_contrib = np.matmul(np.swapaxes(probs, -1, -2), dout_blk,
                               out=_arena.empty((batch, nnz, bs, head_dim), dtype))
        dv = _scatter_to_cols(dv_contrib)
        _arena.release(dv_contrib)

        # dP, then the softmax backward carried out in the same buffer
        # (dS = probs * (dP - inner_row) * scale, written into dP).
        dS = np.matmul(dout_blk, np.swapaxes(v_blk, -1, -2),
                       out=_arena.empty((batch, nnz, bs, bs), dtype))
        _arena.release(dout_blk)
        inner_blk = np.einsum("...ij,...ij->...i", dS, probs,
                              out=_arena.empty((batch, nnz, bs), dtype))
        inner_seg = _segment_reduce(np.add, inner_blk, starts,
                                    _arena.empty((batch, n_row_segs, bs), dtype))
        inner_row = np.take(inner_seg, seg_ids, axis=1, mode="clip",
                            out=_arena.empty((batch, nnz, bs), dtype))
        dS -= inner_row[..., None]
        _arena.release(inner_blk, inner_seg, inner_row)
        dS *= probs
        dS *= scale

        # dQ: contributions land on (head, row) blocks — contiguous segments.
        dq_contrib = np.matmul(dS, k_blk,
                               out=_arena.empty((batch, nnz, bs, head_dim), dtype))
        dq_seg = _segment_reduce(np.add, dq_contrib, starts,
                                 _arena.empty((batch, n_row_segs, bs, head_dim),
                                              np.float32))
        dq = _scatter_to_rows(dq_seg, np.float32)
        _arena.release(dq_contrib, dq_seg)
        dq = dq.reshape(batch, n_heads, padded_len, head_dim)

        # dK: dS^T @ Q accumulated onto (head, col) blocks.
        dk_contrib = np.matmul(np.swapaxes(dS, -1, -2), q_blk,
                               out=_arena.empty((batch, nnz, bs, head_dim), dtype))
        dk = _scatter_to_cols(dk_contrib)
        # The gathered blocks and the probability stack are dead once the
        # three gradients exist; recycling them here lets the next layer's
        # backward run in the very same (cache-hot) buffers.
        _arena.release(dk_contrib, dS, q_blk, k_blk, v_blk, probs)

        return (dq[:, :, :seq_len], dk[:, :, :seq_len], dv[:, :, :seq_len])

    return custom_op(out, (q, k, v), backward)


# ---------------------------------------------------------------------------
# streaming block-sparse attention (prefix-scheduled online softmax)
# ---------------------------------------------------------------------------

def _stream_bs_forward(q_seg, k_stream, v_stream, neg_mask, mask_f32, scale,
                       rounds, s_buf, red, corr, m_buf, lse, zero_rows, pv,
                       acc, out5, out5_flat, seg_heads, seg_rows,
                       row_uncovered):
    """Online-softmax sweep over the stream-ordered active blocks.

    Round ``j`` processes the j-th active block of every live segment; the
    descending-length stream order makes the live set a prefix, so all state
    updates are prefix-slice operations on the ``(batch, nseg, ...)``
    buffers.  Shared verbatim by the recorded thunk and the interpreted path
    (bitwise capture parity).  After the sweep ``lse`` holds the per-row
    logsumexp for the recompute backward and ``acc`` the normalised
    per-segment context blocks.
    """
    m_buf.fill(-np.inf)
    lse.fill(0.0)
    acc.fill(0.0)
    for p, o0, o1 in rounds:
        s = s_buf[:, :p]
        np.matmul(q_seg[:, :p], np.swapaxes(k_stream[:, o0:o1], -1, -2),
                  out=s)
        s *= scale
        np.copyto(s, _NEG_INF, where=neg_mask[None, o0:o1])
        s.max(axis=-1, out=red[:, :p])
        np.maximum(m_buf[:, :p], red[:, :p], out=red[:, :p])
        np.subtract(m_buf[:, :p], red[:, :p], out=corr[:, :p])
        np.exp(corr[:, :p], out=corr[:, :p])
        np.copyto(m_buf[:, :p], red[:, :p])
        s -= m_buf[:, :p, :, None]
        np.exp(s, out=s)
        np.multiply(s, mask_f32[None, o0:o1], out=s)
        lse[:, :p] *= corr[:, :p]
        s.sum(axis=-1, out=red[:, :p])
        lse[:, :p] += red[:, :p]
        acc[:, :p] *= corr[:, :p, :, None]
        np.matmul(s, v_stream[:, o0:o1], out=pv[:, :p])
        acc[:, :p] += pv[:, :p]
    _fused.guard_zero_rows(lse, scratch=zero_rows)
    acc /= lse[..., None]
    np.log(lse, out=lse)
    lse += m_buf
    out5[:, seg_heads, seg_rows] = acc
    if row_uncovered.size:
        out5_flat[:, row_uncovered] = 0.0


def streaming_block_sparse_attention(q: Tensor, k: Tensor, v: Tensor,
                                     layout: MultiHeadLayout,
                                     scale: Optional[float] = None,
                                     cache: Optional[LayoutGeometryCache] = None
                                     ) -> Tensor:
    """Streaming twin of :func:`block_sparse_attention`.

    Identical math (union-of-active-blocks softmax, causal element masking,
    :func:`repro.tensor.fused.guard_zero_rows` for zero-active-block rows)
    but the score workspace is ``(batch, n_segments, block, block)`` instead
    of ``(batch, nnz, block, block)``: the kernel walks each query-row
    segment's active blocks one round at a time with online max/sum
    rescaling (the :class:`~repro.sparsity.ops.geometry_cache.StreamGeometry`
    prefix schedule), and the recompute backward re-streams the same rounds
    with the saved per-row logsumexp, writing each block's dK/dV
    contribution exactly once into a stream-ordered stack that the existing
    column-sorted segmented reduce then accumulates.  Results differ from
    the materializing kernel only by accumulation order.
    """
    bs = layout.block_size
    batch, n_heads, seq_len, head_dim = q.shape
    if n_heads != layout.n_heads:
        raise ValueError(f"layout has {layout.n_heads} heads, tensors have {n_heads}")
    if not _fused.fused_kernels_enabled():
        return _reference.block_sparse_attention(q, k, v, layout, scale=scale)

    scale = float(scale) if scale is not None else float(1.0 / np.sqrt(head_dim))
    dtype = q.data.dtype
    geom = (cache.lookup(layout, seq_len) if cache is not None
            else compute_block_geometry(layout, seq_len))
    st = geom.stream
    nnz = layout.nnz
    n_blocks = layout.n_blocks
    nseg = st.order.shape[0]
    padded_len = n_blocks * bs
    rounds = tuple((int(c), int(st.offsets[i]), int(st.offsets[i + 1]))
                   for i, c in enumerate(st.counts))
    neg_mask, mask_f32 = st.neg_mask, st.mask_f32
    q_gather, kv_gather = st.q_gather, st.kv_gather
    seg_heads, seg_rows = st.seg_heads, st.seg_rows
    row_uncovered = geom.row_uncovered
    out_shape5 = (batch, n_heads, n_blocks, bs, head_dim)

    rec = _plan._RECORDER
    if rec is not None and seq_len % bs != 0:
        rec.fail("streaming block-sparse attention over a padded sequence")
        rec = None
    if rec is not None:
        q_data, k_data, v_data = q.data, k.data, v.data

        def _stage(x):
            if x.flags["C_CONTIGUOUS"]:
                return x.reshape(batch, n_heads, n_blocks, bs, head_dim), None
            buf = np.empty((batch, n_heads, n_blocks, bs, head_dim), x.dtype)
            return buf, buf.reshape(batch, n_heads, seq_len, head_dim)

        q_pad, q_fill = _stage(q_data)
        k_pad, k_fill = _stage(k_data)
        v_pad, v_fill = _stage(v_data)
        copies = tuple((fill, src) for fill, src in
                       ((q_fill, q_data), (k_fill, k_data), (v_fill, v_data))
                       if fill is not None)
        q_flat = q_pad.reshape(batch, n_heads * n_blocks, bs, head_dim)
        k_flat = k_pad.reshape(batch, n_heads * n_blocks, bs, head_dim)
        v_flat = v_pad.reshape(batch, n_heads * n_blocks, bs, head_dim)
        q_seg = np.empty((batch, nseg, bs, head_dim), dtype)
        k_stream = np.empty((batch, nnz, bs, head_dim), dtype)
        v_stream = np.empty((batch, nnz, bs, head_dim), dtype)
        s_buf = np.empty((batch, nseg, bs, bs), dtype)
        red = np.empty((batch, nseg, bs), dtype)
        corr = np.empty((batch, nseg, bs), dtype)
        m_buf = np.empty((batch, nseg, bs), dtype)
        lse = np.empty((batch, nseg, bs), dtype)
        zero_rows = np.empty((batch, nseg, bs), bool)
        pv = np.empty((batch, nseg, bs, head_dim), dtype)
        acc = np.empty((batch, nseg, bs, head_dim), dtype)
        out5 = np.empty(out_shape5, dtype)
        out5_flat = out5.reshape(batch, n_heads * n_blocks, bs, head_dim)

        def run():
            for fill, src in copies:
                np.copyto(fill, src)
            np.take(q_flat, q_gather, axis=1, mode="clip", out=q_seg)
            np.take(k_flat, kv_gather, axis=1, mode="clip", out=k_stream)
            np.take(v_flat, kv_gather, axis=1, mode="clip", out=v_stream)
            _stream_bs_forward(q_seg, k_stream, v_stream, neg_mask, mask_f32,
                               scale, rounds, s_buf, red, corr, m_buf, lse,
                               zero_rows, pv, acc, out5, out5_flat,
                               seg_heads, seg_rows, row_uncovered)

        run()
        rec.record(run, (q_data, k_data, v_data),
                   (q_pad, k_pad, v_pad, q_seg, k_stream, v_stream, s_buf,
                    red, corr, m_buf, lse, zero_rows, pv, acc, out5),
                   tag="streaming_block_sparse_attention")
        out = out5.reshape(batch, n_heads, padded_len, head_dim)[:, :, :seq_len]
    else:
        q_pad = _blockify_arena(q.data, bs)
        k_pad = _blockify_arena(k.data, bs)
        v_pad = _blockify_arena(v.data, bs)
        q_flat = q_pad.reshape(batch, n_heads * n_blocks, bs, head_dim)
        k_flat = k_pad.reshape(batch, n_heads * n_blocks, bs, head_dim)
        v_flat = v_pad.reshape(batch, n_heads * n_blocks, bs, head_dim)
        q_seg = np.take(q_flat, q_gather, axis=1, mode="clip",
                        out=_arena.empty((batch, nseg, bs, head_dim), dtype))
        k_stream = np.take(k_flat, kv_gather, axis=1, mode="clip",
                           out=_arena.empty((batch, nnz, bs, head_dim), dtype))
        v_stream = np.take(v_flat, kv_gather, axis=1, mode="clip",
                           out=_arena.empty((batch, nnz, bs, head_dim), dtype))
        _arena.release(q_pad, k_pad, v_pad)
        s_buf = _arena.empty((batch, nseg, bs, bs), dtype)
        red = _arena.empty((batch, nseg, bs), dtype)
        corr = _arena.empty((batch, nseg, bs), dtype)
        m_buf = _arena.empty((batch, nseg, bs), dtype)
        lse = _arena.empty((batch, nseg, bs), dtype)
        zero_rows = _arena.empty((batch, nseg, bs), bool)
        pv = _arena.empty((batch, nseg, bs, head_dim), dtype)
        acc = _arena.empty((batch, nseg, bs, head_dim), dtype)
        out5 = _arena.empty(out_shape5, dtype)
        out5_flat = out5.reshape(batch, n_heads * n_blocks, bs, head_dim)
        _stream_bs_forward(q_seg, k_stream, v_stream, neg_mask, mask_f32,
                           scale, rounds, s_buf, red, corr, m_buf, lse,
                           zero_rows, pv, acc, out5, out5_flat,
                           seg_heads, seg_rows, row_uncovered)
        # q_seg/k_stream/v_stream/acc/lse survive for the recompute backward.
        _arena.release(s_buf, red, corr, m_buf, zero_rows, pv)
        out = out5.reshape(batch, n_heads, padded_len, head_dim)[:, :, :seq_len]

    col_starts = geom.col_starts
    col_seg_heads, col_seg_cols = geom.col_seg_heads, geom.col_seg_cols
    n_col_segs = col_seg_heads.shape[0]
    stream_col_order = st.col_order

    def _scatter_stream_to_cols(contrib: np.ndarray) -> np.ndarray:
        """Accumulate stream-ordered contributions onto (head, col) blocks."""
        contrib_sorted = np.take(contrib, stream_col_order, axis=1,
                                 mode="clip",
                                 out=_arena.empty(contrib.shape, contrib.dtype))
        seg = _segment_reduce(np.add, contrib_sorted, col_starts,
                              _arena.empty((batch, n_col_segs, bs, head_dim),
                                           np.float32))
        _arena.release(contrib_sorted)
        out_blocks = _arena.empty(out_shape5, np.float32)
        out_blocks[:, col_seg_heads, col_seg_cols] = seg
        if geom.col_uncovered.size:
            out_blocks.reshape(batch, n_heads * n_blocks, bs, head_dim)[
                :, geom.col_uncovered] = 0.0
        _arena.release(seg)
        return out_blocks.reshape(batch, n_heads, padded_len, head_dim)

    def backward(grad_out: np.ndarray):
        grad_out_pad = _blockify_arena(grad_out, bs)
        dout_flat = grad_out_pad.reshape(batch, n_heads * n_blocks, bs,
                                         head_dim)
        dout_seg = np.take(dout_flat, q_gather, axis=1, mode="clip",
                           out=_arena.empty((batch, nseg, bs, head_dim),
                                            dtype))
        _arena.release(grad_out_pad)

        # delta = rowsum(dOut * Out) per segment row (acc holds the
        # normalised per-segment output blocks).
        tmp = np.multiply(dout_seg, acc,
                          out=_arena.empty((batch, nseg, bs, head_dim), dtype))
        delta = tmp.sum(axis=-1,
                        out=_arena.empty((batch, nseg, bs), dtype))
        _arena.release(tmp)

        sb = _arena.empty((batch, nseg, bs, bs), dtype)
        dpb = _arena.empty((batch, nseg, bs, bs), dtype)
        dv_stack = _arena.empty((batch, nnz, bs, head_dim), dtype)
        dk_stack = _arena.empty((batch, nnz, bs, head_dim), dtype)
        dq_scratch = _arena.empty((batch, nseg, bs, head_dim), dtype)
        dq_acc = _arena.zeros((batch, nseg, bs, head_dim), np.float32)
        for p, o0, o1 in rounds:
            s = sb[:, :p]
            # Probability tile from the saved logsumexp — same masked-fill /
            # exp / re-mask sequence as the forward, minus the running max.
            np.matmul(q_seg[:, :p], np.swapaxes(k_stream[:, o0:o1], -1, -2),
                      out=s)
            s *= scale
            np.copyto(s, _NEG_INF, where=neg_mask[None, o0:o1])
            s -= lse[:, :p, :, None]
            np.exp(s, out=s)
            np.multiply(s, mask_f32[None, o0:o1], out=s)
            np.matmul(np.swapaxes(s, -1, -2), dout_seg[:, :p],
                      out=dv_stack[:, o0:o1])
            dp = dpb[:, :p]
            np.matmul(dout_seg[:, :p],
                      np.swapaxes(v_stream[:, o0:o1], -1, -2), out=dp)
            dp -= delta[:, :p, :, None]
            dp *= s
            dp *= scale
            np.matmul(dp, k_stream[:, o0:o1], out=dq_scratch[:, :p])
            dq_acc[:, :p] += dq_scratch[:, :p]
            np.matmul(np.swapaxes(dp, -1, -2), q_seg[:, :p],
                      out=dk_stack[:, o0:o1])
        _arena.release(sb, dpb, dq_scratch, dout_seg, delta)

        dv = _scatter_stream_to_cols(dv_stack)
        _arena.release(dv_stack)
        dk = _scatter_stream_to_cols(dk_stack)
        _arena.release(dk_stack)

        dq5 = _arena.empty(out_shape5, np.float32)
        dq5[:, seg_heads, seg_rows] = dq_acc
        if row_uncovered.size:
            dq5.reshape(batch, n_heads * n_blocks, bs, head_dim)[
                :, row_uncovered] = 0.0
        # acc/lse and the gathered streams are plan-owned in the recorded
        # branch (release ignores them there) and arena buffers otherwise.
        _arena.release(dq_acc, q_seg, k_stream, v_stream, acc, lse)
        dq = dq5.reshape(batch, n_heads, padded_len, head_dim)
        return (dq[:, :, :seq_len], dk[:, :, :seq_len], dv[:, :, :seq_len])

    return custom_op(out, (q, k, v), backward)
