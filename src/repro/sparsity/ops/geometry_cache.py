"""Cached block-sparse geometry: the index work behind the sparse kernels.

:func:`~repro.sparsity.ops.block_sparse.block_sparse_attention` needs three
pieces of derived geometry besides the layout's raw ``(head, row, col)``
arrays:

* the **segment geometry** — which contiguous runs of active blocks share a
  ``(head, query-row)`` softmax segment (``np.*.reduceat`` boundaries);
* the **element mask** — the ``(nnz, block, block)`` boolean validity mask
  enforcing causality inside diagonal blocks and the true sequence length;
* the **column geometry** — the ``(head, key-column)``-sorted permutation
  that turns the backward pass's dK/dV scatter into a contiguous segmented
  reduce.

All three depend only on ``(layout contents, seq_len)``.  Predicted patterns
repeat heavily across fine-tuning steps (the predictor chooses from a small
pattern pool, and the layout pool already canonicalises combinations), so
the seed's recompute-per-forward-call behaviour paid the full index cost —
including the ``nnz * block²`` element-mask construction — on every layer of
every step.  :class:`LayoutGeometryCache` memoizes the bundle under an LRU
keyed by a content signature of the layout plus the sequence length, making
repeated steps pure dictionary hits.

The cache is *purely* a memoization: a lookup returns byte-identical arrays
to a fresh computation (asserted by the test suite), so enabling it can
never change numerical results.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Tuple

import numpy as np

from repro.sparsity.ops.layout import MultiHeadLayout

__all__ = [
    "BlockGeometry",
    "StreamGeometry",
    "LayoutGeometryCache",
    "compute_block_geometry",
    "compute_stream_geometry",
    "segment_geometry",
    "block_element_mask",
]


def segment_geometry(layout: MultiHeadLayout
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return (segment ids per block, segment heads, segment rows)."""
    starts = layout.row_segment_starts
    nnz = layout.nnz
    seg_lengths = np.diff(np.append(starts, nnz))
    seg_ids = np.repeat(np.arange(starts.shape[0]), seg_lengths)
    return seg_ids, layout.heads[starts], layout.rows[starts]


def block_element_mask(layout: MultiHeadLayout, seq_len: int) -> np.ndarray:
    """Element-level validity mask of each active block ``(nnz, bs, bs)``.

    Enforces causality inside diagonal blocks and masks key positions beyond
    the (possibly padded) sequence length.
    """
    bs = layout.block_size
    offs = np.arange(bs)
    q_pos = layout.rows[:, None] * bs + offs[None, :]          # (nnz, bs)
    k_pos = layout.cols[:, None] * bs + offs[None, :]          # (nnz, bs)
    allowed = q_pos[:, :, None] >= k_pos[:, None, :]
    allowed &= k_pos[:, None, :] < seq_len
    return allowed


@dataclass(frozen=True)
class StreamGeometry:
    """Index geometry for the *streaming* block-sparse kernel.

    The streaming kernel visits each (head, query-row) softmax segment's
    active blocks one at a time ("rounds"): round ``j`` processes the j-th
    active block of every segment that has one.  Sorting the segments by
    descending length (stable, so equal-length segments keep their layout
    order) makes the set of segments alive in round ``j`` a contiguous
    *prefix* of the sorted order — every per-round state update (running
    max/sum, output accumulator) is then a plain prefix-slice operation with
    no gather/scatter, and the stream visits each active block exactly once.

    All arrays here are precomputed contiguous copies so the kernel's
    per-round operands are pure views (no per-step index work, which is what
    lets the recorded replay thunk stay allocation-free).
    """

    order: np.ndarray           # (nseg,) descending-length stable permutation
    counts: np.ndarray          # (max_len,) live-segment count per round
    offsets: np.ndarray         # (max_len + 1,) stream-order round boundaries
    q_gather: np.ndarray        # (nseg,) linear (head, row) q-block per segment
    kv_gather: np.ndarray       # (nnz,) linear (head, col) k/v-block, stream order
    col_order: np.ndarray       # (nnz,) stream position of each col-sorted block
    neg_mask: np.ndarray        # (nnz, bs, bs) ~element_mask, stream order
    mask_f32: np.ndarray        # (nnz, bs, bs) float32 element mask, stream order
    seg_heads: np.ndarray       # (nseg,) segment head, permuted by ``order``
    seg_rows: np.ndarray        # (nseg,) segment row, permuted by ``order``


@dataclass(frozen=True)
class BlockGeometry:
    """Everything :func:`block_sparse_attention` derives from (layout, seq_len)."""

    seg_ids: np.ndarray
    seg_heads: np.ndarray
    seg_rows: np.ndarray
    element_mask: np.ndarray           # (nnz, block, block) bool
    col_order: np.ndarray
    col_starts: np.ndarray
    col_seg_heads: np.ndarray
    col_seg_cols: np.ndarray
    # Derived forms of element_mask kept so the fused in-place chain never
    # negates or bool->float casts the mask on the hot path.
    neg_element_mask: np.ndarray = None    # ~element_mask, for masked fill
    element_mask_f32: np.ndarray = None    # element_mask as float32 multiplier
    # Linearised gather/scatter indices for the arena-aware kernel: block
    # gathers run through ``np.take(..., out=)`` (no fancy-indexing
    # temporary), and the scatter targets zero only the uncovered
    # (head, block) slots of a recycled output buffer instead of a full fill.
    row_gather: np.ndarray = None          # heads * n_blocks + rows (int64)
    col_gather: np.ndarray = None          # heads * n_blocks + cols (int64)
    row_uncovered: np.ndarray = None       # linear (head, row) slots w/o segment
    col_uncovered: np.ndarray = None       # linear (head, col) slots w/o segment
    # Streaming-kernel bundle (always derived; the cache hands out one frozen
    # object per (layout, seq_len) so both kernels share an entry).
    stream: StreamGeometry = None


def compute_stream_geometry(layout: MultiHeadLayout,
                            seg_heads: np.ndarray, seg_rows: np.ndarray,
                            element_mask: np.ndarray, col_order: np.ndarray,
                            row_gather: np.ndarray, col_gather: np.ndarray
                            ) -> StreamGeometry:
    """Derive the streaming-order bundle from the base geometry pieces."""
    starts = layout.row_segment_starts
    nnz = layout.nnz
    seg_lengths = np.diff(np.append(starts, nnz))
    order = np.argsort(-seg_lengths, kind="stable")
    sorted_lengths = seg_lengths[order]
    max_len = int(sorted_lengths[0]) if sorted_lengths.size else 0
    counts = np.array([int(np.count_nonzero(sorted_lengths > j))
                       for j in range(max_len)], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    # stream position t -> layout block index: round j takes the j-th block
    # of the first counts[j] (longest) segments.
    if max_len:
        s2l = np.concatenate([starts[order[:counts[j]]] + j
                              for j in range(max_len)]).astype(np.int64)
    else:
        s2l = np.zeros(0, dtype=np.int64)
    l2s = np.empty(nnz, dtype=np.int64)
    l2s[s2l] = np.arange(nnz, dtype=np.int64)
    return StreamGeometry(
        order=order.astype(np.int64),
        counts=counts,
        offsets=offsets,
        q_gather=row_gather[starts][order],
        kv_gather=col_gather[s2l],
        col_order=l2s[col_order],
        neg_mask=np.ascontiguousarray(~element_mask[s2l]),
        mask_f32=np.ascontiguousarray(
            element_mask[s2l].astype(np.float32)),
        seg_heads=seg_heads[order],
        seg_rows=seg_rows[order],
    )


def compute_block_geometry(layout: MultiHeadLayout, seq_len: int) -> BlockGeometry:
    """Derive the full geometry bundle from scratch (the uncached path)."""
    seg_ids, seg_heads, seg_rows = segment_geometry(layout)
    col_order, col_starts, col_seg_heads, col_seg_cols = layout.col_geometry()
    element_mask = block_element_mask(layout, seq_len)
    n_blocks = np.int64(layout.n_blocks)
    all_slots = np.arange(layout.n_heads * layout.n_blocks, dtype=np.int64)
    row_gather = layout.heads.astype(np.int64) * n_blocks + layout.rows
    col_gather = layout.heads.astype(np.int64) * n_blocks + layout.cols
    stream = compute_stream_geometry(layout, seg_heads, seg_rows,
                                     element_mask, col_order,
                                     row_gather, col_gather)
    return BlockGeometry(
        seg_ids=seg_ids, seg_heads=seg_heads, seg_rows=seg_rows,
        element_mask=element_mask,
        col_order=col_order, col_starts=col_starts,
        col_seg_heads=col_seg_heads, col_seg_cols=col_seg_cols,
        neg_element_mask=~element_mask,
        element_mask_f32=element_mask.astype(np.float32),
        row_gather=row_gather,
        col_gather=col_gather,
        row_uncovered=np.setdiff1d(
            all_slots, seg_heads.astype(np.int64) * n_blocks + seg_rows),
        col_uncovered=np.setdiff1d(
            all_slots, col_seg_heads.astype(np.int64) * n_blocks + col_seg_cols),
        stream=stream,
    )


class LayoutGeometryCache:
    """LRU memo of :class:`BlockGeometry` keyed by (layout signature, seq_len).

    Keyed by the layout's *content* signature rather than object identity,
    so equal layouts materialised by different code paths (the layout pool,
    ``layout_from_block_masks`` in oracle/baseline modes) share entries.
    Bounded so pathological workloads (e.g. a different random layout every
    step) cannot grow memory without limit.
    """

    def __init__(self, maxsize: int = 64):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, BlockGeometry]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, layout: MultiHeadLayout, seq_len: int) -> BlockGeometry:
        """Return the geometry bundle, computing and caching on first use."""
        key = (layout.signature(), int(seq_len))
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        entry = compute_block_geometry(layout, seq_len)
        self._entries[key] = entry
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return entry

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
