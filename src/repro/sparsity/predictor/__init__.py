"""Sequence-oriented Predictors (paper Section V).

Small low-rank networks that predict, at runtime and before the expensive
computation, which attention score blocks and which MLP neuron blocks matter
for the current batch:

* :class:`AttentionPredictor` — per-head low-rank matrices ``W_Q_hat`` /
  ``W_K_hat`` produce approximate attention scores on a sequence that has
  been down-sampled to one representative token per block (the two-stage
  "process each token individually, then consolidate" design keeps the
  predictor size independent of the sequence length);
* :class:`MLPPredictor` — a single low-rank matrix ``W_A_hat`` scores the
  neuron blocks; a threshold plus a reduction over batch and sequence yields
  the active-block set.

Predictors are trained *offline* on data collected from the frozen model
(:mod:`repro.sparsity.predictor.collect`) with Gaussian noise augmentation
and a recall-weighted BCE loss (:mod:`repro.sparsity.predictor.training`) so
they stay accurate while the PEFT parameters evolve during fine-tuning.
"""

from repro.sparsity.predictor.attention import AttentionPredictor
from repro.sparsity.predictor.mlp import MLPPredictor
from repro.sparsity.predictor.collect import CollectedLayerData, collect_layer_data
from repro.sparsity.predictor.calibration import (
    AttentionCalibration,
    CalibrationEntry,
    MLPCalibration,
    calibrate_attention_predictor,
    calibrate_mlp_predictor,
)
from repro.sparsity.predictor.training import (
    PredictorTrainingConfig,
    PredictorMetrics,
    train_attention_predictor,
    train_mlp_predictor,
)

__all__ = [
    "AttentionPredictor",
    "AttentionCalibration",
    "CalibrationEntry",
    "MLPCalibration",
    "MLPPredictor",
    "CollectedLayerData",
    "calibrate_attention_predictor",
    "calibrate_mlp_predictor",
    "collect_layer_data",
    "PredictorTrainingConfig",
    "PredictorMetrics",
    "train_attention_predictor",
    "train_mlp_predictor",
]
