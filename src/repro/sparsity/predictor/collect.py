"""Collection of predictor training data from the frozen model.

Predictors are trained offline on data gathered from inference-style passes
of the (frozen) backbone — exactly the situation of the paper: "All
predictors are pre-trained offline using data collected from model
inference."  For every layer we record

* the input to the attention sub-layer (post-LayerNorm hidden states) and the
  exact attention probabilities of every head, and
* the input to the MLP sub-layer and the post-ReLU activations.

The recorded inputs become predictor inputs; the exposer converts the exact
probabilities / activations into the binary block labels the predictors are
trained against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.models.base import CausalLMModel
from repro.nn.attention import causal_mask
from repro.tensor import Tensor, no_grad


@dataclass
class CollectedLayerData:
    """Per-layer recordings across all collection batches."""

    attention_inputs: List[np.ndarray] = field(default_factory=list)   # (batch, seq, dim)
    attention_probs: List[np.ndarray] = field(default_factory=list)    # (batch, heads, seq, seq)
    mlp_inputs: List[np.ndarray] = field(default_factory=list)         # (batch, seq, dim)
    mlp_activations: List[np.ndarray] = field(default_factory=list)    # (batch, seq, hidden)

    def merged(self, truncate_to: Optional[int] = None) -> Dict[str, np.ndarray]:
        """Concatenate recordings along the batch axis.

        With ``truncate_to=L`` every recording is sliced to its first ``L``
        positions (recordings shorter than ``L`` are skipped, mirroring
        ``collect_layer_data(truncate_to=...)``).  For a *causal* model this
        is exact, not an approximation: position ``t`` of every recorded
        quantity — post-LayerNorm inputs, attention probabilities (row ``t``
        attends only to keys ``<= t``), post-ReLU activations — depends only
        on tokens ``<= t``, so the slice of a full-length pass equals the
        recording of a pass over the truncated batch.  This is what lets the
        calibration grid reuse *one* collection at the maximum length instead
        of re-running a frozen-model pass per grid length.
        """
        if truncate_to is None:
            return {
                "attention_inputs": np.concatenate(self.attention_inputs, axis=0),
                "attention_probs": np.concatenate(self.attention_probs, axis=0),
                "mlp_inputs": np.concatenate(self.mlp_inputs, axis=0),
                "mlp_activations": np.concatenate(self.mlp_activations, axis=0),
            }
        length = int(truncate_to)

        def cut_seq(arrays: List[np.ndarray]) -> np.ndarray:
            kept = [a[:, :length] for a in arrays if a.shape[1] >= length]
            if not kept:
                raise ValueError(f"no recording is at least {length} tokens long")
            return np.concatenate(kept, axis=0)

        def cut_probs(arrays: List[np.ndarray]) -> np.ndarray:
            kept = [a[:, :, :length, :length] for a in arrays
                    if a.shape[2] >= length]
            if not kept:
                raise ValueError(f"no recording is at least {length} tokens long")
            return np.concatenate(kept, axis=0)

        return {
            "attention_inputs": cut_seq(self.attention_inputs),
            "attention_probs": cut_probs(self.attention_probs),
            "mlp_inputs": cut_seq(self.mlp_inputs),
            "mlp_activations": cut_seq(self.mlp_activations),
        }


def _dense_attention_probs(attention, x_norm: Tensor,
                           mask: np.ndarray) -> np.ndarray:
    """Recompute the attention probabilities of a layer for data collection."""
    q = attention.split_heads(attention.q_proj(x_norm)).data
    k = attention.split_heads(attention.k_proj(x_norm)).data
    scale = 1.0 / np.sqrt(attention.head_dim)
    scores = np.matmul(q, np.swapaxes(k, -1, -2)) * scale
    scores = np.where(mask, scores, -1e9)
    scores = scores - scores.max(axis=-1, keepdims=True)
    probs = np.exp(scores) * mask
    denom = probs.sum(axis=-1, keepdims=True)
    return probs / np.where(denom == 0, 1.0, denom)


def collect_layer_data(model: CausalLMModel, batches: Iterable[np.ndarray],
                       max_batches: Optional[int] = None,
                       truncate_to: Optional[int] = None) -> List[CollectedLayerData]:
    """Run inference passes and record per-layer predictor training data.

    Parameters
    ----------
    model:
        The (frozen) backbone model — collection must happen *before* PEFT
        wrapping so the recorded statistics describe the pre-trained weights.
    batches:
        Iterable of integer token-id arrays of shape ``(batch, seq)``.
    max_batches:
        Optional cap on the number of batches to record.
    truncate_to:
        Optional sequence length to truncate every batch to before the pass;
        batches shorter than this are skipped entirely.  The calibration
        grid uses this to re-collect the same batches at each grid length.

    Returns
    -------
    list of :class:`CollectedLayerData`, one entry per transformer layer.
    """
    layers = [CollectedLayerData() for _ in model.blocks]
    with no_grad():
        for index, batch in enumerate(batches):
            if max_batches is not None and index >= max_batches:
                break
            input_ids = np.asarray(batch)
            if input_ids.ndim == 1:
                input_ids = input_ids[None, :]
            if truncate_to is not None:
                if input_ids.shape[-1] < truncate_to:
                    continue
                input_ids = input_ids[..., :truncate_to]
            bsz, seq = input_ids.shape
            mask = causal_mask(seq)
            positions = np.broadcast_to(np.arange(seq), (bsz, seq))
            hidden = (model.token_embedding(input_ids)
                      + model.position_embedding(positions))
            for layer_idx, block in enumerate(model.blocks):
                record = layers[layer_idx]
                x_norm = block.attn_norm(hidden)
                record.attention_inputs.append(x_norm.data.copy())
                record.attention_probs.append(
                    _dense_attention_probs(block.attention, x_norm, mask))
                hidden = hidden + block.attention(x_norm, attn_mask=mask)

                x_norm2 = block.mlp_norm(hidden)
                record.mlp_inputs.append(x_norm2.data.copy())
                pre = block.mlp.fc1(x_norm2)
                act = block.mlp.activation(pre)
                record.mlp_activations.append(act.data.copy())
                hidden = hidden + block.mlp.fc2(act)
    return layers
