"""Predictor calibration against oracle masks (threshold + snap fitting).

The trained probes are recall-oriented (the BCE positive class is up-weighted
4x), so their raw sigmoid confidences are systematically inflated: thresholded
at the fixed logit bar they produce block masks visibly *denser* than the
exposer's oracle masks (block sparsity ~0.47 predicted vs ~0.59 oracle at
seq 512 in the PR-3 measurement), and a probe trained at one sequence length
collapses to near-dense masks at another because the score distribution
shifts with the block-grid size.  Neither is a probe-capacity problem — the
probes *rank* blocks well (recall > 0.9) — it is a decision-boundary problem,
and decision boundaries can be fitted cheaply after training.

Calibration therefore fits, on a small calibration set with known oracle
masks, three things per layer:

* **per-head logit thresholds** — for every head, the threshold is placed at
  the score quantile matching the oracle mask's block density at that head
  (density/quantile matching: if the oracle keeps ``k`` of the causal blocks,
  the threshold sits between the ``k``-th and ``k+1``-th largest predicted
  scores), so the thresholded mask has the oracle's density by construction;
* **a pattern-snap bar** — after thresholding, each head's binary mask is
  snapped onto the cheapest :class:`~repro.sparsity.patterns.PatternPool`
  pattern retaining at least ``snap_coverage`` of the mask's active blocks
  (the same recall-first selection rule the exposer uses on attention mass);
  the bar itself is calibrated by scanning a candidate grid and keeping the
  value whose snapped layouts minimise the mean density gap to the oracle's
  snapped layouts;
* **a sequence-length grid** — thresholds are fitted independently at every
  grid length (e.g. 128/256/512) and looked up per runtime length, with
  log-linear interpolation between grid points and clamping outside the
  grid, so a probe calibrated on the grid stays usable at nearby lengths
  instead of collapsing to near-dense masks.

The MLP predictor gets the same treatment in one dimension: a per-length
score threshold matching the oracle's active-block count.

Calibration state is deliberately *external* to the predictor weights: an
uncalibrated predictor behaves exactly as before (the parity tests lock
this), and :meth:`AttentionPredictor.set_calibration` switches the inference
path to the calibrated thresholds and mask snapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sparsity.patterns import PatternPool, block_count, causal_block_mask

# Candidate snap-coverage bars scanned when calibrating the pattern snap.
SNAP_BAR_GRID: Tuple[float, ...] = (0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80,
                                    0.85, 0.90, 0.95, 0.98)


def _interp_weight(seq_len: int, low: int, high: int) -> float:
    """Log-linear interpolation weight of ``high`` for ``low < seq_len < high``."""
    return float((np.log2(seq_len) - np.log2(low)) / (np.log2(high) - np.log2(low)))


def _bracket(lengths: Sequence[int], seq_len: int) -> Tuple[int, Optional[int], float]:
    """Grid lengths bracketing ``seq_len`` plus the interpolation weight.

    Returns ``(low, high, w)`` where ``high`` is ``None`` (and ``w`` is 0)
    when ``seq_len`` falls on or outside the grid and a single entry applies.
    """
    lengths = sorted(lengths)
    if seq_len <= lengths[0]:
        return lengths[0], None, 0.0
    if seq_len >= lengths[-1]:
        return lengths[-1], None, 0.0
    for low, high in zip(lengths, lengths[1:]):
        if seq_len == low:
            return low, None, 0.0
        if low < seq_len < high:
            return low, high, _interp_weight(seq_len, low, high)
    return lengths[-1], None, 0.0


def _separating_threshold(sorted_desc: np.ndarray, keep: int) -> float:
    """Threshold ``t`` such that ``score > t`` keeps the top ``keep`` entries.

    ``sorted_desc`` is a descending-sorted 1-D score array.  The threshold is
    the midpoint between the ``keep``-th and ``keep+1``-th values.  When the
    two are tied, the midpoint equals both and a strict comparison would drop
    *every* tied score (keeping fewer than ``keep``), so the threshold is
    nudged just below the tied value instead — the kept set grows slightly,
    which errs on the recall side, the right direction for sparse attention.
    """
    n = sorted_desc.shape[0]
    if keep <= 0:
        return float(sorted_desc[0]) + 1.0
    if keep >= n:
        return float(sorted_desc[-1]) - 1.0
    hi, lo = float(sorted_desc[keep - 1]), float(sorted_desc[keep])
    if hi > lo:
        return 0.5 * (hi + lo)
    return float(np.nextafter(lo, -np.inf))


@dataclass
class CalibrationEntry:
    """Target-vs-achieved densities of one layer at one grid length."""

    seq_len: int
    oracle_density: float       # mean over heads, snapped oracle layouts
    predicted_density: float    # mean over heads, snapped calibrated layouts
    raw_predicted_density: float  # thresholded mask density before snapping

    @property
    def gap(self) -> float:
        """Absolute snapped-density gap (the quantity the bench tracks)."""
        return abs(self.predicted_density - self.oracle_density)


@dataclass
class AttentionCalibration:
    """Fitted decision state of one layer's attention predictor.

    ``thresholds`` maps each grid sequence length to a ``(heads,)`` float64
    array of logit thresholds.  ``snap_coverage`` is the calibrated snap bar
    applied by :meth:`PatternPool.snap_masks`.
    """

    block_size: int
    thresholds: Dict[int, np.ndarray]
    snap_coverage: float
    entries: List[CalibrationEntry] = field(default_factory=list)

    def grid_lengths(self) -> List[int]:
        return sorted(self.thresholds)

    def thresholds_for(self, seq_len: int) -> np.ndarray:
        """Per-head thresholds at ``seq_len``.

        Exact grid hits return the fitted array; lengths between grid points
        interpolate log-linearly (the score scale drifts smoothly with the
        grid size); lengths outside the grid clamp to the nearest end.
        """
        exact = self.thresholds.get(seq_len)
        if exact is not None:
            return exact
        low, high, w = _bracket(self.grid_lengths(), seq_len)
        if high is None:
            return self.thresholds[low]
        return (1.0 - w) * self.thresholds[low] + w * self.thresholds[high]

    def mean_gap(self) -> float:
        """Mean |predicted − oracle| snapped density over the grid."""
        if not self.entries:
            return 0.0
        return float(np.mean([e.gap for e in self.entries]))


@dataclass
class MLPCalibration:
    """Fitted per-length score thresholds of one layer's MLP predictor."""

    thresholds: Dict[int, float]
    entries: List[CalibrationEntry] = field(default_factory=list)

    def grid_lengths(self) -> List[int]:
        return sorted(self.thresholds)

    def threshold_for(self, seq_len: int) -> float:
        exact = self.thresholds.get(seq_len)
        if exact is not None:
            return exact
        low, high, w = _bracket(self.grid_lengths(), seq_len)
        if high is None:
            return self.thresholds[low]
        return (1.0 - w) * self.thresholds[low] + w * self.thresholds[high]

    def mean_gap(self) -> float:
        if not self.entries:
            return 0.0
        return float(np.mean([e.gap for e in self.entries]))


def _pattern_densities(pool: PatternPool, n_blocks: int) -> Dict[str, float]:
    causal_total = int(causal_block_mask(n_blocks).sum())
    return {name: pool.cost(name, n_blocks) / causal_total for name in pool.names()}


def calibrate_attention_predictor(
        predictor, exposer, inputs_by_length: Dict[int, np.ndarray],
        probs_by_length: Dict[int, np.ndarray],
        snap_bars: Sequence[float] = SNAP_BAR_GRID) -> AttentionCalibration:
    """Fit per-head thresholds and the snap bar for one attention predictor.

    Parameters
    ----------
    predictor:
        A trained :class:`AttentionPredictor` (calibration reads
        ``approximate_scores`` only; the weights are not touched).
    exposer:
        The :class:`AttentionExposer` that defines the oracle masks.
    inputs_by_length / probs_by_length:
        For every grid length, the recorded layer inputs
        ``(n, seq, dim)`` and exact attention probabilities
        ``(n, heads, seq, seq)`` truncated to that length.

    The oracle target at each length is the exposer's *snapped* per-head
    selection over the whole calibration set — the same batch-level
    reduction the oracle backend applies at runtime — so threshold fitting
    matches the density the oracle path actually executes, not a per-sample
    ideal the runtime never sees.
    """
    pool = predictor.pattern_pool
    thresholds: Dict[int, np.ndarray] = {}
    per_length: Dict[int, Dict[str, np.ndarray]] = {}

    for seq_len, inputs in sorted(inputs_by_length.items()):
        probs = probs_by_length[seq_len]
        n_blocks = block_count(seq_len, predictor.block_size)
        causal = causal_block_mask(n_blocks)
        causal_total = int(causal.sum())

        # Oracle side: batch-level block mass -> snapped per-head patterns.
        oracle_masks, oracle_names = exposer.head_block_masks(probs)
        oracle_density = oracle_masks[:, causal].sum(axis=1) / causal_total

        # Predicted side: the calibrated runtime path thresholds the *mean*
        # score over the batch (the oracle's own batch reduction sums the
        # attention mass, so a mean-based decision matches its semantics and,
        # unlike an any/max union, does not grow denser with batch size —
        # calibration would otherwise underestimate the runtime density
        # whenever the fine-tuning batch is larger than the calibration set).
        scores = predictor.approximate_scores(inputs)        # (n, heads, nb, nb)
        mean_scores = scores.mean(axis=0)                   # (heads, nb, nb)
        heads = mean_scores.shape[0]
        tau = np.empty(heads, dtype=np.float64)
        for h in range(heads):
            vals = np.sort(mean_scores[h][causal])[::-1]
            keep = int(round(float(oracle_density[h]) * causal_total))
            tau[h] = _separating_threshold(vals, keep)
        thresholds[seq_len] = tau
        per_length[seq_len] = {
            "mean_scores": mean_scores,
            "oracle_density": np.asarray(oracle_density, dtype=np.float64),
            "oracle_names": np.asarray(oracle_names, dtype=object),
        }

    # Snap-bar calibration: scan the candidate bars and keep the one whose
    # snapped layouts minimise the mean |predicted − oracle| density over
    # the whole grid.  The scan reuses the thresholded masks, so it is a
    # handful of (heads, nb²) @ (nb², P) products per candidate.
    best_bar, best_gap = snap_bars[0], float("inf")
    snapped_cache: Dict[float, Dict[int, List[str]]] = {}
    for bar in snap_bars:
        gaps: List[float] = []
        snapped_cache[bar] = {}
        for seq_len, data in per_length.items():
            n_blocks = block_count(seq_len, predictor.block_size)
            densities = _pattern_densities(pool, n_blocks)
            masks = threshold_block_masks(data["mean_scores"], thresholds[seq_len])
            names = pool.snap_masks(masks, coverage=bar)
            snapped_cache[bar][seq_len] = names
            predicted = np.array([densities[name] for name in names])
            gaps.append(float(np.abs(predicted - data["oracle_density"]).mean()))
        gap = float(np.mean(gaps))
        if gap < best_gap - 1e-12:
            best_bar, best_gap = bar, gap

    entries: List[CalibrationEntry] = []
    for seq_len, data in sorted(per_length.items()):
        n_blocks = block_count(seq_len, predictor.block_size)
        densities = _pattern_densities(pool, n_blocks)
        causal_total = int(causal_block_mask(n_blocks).sum())
        masks = threshold_block_masks(data["mean_scores"], thresholds[seq_len])
        names = snapped_cache[best_bar][seq_len]
        entries.append(CalibrationEntry(
            seq_len=seq_len,
            oracle_density=float(data["oracle_density"].mean()),
            predicted_density=float(np.mean([densities[n] for n in names])),
            raw_predicted_density=float(
                masks[:, causal_block_mask(n_blocks)].sum() / (masks.shape[0] * causal_total)),
        ))
    return AttentionCalibration(block_size=predictor.block_size,
                                thresholds=thresholds,
                                snap_coverage=best_bar, entries=entries)


def threshold_block_masks(mean_scores: np.ndarray, tau: np.ndarray) -> np.ndarray:
    """Binary per-head masks from batch-meaned scores and per-head thresholds.

    This is *the* calibrated mask construction: threshold the mean-over-batch
    score per head, restrict to the causal triangle, force the diagonal.
    Both the calibration fit (here) and the runtime path
    (:meth:`AttentionPredictor.block_masks`) call this one function — the
    fitted thresholds are only valid while the two constructions are
    identical, so the logic must not be duplicated.
    """
    keep = mean_scores > tau[:, None, None]
    n_blocks = keep.shape[-1]
    keep &= causal_block_mask(n_blocks)[None]
    keep |= np.eye(n_blocks, dtype=bool)[None]
    return keep


def calibrate_mlp_predictor(predictor, exposer,
                            inputs_by_length: Dict[int, np.ndarray],
                            activations_by_length: Dict[int, np.ndarray]
                            ) -> MLPCalibration:
    """Fit per-length score thresholds for one MLP predictor.

    The oracle target at each length is the exposer's batch-level active
    block set; the threshold is placed so the predictor keeps the same
    number of blocks (midpoint between the ``k``-th and ``k+1``-th scores).
    """
    thresholds: Dict[int, float] = {}
    entries: List[CalibrationEntry] = []
    n_blocks = predictor.n_blocks
    for seq_len, inputs in sorted(inputs_by_length.items()):
        oracle_active = exposer.active_blocks(activations_by_length[seq_len])
        scores = predictor.block_scores(inputs)
        vals = np.sort(scores)[::-1]
        keep = int(oracle_active.size)
        tau = _separating_threshold(vals, keep)
        thresholds[seq_len] = tau
        predicted = int((scores > tau).sum())
        entries.append(CalibrationEntry(
            seq_len=seq_len,
            oracle_density=keep / n_blocks,
            predicted_density=predicted / n_blocks,
            raw_predicted_density=predicted / n_blocks,
        ))
    return MLPCalibration(thresholds=thresholds, entries=entries)
