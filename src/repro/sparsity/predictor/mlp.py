"""MLP neuron-block predictor (paper Section V, Figure 5b).

A single trainable matrix ``W_A_hat ∈ R^{d×n_blk}`` maps each token to a
score per neuron block; thresholding and a reduction over the batch and
sequence dimensions produce the active-block set for the whole input.  The
same prediction is applied to both linear layers of the MLP because their
activation patterns are coupled (a dead hidden neuron kills a column of fc1
and a row of fc2 simultaneously).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import Tensor
from repro.tensor import arena as _arena


class MLPPredictor(Module):
    """Low-rank neuron-block activity predictor for one MLP layer."""

    def __init__(self, dim: int, hidden_dim: int, block_size: int,
                 threshold: float = 0.5, min_active_blocks: int = 1, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.dim = dim
        self.hidden_dim = hidden_dim
        self.block_size = block_size
        self.n_blocks = -(-hidden_dim // block_size)
        self.threshold = threshold
        self.min_active_blocks = max(1, int(min_active_blocks))
        scale = 1.0 / np.sqrt(dim)
        self.w_a = Parameter(rng.normal(0.0, scale, size=(dim, self.n_blocks)).astype(np.float32),
                             name="predictor.mlp.w_a")
        self.bias = Parameter(np.zeros(self.n_blocks, dtype=np.float32),
                              name="predictor.mlp.bias")
        # Optional fitted per-length thresholds; None keeps the fixed bar.
        self.calibration = None

    def set_calibration(self, calibration) -> None:
        """Attach an :class:`MLPCalibration` (or None to detach).

        Calibration replaces the fixed score threshold of
        :meth:`predict_active_blocks` with per-length thresholds fitted to
        the oracle's active-block counts.
        """
        self.calibration = calibration

    # -- training path (autograd) -----------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        """Per-token block logits ``(batch, seq, n_blocks)`` (pre-sigmoid)."""
        return x.matmul(self.w_a) + self.bias

    # -- inference path (pure NumPy) ----------------------------------------------------
    def block_scores(self, x: np.ndarray) -> np.ndarray:
        """Sequence-level block scores.

        Stage one scores every token independently (sigmoid of the per-token
        logits); stage two consolidates them into one score per block by
        averaging over the batch and sequence dimensions — the fraction of
        tokens for which the block is important.  Blocks that only a handful
        of tokens care about therefore score low, mirroring the exposer's
        sequence-level importance filter.
        """
        x = np.asarray(x)
        if x.ndim == 2:
            x = x[None]
        x2d = x.reshape(-1, self.dim)
        logits = np.matmul(x2d, self.w_a.data,
                           out=_arena.empty((x2d.shape[0], self.w_a.data.shape[1]),
                                            x2d.dtype))
        # The sigmoid chain mutates the logits buffer in place: this runs per
        # layer per refresh inside the fine-tuning hot loop, and the GEMM
        # output is the only (arena-recycled) allocation.
        logits += self.bias.data
        np.negative(logits, out=logits)
        np.exp(logits, out=logits)
        logits += 1.0
        np.reciprocal(logits, out=logits)
        scores = logits.mean(axis=0)
        _arena.release(logits)
        return scores

    def predict_active_blocks(self, x: np.ndarray) -> np.ndarray:
        """Indices of neuron blocks predicted active for the whole input.

        With a fitted :class:`MLPCalibration` attached, the decision bar is
        the calibrated per-length threshold (strict comparison — the
        threshold sits *between* the oracle's last kept score and the first
        dropped one); otherwise the fixed configured threshold applies.
        """
        x = np.asarray(x)
        scores = self.block_scores(x)
        if self.calibration is not None:
            tau = self.calibration.threshold_for(x.shape[-2])
            active = np.nonzero(scores > tau)[0]
        else:
            active = np.nonzero(scores >= self.threshold)[0]
        if active.size < self.min_active_blocks:
            active = np.argsort(scores)[::-1][:self.min_active_blocks]
            active = np.sort(active)
        return active.astype(np.int64)

    def overhead_flops(self, seq_len: int, batch: int = 1) -> int:
        """Analytic predictor cost (Cost_A + Cost_AND of Section V-C)."""
        cost_a = batch * seq_len * self.dim * self.n_blocks
        cost_and = batch * seq_len
        return int(cost_a + cost_and)

    def extra_repr(self) -> str:
        return f"dim={self.dim}, blocks={self.n_blocks}, block_size={self.block_size}"
