"""Offline predictor training (paper Section V-B).

Both optimisations the paper prescribes are implemented here:

* **noise augmentation** — Gaussian noise is added to the recorded inputs so
  the predictors do not overfit the exact pre-trained activations and stay
  robust while the PEFT parameters evolve during fine-tuning;
* **recall-weighted loss** — the BCE positive class (block *is* needed) is
  up-weighted, because predicting an active block as inactive damages the
  model output, whereas the opposite error only costs a little extra compute.

Training uses the same Adam optimizer as the main stack; the predictors are
tiny (rank ``r << d``), so a few dozen epochs converge in well under a second
even on the CPU substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.optim import Adam
from repro.sparsity.exposer import AttentionExposer, MLPExposer
from repro.sparsity.patterns import causal_block_mask
from repro.sparsity.predictor.attention import AttentionPredictor
from repro.sparsity.predictor.mlp import MLPPredictor
from repro.tensor import Tensor, functional as F


@dataclass
class PredictorTrainingConfig:
    """Schedule and regularisation of offline predictor training."""

    epochs: int = 30
    lr: float = 1e-2
    batch_size: int = 16
    noise_std: float = 0.02
    pos_weight: float = 4.0
    seed: int = 0


@dataclass
class PredictorMetrics:
    """Quality of a trained predictor on its training data (labels are cheap).

    ``predicted_density`` / ``label_density`` expose the over-coverage the
    recall-weighted loss bakes in (predicted > label means the raw decision
    boundary keeps too many blocks) — the miscalibration the calibration
    pass corrects; a large ratio is the signal to check
    ``engine.calibration_gap()`` before trusting raw predictions.
    """

    recall: float
    precision: float
    loss: float
    epochs: int
    predicted_density: float = 0.0
    label_density: float = 0.0

    def summary(self) -> str:
        return (f"recall={self.recall:.4f} precision={self.precision:.4f} "
                f"loss={self.loss:.4f} density={self.predicted_density:.3f}"
                f"/{self.label_density:.3f}")


def _recall_precision(pred: np.ndarray, target: np.ndarray) -> Tuple[float, float]:
    pred = np.asarray(pred, dtype=bool)
    target = np.asarray(target, dtype=bool)
    true_pos = float((pred & target).sum())
    recall = true_pos / max(float(target.sum()), 1.0)
    precision = true_pos / max(float(pred.sum()), 1.0)
    return recall, precision


# ---------------------------------------------------------------------------
# attention predictor
# ---------------------------------------------------------------------------

def attention_block_labels(exposer: AttentionExposer, probs: np.ndarray) -> np.ndarray:
    """Per-sample, per-head binary block labels from exact attention probs."""
    probs = np.asarray(probs)
    labels = []
    for i in range(probs.shape[0]):
        labels.append(exposer.raw_block_masks(probs[i:i + 1]))
    return np.stack(labels).astype(np.float32)       # (batch, heads, nb, nb)


def train_attention_predictor(predictor: AttentionPredictor,
                              inputs: np.ndarray, probs: np.ndarray,
                              exposer: AttentionExposer,
                              config: Optional[PredictorTrainingConfig] = None
                              ) -> PredictorMetrics:
    """Train one layer's attention predictor on collected data.

    Parameters
    ----------
    inputs:
        Recorded layer inputs ``(n_samples, seq, dim)``.
    probs:
        Exact attention probabilities ``(n_samples, heads, seq, seq)``.
    """
    config = config or PredictorTrainingConfig()
    rng = np.random.default_rng(config.seed)
    labels = attention_block_labels(exposer, probs)
    n_blocks = labels.shape[-1]
    causal = causal_block_mask(n_blocks).astype(np.float32)

    optimizer = Adam(predictor.trainable_parameters(), lr=config.lr)
    n_samples = inputs.shape[0]
    last_loss = 0.0
    for _ in range(config.epochs):
        order = rng.permutation(n_samples)
        for start in range(0, n_samples, config.batch_size):
            idx = order[start:start + config.batch_size]
            x = inputs[idx]
            if config.noise_std > 0:
                x = x + rng.normal(0.0, config.noise_std, size=x.shape).astype(np.float32)
            target = labels[idx] * causal
            logits = predictor(Tensor(x))
            loss = F.binary_cross_entropy_with_logits(logits, target,
                                                      pos_weight=config.pos_weight)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            last_loss = float(loss.data)

    # Evaluate block-level recall/precision on the clean training inputs.
    scores = predictor.approximate_scores(inputs)
    pred = (1.0 / (1.0 + np.exp(-scores))) > 0.5
    pred = pred & causal.astype(bool)[None, None]
    target = (labels > 0.5) & causal.astype(bool)[None, None]
    recall, precision = _recall_precision(pred, target)
    causal_blocks = max(float(causal.sum()), 1.0)
    per_sample_head = pred.shape[0] * pred.shape[1]
    return PredictorMetrics(recall=recall, precision=precision,
                            loss=last_loss, epochs=config.epochs,
                            predicted_density=float(pred.sum())
                            / (per_sample_head * causal_blocks),
                            label_density=float(target.sum())
                            / (per_sample_head * causal_blocks))


# ---------------------------------------------------------------------------
# MLP predictor
# ---------------------------------------------------------------------------

def mlp_token_block_labels(activations: np.ndarray, block_size: int,
                           threshold: float = 0.02) -> np.ndarray:
    """Per-token binary labels: is this neuron block *important* for the token?

    Importance is the block's share of the token's activation mass relative to
    the token's peak block, thresholded the same way the exposer filters the
    sequence-level pattern — so the predictor learns the filtered pattern the
    operators will actually execute, not the raw (shadowy) activity.
    """
    activations = np.asarray(activations)
    batch, seq, hidden = activations.shape
    n_blocks = -(-hidden // block_size)
    padded = n_blocks * block_size
    mass = np.abs(activations).astype(np.float32)
    if padded != hidden:
        mass = np.pad(mass, ((0, 0), (0, 0), (0, padded - hidden)))
    block_mass = mass.reshape(batch, seq, n_blocks, block_size).sum(axis=-1)
    peak = np.maximum(block_mass.max(axis=-1, keepdims=True), 1e-12)
    return (block_mass >= threshold * peak).astype(np.float32)


def train_mlp_predictor(predictor: MLPPredictor,
                        inputs: np.ndarray, activations: np.ndarray,
                        exposer: MLPExposer,
                        config: Optional[PredictorTrainingConfig] = None
                        ) -> PredictorMetrics:
    """Train one layer's MLP neuron-block predictor on collected data."""
    config = config or PredictorTrainingConfig()
    rng = np.random.default_rng(config.seed)
    token_labels = mlp_token_block_labels(activations, predictor.block_size,
                                          threshold=exposer.threshold)

    optimizer = Adam(predictor.trainable_parameters(), lr=config.lr)
    n_samples = inputs.shape[0]
    last_loss = 0.0
    for _ in range(config.epochs):
        order = rng.permutation(n_samples)
        for start in range(0, n_samples, config.batch_size):
            idx = order[start:start + config.batch_size]
            x = inputs[idx]
            if config.noise_std > 0:
                x = x + rng.normal(0.0, config.noise_std, size=x.shape).astype(np.float32)
            target = token_labels[idx]
            logits = predictor(Tensor(x))
            loss = F.binary_cross_entropy_with_logits(logits, target,
                                                      pos_weight=config.pos_weight)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            last_loss = float(loss.data)

    # Sequence-level evaluation against the exposer's ground-truth block sets
    # (this is the recall the paper reports: 96.35 % on average).
    recalls, precisions = [], []
    for i in range(n_samples):
        truth = np.zeros(predictor.n_blocks, dtype=bool)
        truth[exposer.active_blocks(activations[i:i + 1])] = True
        pred = np.zeros(predictor.n_blocks, dtype=bool)
        pred[predictor.predict_active_blocks(inputs[i:i + 1])] = True
        r, p = _recall_precision(pred, truth)
        recalls.append(r)
        precisions.append(p)
    return PredictorMetrics(recall=float(np.mean(recalls)),
                            precision=float(np.mean(precisions)),
                            loss=last_loss, epochs=config.epochs)
