"""Attention sparse-pattern predictor (paper Section V, Figure 5a).

For every layer, the predictor owns per-head trainable low-rank matrices
``W_Q_hat, W_K_hat ∈ R^{d×r}`` (``r << d``).  Given the layer input ``X`` it

1. down-samples the sequence dimension by taking one representative token per
   attention block (the paper down-samples ``s -> sqrt(s)``; choosing the
   block stride makes the approximate score matrix land directly on the block
   grid the operators use),
2. computes approximate scores ``S_hat = (X W_Q_hat)(X W_K_hat)^T`` per head,
3. thresholds them into a binary block mask, reduces over the batch
   dimension, and
4. snaps each head's mask to the closest atomic pattern from the pool, which
   is what the layout lookup expects.

Two code paths exist: :meth:`forward` builds an autograd graph (used by the
offline trainer), while :meth:`predict_patterns` is the allocation-light pure
NumPy path used inside the fine-tuning hot loop, where the predictor runs
under ``no_grad`` and its cost is part of the measured overhead (Figure 10).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.module import Module, Parameter
from repro.sparsity.patterns import PatternPool, block_count, causal_block_mask
from repro.sparsity.predictor.calibration import threshold_block_masks
from repro.tensor import Tensor
from repro.tensor import arena as _arena


class AttentionPredictor(Module):
    """Per-head low-rank approximate-score predictor for one attention layer."""

    def __init__(self, dim: int, num_heads: int, rank: int, block_size: int,
                 pattern_pool: PatternPool, threshold: float = 0.02,
                 coverage: float = 0.95, seed: int = 0):
        super().__init__()
        if rank > dim:
            raise ValueError("predictor rank must not exceed the model dimension")
        rng = np.random.default_rng(seed)
        self.dim = dim
        self.num_heads = num_heads
        self.rank = rank
        self.block_size = block_size
        self.pattern_pool = pattern_pool
        self.threshold = threshold
        self.coverage = coverage
        scale = 1.0 / np.sqrt(dim)
        self.w_q = Parameter(rng.normal(0.0, scale, size=(num_heads, dim, rank)).astype(np.float32),
                             name="predictor.attn.w_q")
        self.w_k = Parameter(rng.normal(0.0, scale, size=(num_heads, dim, rank)).astype(np.float32),
                             name="predictor.attn.w_k")
        # Inference-path memos: representative-token indices per seq_len and
        # the per-head Q/K projections stacked into one (dim, 2·heads·rank)
        # matrix so the probe is a single GEMM.  Invalidated whenever the
        # training path runs (the only place the weights change).
        self._downsample_cache: dict = {}
        self._packed_qk: Optional[np.ndarray] = None
        # Optional fitted decision state (per-head thresholds + snap bar);
        # None preserves the uncalibrated fixed-threshold behaviour exactly.
        self.calibration = None

    def set_calibration(self, calibration) -> None:
        """Attach an :class:`AttentionCalibration` (or None to detach).

        Calibration replaces the fixed logit threshold of :meth:`block_masks`
        with per-head, per-length fitted thresholds, and routes
        :meth:`predict_patterns` through threshold-then-snap instead of the
        sigmoid-mass coverage matcher.
        """
        if calibration is not None and calibration.block_size != self.block_size:
            raise ValueError("calibration block_size does not match the predictor")
        self.calibration = calibration

    # -- shared helpers ------------------------------------------------------------
    def downsample_indices(self, seq_len: int) -> np.ndarray:
        """One representative position per attention block (centre token).

        Memoized per sequence length (the hot loop sees one or two lengths);
        the cached array is read-only.
        """
        cached = self._downsample_cache.get(seq_len)
        if cached is None:
            n_blocks = block_count(seq_len, self.block_size)
            centers = np.arange(n_blocks) * self.block_size + self.block_size // 2
            cached = np.minimum(centers, seq_len - 1)
            cached.setflags(write=False)
            self._downsample_cache[seq_len] = cached
        return cached

    def invalidate_cache(self) -> None:
        """Drop the packed-weight memo (call after mutating w_q/w_k in place)."""
        self._packed_qk = None

    # -- training path (autograd) ----------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        """Approximate block scores ``(batch, heads, n_blocks, n_blocks)``.

        ``x`` is the layer input of shape ``(batch, seq, dim)``; the output is
        the raw (pre-sigmoid) score of each causal block being important.
        """
        batch, seq, dim = x.shape
        idx = self.downsample_indices(seq)
        x_ds = x[:, idx, :]                                     # (batch, nb, dim)
        x_b = x_ds.reshape(batch, 1, len(idx), dim)             # broadcast over heads
        q_hat = x_b.matmul(self.w_q)                            # (batch, heads, nb, r)
        k_hat = x_b.matmul(self.w_k)
        scores = q_hat.matmul(k_hat.swapaxes(-1, -2))           # (batch, heads, nb, nb)
        # Training mutates the weights afterwards, so any packed inference
        # memo built from the old values must be dropped.
        self._packed_qk = None
        return scores * (1.0 / np.sqrt(self.rank))

    # -- inference path (pure NumPy, no graph) -----------------------------------------
    def _packed_weights(self) -> np.ndarray:
        """Per-head W_Q_hat / W_K_hat stacked into one ``(dim, 2·H·r)`` matrix."""
        if self._packed_qk is None:
            h, d, r = self.num_heads, self.dim, self.rank
            packed = np.empty((d, 2 * h * r), dtype=np.float32)
            packed[:, :h * r] = self.w_q.data.transpose(1, 0, 2).reshape(d, h * r)
            packed[:, h * r:] = self.w_k.data.transpose(1, 0, 2).reshape(d, h * r)
            self._packed_qk = packed
        return self._packed_qk

    def approximate_scores(self, x: np.ndarray) -> np.ndarray:
        """NumPy version of :meth:`forward` used in the fine-tuning hot loop.

        One stacked ``(batch·nb, dim) @ (dim, 2·heads·rank)`` GEMM produces
        every head's Q̂ and K̂ at once (the seed ran two per-head einsum
        pairs per call), followed by the small batched Q̂K̂ᵀ product.
        """
        x = np.asarray(x)
        if x.ndim == 2:
            x = x[None]
        batch, seq, dim = x.shape
        idx = self.downsample_indices(seq)
        x_ds = x[:, idx, :]                                     # (batch, nb, dim)
        nb = x_ds.shape[1]
        h, r = self.num_heads, self.rank
        packed = self._packed_weights()
        proj = np.matmul(x_ds.reshape(batch * nb, dim), packed,
                         out=_arena.empty((batch * nb, packed.shape[1]),
                                          x_ds.dtype))
        proj = proj.reshape(batch, nb, 2, h, r)
        q_hat = proj[:, :, 0].swapaxes(1, 2)                    # (batch, heads, nb, r)
        k_hat = proj[:, :, 1].swapaxes(1, 2)
        scores = np.matmul(q_hat, np.swapaxes(k_hat, -1, -2),
                           out=_arena.empty((batch, h, nb, nb), x_ds.dtype))
        _arena.release(proj.base if proj.base is not None else proj)
        scores *= np.float32(1.0 / np.sqrt(self.rank))
        return scores

    def block_masks(self, x: np.ndarray) -> np.ndarray:
        """Binary per-head block masks ``(heads, n_blocks, n_blocks)``.

        Uncalibrated, the scores are thresholded at a fixed bar directly in
        logit space (``σ(s) > p`` iff ``s > log(p / (1-p))``, so no sigmoid
        is materialised).  With a fitted :class:`AttentionCalibration`
        attached, each head is thresholded at its calibrated per-length logit
        threshold instead — placed at the score quantile matching the oracle
        mask's density, which is what closes the predicted-vs-oracle density
        gap.  The batch reduction differs per path: uncalibrated keeps a
        block if *any* sample needs it (the recall-oriented reduction of
        Figure 5); calibrated thresholds the batch-*mean* score, matching
        how the thresholds were fitted and staying invariant to the runtime
        batch size.  Both restrict to the causal triangle and force the
        diagonal.
        """
        x = np.asarray(x)
        seq_len = x.shape[-2]
        scores = self.approximate_scores(x)                     # (batch, heads, nb, nb)
        if self.calibration is not None:
            # Mean over the batch rather than the recall-first any-union: the
            # thresholds were fitted on mean scores (the mean is invariant to
            # the runtime batch size where a union grows denser with it).
            # threshold_block_masks is shared with the calibration fit — the
            # fitted thresholds are only valid while both paths build masks
            # identically.
            tau = self.calibration.thresholds_for(seq_len)
            masks = threshold_block_masks(scores.mean(axis=0), tau)
            _arena.release(scores)
            return masks
        prob_threshold = 0.5 + self.threshold
        if prob_threshold >= 1.0:
            keep = np.zeros(scores.shape[1:], dtype=bool)
        else:
            logit_threshold = np.log(prob_threshold / (1.0 - prob_threshold))
            keep = (scores > logit_threshold).any(axis=0)       # reduce over batch
        _arena.release(scores)
        n_blocks = keep.shape[-1]
        keep &= causal_block_mask(n_blocks)[None]
        diag = np.eye(n_blocks, dtype=bool)
        keep |= diag[None]
        return keep

    def predict_patterns(self, x: np.ndarray) -> List[str]:
        """Atomic pattern name per head for the current batch input ``x``.

        With a fitted calibration attached, each head's scores are
        thresholded at the calibrated per-head/per-length bar and the binary
        mask is snapped onto the cheapest pool pattern retaining
        ``snap_coverage`` of its active blocks — density-matched to the
        oracle by construction, so the predicted layouts recover the
        oracle's structured sparsity instead of over-covering.

        Uncalibrated, each head's predicted block mass (sigmoid confidence
        above the 0.5 decision boundary, averaged over the batch) is matched
        against the pool: the cheapest atomic pattern covering at least
        ``coverage`` of that mass is selected.  Subtracting the 0.5 baseline
        suppresses the uniform background confidence of clearly-inactive
        blocks so the matcher sees the same concentrated mass picture the
        exposer sees.

        The sigmoid / baseline-subtract / clip chain mutates the score buffer
        in place — this runs per layer per refresh inside the hot loop, and
        the only allocation left is the small per-head mass reduction.
        """
        if self.calibration is not None:
            masks = self.block_masks(x)
            return self.pattern_pool.snap_masks(
                masks, coverage=self.calibration.snap_coverage)
        scores = self.approximate_scores(x)                     # (batch, heads, nb, nb)
        np.negative(scores, out=scores)
        np.exp(scores, out=scores)
        scores += 1.0
        np.reciprocal(scores, out=scores)                       # sigmoid
        scores -= 0.5
        np.clip(scores, 0.0, None, out=scores)
        mass = scores.mean(axis=0)                              # (heads, nb, nb)
        _arena.release(scores)
        n_blocks = mass.shape[-1]
        mass *= causal_block_mask(n_blocks)[None]
        return self.pattern_pool.match_many(mass, coverage=self.coverage)

    def overhead_flops(self, seq_len: int, batch: int = 1) -> int:
        """Analytic predictor cost (Cost_Q + Cost_K + Cost_QK of Section V-C)."""
        nb = block_count(seq_len, self.block_size)
        cost_q = batch * self.num_heads * nb * self.dim * self.rank
        cost_k = cost_q
        cost_qk = batch * self.num_heads * nb * nb * self.rank
        return int(cost_q + cost_k + cost_qk)

    def extra_repr(self) -> str:
        return f"heads={self.num_heads}, rank={self.rank}, block={self.block_size}"
