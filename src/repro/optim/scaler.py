"""Mixed-precision emulation and gradient utilities.

The paper fine-tunes with mixed precision (FP16 parameters, FP32
activations).  NumPy has no tensor cores, so the reproduction emulates the
*numerical* aspects that matter for correctness — loss scaling with overflow
detection and gradient clipping — while the memory model
(:mod:`repro.runtime.memory`) accounts for the byte-level savings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from repro.nn.module import Parameter
from repro.tensor import Tensor


@dataclass
class MixedPrecisionConfig:
    """How mixed precision is emulated."""

    enabled: bool = True
    param_dtype: str = "float16"
    compute_dtype: str = "float32"
    init_scale: float = 2.0 ** 10
    growth_factor: float = 2.0
    backoff_factor: float = 0.5
    growth_interval: int = 100

    def param_bytes(self) -> int:
        return np.dtype(self.param_dtype).itemsize

    def compute_bytes(self) -> int:
        return np.dtype(self.compute_dtype).itemsize


class GradScaler:
    """Dynamic loss scaling with overflow detection (torch.cuda.amp style)."""

    def __init__(self, config: MixedPrecisionConfig | None = None):
        self.config = config or MixedPrecisionConfig()
        self.scale = self.config.init_scale if self.config.enabled else 1.0
        self._good_steps = 0
        self.overflow_count = 0

    def scale_loss(self, loss: Tensor) -> Tensor:
        """Multiply the loss by the current scale before ``backward()``."""
        if not self.config.enabled:
            return loss
        return loss * self.scale

    def unscale_and_check(self, params: Iterable[Parameter]) -> bool:
        """Divide gradients by the scale; return True if they are finite."""
        if not self.config.enabled:
            # No scaling means nothing to unscale — and the overflow check
            # exists to catch scaled-FP16 blow-ups, so the per-step
            # full-gradient ``isfinite`` scan is pure overhead here.
            return True
        finite = True
        inv = 1.0 / self.scale
        for param in params:
            if param.grad is None:
                continue
            param.grad = param.grad * inv
            if not np.all(np.isfinite(param.grad)):
                finite = False
        return finite

    def update(self, found_overflow: bool) -> None:
        """Adjust the scale after a step (backoff on overflow, grow otherwise)."""
        if not self.config.enabled:
            return
        if found_overflow:
            self.scale = max(1.0, self.scale * self.config.backoff_factor)
            self._good_steps = 0
            self.overflow_count += 1
        else:
            self._good_steps += 1
            if self._good_steps >= self.config.growth_interval:
                self.scale *= self.config.growth_factor
                self._good_steps = 0


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients to a global L2 norm; returns the pre-clip norm."""
    params = [p for p in params if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if max_norm > 0 and total > max_norm:
        ratio = max_norm / (total + 1e-12)
        for p in params:
            p.grad = p.grad * ratio
    return total
