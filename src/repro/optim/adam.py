"""Adam and AdamW optimizers with flattened single-buffer state.

Adam keeps two FP32 moment buffers per trainable parameter; this is exactly
the optimizer state whose elimination for frozen parameters gives PEFT its
optimizer-step savings (Table I) and part of its memory savings (Figure 8).

Since the flattening pass, the moment buffers of all parameters live in
*one* contiguous ``m`` and one contiguous ``v`` array, with per-parameter
views exposed through :attr:`Adam._m` / :attr:`Adam._v` for introspection.
:meth:`Adam.step` gathers the gradients into a matching flat buffer and runs
the entire elementwise update — moment EMAs, bias correction, the final
``lr * m_hat / (sqrt(v_hat) + eps)`` — as a handful of whole-buffer NumPy
calls instead of a Python loop over parameters.  The flat arithmetic is
ordered exactly like the per-parameter loop, so both paths produce bitwise
identical trajectories (asserted by the optimizer equivalence tests); the
loop path remains for steps where some parameters have no gradient (e.g.
unused adapters) and for mixed-dtype parameter sets.

The flat layout is chosen only when it actually wins: profiling shows the
whole-buffer update beats the loop when parameters are *small and numerous*
(BitFit biases, prompt embeddings, low-rank adapter factors — the PEFT
regime this repo centres on, measured ~3x), because there the per-parameter
NumPy call overhead dominates.  For large matrices (full fine-tuning) the
loop's per-parameter working set stays cache-resident while flat buffers
stream through memory, so parameter sets whose mean size exceeds
:data:`FLAT_MEAN_SIZE_THRESHOLD` elements keep per-parameter state and the
loop path.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter
from repro.optim.base import Optimizer

# Mean parameter size (elements) above which the per-parameter loop path is
# kept: small-and-many parameters are call-overhead-bound (flat wins ~3x),
# big matrices are memory-bound (the loop's cache-resident chunks win).
FLAT_MEAN_SIZE_THRESHOLD = 4096


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) over the provided (trainable) parameters."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay

        dtypes = {p.data.dtype for p in self.params}
        sizes = [int(p.data.size) for p in self.params]
        self._flat_m: Optional[np.ndarray] = None
        # Loop-path scratch (lazily sized per dtype); also needed by flat
        # layouts, whose step() falls back to the loop when a parameter has
        # no gradient.
        self._loop_scratch = {}
        flatten = (len(dtypes) == 1
                   and sum(sizes) / len(sizes) <= FLAT_MEAN_SIZE_THRESHOLD)
        if flatten:
            dtype = dtypes.pop()
            offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
            total = int(offsets[-1])
            # One contiguous buffer per state array, plus exactly two
            # param-population-sized scratch buffers: the gathered gradient
            # (which the update is later written into, once the moment EMAs
            # have consumed it) and one temporary for the EMA/denominator
            # products.  ``state_size_bytes`` reports m+v only, matching the
            # loop path and the analytic memory model.
            self._flat_m = np.zeros(total, dtype=dtype)
            self._flat_v = np.zeros(total, dtype=dtype)
            self._flat_grad = np.empty(total, dtype=dtype)
            self._flat_tmp = np.empty(total, dtype=dtype)

            def views(flat: np.ndarray) -> List[np.ndarray]:
                return [flat[offsets[i]:offsets[i + 1]].reshape(p.data.shape)
                        for i, p in enumerate(self.params)]

            self._m = views(self._flat_m)
            self._v = views(self._flat_v)
            self._grad_views = views(self._flat_grad)
        else:  # mixed dtypes or big-matrix regime: per-parameter buffers
            self._m = [np.zeros_like(p.data) for p in self.params]
            self._v = [np.zeros_like(p.data) for p in self.params]

    def _scratch_views(self, shape, dtype):
        """Two reusable max-parameter-sized scratch views of ``shape``.

        They keep the loop path allocation-free: the seed's expression form
        (``m_hat = m / bias1`` etc.) heap-allocated several parameter-sized
        temporaries per parameter per step, which is what the tracemalloc
        steadiness gate flags on replayed steps.
        """
        pair = self._loop_scratch.get(dtype.str)
        if pair is None:
            size = max(int(p.data.size) for p in self.params
                       if p.data.dtype == dtype)
            pair = (np.empty(size, dtype), np.empty(size, dtype))
            self._loop_scratch[dtype.str] = pair
        n = int(np.prod(shape, dtype=np.int64))
        return pair[0][:n].reshape(shape), pair[1][:n].reshape(shape)

    def _apply_weight_decay(self, param: Parameter, grad: np.ndarray) -> np.ndarray:
        if self.weight_decay:
            return grad + self.weight_decay * param.data
        return grad

    def _apply_weight_decay_flat(self) -> None:
        """Fold L2 decay into the gathered flat gradient (coupled Adam form)."""
        if self.weight_decay:
            for param, gview in zip(self.params, self._grad_views):
                gview += self.weight_decay * param.data

    def _step_param(self, index: int, param: Parameter,
                    bias1: float, bias2: float) -> None:
        """Per-parameter update (fallback path; allocation-free).

        Every elementwise op matches the original expression form
        one-for-one (scalar multiplies commuted where needed — IEEE float
        multiplication is bitwise commutative), so trajectories are bitwise
        identical to the seed's temporaries-allocating version.
        """
        t1, t2 = self._scratch_views(param.data.shape, param.data.dtype)
        grad = param.grad
        if self.weight_decay and type(self) is Adam:
            # grad + weight_decay * param.data, into scratch (commuted add).
            np.multiply(param.data, self.weight_decay, out=t2)
            t2 += grad
            grad = t2
        else:
            grad = self._apply_weight_decay(param, grad)
        m = self._m[index]
        v = self._v[index]
        m *= self.beta1
        np.multiply(grad, 1.0 - self.beta1, out=t1)
        m += t1
        v *= self.beta2
        np.multiply(grad, 1.0 - self.beta2, out=t1)
        t1 *= grad
        v += t1                                # grad (and t2) dead from here
        np.divide(v, bias2, out=t2)            # v_hat
        np.sqrt(t2, out=t2)
        t2 += self.eps
        np.divide(m, bias1, out=t1)            # m_hat
        t1 *= self.lr
        t1 /= t2
        param.data -= t1

    def _step_flat(self, bias1: float, bias2: float) -> None:
        """Whole-buffer update; arithmetic ordered exactly like the loop."""
        for param, gview in zip(self.params, self._grad_views):
            np.copyto(gview, param.grad)
        self._apply_weight_decay_flat()
        m, v = self._flat_m, self._flat_v
        g, tmp = self._flat_grad, self._flat_tmp
        m *= self.beta1
        np.multiply(g, 1.0 - self.beta1, out=tmp)
        m += tmp
        v *= self.beta2
        np.multiply(g, 1.0 - self.beta2, out=tmp)
        tmp *= g
        v += tmp
        # The gradient buffer is dead from here on; reuse it for the update.
        np.divide(v, bias2, out=tmp)          # v_hat
        np.sqrt(tmp, out=tmp)
        tmp += self.eps
        np.divide(m, bias1, out=g)            # m_hat
        g *= self.lr
        g /= tmp
        for param, gview in zip(self.params, self._grad_views):
            param.data -= gview

    def step(self) -> None:
        self.step_count += 1
        t = self.step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        if self._flat_m is not None and all(p.grad is not None for p in self.params):
            self._step_flat(bias1, bias2)
            return
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            self._step_param(index, param, bias1, bias2)

    # -- flat gradient access (data-parallel exchange) --------------------------
    #
    # The distributed trainer exchanges gradients as ONE contiguous buffer per
    # step (see repro.runtime.comms.GradientAllReducer) — the flat layout this
    # optimizer already maintains for its own update is exactly the transport
    # format, so the gather/scatter below reuse the flat-path offsets when
    # they exist and derive the same layout otherwise (big-matrix regimes keep
    # per-parameter moment state but still exchange through one buffer).

    def _grad_offsets(self) -> np.ndarray:
        offsets = getattr(self, "_grad_offset_cache", None)
        if offsets is None:
            sizes = [int(p.data.size) for p in self.params]
            offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
            self._grad_offset_cache = offsets
        return offsets

    def grad_layout(self):
        """``(total_elements, dtype)`` of the flat gradient population.

        Raises ``ValueError`` for mixed-dtype parameter sets: the shared
        gradient segment is a single typed buffer.
        """
        dtypes = {p.data.dtype for p in self.params}
        if len(dtypes) != 1:
            raise ValueError("data-parallel gradient exchange requires a "
                             f"uniform parameter dtype, got {sorted(map(str, dtypes))}")
        return int(self._grad_offsets()[-1]), dtypes.pop()

    def gather_flat_grad(self, out: np.ndarray) -> None:
        """Copy every ``param.grad`` into the flat buffer ``out`` in place.

        Parameters without a gradient contribute zeros (their reduced mean is
        then exactly the mean of the ranks that did produce one, scaled by
        the participating fraction — in practice every trainable parameter
        receives a gradient each step).
        """
        offsets = self._grad_offsets()
        flat = out.reshape(-1)
        for index, param in enumerate(self.params):
            view = flat[offsets[index]:offsets[index + 1]]
            if param.grad is None:
                view[:] = 0
            else:
                np.copyto(view.reshape(param.data.shape), param.grad)

    def scatter_flat_grad(self, flat: np.ndarray) -> None:
        """Copy the flat buffer back into every ``param.grad``, in place.

        In-place (``np.copyto``) so captured/compiled steps keep their
        recorded gradient buffers; a parameter whose gradient is missing gets
        a fresh array.
        """
        offsets = self._grad_offsets()
        flat = flat.reshape(-1)
        for index, param in enumerate(self.params):
            view = flat[offsets[index]:offsets[index + 1]].reshape(param.data.shape)
            if param.grad is None:
                param.grad = view.copy()
            else:
                np.copyto(param.grad, view)

    # -- detachable per-tenant state (serving) ---------------------------------
    #
    # The multi-tenant service pages whole optimizer states in and out as it
    # switches adapters: parameters and the m/v moments travel as flat slabs
    # in the same offset layout as the gradient exchange above.  Everything is
    # ``np.copyto``-based so the live parameter/moment buffers keep their
    # identity — compiled plans recorded against them stay valid.

    def gather_flat_params(self, out: np.ndarray) -> None:
        """Copy every ``param.data`` into the flat buffer ``out`` in place."""
        offsets = self._grad_offsets()
        flat = out.reshape(-1)
        for index, param in enumerate(self.params):
            np.copyto(flat[offsets[index]:offsets[index + 1]]
                      .reshape(param.data.shape), param.data)

    def scatter_flat_params(self, flat: np.ndarray) -> None:
        """Copy the flat buffer back into every ``param.data``, in place."""
        offsets = self._grad_offsets()
        flat = flat.reshape(-1)
        for index, param in enumerate(self.params):
            np.copyto(param.data,
                      flat[offsets[index]:offsets[index + 1]]
                      .reshape(param.data.shape))

    def gather_flat_state(self, out_m: np.ndarray, out_v: np.ndarray) -> None:
        """Copy the m/v moment buffers into flat slabs, in place."""
        if self._flat_m is not None:
            np.copyto(out_m.reshape(-1), self._flat_m)
            np.copyto(out_v.reshape(-1), self._flat_v)
            return
        offsets = self._grad_offsets()
        fm, fv = out_m.reshape(-1), out_v.reshape(-1)
        for index, param in enumerate(self.params):
            lo, hi = offsets[index], offsets[index + 1]
            np.copyto(fm[lo:hi].reshape(param.data.shape), self._m[index])
            np.copyto(fv[lo:hi].reshape(param.data.shape), self._v[index])

    def scatter_flat_state(self, m: np.ndarray, v: np.ndarray) -> None:
        """Copy flat m/v slabs back into the live moment buffers, in place."""
        if self._flat_m is not None:
            np.copyto(self._flat_m, m.reshape(-1))
            np.copyto(self._flat_v, v.reshape(-1))
            return
        offsets = self._grad_offsets()
        fm, fv = m.reshape(-1), v.reshape(-1)
        for index, param in enumerate(self.params):
            lo, hi = offsets[index], offsets[index + 1]
            np.copyto(self._m[index], fm[lo:hi].reshape(param.data.shape))
            np.copyto(self._v[index], fv[lo:hi].reshape(param.data.shape))

    def plan_tail(self):
        """Pre-validated flat update for the full-step compiler's tail.

        The compiled steady-state step guarantees every trainable parameter
        receives a gradient, so the per-call ``all(p.grad is not None)`` scan
        of :meth:`step` is dead work there.  Returns a closure running
        exactly the flat update :meth:`step` would choose (bitwise-identical
        trajectories), or None when the flat layout is not in use — the
        caller then keeps calling :meth:`step`.
        """
        if self._flat_m is None:
            return None

        def tail() -> None:
            self.step_count += 1
            t = self.step_count
            self._step_flat(1.0 - self.beta1 ** t, 1.0 - self.beta2 ** t)

        return tail

    def state_size_bytes(self) -> int:
        return int(sum(m.nbytes + v.nbytes for m, v in zip(self._m, self._v)))


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def _apply_weight_decay(self, param: Parameter, grad: np.ndarray) -> np.ndarray:
        if self.weight_decay:
            # Decoupled decay applied directly to the weights.
            param.data -= self.lr * self.weight_decay * param.data
        return grad

    def _apply_weight_decay_flat(self) -> None:
        if self.weight_decay:
            for param in self.params:
                param.data -= self.lr * self.weight_decay * param.data
