"""Adam and AdamW optimizers.

Adam keeps two FP32 moment buffers per trainable parameter; this is exactly
the optimizer state whose elimination for frozen parameters gives PEFT its
optimizer-step savings (Table I) and part of its memory savings (Figure 8).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.base import Optimizer


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) over the provided (trainable) parameters."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def _apply_weight_decay(self, param: Parameter, grad: np.ndarray) -> np.ndarray:
        if self.weight_decay:
            return grad + self.weight_decay * param.data
        return grad

    def step(self) -> None:
        self.step_count += 1
        t = self.step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = self._apply_weight_decay(param, param.grad)
            m = self._m[index]
            v = self._v[index]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_size_bytes(self) -> int:
        return int(sum(m.nbytes + v.nbytes for m, v in zip(self._m, self._v)))


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def _apply_weight_decay(self, param: Parameter, grad: np.ndarray) -> np.ndarray:
        if self.weight_decay:
            # Decoupled decay applied directly to the weights.
            param.data -= self.lr * self.weight_decay * param.data
        return grad
