"""Stochastic gradient descent with optional momentum and weight decay."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.base import Optimizer


class SGD(Optimizer):
    """Plain SGD: ``p -= lr * (grad + weight_decay * p)`` with momentum buffer."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params] if momentum else None

    def step(self) -> None:
        self.step_count += 1
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self._velocity is not None:
                self._velocity[index] = self.momentum * self._velocity[index] + grad
                grad = self._velocity[index]
            param.data -= self.lr * grad

    def state_size_bytes(self) -> int:
        if self._velocity is None:
            return 0
        return int(sum(v.nbytes for v in self._velocity))
