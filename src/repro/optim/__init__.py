"""Optimizers and mixed-precision helpers for fine-tuning.

The optimizer step is the phase PEFT shrinks (Table I of the paper): with
most parameters frozen, Adam state is kept only for the trainable subset.
The implementations therefore iterate ``trainable_parameters()`` rather than
all parameters, so the step cost observed by the trainer scales with the
number of trainable parameters exactly as in the paper.
"""

from repro.optim.sgd import SGD
from repro.optim.adam import Adam, AdamW
from repro.optim.scaler import GradScaler, MixedPrecisionConfig, clip_grad_norm

__all__ = ["SGD", "Adam", "AdamW", "GradScaler", "MixedPrecisionConfig", "clip_grad_norm"]
