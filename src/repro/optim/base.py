"""Optimizer base class operating on :class:`repro.nn.Parameter` objects."""

from __future__ import annotations

from typing import Iterable, List

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer holding a list of parameters and per-parameter state."""

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = [p for p in params]
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.step_count = 0

    def zero_grad(self) -> None:
        """Clear accumulated gradients on all managed parameters."""
        for param in self.params:
            param.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def state_size_bytes(self) -> int:
        """Bytes of optimizer state (used by the analytic memory model)."""
        return 0

    def num_parameters(self) -> int:
        return int(sum(p.numel() for p in self.params))
