"""Free-function tensor operations re-exported for convenient importing.

The elementary operations live as methods on :class:`repro.tensor.Tensor`;
graph-level helpers (concatenation, stacking, embedding lookup and the
``custom_op`` extension hook used by the sparse kernels) are defined in
:mod:`repro.tensor.tensor` and surfaced here under a stable module path.
"""

from repro.tensor.tensor import (
    Tensor,
    concatenate,
    custom_op,
    embedding_lookup,
    stack,
    where,
)

__all__ = ["Tensor", "concatenate", "custom_op", "embedding_lookup", "stack", "where"]
