"""Core :class:`Tensor` type with reverse-mode automatic differentiation.

The engine follows the classic tape-based design: every differentiable
operation produces a new ``Tensor`` that remembers its parents and a closure
computing the local vector-Jacobian product.  Calling :meth:`Tensor.backward`
performs a topological sort of the recorded graph and accumulates gradients
into the ``grad`` attribute of every tensor created with
``requires_grad=True``.

Only the operations needed by the transformer / PEFT / LongExposure stack are
implemented, but they are implemented for arbitrary batch dimensions with
full NumPy broadcasting semantics so that the same code path serves the tiny
unit-test models and the benchmark models.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.tensor import arena as _arena
from repro.tensor import plan as _plan

ArrayLike = Union[np.ndarray, float, int, "Tensor", Sequence]

# Monotonic count of graph-node constructions (``Tensor._make`` calls).  The
# full-step compiler's contract is that a replayed step builds *zero* nodes;
# the alloc tests assert it on this counter.
_NODE_BUILDS = 0


def node_build_count() -> int:
    """Total graph nodes built so far (monotonic; diff across a step)."""
    return _NODE_BUILDS

# ---------------------------------------------------------------------------
# global autograd switch (mirrors torch.no_grad)
# ---------------------------------------------------------------------------

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction.

    Used for inference-style passes such as predictor data collection and
    downstream-task evaluation where gradients are not needed; it keeps the
    memory footprint of those passes at the inference level, matching the
    paper's observation that PEFT forward passes mirror inference.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape`` after broadcasting.

    NumPy broadcasting may have expanded the operand along leading axes or
    along axes of size one; the corresponding gradient must be summed back.
    """
    if grad.shape == shape:
        return grad
    # Sum over extra leading dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over broadcast (size-1) dimensions.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _grad_aliased(buf: np.ndarray, grads: dict) -> bool:
    """Whether any pending gradient is (a view of) ``buf``.

    Guards the backward pass's early buffer release: closures may return the
    incoming gradient itself (``__add__``) or a view of it (``reshape`` /
    ``transpose`` backwards), in which case the buffer is still live.
    """
    for value in grads.values():
        if value is buf or value.base is buf:
            return True
    return False


def _reshape_through_arena(src: np.ndarray, shape) -> np.ndarray:
    """Reshape ``src``, sending any unavoidable copy through the arena.

    A C-contiguous source reshapes as a zero-cost view.  When numpy may
    have to copy (non-contiguous source, e.g. ``merge_heads`` after a
    transpose) and a buffer arena is active, the data lands in a recycled
    arena buffer instead of fresh heap — this is what keeps replayed capture
    steps free of per-step allocations.  (The gate is contiguity, not exact
    view-compatibility: probing the latter via a ``view().shape =``
    assignment internally allocates the very copy it is meant to avoid.)
    While a forward recorder is installed the plain heap copy is kept:
    recorded outputs are plan-owned and must survive the arena's generation
    recycling.
    """
    if src.flags.c_contiguous:
        return src.reshape(shape)
    if _plan._RECORDER is None and _arena.active() is not None:
        buf = _arena.empty(src.shape, src.dtype)
        np.copyto(buf, src)
        return buf.reshape(shape)
    return src.reshape(shape)


def _binary_ufunc_key(ufunc, a: np.ndarray, b: np.ndarray):
    """Output (shape, dtype) for a binary ufunc over ``a`` and ``b``."""
    shape = np.broadcast_shapes(a.shape, b.shape)
    dtype = np.result_type(a, b)
    if ufunc is np.divide and dtype.kind not in "fc":
        # True division promotes integer operands to float64; result_type
        # alone would hand the ufunc an integer out buffer it cannot cast to.
        dtype = np.dtype(np.float64)
    return shape, dtype


def _binary_out(ufunc, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Apply a binary ufunc, writing into an arena buffer when one is active.

    Values are identical to ``ufunc(a, b)`` — only the output buffer's
    provenance changes, which is what keeps captured and uncaptured
    execution bitwise identical.  While a forward recorder is installed the
    output is a plan-owned plain buffer instead (never from the arena, whose
    generation recycling must not reclaim plan buffers) and the call is
    recorded as a replay thunk over the same operand buffers.
    """
    rec = _plan._RECORDER
    if rec is not None:
        shape, dtype = _binary_ufunc_key(ufunc, a, b)
        out = np.empty(shape, dtype)

        def run(ufunc=ufunc, a=a, b=b, out=out):
            ufunc(a, b, out=out)

        run()
        rec.record(run, (a, b), (out,), tag=ufunc.__name__)
        return out
    arena = _arena.active()
    if arena is None:
        return ufunc(a, b)
    shape, dtype = _binary_ufunc_key(ufunc, a, b)
    return ufunc(a, b, out=arena.take(shape, dtype))


def _matmul_out(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``np.matmul`` with an arena output buffer for the ndim >= 2 case."""
    rec = _plan._RECORDER
    if rec is not None:
        if a.ndim < 2 or b.ndim < 2:
            # No stable out-buffer form for the vector cases; the step falls
            # back to PR-5 backward-only capture.
            rec.fail("vector matmul has no replayable out-buffer form")
            return np.matmul(a, b)
        shape = (np.broadcast_shapes(a.shape[:-2], b.shape[:-2])
                 + (a.shape[-2], b.shape[-1]))
        out = np.empty(shape, np.result_type(a, b))

        def run(a=a, b=b, out=out):
            np.matmul(a, b, out=out)

        run()
        rec.record(run, (a, b), (out,), tag="matmul")
        return out
    arena = _arena.active()
    if arena is None or a.ndim < 2 or b.ndim < 2:
        return np.matmul(a, b)
    shape = (np.broadcast_shapes(a.shape[:-2], b.shape[:-2])
             + (a.shape[-2], b.shape[-1]))
    return np.matmul(a, b, out=arena.take(shape, np.result_type(a, b)))


def _gather_add_rows(out: np.ndarray, idx: np.ndarray,
                     upd: np.ndarray) -> None:
    """``out[idx] += upd`` for duplicate-free ``idx``, staged via the arena.

    Numerically identical to the fancy in-place add (gather, elementwise
    add, scatter — the same three steps numpy performs), but the gathered
    rows land in a recycled arena buffer instead of a fresh heap array.
    """
    tmp = _arena.empty(upd.shape, out.dtype)
    # mode="clip" is the only take mode that honours ``out`` without an
    # internal full-size temporary; callers have already bounds-checked.
    np.take(out, idx, axis=0, out=tmp, mode="clip")
    tmp += upd
    out[idx] = tmp
    _arena.release(tmp)


def scatter_add_rows(out: np.ndarray, indices: np.ndarray,
                     updates: np.ndarray) -> None:
    """Duplicate-safe ``out[indices] += updates`` along axis 0, vectorised.

    Replaces ``np.add.at`` (whose per-element indexed inner loop dominates
    the embedding backward at large vocabularies) with the stable-sort +
    ``np.add.reduceat`` segmented reduce also used by
    ``repro.sparsity.ops.layout``, split into two vectorised phases:

    * rows that occur **once** are accumulated with a single fancy ``+=``
      (no per-segment reduce setup — this is what makes the mostly-unique
      uniform-token case fast);
    * rows that occur **multiple times** are compacted and segment-summed
      with ``np.add.reduceat`` (this is what makes the Zipf-distributed
      real-token case fast).

    Measured ~2x over ``np.add.at`` across uniform, Zipfian and small-vocab
    index distributions at GPT-2 embedding shapes.  The result equals
    ``np.add.at`` exactly whenever the per-row sums are order-insensitive
    (e.g. integer-valued updates — asserted by the scatter tests) and to
    float rounding otherwise: ``reduceat`` accumulates long segments
    pairwise, which is at least as accurate as ``add.at``'s sequential
    order.  Negative indices follow NumPy indexing semantics.
    """
    indices = np.asarray(indices).reshape(-1)
    if indices.size == 0:
        return
    if indices.min() < 0:
        # Normalise so aliased positive/negative forms land in one segment.
        indices = np.where(indices < 0, indices + out.shape[0], indices)
    if indices.min() < 0 or indices.max() >= out.shape[0]:
        # Explicit bounds check: the clip-mode takes below would otherwise
        # silently clamp where fancy indexing used to raise.
        raise IndexError("scatter_add_rows: index out of bounds for axis 0 "
                         f"with size {out.shape[0]}")
    updates = np.asarray(updates).reshape(indices.shape[0], *out.shape[1:])
    # Row-sized temporaries (the gathered/compacted update blocks and the
    # segment sums) stage through the arena so replayed capture steps stay
    # free of per-step heap traffic; only index-sized arrays (argsort,
    # nonzero) still allocate, and those are seq_len * 8 bytes, not
    # seq_len * dim.
    order = np.argsort(indices, kind="stable")
    sorted_idx = indices[order]
    row_shape = updates.shape[1:]
    sorted_upd = _arena.empty(updates.shape, updates.dtype)
    np.take(updates, order, axis=0, out=sorted_upd, mode="clip")
    n = sorted_idx.shape[0]
    change = np.empty(n, dtype=bool)
    change[0] = True
    np.not_equal(sorted_idx[1:], sorted_idx[:-1], out=change[1:])
    # A position opens a length-1 segment iff it starts one and the next
    # position starts another (or it is the last position).
    is_single = np.empty(n, dtype=bool)
    is_single[:-1] = change[1:]
    is_single[-1] = True
    is_single &= change
    if is_single.all():
        _gather_add_rows(out, sorted_idx, sorted_upd)
        _arena.release(sorted_upd)
        return
    if is_single.any():
        single_rows = np.nonzero(is_single)[0]
        single_upd = _arena.empty((single_rows.shape[0],) + row_shape,
                                  sorted_upd.dtype)
        np.take(sorted_upd, single_rows, axis=0, out=single_upd, mode="clip")
        _gather_add_rows(out, sorted_idx[single_rows], single_upd)
        _arena.release(single_upd)
        multi_rows = np.nonzero(np.logical_not(is_single, out=is_single))[0]
        multi_upd = _arena.empty((multi_rows.shape[0],) + row_shape,
                                 sorted_upd.dtype)
        np.take(sorted_upd, multi_rows, axis=0, out=multi_upd, mode="clip")
        _arena.release(sorted_upd)
        sorted_idx = sorted_idx[multi_rows]
        sorted_upd = multi_upd
        change = np.empty(sorted_idx.shape[0], dtype=bool)
        change[0] = True
        np.not_equal(sorted_idx[1:], sorted_idx[:-1], out=change[1:])
    starts = np.nonzero(change)[0]
    sums = _arena.empty((starts.shape[0],) + row_shape, sorted_upd.dtype)
    np.add.reduceat(sorted_upd, starts, axis=0, out=sums)
    _gather_add_rows(out, sorted_idx[starts], sums)
    _arena.release(sorted_upd, sums)


def _scatter_add_index(out: np.ndarray, index, grad: np.ndarray) -> None:
    """Scatter-add for an advanced ``__getitem__`` index (gradient of a gather).

    Integer-array indices (the token-gather and row/column-pick patterns the
    stack actually uses) are linearised and routed through
    :func:`scatter_add_rows`; anything else — boolean masks, mixed
    array/slice tuples — falls back to ``np.add.at``, which handles full
    NumPy advanced-indexing semantics.
    """
    parts = index if isinstance(index, tuple) else (index,)
    arrays = []
    for part in parts:
        if isinstance(part, (np.ndarray, list)):
            array = np.asarray(part)
            if np.issubdtype(array.dtype, np.integer):
                arrays.append(array)
                continue
        arrays = None
        break
    if not arrays:  # non-integer parts present (or empty tuple): general path
        np.add.at(out, index, grad)
        return
    n_axes = len(arrays)
    arrays = [np.where(a < 0, a + dim, a) if a.size and a.min() < 0 else a
              for a, dim in zip(arrays, out.shape)]
    if n_axes == 1:
        scatter_add_rows(out, arrays[0], grad)
        return
    linear = np.ravel_multi_index(tuple(arrays), out.shape[:n_axes])
    flat_view = out.reshape(-1, *out.shape[n_axes:])
    scatter_add_rows(flat_view, linear, grad)


def _graph_freed_sentinel(grad):  # pragma: no cover - never invoked
    raise RuntimeError("freed graph sentinel should never be called")


# Marks interior nodes whose closure was dropped by a completed backward pass
# (distinguishable from the ``None`` of genuine leaf tensors).
_GRAPH_FREED = _graph_freed_sentinel


# ---------------------------------------------------------------------------
# step capture: creation-order tape + planned backward replay
# ---------------------------------------------------------------------------
#
# The step-capture runtime (repro.runtime.arena.StepCapture) records one
# warm step's backward schedule and replays it on subsequent steps.  The
# tensor core contributes two hooks:
#
# * a **tape** — while one is installed via ``set_tape``, every grad-carrying
#   tensor created by ``Tensor._make`` is appended in creation order.  The
#   tape gives later steps stable *positional* identities for graph nodes
#   (the Tensor objects themselves are rebuilt every step);
# * a **plan** — ``backward(record=True, tape=...)`` runs the normal
#   DFS-ordered pass and records the processed schedule as tape positions
#   (plus direct references for persistent leaves such as parameters).
#   ``backward(plan=..., tape=...)`` then skips the topological re-sort
#   entirely: it validates that the new tape wires up exactly like the
#   recorded one (cheap integer/identity checks) and executes the recorded
#   schedule.  Because the replayed order *is* the recorded DFS order,
#   captured and uncaptured backward passes are bitwise identical.

_TAPE: Optional[List["Tensor"]] = None


def set_tape(tape: Optional[List["Tensor"]]) -> Optional[List["Tensor"]]:
    """Install (or clear) the recording tape; returns the previous tape."""
    global _TAPE
    previous = _TAPE
    _TAPE = tape
    return previous


def current_tape() -> Optional[List["Tensor"]]:
    return _TAPE


class PlanMismatchError(RuntimeError):
    """The current step's graph no longer matches the recorded plan.

    Raised by :meth:`Tensor.backward` *before* any gradient is touched, so
    the caller can fall back to the ordinary DFS pass and re-capture.
    """


class TapePlan:
    """A recorded backward schedule over tape positions.

    ``entries`` holds the processing order: an ``int`` indexes the step's
    tape (interior node), anything else is a direct reference to a
    persistent leaf (parameter).  ``parent_specs`` mirrors ``entries`` and
    pins the wiring of each interior node: per parent, an ``int`` tape
    position, a direct leaf reference, or ``None`` for constants whose
    identity is irrelevant to the backward (they carry no gradient).
    """

    __slots__ = ("tape_length", "root_index", "entries", "parent_specs")

    def __init__(self, tape_length: int, root_index: int,
                 entries: tuple, parent_specs: tuple):
        self.tape_length = tape_length
        self.root_index = root_index
        self.entries = entries
        self.parent_specs = parent_specs

    def __len__(self) -> int:
        return len(self.entries)


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        value = value.data
    array = np.asarray(value)
    if dtype is not None and array.dtype != dtype:
        array = array.astype(dtype)
    elif array.dtype == np.float64:
        # Default compute precision mirrors the paper's FP32 activations.
        array = array.astype(np.float32)
    return array


class Tensor:
    """A NumPy array plus the bookkeeping needed for reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to ``numpy.ndarray``.  Float64 inputs are
        down-cast to float32, the default compute precision of the stack.
    requires_grad:
        Whether gradients should be accumulated for this tensor.
    name:
        Optional human-readable label used in profiling and debugging output.
    """

    __slots__ = ("data", "grad", "requires_grad", "name", "_backward", "_parents")

    def __init__(self, data: ArrayLike, requires_grad: bool = False, name: str = ""):
        self.data: np.ndarray = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self.name = name
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()

    # -- basic introspection ------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numel(self) -> int:
        return int(self.data.size)

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False, name=self.name)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad, name=self.name)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.data.shape}, dtype={self.data.dtype}{flag}{label})"

    def __len__(self) -> int:
        return self.data.shape[0]

    # -- graph construction helpers -----------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Iterable["Tensor"],
              backward: Optional[Callable[[np.ndarray], None]]) -> "Tensor":
        global _NODE_BUILDS
        _NODE_BUILDS += 1
        rec = _plan._RECORDER
        if rec is not None:
            # Every node built during a recorded forward must be covered by a
            # replay thunk or a view note — frozen-region ops included, since
            # staged inputs change between replays.  The recorder's coverage
            # check (created == noted) enforces this at compile time.
            rec.created += 1
        parents = tuple(parents)
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
            if _TAPE is not None:
                _TAPE.append(out)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # -- backward pass --------------------------------------------------------
    def backward(self, grad: Optional[ArrayLike] = None,
                 retain_graph: bool = False,
                 tape: Optional[List["Tensor"]] = None,
                 plan: Optional[TapePlan] = None,
                 record: bool = False) -> Optional[TapePlan]:
        """Back-propagate from this tensor through the recorded graph.

        ``grad`` defaults to ones for scalar outputs (the typical loss case).

        Every tensor in the graph receives exactly one accumulation via a
        single path: contributions are merged into a pending-gradient map as
        children are processed, and a node's total is either propagated
        through its ``_backward`` closure (interior node) or added to
        ``.grad`` (leaf) when the node itself is reached in reverse
        topological order.  Pending gradients are accumulated in place
        (``np.add(..., out=...)``) once this pass owns the buffer, and each
        consumed node's closure and parent references are dropped as soon as
        its contribution has been propagated — the closures hold the
        full-size forward temporaries, so this releases the bulk of the
        graph's memory mid-backward.  Pass ``retain_graph=True`` to keep the
        graph alive for a second backward over the same tape.

        Step capture (see :mod:`repro.runtime.arena`):

        * ``record=True`` with ``tape`` (the creation-order list this step
          was recorded on) additionally returns a :class:`TapePlan` encoding
          the processed DFS schedule as tape positions — or ``None`` when the
          graph is not capturable (interior nodes created outside the tape).
        * ``plan`` with ``tape`` *replays* a recorded plan: the topological
          sort is skipped and the recorded schedule executed after a cheap
          structural validation.  Raises :class:`PlanMismatchError` — before
          touching any gradient — when the graph changed.  The replayed order
          is the recorded DFS order, so results are bitwise identical to the
          unplanned pass.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if self._backward is _GRAPH_FREED:
            raise RuntimeError(
                "backward() through a graph that has already been freed; pass "
                "retain_graph=True to the first backward() to keep it alive")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            seed = np.ones_like(self.data)
            seed_owned = True
        else:
            if isinstance(grad, Tensor):
                grad = grad.data
            seed = np.asarray(grad, dtype=self.data.dtype)
            # ``asarray`` copies on dtype conversion; only then is the buffer
            # exclusively ours to mutate.
            seed_owned = seed is not grad

        if plan is not None:
            if tape is None:
                raise ValueError("replaying a plan requires the step's tape")
            schedule = self._validated_schedule(tape, plan)
            self._execute_backward(schedule, seed, seed_owned, retain_graph)
            return None

        # Topological order via iterative DFS (avoids recursion limits for
        # deep transformer graphs).
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        schedule = tuple(reversed(topo))
        recorded = None
        if record:
            if tape is None:
                raise ValueError("recording a plan requires the step's tape")
            recorded = self._record_plan(tape, schedule)
        self._execute_backward(schedule, seed, seed_owned, retain_graph)
        return recorded

    def _record_plan(self, tape: List["Tensor"],
                     schedule: Tuple["Tensor", ...]) -> Optional[TapePlan]:
        """Encode ``schedule`` as tape positions; None if not capturable."""
        pos = {id(t): i for i, t in enumerate(tape)}
        root_index = pos.get(id(self))
        if root_index is None:
            return None
        entries: List = []
        specs: List = []
        for node in schedule:
            idx = pos.get(id(node))
            if idx is None:
                if node._backward is not None:
                    # Interior node created outside the tape: its closure
                    # would not be rebuilt next step — not capturable.
                    return None
                if not node.requires_grad:
                    # Per-step constant; carries no gradient, skip entirely.
                    continue
                # Persistent leaf (parameter): reference it directly.
                entries.append(node)
                specs.append(None)
                continue
            entries.append(idx)
            specs.append(tuple(
                pos[id(p)] if id(p) in pos
                else (p if p.requires_grad else None)
                for p in node._parents))
        return TapePlan(len(tape), root_index, tuple(entries), tuple(specs))

    def _validated_schedule(self, tape: List["Tensor"],
                            plan: TapePlan) -> Tuple["Tensor", ...]:
        """Map ``plan`` onto this step's tape, checking the wiring matches."""
        if len(tape) != plan.tape_length:
            raise PlanMismatchError(
                f"tape length changed ({len(tape)} vs recorded "
                f"{plan.tape_length})")
        if tape[plan.root_index] is not self:
            raise PlanMismatchError("backward root is not at the recorded "
                                    "tape position")
        schedule: List[Tensor] = []
        for entry, spec in zip(plan.entries, plan.parent_specs):
            if type(entry) is not int:
                schedule.append(entry)            # persistent leaf
                continue
            node = tape[entry]
            parents = node._parents
            if spec is None or len(parents) != len(spec):
                raise PlanMismatchError("node arity changed at tape position "
                                        f"{entry}")
            for parent, expected in zip(parents, spec):
                if expected is None:
                    # Recorded as a gradient-free constant: identity is
                    # irrelevant, but it must *still* be gradient-free — a
                    # parameter unfrozen after capture would otherwise have
                    # its gradient silently dropped (it is absent from the
                    # recorded schedule), breaking the never-wrong contract.
                    if parent.requires_grad:
                        raise PlanMismatchError(
                            f"recorded constant parent at tape position "
                            f"{entry} now requires grad")
                    continue
                if type(expected) is int:
                    if tape[expected] is not parent:
                        raise PlanMismatchError(
                            f"graph wiring changed at tape position {entry}")
                elif expected is not parent:
                    raise PlanMismatchError(
                        f"leaf identity changed at tape position {entry}")
            schedule.append(node)
        return tuple(schedule)

    def _execute_backward(self, schedule: Tuple["Tensor", ...],
                          seed: np.ndarray, seed_owned: bool,
                          retain_graph: bool) -> None:
        """Run the accumulation loop over an already-ordered schedule."""
        arena = _arena.active()
        # Pending gradient per tensor id, plus the set of ids whose pending
        # buffer was allocated by this pass (and is therefore safe to mutate
        # in place — closure outputs may alias each other or the incoming
        # gradient, e.g. ``__add__`` returns the same array for both parents).
        grads = {id(self): seed}
        owned = {id(self)} if seed_owned else set()
        for node in schedule:
            nid = id(node)
            node_grad = grads.pop(nid, None)
            if node_grad is None:
                continue
            backward_fn = node._backward
            if backward_fn is _GRAPH_FREED:
                raise RuntimeError(
                    "backward() reached a node whose graph was freed by an "
                    "earlier backward(); pass retain_graph=True to that call")
            if backward_fn is None:
                # Leaf tensor (parameter or input with requires_grad).
                if node.requires_grad:
                    if node.grad is None:
                        if nid in owned:
                            node.grad = node_grad
                        elif arena is not None:
                            buf = arena.take(node_grad.shape, node_grad.dtype)
                            np.copyto(buf, node_grad)
                            node.grad = buf
                        else:
                            node.grad = node_grad.copy()
                    else:
                        np.add(node.grad, node_grad, out=node.grad)
                continue
            parents = node._parents
            parent_grads = backward_fn(node_grad)
            if not retain_graph:
                # Drop the closure (and the forward temporaries it captured)
                # as soon as its contribution has been propagated; the sentinel
                # makes a second backward over this graph fail loudly instead
                # of silently producing no parameter gradients.
                node._backward = _GRAPH_FREED
                node._parents = ()
            if parent_grads is None:
                continue
            if not isinstance(parent_grads, tuple):
                parent_grads = (parent_grads,)
            for parent, pgrad in zip(parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                raw = pgrad
                pgrad = _unbroadcast(np.asarray(pgrad, dtype=parent.data.dtype),
                                     parent.data.shape)
                pid = id(parent)
                existing = grads.get(pid)
                if existing is None:
                    grads[pid] = pgrad
                    if pgrad is not raw:
                        # Cast or reduction produced a fresh buffer this pass
                        # controls; later contributions may add in place.
                        owned.add(pid)
                elif pid in owned:
                    np.add(existing, pgrad, out=existing)
                else:
                    if arena is not None:
                        buf = arena.take(existing.shape, existing.dtype)
                        np.add(existing, pgrad, out=buf)
                        grads[pid] = buf
                    else:
                        grads[pid] = existing + pgrad
                    owned.add(pid)
            if (arena is not None and nid in owned and arena.owns(node_grad)
                    and not _grad_aliased(node_grad, grads)):
                # This node's gradient buffer is dead (owned by the pass,
                # propagated, and not aliased by any pending gradient):
                # recycle it so later nodes of the same shape — typically the
                # same op in an earlier layer — reuse the hot buffer.
                arena.release(node_grad)

    # -- arithmetic -----------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = _binary_out(np.add, self.data, other.data)

        def backward(grad):
            return grad, grad

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad):
            return (-grad,)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = _binary_out(np.subtract, self.data, other.data)

        def backward(grad):
            return grad, -grad

        return Tensor._make(data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = _binary_out(np.multiply, self.data, other.data)
        a, b = self, other

        def backward(grad):
            return (_binary_out(np.multiply, grad, b.data),
                    _binary_out(np.multiply, grad, a.data))

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = _binary_out(np.divide, self.data, other.data)
        a, b = self, other

        def backward(grad):
            return grad / b.data, -grad * a.data / (b.data ** 2)

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported")
        data = self.data ** exponent
        base = self

        def backward(grad):
            return (grad * exponent * base.data ** (exponent - 1),)

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: ArrayLike) -> "Tensor":
        """Batched matrix multiplication with broadcasting over batch dims."""
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = _matmul_out(self.data, other.data)
        a, b = self, other

        def backward(grad):
            a_data, b_data = a.data, b.data
            if b_data.ndim == 1:
                grad_a = np.multiply.outer(grad, b_data) if a_data.ndim > 1 else grad * b_data
                grad_b = np.tensordot(grad, a_data, axes=(range(grad.ndim), range(a_data.ndim - 1)))
                return grad_a, grad_b
            if a_data.ndim == 1:
                grad_a = np.matmul(grad, np.swapaxes(b_data, -1, -2))
                grad_b = np.multiply.outer(a_data, grad)
                return grad_a, grad_b
            grad_a = _matmul_out(grad, np.swapaxes(b_data, -1, -2))
            grad_b = _matmul_out(np.swapaxes(a_data, -1, -2), grad)
            return _unbroadcast(grad_a, a_data.shape), _unbroadcast(grad_b, b_data.shape)

        return Tensor._make(data, (self, other), backward)

    # -- elementwise nonlinearities -------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad):
            return (grad * data,)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        base = self

        def backward(grad):
            return (grad / base.data,)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad):
            return (grad * 0.5 / data,)

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad):
            return (grad * (1.0 - data ** 2),)

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            return (grad * data * (1.0 - data),)

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad):
            return (grad * mask,)

        return Tensor._make(data, (self,), backward)

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation, as used by GPT-2).

        Powers are expanded into multiplications: ``x ** 3`` on float32 goes
        through NumPy's generic pow loop, which is an order of magnitude
        slower than two vectorised multiplies and dominated the seed's
        forward-pass profile.
        """
        x = self.data
        c = np.float32(np.sqrt(2.0 / np.pi))
        x2 = x * x
        inner = x2 * np.float32(0.044715)
        inner += 1.0
        inner *= x
        inner *= c
        tanh_inner = np.tanh(inner, out=inner)
        data = tanh_inner + 1.0
        data *= x
        data *= 0.5

        def backward(grad):
            sech2 = 1.0 - tanh_inner * tanh_inner
            d_inner = x2 * np.float32(3 * 0.044715)
            d_inner += 1.0
            d_inner *= c
            local = sech2 * d_inner
            local *= x
            local += 1.0 + tanh_inner
            local *= 0.5
            local *= grad
            return (local,)

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad):
            return (grad * sign,)

        return Tensor._make(np.abs(self.data), (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)
        data = np.clip(self.data, low, high)

        def backward(grad):
            return (grad * mask,)

        return Tensor._make(data, (self,), backward)

    # -- reductions -------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(grad):
            grad = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % len(shape) for a in axes):
                    grad = np.expand_dims(grad, ax)
            full = _arena.empty(shape, grad.dtype)
            np.copyto(full, grad)
            return (full,)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        base = self

        def backward(grad):
            grad = np.asarray(grad)
            if axis is None:
                mask = (base.data == data)
                return (mask * grad / mask.sum(),)
            expanded = data if keepdims else np.expand_dims(data, axis)
            g = grad if keepdims else np.expand_dims(grad, axis)
            mask = (base.data == expanded)
            counts = mask.sum(axis=axis, keepdims=True)
            return (mask * g / counts,)

        return Tensor._make(data, (self,), backward)

    # -- shape manipulation -----------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        data = _reshape_through_arena(self.data, shape)
        rec = _plan._RECORDER
        if rec is not None:
            if np.may_share_memory(data, self.data):
                # Pure view: the replayed producer rewrites the base buffer,
                # so the view needs no work of its own.
                rec.note_view()
            else:
                # Non-contiguous source: ``reshape`` produced a C-ordered
                # copy.  Viewing that copy with the source's shape lets
                # ``copyto`` re-do the strided copy in place at replay —
                # identical element order, no per-replay allocation.
                src = self.data
                out_view = data.reshape(original)

                def run(out_view=out_view, src=src):
                    np.copyto(out_view, src)

                rec.record(run, (src,), (data,), tag="reshape_copy")

        def backward(grad):
            # Plain reshape (heap copy when ``grad`` is non-contiguous): the
            # full-step compiler validates this closure against the buffers
            # observed at capture time, so routing the copy through the
            # arena here would hand replays a buffer the validated schedule
            # never saw.  Backward grads of reshape are almost always
            # contiguous (zero-cost view) — the arena routing matters for
            # the forward, where merge_heads-style copies are unavoidable.
            return (grad.reshape(original),)

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)
        rec = _plan._RECORDER
        if rec is not None:
            rec.note_view()          # transpose is always a stride trick

        def backward(grad):
            return (grad.transpose(inverse),)

        return Tensor._make(data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        shape = self.data.shape
        dtype = self.data.dtype

        # Basic indexing (slices / ints / None) never selects the same element
        # twice, so the gradient can be written with a cheap assignment; only
        # advanced indexing (arrays, boolean masks) needs the scatter-add.
        index_parts = index if isinstance(index, tuple) else (index,)
        advanced = any(isinstance(part, (np.ndarray, list)) or
                       (isinstance(part, Tensor)) for part in index_parts)

        def backward(grad):
            full = _arena.zeros(shape, dtype)
            if advanced:
                _scatter_add_index(full, index, grad)
            else:
                full[index] = grad
            return (full,)

        return Tensor._make(data, (self,), backward)

    def pad_sequence_dim(self, axis: int, before: int, after: int) -> "Tensor":
        """Zero-pad along ``axis`` (used by prefix-tuning and block rounding)."""
        pad = [(0, 0)] * self.data.ndim
        pad[axis] = (before, after)
        data = np.pad(self.data, pad)
        slicer = [slice(None)] * self.data.ndim
        slicer[axis] = slice(before, before + self.data.shape[axis])
        slicer = tuple(slicer)

        def backward(grad):
            return (grad[slicer],)

        return Tensor._make(data, (self,), backward)

    # -- comparison helpers (non-differentiable, return numpy) -------------------
    def argmax(self, axis=None) -> np.ndarray:
        return self.data.argmax(axis=axis)

    def __gt__(self, other) -> np.ndarray:
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other) -> np.ndarray:
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other


# ---------------------------------------------------------------------------
# free functions on tensors
# ---------------------------------------------------------------------------

def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]

    def backward(grad):
        grads = []
        start = 0
        for size in sizes:
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, start + size)
            grads.append(grad[tuple(slicer)])
            start += size
        return tuple(grads)

    return Tensor._make(data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new ``axis``."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        return tuple(np.take(grad, i, axis=axis) for i in range(len(tensors)))

    return Tensor._make(data, tensors, backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable selection; ``condition`` is a plain boolean array."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    condition = np.asarray(condition)
    data = np.where(condition, a.data, b.data)

    def backward(grad):
        return grad * condition, grad * (~condition if condition.dtype == bool else 1 - condition)

    return Tensor._make(data, (a, b), backward)


def _check_gather_bounds(indices: np.ndarray, size: int,
                         lo: int = 0) -> None:
    """Raise like fancy indexing would for out-of-range gather indices.

    The gather itself runs ``np.take(..., mode="clip")`` — the only mode
    that honours a preallocated ``out`` without an internal full-size
    temporary — so the raise-on-out-of-bounds contract lives here.  ``lo``
    is ``-size`` at entry points that still accept numpy's negative-index
    form, and 0 on the hot paths where negatives were already normalised
    (clip mode would silently clamp them).
    """
    if indices.size and (int(indices.min()) < lo
                         or int(indices.max()) >= size):
        raise IndexError(
            f"index out of bounds for axis 0 with size {size}")


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` for integer ``indices`` (token embedding)."""
    indices = np.asarray(indices)
    if indices.size and int(indices.min()) < 0:
        # np.take(mode="clip") clamps negatives to 0; normalise them first
        # to keep numpy's negative-index semantics.
        _check_gather_bounds(indices, weight.data.shape[0],
                             lo=-weight.data.shape[0])
        indices = np.where(indices < 0, indices + weight.data.shape[0],
                           indices)
    vocab, dim = weight.data.shape
    rec = _plan._RECORDER
    if rec is not None:
        # Replayable gather: the flat index array is a *view* of the staged
        # input buffer when that buffer is contiguous (token ids change per
        # replay), or a one-off copy for per-step constants (positions).
        idx_flat = indices.reshape(-1)
        w = weight.data
        data = np.empty(indices.shape + (dim,), w.dtype)
        out2d = data.reshape(-1, dim)

        def run(w=w, idx_flat=idx_flat, out2d=out2d, vocab=vocab):
            _check_gather_bounds(idx_flat, vocab)
            np.take(w, idx_flat, axis=0, out=out2d, mode="clip")

        run()
        rec.record(run, (w, idx_flat), (data,), tag="embedding")
    elif _arena.active() is not None:
        # Eager step under an active arena (captured-step replay): gather
        # into a recycled buffer instead of fancy-indexing fresh heap.
        idx_flat = indices.reshape(-1)
        _check_gather_bounds(idx_flat, vocab)
        w = weight.data
        data = _arena.empty(indices.shape + (dim,), w.dtype)
        np.take(w, idx_flat, axis=0, out=data.reshape(-1, dim), mode="clip")
    else:
        data = weight.data[indices]

    def backward(grad):
        full = _arena.zeros((vocab, dim), weight.data.dtype)
        scatter_add_rows(full, indices.reshape(-1), grad.reshape(-1, dim))
        return (full,)

    return Tensor._make(data, (weight,), backward)


def custom_op(data: np.ndarray, parents: Sequence[Tensor],
              backward: Callable[[np.ndarray], Tuple[Optional[np.ndarray], ...]]) -> Tensor:
    """Public hook for registering custom primitives (used by sparse ops)."""
    return Tensor._make(np.asarray(data), parents, backward)
