"""Shape/dtype-keyed buffer arena with generation-based recycling.

PEFT fine-tuning runs thousands of steps with bit-identical shapes, yet the
seed tape allocated fresh output and temporary ndarrays for every op of every
step — for buffers past glibc's mmap threshold that means an mmap/munmap pair
plus a page-fault storm per allocation, every step, forever.  The arena turns
that steady state into buffer *reuse*:

* :meth:`BufferArena.take` returns a buffer for ``(shape, dtype)`` — recycled
  from the free pool when one is available (a *hit*), freshly allocated
  otherwise (a *miss*).  At steady state every take hits and the per-step
  allocation count is zero.
* **Generations** delimit training steps: :meth:`BufferArena.next_generation`
  returns every buffer handed out during the previous step to the free pool
  wholesale.  This is safe because step ``N``'s activations and gradients are
  dead once step ``N + 1`` begins (the trainer zeroes gradients at the end of
  each step); it is the CUDA-graph memory-pool discipline realised for a
  NumPy tape.
* :meth:`BufferArena.release` returns a buffer *mid-generation* — the
  liveness seam.  Ops release their dead temporaries (softmax row maxima, the
  backward's dS buffers, consumed saved activations) so non-overlapping
  buffers share storage within one step: layer ``k``'s backward reuses the
  very buffers layer ``k + 1`` just finished with, which both bounds peak
  memory and keeps the working set cache-hot.

The module also owns the *active arena* switch the allocation seams consult:
:func:`empty` / :func:`zeros` route through the active arena when one is
installed (capture mode) and degrade to plain ``np.empty`` / ``np.zeros``
otherwise, so captured and uncaptured execution run the *same instruction
stream* — only the provenance of the buffers differs, which is what makes
the two modes bitwise identical.

This module lives in ``repro.tensor`` (the lowest layer) so the tensor core
and the fused kernels can import it without cycles; the public runtime entry
point — including the step-capture state machine — is
:mod:`repro.runtime.arena`, which re-exports everything here.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = [
    "BufferArena",
    "active",
    "set_active",
    "scope",
    "empty",
    "zeros",
    "release",
]


class BufferArena:
    """Pool of ndarrays keyed by ``(shape, dtype)`` with generation recycling."""

    __slots__ = ("_free", "_used", "generation", "takes", "hits", "misses",
                 "bytes_allocated", "bytes_held", "releases",
                 "last_generation_misses", "_gen_misses",
                 "max_free_per_key", "free_ttl", "evictions", "_last_take_gen")

    def __init__(self, max_free_per_key: int = 64, free_ttl: int = 8) -> None:
        self._free: Dict[Tuple, List[np.ndarray]] = {}
        self._used: Dict[int, Tuple[Tuple, np.ndarray]] = {}
        self.generation = 0
        self.takes = 0
        self.hits = 0
        self.misses = 0
        self.releases = 0
        self.bytes_allocated = 0      # cumulative bytes of fresh allocations
        self.bytes_held = 0           # current footprint of the whole pool
        self.last_generation_misses = 0
        self._gen_misses = 0
        # Size bound per (shape, dtype) class: layout drift (a sparsity
        # refresh changing block counts, and with them temporary shapes)
        # retires buffers of stale shapes; without a bound those dead free
        # lists grow the pool forever.  Eviction runs at generation
        # boundaries and touches only *idle* keys — keys the finished step
        # never took from — so a steady-state working set of any size is
        # never evicted: an idle key's list is trimmed oldest-first to
        # ``max_free_per_key`` and dropped outright once it has sat unused
        # for ``free_ttl`` generations.  Both are counted in ``evictions``.
        self.max_free_per_key = max_free_per_key
        self.free_ttl = free_ttl
        self.evictions = 0
        self._last_take_gen: Dict[Tuple, int] = {}

    def _push_free(self, key: Tuple, buf: np.ndarray) -> None:
        lst = self._free.get(key)
        if lst is None:
            self._free[key] = [buf]
        else:
            lst.append(buf)

    def _evict_idle(self) -> None:
        """Trim/drop free lists of keys the finished generation never used."""
        dead = []
        for key, lst in self._free.items():
            last = self._last_take_gen.get(key, -1)
            idle = self.generation - last
            # ``idle < 2`` spares period-2 access patterns (the smallest
            # predict-interval cadence) from trim thrash.
            if idle < 2 or not lst:
                continue
            if idle >= self.free_ttl:
                self.evictions += len(lst)
                self.bytes_held -= sum(buf.nbytes for buf in lst)
                dead.append(key)
            elif len(lst) > self.max_free_per_key:
                excess = len(lst) - self.max_free_per_key
                self.evictions += excess
                self.bytes_held -= sum(buf.nbytes for buf in lst[:excess])
                del lst[:excess]
        for key in dead:
            del self._free[key]
            self._last_take_gen.pop(key, None)

    @staticmethod
    def _key(shape, dtype) -> Tuple:
        return (tuple(int(s) for s in shape), np.dtype(dtype).str)

    def take(self, shape, dtype=np.float32, zero: bool = False) -> np.ndarray:
        """Return a buffer of ``shape``/``dtype`` (recycled when possible).

        With ``zero=True`` the buffer is zero-filled; otherwise its contents
        are undefined (like ``np.empty``) and the caller must fully overwrite
        it — every allocation seam in the stack is written that way.
        """
        key = self._key(shape, dtype)
        self.takes += 1
        self._last_take_gen[key] = self.generation
        free = self._free.get(key)
        if free:
            buf = free.pop()
            self.hits += 1
            if zero:
                buf.fill(0)
        else:
            self.misses += 1
            self._gen_misses += 1
            buf = np.zeros(shape, dtype) if zero else np.empty(shape, dtype)
            self.bytes_allocated += buf.nbytes
            self.bytes_held += buf.nbytes
        self._used[id(buf)] = (key, buf)
        return buf

    def release(self, buf: np.ndarray) -> bool:
        """Return ``buf`` to the free pool mid-generation (liveness reuse).

        Only buffers handed out by :meth:`take` in the current generation are
        accepted (identity-matched); anything else — views, foreign arrays —
        is ignored, so callers can release opportunistically.
        """
        entry = self._used.pop(id(buf), None)
        if entry is None:
            return False
        key, owned = entry
        self._push_free(key, owned)
        self.releases += 1
        return True

    def owns(self, buf: np.ndarray) -> bool:
        """Whether ``buf`` is a live arena buffer of the current generation."""
        return id(buf) in self._used

    def next_generation(self) -> None:
        """Recycle every outstanding buffer; call at each step boundary."""
        for key, buf in self._used.values():
            self._push_free(key, buf)
        self._used.clear()
        self._evict_idle()
        self.generation += 1
        self.last_generation_misses = self._gen_misses
        self._gen_misses = 0

    def trim(self) -> int:
        """Drop every *free* buffer (outstanding ones are untouched).

        Bounds the pool across shape regimes: the step-capture runtime calls
        this when the step signature changes, so stale-shape pools (the old
        sequence length's buffers) do not accumulate.  Returns bytes freed.
        """
        freed = 0
        for buffers in self._free.values():
            freed += sum(buf.nbytes for buf in buffers)
        self._free.clear()
        self.bytes_held -= freed
        return freed

    def hit_rate(self) -> float:
        return self.hits / self.takes if self.takes else 0.0

    def stats_dict(self) -> Dict[str, float]:
        """JSON-friendly counters (surfaced as profiler gauges)."""
        return {
            "generation": float(self.generation),
            "takes": float(self.takes),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": self.hit_rate(),
            "bytes_held": float(self.bytes_held),
            "bytes_allocated": float(self.bytes_allocated),
            "last_generation_misses": float(self.last_generation_misses),
            "evictions": float(self.evictions),
        }


# ---------------------------------------------------------------------------
# active-arena switch consulted by the allocation seams
# ---------------------------------------------------------------------------

_ACTIVE: Optional[BufferArena] = None


def active() -> Optional[BufferArena]:
    """The arena currently backing the allocation seams (None = plain NumPy)."""
    return _ACTIVE


def set_active(arena: Optional[BufferArena]) -> Optional[BufferArena]:
    """Install ``arena`` as the active arena; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = arena
    return previous


@contextlib.contextmanager
def scope(arena: Optional[BufferArena]) -> Iterator[Optional[BufferArena]]:
    """Context manager installing ``arena`` for the duration."""
    previous = set_active(arena)
    try:
        yield arena
    finally:
        set_active(previous)


def empty(shape, dtype=np.float32) -> np.ndarray:
    """Arena-aware ``np.empty``: recycled buffer when an arena is active."""
    arena = _ACTIVE
    if arena is not None:
        return arena.take(shape, dtype)
    return np.empty(shape, dtype)


def zeros(shape, dtype=np.float32) -> np.ndarray:
    """Arena-aware ``np.zeros`` (recycled buffers are re-zeroed on reuse)."""
    arena = _ACTIVE
    if arena is not None:
        return arena.take(shape, dtype, zero=True)
    return np.zeros(shape, dtype)


def release(*bufs: np.ndarray) -> None:
    """Return dead temporaries to the active arena (no-op without one)."""
    arena = _ACTIVE
    if arena is not None:
        for buf in bufs:
            arena.release(buf)
