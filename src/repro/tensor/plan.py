"""Forward-plan recording: compile one step's kernel calls into a flat plan.

PR 5's :class:`~repro.tensor.tensor.TapePlan` removed the backward pass's
topological re-sort, but every steady-state step still re-ran the *forward*
through the Python interpreter — rebuilding ``Tensor`` objects, closures and
tape appends for shapes that never change.  This module supplies the forward
half of the full-step compiler:

* :class:`ForwardRecorder` — installed around the capture step's forward via
  :func:`set_recorder`.  Every instrumented op seam (``_binary_out``,
  ``_matmul_out``, the fused kernels, the sparse custom ops) *records* a
  zero-argument replay thunk together with the buffers it reads and writes;
  pure views (``transpose``, contiguous ``reshape``) are *noted* so the
  coverage check still balances.  ``Tensor._make`` independently counts every
  graph node built while a recorder is installed; recording only succeeds
  when ``created == noted`` — any op the seams do not cover (reference-mode
  softmax, fancy indexing, vector matmuls) makes the step fall back to the
  PR-5 backward-only capture instead of silently replaying a partial
  forward.
* :class:`ForwardPlan` — the compiled result: a flat tuple of
  :class:`ForwardEntry` kernel calls over buffers that were bound exactly
  once, at capture.  ``run(threads=1)`` replays the entries in recorded
  order, which makes replay bitwise identical to the interpreted forward
  (same NumPy instruction stream over the same buffers).  For ``threads >
  1`` the plan derives a buffer-level dependency DAG from the entries'
  read/write sets (RAW, WAR and WAW hazards over base-array identity),
  groups entries into topological levels, and dispatches each level across a
  small thread pool — NumPy releases the GIL inside BLAS, so independent
  GEMMs genuinely overlap.  Values are identical to the serial order up to
  floating-point accumulation *between independent entries*, which by
  construction never read each other's output; the result is therefore
  value-identical, and the serial mode remains the bitwise contract.

The recorder switch lives here (lowest layer) so ``tensor.py`` and the fused
kernels can consult it without import cycles; the step-level lifecycle —
when to record, when to replay, when to invalidate — is owned by
:class:`repro.runtime.arena.StepCapture`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ForwardEntry",
    "ForwardRecorder",
    "ForwardPlan",
    "recorder",
    "set_recorder",
]


class ForwardEntry:
    """One recorded kernel call: a replay thunk plus its buffer footprint."""

    __slots__ = ("run", "reads", "writes", "tag")

    def __init__(self, run: Callable[[], None],
                 reads: Sequence[np.ndarray],
                 writes: Sequence[np.ndarray],
                 tag: str = ""):
        self.run = run
        self.reads = tuple(reads)
        self.writes = tuple(writes)
        self.tag = tag

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"ForwardEntry({self.tag or 'op'}, reads={len(self.reads)}, "
                f"writes={len(self.writes)})")


class ForwardRecorder:
    """Collects :class:`ForwardEntry` thunks during one capture forward.

    ``created`` is incremented by ``Tensor._make`` for *every* node built
    while the recorder is installed (frozen-region ops included — staged
    inputs change between replays, so even ``requires_grad=False`` compute
    must be replayed).  ``noted`` is incremented once per op seam that either
    recorded an entry or declared itself a pure view.  The two must balance
    for the plan to be trusted; see :meth:`ok`.
    """

    __slots__ = ("entries", "created", "noted", "extras",
                 "failed", "fail_reason")

    def __init__(self) -> None:
        self.entries: List[ForwardEntry] = []
        self.created = 0
        self.noted = 0
        # Op-private side channels (e.g. cross-entropy's per-replay state).
        self.extras: Dict[str, object] = {}
        self.failed = False
        self.fail_reason = ""

    def record(self, run: Callable[[], None],
               reads: Sequence[np.ndarray],
               writes: Sequence[np.ndarray],
               tag: str = "") -> None:
        """Record one replayable kernel call (counts as one covered node)."""
        self.entries.append(ForwardEntry(run, reads, writes, tag))
        self.noted += 1

    def note_view(self, count: int = 1) -> None:
        """Declare ``count`` nodes as pure views needing no replay work."""
        self.noted += count

    def fail(self, reason: str) -> None:
        """Mark the capture as non-replayable (op with no stable thunk)."""
        if not self.failed:
            self.failed = True
            self.fail_reason = reason

    def ok(self) -> bool:
        """Whether every node built during the forward is covered."""
        if self.failed:
            return False
        if self.created != self.noted:
            self.fail_reason = (f"forward coverage gap: {self.created} nodes "
                                f"built, {self.noted} covered")
            return False
        return True


# ---------------------------------------------------------------------------
# recorder switch consulted by the op seams
# ---------------------------------------------------------------------------

_RECORDER: Optional[ForwardRecorder] = None


def recorder() -> Optional[ForwardRecorder]:
    """The recorder currently collecting forward entries (None = off)."""
    return _RECORDER


def set_recorder(rec: Optional[ForwardRecorder]) -> Optional[ForwardRecorder]:
    """Install ``rec`` as the active recorder; returns the previous one."""
    global _RECORDER
    previous = _RECORDER
    _RECORDER = rec
    return previous


# ---------------------------------------------------------------------------
# compiled plan + dependency-levelled executor
# ---------------------------------------------------------------------------

def _base_id(array: np.ndarray) -> int:
    """Identity of the array's ultimate backing buffer (views collapse)."""
    base = array
    while isinstance(getattr(base, "base", None), np.ndarray):
        base = base.base
    return id(base)


class ForwardPlan:
    """A flat, replayable sequence of kernel calls over pre-bound buffers.

    ``run(threads=1)`` executes the entries in recorded order — the bitwise
    contract.  ``run(threads=n)`` for ``n > 1`` executes the dependency
    levels computed by :meth:`_levelize` with a lazily created thread pool.
    """

    __slots__ = ("entries", "_levels", "_pool", "_pool_threads")

    def __init__(self, entries: Sequence[ForwardEntry]):
        self.entries: Tuple[ForwardEntry, ...] = tuple(entries)
        self._levels: Optional[Tuple[Tuple[ForwardEntry, ...], ...]] = None
        self._pool = None
        self._pool_threads = 0

    def __len__(self) -> int:
        return len(self.entries)

    def _levelize(self) -> Tuple[Tuple[ForwardEntry, ...], ...]:
        """Group entries into topological levels over buffer hazards.

        An entry depends on the latest writer of each buffer it reads (RAW),
        the latest writer of each buffer it writes (WAW), and every reader
        since that write for each buffer it writes (WAR).  Buffer identity is
        the *base* array, so views of one buffer serialize correctly.
        """
        if self._levels is not None:
            return self._levels
        last_writer: Dict[int, int] = {}
        readers_since: Dict[int, List[int]] = {}
        level = [0] * len(self.entries)
        for i, entry in enumerate(self.entries):
            depth = 0
            for buf in entry.reads:
                w = last_writer.get(_base_id(buf))
                if w is not None and level[w] + 1 > depth:
                    depth = level[w] + 1
            for buf in entry.writes:
                bid = _base_id(buf)
                w = last_writer.get(bid)
                if w is not None and level[w] + 1 > depth:
                    depth = level[w] + 1
                for r in readers_since.get(bid, ()):
                    if level[r] + 1 > depth:
                        depth = level[r] + 1
            level[i] = depth
            for buf in entry.reads:
                readers_since.setdefault(_base_id(buf), []).append(i)
            for buf in entry.writes:
                bid = _base_id(buf)
                last_writer[bid] = i
                readers_since[bid] = []
        if level:
            n_levels = max(level) + 1
            grouped: List[List[ForwardEntry]] = [[] for _ in range(n_levels)]
            for i, entry in enumerate(self.entries):
                grouped[level[i]].append(entry)
            self._levels = tuple(tuple(g) for g in grouped)
        else:
            self._levels = ()
        return self._levels

    def level_sizes(self) -> Tuple[int, ...]:
        """Entries per dependency level (profiling/bench introspection)."""
        return tuple(len(lvl) for lvl in self._levelize())

    def run(self, threads: int = 1) -> None:
        """Replay every entry; serial recorded order when ``threads <= 1``."""
        if threads <= 1:
            for entry in self.entries:
                entry.run()
            return
        pool = self._ensure_pool(threads)
        for lvl in self._levelize():
            if len(lvl) == 1:
                lvl[0].run()
                continue
            futures = [pool.submit(entry.run) for entry in lvl]
            for future in futures:
                future.result()

    def _ensure_pool(self, threads: int):
        if self._pool is None or self._pool_threads != threads:
            from concurrent.futures import ThreadPoolExecutor
            if self._pool is not None:
                self._pool.shutdown(wait=True)
            self._pool = ThreadPoolExecutor(max_workers=threads,
                                            thread_name_prefix="fwdplan")
            self._pool_threads = threads
        return self._pool

    def close(self) -> None:
        """Shut down the executor pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_threads = 0
