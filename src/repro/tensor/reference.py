"""Primitive-composition reference implementations of the fused kernels.

Each function here computes exactly the same mathematical operation as its
counterpart in :mod:`repro.tensor.fused`, but builds it out of elementary
:class:`~repro.tensor.tensor.Tensor` operations — one tape node, one closure
and (usually) one full-size temporary per primitive.  They exist for three
reasons:

* **Correctness oracle** — the gradcheck tests differentiate both forms and
  require the fused hand-derived backwards to agree with these
  autograd-derived ones (and with central finite differences).
* **Benchmark baseline** — ``benchmarks/bench_perf_regression.py`` measures
  the fused speedup against this deep-tape execution, which is the cost
  model the paper's fused-operator argument targets.
* **Fallback** — :func:`repro.tensor.fused.set_fused_kernels(False)` routes
  ``repro.tensor.functional`` (and therefore the whole nn/model stack)
  through these implementations, so any suspected fused-kernel bug can be
  bisected by flipping one switch.

Nothing in the training hot path should import this module directly.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tensor.tensor import Tensor, where

__all__ = [
    "softmax",
    "log_softmax",
    "masked_softmax",
    "layer_norm",
    "linear",
    "cross_entropy_logits",
    "scaled_dot_product_attention",
    "streaming_attention",
    "block_sparse_attention",
]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax via max / sub / exp / sum / div primitives (5 tape nodes)."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax via the primitive chain ``x - max - log(sum(exp))``."""
    shifted = x - x.max(axis=axis, keepdims=True)
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def masked_softmax(scores: Tensor, mask: Optional[np.ndarray], axis: int = -1,
                   neg_fill: float = -1e9) -> Tensor:
    """Masked softmax as a where/softmax/re-mask primitive composition.

    Matches the fused kernel's convention: masked positions get exactly zero
    probability (the trailing multiply), fully-masked rows produce zeros.
    """
    if mask is None:
        return softmax(scores, axis=axis)
    mask = np.asarray(mask, dtype=bool)
    filled = where(mask, scores, Tensor(np.float32(neg_fill)))
    shifted = filled - filled.max(axis=axis, keepdims=True)
    exp = shifted.exp() * Tensor(mask.astype(np.float32))
    denom = exp.sum(axis=axis, keepdims=True)
    # Keep the denominator in the graph (the softmax gradient flows through
    # it); the additive constant only rescues fully-masked all-zero rows.
    zero_fix = (denom.data == 0).astype(np.float32)
    return exp / (denom + Tensor(zero_fix))


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """LayerNorm via mean/var/sqrt primitives (~9 tape nodes)."""
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    var = (centered * centered).mean(axis=-1, keepdims=True)
    inv_std = 1.0 / (var + eps).sqrt()
    return centered * inv_std * weight + bias


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           activation: Optional[str] = None) -> Tensor:
    """Affine map (+ optional activation) as transpose/matmul/add primitives."""
    out = x.matmul(weight.transpose(1, 0))
    if bias is not None:
        out = out + bias
    if activation is None or activation == "none":
        return out
    if activation == "relu":
        return out.relu()
    if activation == "gelu":
        return out.gelu()
    if activation == "tanh":
        return out.tanh()
    if activation == "sigmoid":
        return out.sigmoid()
    raise ValueError(f"unsupported activation {activation!r}")


def cross_entropy_logits(logits: Tensor, targets: np.ndarray,
                         ignore_index: int = -100,
                         shift: bool = False) -> Tuple[Tensor, int]:
    """Cross entropy via slice / log-softmax / gather / mask primitives."""
    targets = np.asarray(targets)
    if shift:
        slicer = (slice(None),) * (logits.ndim - 2) + (slice(None, -1), slice(None))
        logits = logits[slicer]
        targets = targets[..., 1:]
    vocab = logits.shape[-1]
    flat_logits = logits.reshape(-1, vocab)
    flat_targets = targets.reshape(-1)
    valid = flat_targets != ignore_index
    n_valid = int(valid.sum())
    safe_targets = np.where(valid, flat_targets, 0)

    log_probs = log_softmax(flat_logits, axis=-1)
    picked = log_probs[np.arange(flat_targets.shape[0]), safe_targets]
    masked = picked * Tensor(valid.astype(np.float32))
    loss = masked.sum() * (-1.0 / max(n_valid, 1))
    return loss, n_valid


def scaled_dot_product_attention(q: Tensor, k: Tensor, v: Tensor,
                                 attn_mask: Optional[np.ndarray] = None,
                                 scale: Optional[float] = None) -> Tensor:
    """Dense attention as the taped matmul / scale / softmax / matmul chain."""
    scale = float(scale) if scale is not None else float(1.0 / np.sqrt(q.shape[-1]))
    scores = q.matmul(k.swapaxes(-1, -2)) * scale
    probs = masked_softmax(scores, attn_mask, axis=-1)
    return probs.matmul(v)


def streaming_attention(q: Tensor, k: Tensor, v: Tensor,
                        attn_mask: Optional[np.ndarray] = None,
                        scale: Optional[float] = None,
                        tile: Optional[int] = None) -> Tensor:
    """Composition twin of the streaming tiled kernel.

    Tiling is a memory-layout strategy, not a mathematical one — the exact
    result is plain attention, so the reference form is the taped dense
    chain and ``tile`` is accepted only for signature parity.  This is the
    gradcheck oracle the streaming kernel's online rescaling and recompute
    backward are checked against.
    """
    del tile
    return scaled_dot_product_attention(q, k, v, attn_mask=attn_mask,
                                        scale=scale)


def block_sparse_attention(q: Tensor, k: Tensor, v: Tensor, layout,
                           scale: Optional[float] = None) -> Tensor:
    """Primitive-composition twin of the fused block-sparse attention chain.

    The fused kernel in :mod:`repro.sparsity.ops.block_sparse` normalises the
    softmax over the union of active blocks in each query row, with causality
    enforced at the element level — which is exactly dense attention under
    the layout's expanded element mask.  This twin therefore materialises
    ``layout.to_dense_mask(seq_len)`` and runs the taped dense chain, letting
    autograd derive the backward.  ``layout`` is duck-typed (anything with
    ``to_dense_mask``) so this module keeps zero imports from the sparsity
    package.  Dense-sized compute is the point: this is the gradcheck oracle
    and deep-tape baseline, never the hot path.
    """
    seq_len = q.shape[2]
    mask = layout.to_dense_mask(seq_len)[None]       # (1, heads, seq, seq)
    return scaled_dot_product_attention(q, k, v, attn_mask=mask, scale=scale)
