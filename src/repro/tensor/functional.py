"""Composite differentiable functions built on top of :class:`Tensor`.

These mirror the subset of ``torch.nn.functional`` that transformer
fine-tuning needs: softmax, layer normalisation, dropout, masked attention
softmax and the token-level cross entropy loss.  Each function registers a
fused backward closure rather than composing many elementary ops, which keeps
the tape short and the Python overhead per training step low — important
because the benchmarks time real wall-clock of these kernels.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tensor.tensor import Tensor, custom_op


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` with a fused backward."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad):
        dot = (grad * probs).sum(axis=axis, keepdims=True)
        return ((grad - dot) * probs,)

    return custom_op(probs, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax with fused backward (used by the LM loss)."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - logsumexp
    probs = np.exp(out)

    def backward(grad):
        return (grad - probs * grad.sum(axis=axis, keepdims=True),)

    return custom_op(out, (x,), backward)


def masked_softmax(scores: Tensor, mask: Optional[np.ndarray], axis: int = -1,
                   neg_fill: float = -1e9) -> Tensor:
    """Softmax over attention scores with an additive boolean mask.

    ``mask`` follows the convention "True = keep, False = drop"; dropped
    positions receive probability (numerically) zero.  Rows that are fully
    masked produce a uniform distribution over the row instead of NaNs, which
    can happen for padded sequences or extremely sparse attention patterns.
    """
    data = scores.data
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        data = np.where(mask, data, neg_fill)
    shifted = data - data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    if mask is not None:
        exp = exp * mask
    denom = exp.sum(axis=axis, keepdims=True)
    safe_denom = np.where(denom == 0, 1.0, denom)
    probs = exp / safe_denom

    def backward(grad):
        if mask is not None:
            grad = grad * mask
        dot = (grad * probs).sum(axis=axis, keepdims=True)
        return ((grad - dot) * probs,)

    return custom_op(probs, (scores,), backward)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last dimension with affine parameters."""
    mean = x.data.mean(axis=-1, keepdims=True)
    centered = x.data - mean
    var = (centered ** 2).mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    normalized = centered * inv_std
    out = normalized * weight.data + bias.data
    dim = x.data.shape[-1]

    def backward(grad):
        grad_weight = (grad * normalized).reshape(-1, dim).sum(axis=0)
        grad_bias = grad.reshape(-1, dim).sum(axis=0)
        grad_norm = grad * weight.data
        grad_x = inv_std * (
            grad_norm
            - grad_norm.mean(axis=-1, keepdims=True)
            - normalized * (grad_norm * normalized).mean(axis=-1, keepdims=True)
        )
        return grad_x, grad_weight, grad_bias

    return custom_op(out, (x, weight, bias), backward)


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when ``training`` is False or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    rng = rng if rng is not None else np.random.default_rng()
    keep = (rng.random(x.data.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    data = x.data * keep

    def backward(grad):
        return (grad * keep,)

    return custom_op(data, (x,), backward)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with a fused backward.

    ``weight`` has shape ``(out_features, in_features)`` following the
    PyTorch convention so that checkpoint-style configs translate directly.
    """
    x_data = x.data
    out = np.matmul(x_data, weight.data.T)
    if bias is not None:
        out = out + bias.data
    in_features = weight.data.shape[1]
    out_features = weight.data.shape[0]
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        grad2d = grad.reshape(-1, out_features)
        x2d = x_data.reshape(-1, in_features)
        grad_x = np.matmul(grad, weight.data).reshape(x_data.shape)
        grad_w = np.matmul(grad2d.T, x2d)
        if bias is None:
            return grad_x, grad_w
        grad_b = grad2d.sum(axis=0)
        return grad_x, grad_w, grad_b

    return custom_op(out, parents, backward)


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  ignore_index: int = -100) -> Tuple[Tensor, int]:
    """Token-level cross entropy for language modelling.

    Parameters
    ----------
    logits:
        Tensor of shape ``(batch, seq, vocab)`` (or ``(N, vocab)``).
    targets:
        Integer array of shape ``(batch, seq)`` (or ``(N,)``); positions equal
        to ``ignore_index`` do not contribute to the loss.

    Returns
    -------
    (loss, n_valid):
        The mean negative log-likelihood over valid positions and the number
        of valid positions (useful for aggregating across batches).
    """
    targets = np.asarray(targets)
    vocab = logits.data.shape[-1]
    flat_logits = logits.data.reshape(-1, vocab)
    flat_targets = targets.reshape(-1)
    valid = flat_targets != ignore_index
    n_valid = int(valid.sum())
    safe_targets = np.where(valid, flat_targets, 0)

    shifted = flat_logits - flat_logits.max(axis=-1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - logsumexp
    picked = log_probs[np.arange(flat_targets.shape[0]), safe_targets]
    losses = -picked * valid
    denom = max(n_valid, 1)
    loss_value = losses.sum() / denom

    probs = np.exp(log_probs)

    def backward(grad):
        grad = np.asarray(grad).reshape(())
        grad_flat = probs.copy()
        grad_flat[np.arange(flat_targets.shape[0]), safe_targets] -= 1.0
        grad_flat *= (valid[:, None] / denom) * grad
        return (grad_flat.reshape(logits.data.shape),)

    loss = custom_op(np.asarray(loss_value, dtype=np.float32), (logits,), backward)
    return loss, n_valid


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray,
                                     pos_weight: float = 1.0) -> Tensor:
    """Element-wise BCE with logits; ``pos_weight`` up-weights positives.

    This is the loss used for predictor training: the paper prioritises
    recall over precision ("weights that should be active but are predicted
    inactive hurt the most"), which is realised by ``pos_weight > 1``.
    """
    targets = np.asarray(targets, dtype=np.float32)
    x = logits.data
    sig = 1.0 / (1.0 + np.exp(-x))
    eps = 1e-12
    per_elem = -(pos_weight * targets * np.log(sig + eps)
                 + (1.0 - targets) * np.log(1.0 - sig + eps))
    loss_value = per_elem.mean()
    count = x.size

    def backward(grad):
        grad = np.asarray(grad).reshape(())
        local = (pos_weight * targets * (sig - 1.0) + (1.0 - targets) * sig)
        return (grad * local / count,)

    return custom_op(np.asarray(loss_value, dtype=np.float32), (logits,), backward)


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target array."""
    target = np.asarray(target, dtype=pred.data.dtype)
    diff = pred.data - target
    value = (diff ** 2).mean()
    count = diff.size

    def backward(grad):
        grad = np.asarray(grad).reshape(())
        return (grad * 2.0 * diff / count,)

    return custom_op(np.asarray(value, dtype=np.float32), (pred,), backward)
