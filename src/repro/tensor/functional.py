"""Composite differentiable functions built on top of :class:`Tensor`.

These mirror the subset of ``torch.nn.functional`` that transformer
fine-tuning needs: softmax, layer normalisation, dropout, masked attention
softmax, fused linear(+activation) and the token-level cross entropy loss.

Since the fused-kernel pass, this module is a thin *dispatch layer*: every
hot-path function routes to its single-node hand-backward implementation in
:mod:`repro.tensor.fused` (the default) or to the primitive-composition tape
in :mod:`repro.tensor.reference` when the fused kernels are globally
disabled via :func:`repro.tensor.fused.set_fused_kernels`.  Callers —
``repro.nn``, the models, the PEFT wrappers — never need to know which form
is active, which is what lets the perf-regression benchmark time both on an
unmodified model.

The auxiliary losses (``binary_cross_entropy_with_logits`` for predictor
training, ``mse_loss``) are already single fused nodes and live here
directly.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tensor import fused as _fused
from repro.tensor import reference as _reference
from repro.tensor.tensor import Tensor, custom_op


def _impl():
    return _fused if _fused.fused_kernels_enabled() else _reference


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` with a fused backward."""
    return _impl().softmax(x, axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax with fused backward (used by the LM loss and scoring)."""
    return _impl().log_softmax(x, axis=axis)


def masked_softmax(scores: Tensor, mask: Optional[np.ndarray], axis: int = -1,
                   neg_fill: float = -1e9) -> Tensor:
    """Softmax over attention scores with an additive boolean mask.

    ``mask`` follows the convention "True = keep, False = drop"; dropped
    positions receive probability exactly zero and fully-masked rows produce
    an all-zero row (padded sequences, extremely sparse attention patterns).
    """
    return _impl().masked_softmax(scores, mask, axis=axis, neg_fill=neg_fill)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last dimension with affine parameters."""
    return _impl().layer_norm(x, weight, bias, eps=eps)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           activation: Optional[str] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with an optionally fused activation.

    ``weight`` has shape ``(out_features, in_features)`` following the
    PyTorch convention so that checkpoint-style configs translate directly.
    With ``activation`` set (``"relu"``, ``"gelu"``, ...), the nonlinearity
    is folded into the same tape node on the fused path.
    """
    return _impl().linear(x, weight, bias, activation=activation)


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  ignore_index: int = -100, shift: bool = False) -> Tuple[Tensor, int]:
    """Token-level cross entropy for language modelling.

    Parameters
    ----------
    logits:
        Tensor of shape ``(batch, seq, vocab)`` (or ``(N, vocab)``).
    targets:
        Integer array of shape ``(batch, seq)`` (or ``(N,)``); positions equal
        to ``ignore_index`` do not contribute to the loss.
    shift:
        When True, compute the next-token loss directly (logit ``t`` scored
        against target ``t+1``) without the caller slicing ``logits[:, :-1]``
        — on the fused path this avoids a full-size logits copy forward and a
        full-size zero-fill node backward.

    Returns
    -------
    (loss, n_valid):
        The mean negative log-likelihood over valid positions and the number
        of valid positions (useful for aggregating across batches).
    """
    return _impl().cross_entropy_logits(logits, targets,
                                        ignore_index=ignore_index, shift=shift)


def scaled_dot_product_attention(q: Tensor, k: Tensor, v: Tensor,
                                 attn_mask: Optional[np.ndarray] = None,
                                 scale: Optional[float] = None) -> Tensor:
    """Dense attention core ``softmax(QK^T * scale) V`` (fused by default)."""
    return _impl().scaled_dot_product_attention(q, k, v, attn_mask=attn_mask,
                                                scale=scale)


def streaming_attention(q: Tensor, k: Tensor, v: Tensor,
                        attn_mask: Optional[np.ndarray] = None,
                        scale: Optional[float] = None,
                        tile: Optional[int] = None) -> Tensor:
    """Streaming tiled attention — O(seq * tile) scratch, same math as
    :func:`scaled_dot_product_attention`.  ``tile`` defaults to the global
    :func:`repro.tensor.fused.streaming_tile` setting."""
    return _impl().streaming_attention(q, k, v, attn_mask=attn_mask,
                                       scale=scale, tile=tile)


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when ``training`` is False or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    rng = rng if rng is not None else np.random.default_rng()
    keep = (rng.random(x.data.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    data = x.data * keep

    def backward(grad):
        return (grad * keep,)

    return custom_op(data, (x,), backward)


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray,
                                     pos_weight: float = 1.0) -> Tensor:
    """Element-wise BCE with logits; ``pos_weight`` up-weights positives.

    This is the loss used for predictor training: the paper prioritises
    recall over precision ("weights that should be active but are predicted
    inactive hurt the most"), which is realised by ``pos_weight > 1``.
    """
    targets = np.asarray(targets, dtype=np.float32)
    x = logits.data
    sig = 1.0 / (1.0 + np.exp(-x))
    eps = 1e-12
    per_elem = -(pos_weight * targets * np.log(sig + eps)
                 + (1.0 - targets) * np.log(1.0 - sig + eps))
    loss_value = per_elem.mean()
    count = x.size

    def backward(grad):
        grad = np.asarray(grad).reshape(())
        local = (pos_weight * targets * (sig - 1.0) + (1.0 - targets) * sig)
        return (grad * local / count,)

    return custom_op(np.asarray(loss_value, dtype=np.float32), (logits,), backward)


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target array."""
    target = np.asarray(target, dtype=pred.data.dtype)
    diff = pred.data - target
    value = (diff ** 2).mean()
    count = diff.size

    def backward(grad):
        grad = np.asarray(grad).reshape(())
        return (grad * 2.0 * diff / count,)

    return custom_op(np.asarray(value, dtype=np.float32), (pred,), backward)
