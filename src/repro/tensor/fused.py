"""Fused autograd kernels for the training hot path.

Every function in this module is a *single* tape node created through
:func:`repro.tensor.tensor.custom_op`: the forward is a handful of NumPy
calls that reuse buffers in place where aliasing allows it, and the backward
is a hand-derived vector-Jacobian product that touches only the arrays the
derivation actually needs.  This collapses what would otherwise be chains of
~10 primitive ``Tensor`` operations (each with its own closure, its own
full-size temporary and its own entry in the topological sort) into one node
per mathematical operation — the same idea as xformers' fused
``scaled_dot_product_attention`` core, realised on the NumPy substrate.

The module pairs with :mod:`repro.tensor.reference`, which implements the
same functions as compositions of primitive ``Tensor`` ops.  The reference
forms serve three purposes:

* they are the ground truth for the numerical ``gradcheck`` tests;
* they are the *baseline* of ``benchmarks/bench_perf_regression.py`` (the
  deep-tape cost model the paper's fused-operator argument is made against);
* flipping :func:`set_fused_kernels` (or entering
  :func:`reference_kernels`) makes the whole stack — ``repro.tensor.
  functional``, ``repro.nn`` and the model loss path — run through them, so
  fused vs. taped execution can be compared end to end on an unmodified
  model.

Derivations (notation: ``g`` is the incoming output gradient):

``softmax``          ``dx = (g - sum(g * p)) * p`` row-wise.
``layer_norm``       ``dx = inv_std * (gw - mean(gw) - n * mean(gw * n))``
                     with ``gw = g * weight`` and ``n`` the normalised input.
``cross_entropy``    ``dlogits = (softmax(logits) - onehot) * valid / n``.
``linear``           ``dx = g W``, ``dW = g^T x``, ``db = sum(g)``; when an
                     activation is fused, ``g`` is first multiplied by the
                     activation's local derivative.
``attention``        softmax backward threaded between the two matmul
                     backwards, all restricted to a single probability
                     buffer.
"""

from __future__ import annotations

import contextlib
from typing import Optional, Tuple, Union

import numpy as np

from repro.tensor import arena as _arena
from repro.tensor import plan as _plan
from repro.tensor.tensor import Tensor, custom_op

__all__ = [
    "fused_kernels_enabled",
    "set_fused_kernels",
    "reference_kernels",
    "softmax",
    "log_softmax",
    "masked_softmax",
    "layer_norm",
    "linear",
    "cross_entropy_logits",
    "scaled_dot_product_attention",
]

_NEG_FILL = np.float32(-1e9)
_GELU_C = np.float32(np.sqrt(2.0 / np.pi))
_GELU_A = np.float32(0.044715)

# ---------------------------------------------------------------------------
# global switch: fused kernels (default) vs. taped primitive compositions
# ---------------------------------------------------------------------------

_FUSED_ENABLED = True


def fused_kernels_enabled() -> bool:
    """Whether the stack currently routes through the fused kernels."""
    return _FUSED_ENABLED


def set_fused_kernels(enabled: bool) -> None:
    """Globally enable/disable the fused kernels (reference tape otherwise)."""
    global _FUSED_ENABLED
    _FUSED_ENABLED = bool(enabled)


@contextlib.contextmanager
def reference_kernels():
    """Context manager running the stack on the primitive-composition tape."""
    global _FUSED_ENABLED
    previous = _FUSED_ENABLED
    _FUSED_ENABLED = False
    try:
        yield
    finally:
        _FUSED_ENABLED = previous


# ---------------------------------------------------------------------------
# softmax family
# ---------------------------------------------------------------------------

def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` as one fused node."""
    data = x.data
    probs = np.subtract(data, data.max(axis=axis, keepdims=True),
                        out=_arena.empty(data.shape, data.dtype))
    np.exp(probs, out=probs)
    probs /= probs.sum(axis=axis, keepdims=True)

    def backward(grad):
        tmp = np.multiply(grad, probs, out=_arena.empty(probs.shape, probs.dtype))
        dot = tmp.sum(axis=axis, keepdims=True)
        np.subtract(grad, dot, out=tmp)
        tmp *= probs
        return (tmp,)

    return custom_op(probs, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax with a fused backward (used by the LM scoring path)."""
    data = x.data
    out = np.subtract(data, data.max(axis=axis, keepdims=True),
                      out=_arena.empty(data.shape, data.dtype))
    exp = np.exp(out, out=_arena.empty(out.shape, out.dtype))
    logsumexp = np.log(exp.sum(axis=axis, keepdims=True))
    _arena.release(exp)
    out -= logsumexp

    def backward(grad):
        tmp = np.exp(out, out=_arena.empty(out.shape, out.dtype))
        tmp *= grad.sum(axis=axis, keepdims=True)
        np.subtract(grad, tmp, out=tmp)
        return (tmp,)

    return custom_op(out, (x,), backward)


def masked_softmax(scores: Tensor, mask: Optional[np.ndarray], axis: int = -1,
                   neg_fill: float = float(_NEG_FILL)) -> Tensor:
    """Softmax over attention scores with a boolean keep-mask, one node.

    ``mask`` follows the convention "True = keep, False = drop"; dropped
    positions receive exactly zero probability and fully-masked rows produce
    an all-zero row (padded sequences, extremely sparse patterns).
    """
    if mask is None:
        return softmax(scores, axis=axis)
    mask = np.asarray(mask, dtype=bool)
    data = scores.data
    shape = np.broadcast_shapes(data.shape, mask.shape)
    # Masked fill without the ``np.where`` temporary: pre-fill with the drop
    # value and copy the kept scores over it (identical values).
    probs = _arena.empty(shape, data.dtype)
    probs[...] = np.asarray(neg_fill, dtype=data.dtype)
    np.copyto(probs, np.broadcast_to(data, shape), where=mask)
    probs -= probs.max(axis=axis, keepdims=True)
    np.exp(probs, out=probs)
    np.multiply(probs, mask, out=probs)
    denom = probs.sum(axis=axis, keepdims=True)
    np.divide(probs, np.where(denom == 0, 1.0, denom), out=probs)

    def backward(grad):
        grad = np.multiply(grad, mask, out=_arena.empty(probs.shape, probs.dtype))
        tmp = np.multiply(grad, probs, out=_arena.empty(probs.shape, probs.dtype))
        dot = tmp.sum(axis=axis, keepdims=True)
        _arena.release(tmp)
        grad -= dot
        grad *= probs
        return (grad,)

    return custom_op(probs, (scores,), backward)


# ---------------------------------------------------------------------------
# layer normalisation
# ---------------------------------------------------------------------------

def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last dimension with affine parameters."""
    data = x.data
    rec = _plan._RECORDER
    if rec is not None:
        w, b = weight.data, bias.data
        normalized = np.empty(data.shape, data.dtype)
        sq = np.empty(data.shape, data.dtype)
        inv_std = np.empty(data.shape[:-1] + (1,), data.dtype)
        out = np.empty(data.shape, data.dtype)

        def run(data=data, w=w, b=b, normalized=normalized, sq=sq,
                inv_std=inv_std, out=out):
            mean = data.mean(axis=-1, keepdims=True)
            np.subtract(data, mean, out=normalized)
            np.square(normalized, out=sq)
            var = sq.mean(axis=-1, keepdims=True)
            np.add(var, eps, out=var)
            np.sqrt(var, out=var)
            np.divide(1.0, var, out=inv_std)
            np.multiply(normalized, inv_std, out=normalized)
            np.multiply(normalized, w, out=out)
            np.add(out, b, out=out)

        run()
        rec.record(run, (data, w, b), (normalized, sq, inv_std, out),
                   tag="layer_norm")
    else:
        mean = data.mean(axis=-1, keepdims=True)
        normalized = np.subtract(data, mean,
                                 out=_arena.empty(data.shape, data.dtype))
        var = np.square(normalized).mean(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + eps, out=var)
        normalized *= inv_std
        out = np.multiply(normalized, weight.data,
                          out=_arena.empty(data.shape, data.dtype))
        out += bias.data
    dim = data.shape[-1]

    def backward(grad):
        # Affine-parameter gradients only when the parameters are trainable
        # (they are frozen during PEFT fine-tuning — dead reductions else).
        tmp = _arena.empty(normalized.shape, normalized.dtype)
        grad_weight = grad_bias = None
        if weight.requires_grad:
            np.multiply(grad, normalized, out=tmp)
            grad_weight = tmp.reshape(-1, dim).sum(axis=0)
        if bias.requires_grad:
            grad_bias = grad.reshape(-1, dim).sum(axis=0)
        # ``tmp`` doubles as the grad_norm buffer once grad_weight is reduced.
        grad_norm = np.multiply(grad, weight.data, out=tmp)
        grad_x = np.subtract(grad_norm, grad_norm.mean(axis=-1, keepdims=True),
                             out=_arena.empty(normalized.shape, normalized.dtype))
        np.multiply(grad_norm, normalized, out=grad_norm)
        inner_mean = grad_norm.mean(axis=-1, keepdims=True)
        np.multiply(normalized, inner_mean, out=grad_norm)
        grad_x -= grad_norm
        grad_x *= inv_std
        _arena.release(tmp, normalized)
        return grad_x, grad_weight, grad_bias

    return custom_op(out, (x, weight, bias), backward)


# ---------------------------------------------------------------------------
# fused linear (+ bias, + optional activation)
# ---------------------------------------------------------------------------

def _gelu_value_and_tanh(pre: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """GELU (tanh approximation) computed with multiplications, not ``**``.

    ``x ** 3`` on float32 goes through NumPy's generic pow loop and is an
    order of magnitude slower than two multiplies; profiling the seed train
    step showed GeLU alone at ~35 % of wall-clock for exactly this reason.
    """
    inner = np.multiply(pre, pre, out=_arena.empty(pre.shape, pre.dtype))
    inner *= _GELU_A
    inner += 1.0
    inner *= pre
    inner *= _GELU_C
    tanh_inner = np.tanh(inner, out=inner)
    out = np.add(tanh_inner, 1.0, out=_arena.empty(pre.shape, pre.dtype))
    out *= pre
    out *= 0.5
    return out, tanh_inner


def _gelu_local_grad(pre: np.ndarray, tanh_inner: np.ndarray) -> np.ndarray:
    """d gelu(x) / dx given the pre-activation and its cached tanh term."""
    sech2 = np.multiply(tanh_inner, tanh_inner,
                        out=_arena.empty(pre.shape, pre.dtype))
    np.subtract(1.0, sech2, out=sech2)
    d_inner = np.multiply(pre, pre, out=_arena.empty(pre.shape, pre.dtype))
    d_inner *= 3.0 * _GELU_A
    d_inner += 1.0
    d_inner *= _GELU_C
    local = np.multiply(sech2, d_inner, out=sech2)
    local *= pre
    local += 1.0 + tanh_inner
    local *= 0.5
    _arena.release(d_inner)
    return local


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           activation: Optional[str] = None) -> Tensor:
    """Fused affine map ``act(x @ weight.T + bias)`` as a single tape node.

    ``weight`` has shape ``(out_features, in_features)`` (PyTorch layout).
    ``activation`` may be ``None``, ``"relu"``, ``"gelu"``, ``"tanh"`` or
    ``"sigmoid"``; fusing it here means the MLP's first half contributes one
    node (and one saved buffer) to the tape instead of two ops plus an
    intermediate Tensor.
    """
    x_data = x.data
    in_features = weight.data.shape[1]
    out_features = weight.data.shape[0]
    if activation not in (None, "none", "relu", "gelu", "tanh", "sigmoid"):
        raise ValueError(f"unsupported fused activation {activation!r}")
    rec = _plan._RECORDER
    if rec is not None and not x_data.flags.c_contiguous:
        # ``reshape`` below would copy, and the copy would go stale between
        # replays; fall back to PR-5 backward-only capture for this step.
        rec.fail("linear over a non-contiguous activation")
        rec = None
    # Collapse leading dims into one 2D GEMM: NumPy's matmul runs a Python-
    # level batch loop for (batch, m, k) @ (k, n), while the reshape of a
    # C-contiguous activation is free.
    x2d = x_data.reshape(-1, in_features)

    # Per-activation saved state for the backward (all 2D views).
    relu_mask = gelu_pre = gelu_tanh = act_out = None
    if rec is not None:
        # Recorded form: the same instruction stream over plan-owned buffers
        # (plain allocations — never the arena, whose generation recycling
        # must not reclaim plan state), replayed as one entry.
        w = weight.data
        b = None if bias is None else bias.data
        pre = np.empty((x2d.shape[0], out_features), np.result_type(x2d, w))
        out = pre
        writes = [pre]
        if activation == "relu":
            relu_mask = np.empty(pre.shape, bool)
            writes.append(relu_mask)
        elif activation == "gelu":
            gelu_pre = pre
            gelu_tanh = np.empty(pre.shape, pre.dtype)
            out = np.empty(pre.shape, pre.dtype)
            writes += [gelu_tanh, out]
        elif activation in ("tanh", "sigmoid"):
            act_out = pre

        def run(x2d=x2d, w=w, b=b, pre=pre, out=out, relu_mask=relu_mask,
                gelu_tanh=gelu_tanh, activation=activation):
            np.matmul(x2d, w.T, out=pre)
            if b is not None:
                pre += b
            if activation == "relu":
                np.greater(pre, 0, out=relu_mask)
                np.multiply(pre, relu_mask, out=pre)
            elif activation == "gelu":
                # Mirrors ``_gelu_value_and_tanh`` with bound buffers.
                np.multiply(pre, pre, out=gelu_tanh)
                gelu_tanh *= _GELU_A
                gelu_tanh += 1.0
                gelu_tanh *= pre
                gelu_tanh *= _GELU_C
                np.tanh(gelu_tanh, out=gelu_tanh)
                np.add(gelu_tanh, 1.0, out=out)
                out *= pre
                out *= 0.5
            elif activation == "tanh":
                np.tanh(pre, out=pre)
            elif activation == "sigmoid":
                np.negative(pre, out=pre)
                np.exp(pre, out=pre)
                pre += 1.0
                np.reciprocal(pre, out=pre)

        run()
        reads = (x2d, w) if b is None else (x2d, w, b)
        rec.record(run, reads, writes, tag=f"linear:{activation or 'none'}")
    else:
        out = np.matmul(x2d, weight.data.T,
                        out=_arena.empty((x2d.shape[0], out_features),
                                         np.result_type(x2d, weight.data)))
        if bias is not None:
            out += bias.data
        if activation is None or activation == "none":
            pass
        elif activation == "relu":
            relu_mask = out > 0
            np.multiply(out, relu_mask, out=out)
        elif activation == "gelu":
            gelu_pre = out
            out, gelu_tanh = _gelu_value_and_tanh(gelu_pre)
        elif activation == "tanh":
            out = np.tanh(out, out=out)
            act_out = out
        elif activation == "sigmoid":
            np.negative(out, out=out)
            np.exp(out, out=out)
            out += 1.0
            np.reciprocal(out, out=out)
            act_out = out

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        # Gradients are produced only for parents that will consume them:
        # under PEFT the base projections, the tied LM head and the norms
        # are frozen, so their weight-gradient GEMMs/reductions are dead
        # work the autograd loop would discard anyway.
        grad2d = grad.reshape(-1, out_features)
        act_grad = None
        if relu_mask is not None:
            grad2d = act_grad = np.multiply(
                grad2d, relu_mask, out=_arena.empty(grad2d.shape, grad2d.dtype))
        elif gelu_pre is not None:
            local = _gelu_local_grad(gelu_pre, gelu_tanh)
            grad2d = act_grad = np.multiply(
                grad2d, local, out=_arena.empty(grad2d.shape, grad2d.dtype))
            _arena.release(local, gelu_pre, gelu_tanh)
        elif act_out is not None:
            local = _arena.empty(act_out.shape, act_out.dtype)
            if activation == "tanh":
                np.multiply(act_out, act_out, out=local)
                np.subtract(1.0, local, out=local)
            else:  # sigmoid
                np.subtract(1.0, act_out, out=local)
                local *= act_out
            grad2d = act_grad = np.multiply(
                grad2d, local, out=_arena.empty(grad2d.shape, grad2d.dtype))
            _arena.release(local)
        grad_x = grad_w = None
        if x.requires_grad:
            grad_x = np.matmul(
                grad2d, weight.data,
                out=_arena.empty((grad2d.shape[0], in_features),
                                 np.result_type(grad2d, weight.data))
            ).reshape(x_data.shape)
        if weight.requires_grad:
            grad_w = np.matmul(grad2d.T, x2d,
                               out=_arena.empty((out_features, in_features),
                                                np.result_type(grad2d, x2d)))
        grad_b = (grad2d.sum(axis=0)
                  if bias is not None and bias.requires_grad else None)
        if act_grad is not None:
            _arena.release(act_grad)
        if bias is None:
            return grad_x, grad_w
        return grad_x, grad_w, grad_b

    return custom_op(out.reshape(*x_data.shape[:-1], out_features),
                     parents, backward)


# ---------------------------------------------------------------------------
# cross entropy on logits
# ---------------------------------------------------------------------------

def cross_entropy_logits(logits: Tensor, targets: np.ndarray,
                         ignore_index: int = -100,
                         shift: bool = False) -> Tuple[Tensor, int]:
    """Token-level cross entropy as one fused node over the logits.

    With ``shift=True`` the op computes the next-token loss directly —
    position ``t`` of the logits is scored against target ``t + 1`` — so the
    caller passes the *unshifted* ``(batch, seq, vocab)`` logits and no
    ``logits[:, :-1]`` slice node ever enters the tape.  That saves the slice
    node's forward copy and closure; the backward of this op still allocates
    one full-size gradient buffer for the logits input.

    Returns ``(mean NLL over valid positions, number of valid positions)``.
    """
    targets = np.asarray(targets)
    data = logits.data
    if shift:
        if data.ndim < 2:
            raise ValueError("shift=True requires (batch, seq, vocab) logits")
        scored = data[..., :-1, :]
        targets = targets[..., 1:]
    else:
        scored = data
    vocab = scored.shape[-1]
    n_rows = int(np.prod(scored.shape[:-1], dtype=np.int64))
    rows = np.arange(n_rows)
    rec = _plan._RECORDER
    if rec is not None:
        # Recorded form.  The target-derived state (valid mask, safe targets,
        # valid count) changes with every staged batch, so the replay thunk
        # recomputes it into ``st`` — shared mutable state the backward
        # closure reads — while the heavy (rows, vocab) buffers are bound
        # once.  ``targets`` stays a view of the staged labels buffer.
        probs = np.empty((n_rows, vocab), data.dtype)
        loss_buf = np.empty((), np.float32)
        if shift:
            flat_logits = np.empty((n_rows, vocab), data.dtype)
            flat_view = flat_logits.reshape(scored.shape)
        else:
            flat_logits = scored.reshape(-1, vocab)
            flat_view = None
            if not np.may_share_memory(flat_logits, data):
                rec.fail("cross entropy over non-contiguous logits")
        st = {}

        def run(data=data, targets=targets, probs=probs, loss_buf=loss_buf,
                flat_logits=flat_logits, flat_view=flat_view, st=st):
            if flat_view is not None:
                np.copyto(flat_view, scored)
            flat_targets = targets.reshape(-1)
            valid = flat_targets != ignore_index
            n_valid = int(valid.sum())
            safe_targets = np.where(valid, flat_targets, 0)
            np.subtract(flat_logits, flat_logits.max(axis=-1, keepdims=True),
                        out=probs)
            target_logits = probs[rows, safe_targets]
            np.exp(probs, out=probs)
            denom_rows = probs.sum(axis=-1, keepdims=True)
            picked = target_logits - np.log(denom_rows[:, 0])
            np.divide(probs, denom_rows, out=probs)
            denom = max(n_valid, 1)
            loss_buf[...] = -(picked * valid).sum() / denom
            st["valid"] = valid
            st["safe_targets"] = safe_targets
            st["denom"] = denom
            st["n_valid"] = n_valid

        run()
        reads = (data, targets)
        writes = (probs, loss_buf) if not shift else (probs, loss_buf,
                                                      flat_logits)
        rec.record(run, reads, writes, tag="cross_entropy")
        rec.extras["cross_entropy_state"] = st
        n_valid = st["n_valid"]

        def backward(grad):
            grad = np.asarray(grad).reshape(())
            valid = st["valid"]
            safe_targets = st["safe_targets"]
            denom = st["denom"]
            grad_flat = _arena.empty(probs.shape, probs.dtype)
            np.copyto(grad_flat, probs)
            grad_flat[rows, safe_targets] -= 1.0
            grad_flat *= (valid[:, None] / denom) * grad
            if not shift:
                return (grad_flat.reshape(data.shape),)
            full = _arena.empty(data.shape, data.dtype)
            full[..., :-1, :] = grad_flat.reshape(scored.shape)
            full[..., -1:, :] = 0.0
            _arena.release(grad_flat)
            return (full,)

        loss = custom_op(loss_buf, (logits,), backward)
        return loss, n_valid

    if shift:
        # The shifted slice is non-contiguous, so reshape would copy anyway;
        # route the copy through the arena instead.
        flat_logits = _arena.empty((n_rows, vocab), data.dtype)
        np.copyto(flat_logits.reshape(scored.shape), scored)
    else:
        flat_logits = scored.reshape(-1, vocab)
    flat_targets = targets.reshape(-1)
    valid = flat_targets != ignore_index
    n_valid = int(valid.sum())
    safe_targets = np.where(valid, flat_targets, 0)

    shifted = np.subtract(flat_logits, flat_logits.max(axis=-1, keepdims=True),
                          out=_arena.empty((n_rows, vocab), data.dtype))
    if shift:
        _arena.release(flat_logits)
    # Pull the target-token logits out *before* exponentiating in place: the
    # probabilities then reuse the shifted buffer, so the op keeps a single
    # (rows, vocab) array alive for the backward instead of two.
    target_logits = shifted[rows, safe_targets]
    probs = np.exp(shifted, out=shifted)
    denom_rows = probs.sum(axis=-1, keepdims=True)
    # log-prob of the target token only — the full log-prob matrix is never
    # materialised; ``probs`` doubles as the saved state for the backward.
    picked = target_logits - np.log(denom_rows[:, 0])
    np.divide(probs, denom_rows, out=probs)
    denom = max(n_valid, 1)
    loss_value = -(picked * valid).sum() / denom

    def backward(grad):
        grad = np.asarray(grad).reshape(())
        grad_flat = _arena.empty(probs.shape, probs.dtype)
        np.copyto(grad_flat, probs)
        grad_flat[rows, safe_targets] -= 1.0
        grad_flat *= (valid[:, None] / denom) * grad
        _arena.release(probs)
        if not shift:
            return (grad_flat.reshape(data.shape),)
        full = _arena.empty(data.shape, data.dtype)
        full[..., :-1, :] = grad_flat.reshape(scored.shape)
        full[..., -1:, :] = 0.0
        _arena.release(grad_flat)
        return (full,)

    loss = custom_op(np.asarray(loss_value, dtype=np.float32), (logits,), backward)
    return loss, n_valid


# ---------------------------------------------------------------------------
# fused dense attention core
# ---------------------------------------------------------------------------

def scaled_dot_product_attention(q: Tensor, k: Tensor, v: Tensor,
                                 attn_mask: Optional[np.ndarray] = None,
                                 scale: Optional[float] = None,
                                 return_probs: bool = False
                                 ) -> Union[Tensor, Tuple[Tensor, np.ndarray]]:
    """Fused ``softmax(Q K^T * scale) V`` with a hand-written backward.

    ``q``/``k``/``v`` are ``(batch, heads, seq, head_dim)``; ``attn_mask`` is
    an optional boolean keep-mask broadcastable to the score shape.  The
    whole core is one tape node that keeps a single ``(batch, heads, seq,
    seq)`` probability buffer alive for the backward — the taped composition
    keeps four (scores, masked scores, exp, probs) plus per-op closures.

    With ``return_probs=True`` also returns a copy of the attention
    probabilities (predictor data collection reads them as ground truth).
    """
    scale = scale if scale is not None else 1.0 / np.sqrt(q.shape[-1])
    if attn_mask is not None:
        attn_mask = np.asarray(attn_mask, dtype=bool)

    score_shape = q.shape[:-1] + (k.shape[-2],)
    rec = _plan._RECORDER
    if rec is not None and return_probs:
        # The probability snapshot is a per-call copy (predictor collection);
        # it has no stable replay form.
        rec.fail("scaled_dot_product_attention with return_probs")
        rec = None
    if rec is not None:
        q_data, k_data, v_data = q.data, k.data, v.data
        kT = np.swapaxes(k_data, -1, -2)
        drop_mask = None if attn_mask is None else ~attn_mask
        probs = np.empty(score_shape, q_data.dtype)
        out = np.empty(q.shape[:-1] + (v.shape[-1],), q_data.dtype)

        def run(q_data=q_data, kT=kT, v_data=v_data, probs=probs, out=out,
                attn_mask=attn_mask, drop_mask=drop_mask, scale=scale):
            np.matmul(q_data, kT, out=probs)
            probs *= scale
            if attn_mask is not None:
                np.copyto(probs, _NEG_FILL, where=drop_mask)
            probs -= probs.max(axis=-1, keepdims=True)
            np.exp(probs, out=probs)
            if attn_mask is not None:
                np.multiply(probs, attn_mask, out=probs)
            denom = probs.sum(axis=-1, keepdims=True)
            np.divide(probs, np.where(denom == 0, 1.0, denom), out=probs)
            np.matmul(probs, v_data, out=out)

        run()
        rec.record(run, (q_data, k_data, v_data), (probs, out),
                   tag="sdpa")
    else:
        probs = np.matmul(q.data, np.swapaxes(k.data, -1, -2),
                          out=_arena.empty(score_shape, q.data.dtype))
        probs *= scale
        if attn_mask is not None:
            np.copyto(probs, _NEG_FILL, where=~attn_mask)
        probs -= probs.max(axis=-1, keepdims=True)
        np.exp(probs, out=probs)
        if attn_mask is not None:
            np.multiply(probs, attn_mask, out=probs)
        denom = probs.sum(axis=-1, keepdims=True)
        np.divide(probs, np.where(denom == 0, 1.0, denom), out=probs)
        out = np.matmul(probs, v.data,
                        out=_arena.empty(q.shape[:-1] + (v.shape[-1],),
                                         q.data.dtype))

    def backward(grad_out):
        grad_v = np.matmul(np.swapaxes(probs, -1, -2), grad_out,
                           out=_arena.empty(v.shape, v.data.dtype))
        # dP, then softmax backward in the same buffer.
        dS = np.matmul(grad_out, np.swapaxes(v.data, -1, -2),
                       out=_arena.empty(score_shape, q.data.dtype))
        tmp = np.multiply(dS, probs, out=_arena.empty(score_shape, q.data.dtype))
        dot = tmp.sum(axis=-1, keepdims=True)
        _arena.release(tmp)
        dS -= dot
        dS *= probs
        dS *= scale
        grad_q = np.matmul(dS, k.data, out=_arena.empty(q.shape, q.data.dtype))
        grad_k = np.matmul(np.swapaxes(dS, -1, -2), q.data,
                           out=_arena.empty(k.shape, k.data.dtype))
        _arena.release(dS, probs)
        return grad_q, grad_k, grad_v

    result = custom_op(out, (q, k, v), backward)
    if return_probs:
        return result, probs.copy()
    return result
