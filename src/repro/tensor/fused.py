"""Fused autograd kernels for the training hot path.

Every function in this module is a *single* tape node created through
:func:`repro.tensor.tensor.custom_op`: the forward is a handful of NumPy
calls that reuse buffers in place where aliasing allows it, and the backward
is a hand-derived vector-Jacobian product that touches only the arrays the
derivation actually needs.  This collapses what would otherwise be chains of
~10 primitive ``Tensor`` operations (each with its own closure, its own
full-size temporary and its own entry in the topological sort) into one node
per mathematical operation — the same idea as xformers' fused
``scaled_dot_product_attention`` core, realised on the NumPy substrate.

The module pairs with :mod:`repro.tensor.reference`, which implements the
same functions as compositions of primitive ``Tensor`` ops.  The reference
forms serve three purposes:

* they are the ground truth for the numerical ``gradcheck`` tests;
* they are the *baseline* of ``benchmarks/bench_perf_regression.py`` (the
  deep-tape cost model the paper's fused-operator argument is made against);
* flipping :func:`set_fused_kernels` (or entering
  :func:`reference_kernels`) makes the whole stack — ``repro.tensor.
  functional``, ``repro.nn`` and the model loss path — run through them, so
  fused vs. taped execution can be compared end to end on an unmodified
  model.

Derivations (notation: ``g`` is the incoming output gradient):

``softmax``          ``dx = (g - sum(g * p)) * p`` row-wise.
``layer_norm``       ``dx = inv_std * (gw - mean(gw) - n * mean(gw * n))``
                     with ``gw = g * weight`` and ``n`` the normalised input.
``cross_entropy``    ``dlogits = (softmax(logits) - onehot) * valid / n``.
``linear``           ``dx = g W``, ``dW = g^T x``, ``db = sum(g)``; when an
                     activation is fused, ``g`` is first multiplied by the
                     activation's local derivative.
``attention``        softmax backward threaded between the two matmul
                     backwards, all restricted to a single probability
                     buffer.
"""

from __future__ import annotations

import contextlib
import functools
from typing import Optional, Tuple, Union

import numpy as np

from repro.tensor import arena as _arena
from repro.tensor import plan as _plan
from repro.tensor.tensor import Tensor, custom_op

__all__ = [
    "fused_kernels_enabled",
    "set_fused_kernels",
    "reference_kernels",
    "streaming_attention_enabled",
    "streaming_tile",
    "set_streaming_attention",
    "streaming_kernels",
    "guard_zero_rows",
    "softmax",
    "log_softmax",
    "masked_softmax",
    "layer_norm",
    "linear",
    "cross_entropy_logits",
    "scaled_dot_product_attention",
    "streaming_attention",
]

_NEG_FILL = np.float32(-1e9)
_GELU_C = np.float32(np.sqrt(2.0 / np.pi))
_GELU_A = np.float32(0.044715)

# ---------------------------------------------------------------------------
# global switch: fused kernels (default) vs. taped primitive compositions
# ---------------------------------------------------------------------------

_FUSED_ENABLED = True


def fused_kernels_enabled() -> bool:
    """Whether the stack currently routes through the fused kernels."""
    return _FUSED_ENABLED


def set_fused_kernels(enabled: bool) -> None:
    """Globally enable/disable the fused kernels (reference tape otherwise)."""
    global _FUSED_ENABLED
    _FUSED_ENABLED = bool(enabled)


@contextlib.contextmanager
def reference_kernels():
    """Context manager running the stack on the primitive-composition tape."""
    global _FUSED_ENABLED
    previous = _FUSED_ENABLED
    _FUSED_ENABLED = False
    try:
        yield
    finally:
        _FUSED_ENABLED = previous


@contextlib.contextmanager
def fused_kernel_state(enabled: bool):
    """Context manager pinning the fused-kernel switch to ``enabled``.

    The per-tuner counterpart of :func:`streaming_kernels`: a
    :class:`~repro.runtime.trainer.FineTuner` with an explicit
    ``AttentionConfig.fused_kernels`` setting applies it around each step and
    restores the ambient value afterwards, so interleaved tuners (and the
    multi-tenant service's lanes) never observe another caller's flip of the
    process-global switch.
    """
    global _FUSED_ENABLED
    previous = _FUSED_ENABLED
    _FUSED_ENABLED = bool(enabled)
    try:
        yield
    finally:
        _FUSED_ENABLED = previous


# ---------------------------------------------------------------------------
# global switch: streaming tiled attention for long contexts
# ---------------------------------------------------------------------------

_STREAMING_ENABLED = False
_STREAMING_TILE = 128


def streaming_attention_enabled() -> bool:
    """Whether attention routes through the streaming tiled kernel."""
    return _STREAMING_ENABLED


def streaming_tile() -> int:
    """Current K/V tile width of the streaming attention kernel."""
    return _STREAMING_TILE


def set_streaming_attention(enabled: bool, tile: Optional[int] = None) -> None:
    """Globally enable/disable streaming tiled attention.

    With streaming enabled, :class:`repro.nn.attention.DenseAttentionBackend`
    (and the block-sparse chain, when asked) computes attention over K/V
    tiles of width ``tile`` with online max/sum rescaling, so only an
    ``O(seq * tile)`` score scratch ever exists instead of the full
    ``O(seq²)`` probability matrix.  The backward re-streams the tiles and
    recomputes probabilities from the saved per-row logsumexp.
    """
    global _STREAMING_ENABLED, _STREAMING_TILE
    if tile is not None:
        tile = int(tile)
        if tile <= 0:
            raise ValueError(f"tile must be positive, got {tile}")
        _STREAMING_TILE = tile
    _STREAMING_ENABLED = bool(enabled)


@contextlib.contextmanager
def streaming_kernels(enabled: bool = True, tile: Optional[int] = None):
    """Context manager scoping the streaming-attention switch (and tile)."""
    previous = (_STREAMING_ENABLED, _STREAMING_TILE)
    set_streaming_attention(enabled, tile)
    try:
        yield
    finally:
        set_streaming_attention(*previous)


# ---------------------------------------------------------------------------
# shared numerical conventions
# ---------------------------------------------------------------------------

def guard_zero_rows(denom: np.ndarray,
                    scratch: Optional[np.ndarray] = None) -> np.ndarray:
    """Replace exactly-zero softmax denominators with one, in place.

    This is the single home of the fully-masked-row convention: rows with no
    kept position (padded sequences, extreme sparsity, zero active blocks)
    have an all-zero exp-sum, and dividing by the guarded denominator leaves
    them as exactly-zero probability rows — in every implementation
    (``masked_softmax``, fused SDPA, the block-sparse chain, the streaming
    kernels and the oracle exposer).  Rows with any kept position are
    untouched bit-for-bit.

    ``scratch`` is an optional boolean buffer of ``denom``'s shape (recorded
    kernels pass their plan-owned buffer); without it the scratch comes from
    the arena, so no per-step heap allocation survives either way.
    """
    if scratch is None:
        scratch = _arena.empty(denom.shape, bool)
        np.equal(denom, 0.0, out=scratch)
        np.copyto(denom, 1.0, where=scratch)
        _arena.release(scratch)
    else:
        np.equal(denom, 0.0, out=scratch)
        np.copyto(denom, 1.0, where=scratch)
    return denom


def _reduced_shape(shape: Tuple[int, ...], axis: int) -> Tuple[int, ...]:
    """The keepdims result shape of a reduction along ``axis``."""
    axis = axis % len(shape)
    return shape[:axis] + (1,) + shape[axis + 1:]


@functools.lru_cache(maxsize=16)
def _row_indices(n: int) -> np.ndarray:
    """Cached read-only ``arange(n)`` — shared row-index vector for fancy
    indexing, so steady-state steps never re-allocate it."""
    idx = np.arange(n)
    idx.setflags(write=False)
    return idx


# ---------------------------------------------------------------------------
# softmax family
# ---------------------------------------------------------------------------

def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` as one fused node."""
    data = x.data
    red_shape = _reduced_shape(data.shape, axis)
    red = data.max(axis=axis, keepdims=True,
                   out=_arena.empty(red_shape, data.dtype))
    probs = np.subtract(data, red, out=_arena.empty(data.shape, data.dtype))
    np.exp(probs, out=probs)
    probs.sum(axis=axis, keepdims=True, out=red)
    probs /= red
    _arena.release(red)

    def backward(grad):
        tmp = np.multiply(grad, probs, out=_arena.empty(probs.shape, probs.dtype))
        dot = tmp.sum(axis=axis, keepdims=True,
                      out=_arena.empty(red_shape, probs.dtype))
        np.subtract(grad, dot, out=tmp)
        _arena.release(dot)
        tmp *= probs
        return (tmp,)

    return custom_op(probs, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax with a fused backward (used by the LM scoring path)."""
    data = x.data
    red_shape = _reduced_shape(data.shape, axis)
    red = data.max(axis=axis, keepdims=True,
                   out=_arena.empty(red_shape, data.dtype))
    out = np.subtract(data, red, out=_arena.empty(data.shape, data.dtype))
    exp = np.exp(out, out=_arena.empty(out.shape, out.dtype))
    exp.sum(axis=axis, keepdims=True, out=red)
    _arena.release(exp)
    logsumexp = np.log(red, out=red)
    out -= logsumexp
    _arena.release(red)

    def backward(grad):
        tmp = np.exp(out, out=_arena.empty(out.shape, out.dtype))
        dot = grad.sum(axis=axis, keepdims=True,
                       out=_arena.empty(red_shape, out.dtype))
        tmp *= dot
        _arena.release(dot)
        np.subtract(grad, tmp, out=tmp)
        return (tmp,)

    return custom_op(out, (x,), backward)


def masked_softmax(scores: Tensor, mask: Optional[np.ndarray], axis: int = -1,
                   neg_fill: float = float(_NEG_FILL)) -> Tensor:
    """Softmax over attention scores with a boolean keep-mask, one node.

    ``mask`` follows the convention "True = keep, False = drop"; dropped
    positions receive exactly zero probability and fully-masked rows produce
    an all-zero row (padded sequences, extremely sparse patterns).
    """
    if mask is None:
        return softmax(scores, axis=axis)
    mask = np.asarray(mask, dtype=bool)
    data = scores.data
    shape = np.broadcast_shapes(data.shape, mask.shape)
    # Masked fill without the ``np.where`` temporary: pre-fill with the drop
    # value and copy the kept scores over it (identical values).
    probs = _arena.empty(shape, data.dtype)
    probs[...] = np.asarray(neg_fill, dtype=data.dtype)
    np.copyto(probs, np.broadcast_to(data, shape), where=mask)
    red_shape = _reduced_shape(shape, axis)
    red = probs.max(axis=axis, keepdims=True,
                    out=_arena.empty(red_shape, data.dtype))
    probs -= red
    np.exp(probs, out=probs)
    np.multiply(probs, mask, out=probs)
    probs.sum(axis=axis, keepdims=True, out=red)
    guard_zero_rows(red)
    probs /= red
    _arena.release(red)

    def backward(grad):
        grad = np.multiply(grad, mask, out=_arena.empty(probs.shape, probs.dtype))
        tmp = np.multiply(grad, probs, out=_arena.empty(probs.shape, probs.dtype))
        dot = tmp.sum(axis=axis, keepdims=True,
                      out=_arena.empty(red_shape, probs.dtype))
        _arena.release(tmp)
        grad -= dot
        grad *= probs
        _arena.release(dot)
        return (grad,)

    return custom_op(probs, (scores,), backward)


# ---------------------------------------------------------------------------
# layer normalisation
# ---------------------------------------------------------------------------

def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last dimension with affine parameters."""
    data = x.data
    red_shape = data.shape[:-1] + (1,)
    rec = _plan._RECORDER
    if rec is not None:
        w, b = weight.data, bias.data
        normalized = np.empty(data.shape, data.dtype)
        sq = np.empty(data.shape, data.dtype)
        mean = np.empty(red_shape, data.dtype)
        inv_std = np.empty(red_shape, data.dtype)
        out = np.empty(data.shape, data.dtype)

        def run(data=data, w=w, b=b, normalized=normalized, sq=sq,
                mean=mean, inv_std=inv_std, out=out):
            data.mean(axis=-1, keepdims=True, out=mean)
            np.subtract(data, mean, out=normalized)
            np.square(normalized, out=sq)
            sq.mean(axis=-1, keepdims=True, out=inv_std)
            np.add(inv_std, eps, out=inv_std)
            np.sqrt(inv_std, out=inv_std)
            np.divide(1.0, inv_std, out=inv_std)
            np.multiply(normalized, inv_std, out=normalized)
            np.multiply(normalized, w, out=out)
            np.add(out, b, out=out)

        run()
        rec.record(run, (data, w, b), (normalized, sq, mean, inv_std, out),
                   tag="layer_norm")
    else:
        mean = data.mean(axis=-1, keepdims=True,
                         out=_arena.empty(red_shape, data.dtype))
        normalized = np.subtract(data, mean,
                                 out=_arena.empty(data.shape, data.dtype))
        sq = np.square(normalized, out=_arena.empty(data.shape, data.dtype))
        var = sq.mean(axis=-1, keepdims=True, out=mean)
        _arena.release(sq)
        np.add(var, eps, out=var)
        np.sqrt(var, out=var)
        inv_std = np.divide(1.0, var, out=var)
        normalized *= inv_std
        out = np.multiply(normalized, weight.data,
                          out=_arena.empty(data.shape, data.dtype))
        out += bias.data
    dim = data.shape[-1]

    def backward(grad):
        # Affine-parameter gradients only when the parameters are trainable
        # (they are frozen during PEFT fine-tuning — dead reductions else).
        tmp = _arena.empty(normalized.shape, normalized.dtype)
        grad_weight = grad_bias = None
        if weight.requires_grad:
            np.multiply(grad, normalized, out=tmp)
            grad_weight = tmp.reshape(-1, dim).sum(
                axis=0, out=_arena.empty((dim,), normalized.dtype))
        if bias.requires_grad:
            grad_bias = grad.reshape(-1, dim).sum(
                axis=0, out=_arena.empty((dim,), normalized.dtype))
        # ``tmp`` doubles as the grad_norm buffer once grad_weight is reduced.
        grad_norm = np.multiply(grad, weight.data, out=tmp)
        inner = grad_norm.mean(axis=-1, keepdims=True,
                               out=_arena.empty(red_shape, normalized.dtype))
        grad_x = np.subtract(grad_norm, inner,
                             out=_arena.empty(normalized.shape, normalized.dtype))
        np.multiply(grad_norm, normalized, out=grad_norm)
        grad_norm.mean(axis=-1, keepdims=True, out=inner)
        np.multiply(normalized, inner, out=grad_norm)
        grad_x -= grad_norm
        grad_x *= inv_std
        _arena.release(tmp, normalized, inner, inv_std)
        return grad_x, grad_weight, grad_bias

    return custom_op(out, (x, weight, bias), backward)


# ---------------------------------------------------------------------------
# fused linear (+ bias, + optional activation)
# ---------------------------------------------------------------------------

def _gelu_value_and_tanh(pre: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """GELU (tanh approximation) computed with multiplications, not ``**``.

    ``x ** 3`` on float32 goes through NumPy's generic pow loop and is an
    order of magnitude slower than two multiplies; profiling the seed train
    step showed GeLU alone at ~35 % of wall-clock for exactly this reason.
    """
    inner = np.multiply(pre, pre, out=_arena.empty(pre.shape, pre.dtype))
    inner *= _GELU_A
    inner += 1.0
    inner *= pre
    inner *= _GELU_C
    tanh_inner = np.tanh(inner, out=inner)
    out = np.add(tanh_inner, 1.0, out=_arena.empty(pre.shape, pre.dtype))
    out *= pre
    out *= 0.5
    return out, tanh_inner


def _gelu_local_grad(pre: np.ndarray, tanh_inner: np.ndarray) -> np.ndarray:
    """d gelu(x) / dx given the pre-activation and its cached tanh term."""
    sech2 = np.multiply(tanh_inner, tanh_inner,
                        out=_arena.empty(pre.shape, pre.dtype))
    np.subtract(1.0, sech2, out=sech2)
    d_inner = np.multiply(pre, pre, out=_arena.empty(pre.shape, pre.dtype))
    d_inner *= 3.0 * _GELU_A
    d_inner += 1.0
    d_inner *= _GELU_C
    local = np.multiply(sech2, d_inner, out=sech2)
    local *= pre
    # ``local += 1.0 + tanh_inner`` staged through scratch: the expression
    # form materialised a full-size heap temporary on every backward.
    np.add(tanh_inner, 1.0, out=d_inner)
    local += d_inner
    local *= 0.5
    _arena.release(d_inner)
    return local


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           activation: Optional[str] = None) -> Tensor:
    """Fused affine map ``act(x @ weight.T + bias)`` as a single tape node.

    ``weight`` has shape ``(out_features, in_features)`` (PyTorch layout).
    ``activation`` may be ``None``, ``"relu"``, ``"gelu"``, ``"tanh"`` or
    ``"sigmoid"``; fusing it here means the MLP's first half contributes one
    node (and one saved buffer) to the tape instead of two ops plus an
    intermediate Tensor.
    """
    x_data = x.data
    in_features = weight.data.shape[1]
    out_features = weight.data.shape[0]
    if activation not in (None, "none", "relu", "gelu", "tanh", "sigmoid"):
        raise ValueError(f"unsupported fused activation {activation!r}")
    rec = _plan._RECORDER
    if rec is not None and not x_data.flags.c_contiguous:
        # ``reshape`` below would copy, and the copy would go stale between
        # replays; fall back to PR-5 backward-only capture for this step.
        rec.fail("linear over a non-contiguous activation")
        rec = None
    # Collapse leading dims into one 2D GEMM: NumPy's matmul runs a Python-
    # level batch loop for (batch, m, k) @ (k, n), while the reshape of a
    # C-contiguous activation is free.
    x2d = x_data.reshape(-1, in_features)

    # Per-activation saved state for the backward (all 2D views).
    relu_mask = gelu_pre = gelu_tanh = act_out = None
    if rec is not None:
        # Recorded form: the same instruction stream over plan-owned buffers
        # (plain allocations — never the arena, whose generation recycling
        # must not reclaim plan state), replayed as one entry.
        w = weight.data
        b = None if bias is None else bias.data
        pre = np.empty((x2d.shape[0], out_features), np.result_type(x2d, w))
        out = pre
        writes = [pre]
        if activation == "relu":
            relu_mask = np.empty(pre.shape, bool)
            writes.append(relu_mask)
        elif activation == "gelu":
            gelu_pre = pre
            gelu_tanh = np.empty(pre.shape, pre.dtype)
            out = np.empty(pre.shape, pre.dtype)
            writes += [gelu_tanh, out]
        elif activation in ("tanh", "sigmoid"):
            act_out = pre

        def run(x2d=x2d, w=w, b=b, pre=pre, out=out, relu_mask=relu_mask,
                gelu_tanh=gelu_tanh, activation=activation):
            np.matmul(x2d, w.T, out=pre)
            if b is not None:
                pre += b
            if activation == "relu":
                np.greater(pre, 0, out=relu_mask)
                np.multiply(pre, relu_mask, out=pre)
            elif activation == "gelu":
                # Mirrors ``_gelu_value_and_tanh`` with bound buffers.
                np.multiply(pre, pre, out=gelu_tanh)
                gelu_tanh *= _GELU_A
                gelu_tanh += 1.0
                gelu_tanh *= pre
                gelu_tanh *= _GELU_C
                np.tanh(gelu_tanh, out=gelu_tanh)
                np.add(gelu_tanh, 1.0, out=out)
                out *= pre
                out *= 0.5
            elif activation == "tanh":
                np.tanh(pre, out=pre)
            elif activation == "sigmoid":
                np.negative(pre, out=pre)
                np.exp(pre, out=pre)
                pre += 1.0
                np.reciprocal(pre, out=pre)

        run()
        reads = (x2d, w) if b is None else (x2d, w, b)
        rec.record(run, reads, writes, tag=f"linear:{activation or 'none'}")
    else:
        out = np.matmul(x2d, weight.data.T,
                        out=_arena.empty((x2d.shape[0], out_features),
                                         np.result_type(x2d, weight.data)))
        if bias is not None:
            out += bias.data
        if activation is None or activation == "none":
            pass
        elif activation == "relu":
            relu_mask = out > 0
            np.multiply(out, relu_mask, out=out)
        elif activation == "gelu":
            gelu_pre = out
            out, gelu_tanh = _gelu_value_and_tanh(gelu_pre)
        elif activation == "tanh":
            out = np.tanh(out, out=out)
            act_out = out
        elif activation == "sigmoid":
            np.negative(out, out=out)
            np.exp(out, out=out)
            out += 1.0
            np.reciprocal(out, out=out)
            act_out = out

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        # Gradients are produced only for parents that will consume them:
        # under PEFT the base projections, the tied LM head and the norms
        # are frozen, so their weight-gradient GEMMs/reductions are dead
        # work the autograd loop would discard anyway.
        grad2d = grad.reshape(-1, out_features)
        act_grad = None
        if relu_mask is not None:
            grad2d = act_grad = np.multiply(
                grad2d, relu_mask, out=_arena.empty(grad2d.shape, grad2d.dtype))
        elif gelu_pre is not None:
            local = _gelu_local_grad(gelu_pre, gelu_tanh)
            grad2d = act_grad = np.multiply(
                grad2d, local, out=_arena.empty(grad2d.shape, grad2d.dtype))
            _arena.release(local, gelu_pre, gelu_tanh)
        elif act_out is not None:
            local = _arena.empty(act_out.shape, act_out.dtype)
            if activation == "tanh":
                np.multiply(act_out, act_out, out=local)
                np.subtract(1.0, local, out=local)
            else:  # sigmoid
                np.subtract(1.0, act_out, out=local)
                local *= act_out
            grad2d = act_grad = np.multiply(
                grad2d, local, out=_arena.empty(grad2d.shape, grad2d.dtype))
            _arena.release(local)
        grad_x = grad_w = None
        if x.requires_grad:
            grad_x = np.matmul(
                grad2d, weight.data,
                out=_arena.empty((grad2d.shape[0], in_features),
                                 np.result_type(grad2d, weight.data))
            ).reshape(x_data.shape)
        if weight.requires_grad:
            grad_w = np.matmul(grad2d.T, x2d,
                               out=_arena.empty((out_features, in_features),
                                                np.result_type(grad2d, x2d)))
        grad_b = (grad2d.sum(axis=0,
                             out=_arena.empty((out_features,), grad2d.dtype))
                  if bias is not None and bias.requires_grad else None)
        if act_grad is not None:
            _arena.release(act_grad)
        if bias is None:
            return grad_x, grad_w
        return grad_x, grad_w, grad_b

    return custom_op(out.reshape(*x_data.shape[:-1], out_features),
                     parents, backward)


# ---------------------------------------------------------------------------
# cross entropy on logits
# ---------------------------------------------------------------------------

def cross_entropy_logits(logits: Tensor, targets: np.ndarray,
                         ignore_index: int = -100,
                         shift: bool = False) -> Tuple[Tensor, int]:
    """Token-level cross entropy as one fused node over the logits.

    With ``shift=True`` the op computes the next-token loss directly —
    position ``t`` of the logits is scored against target ``t + 1`` — so the
    caller passes the *unshifted* ``(batch, seq, vocab)`` logits and no
    ``logits[:, :-1]`` slice node ever enters the tape.  That saves the slice
    node's forward copy and closure; the backward of this op still allocates
    one full-size gradient buffer for the logits input.

    Returns ``(mean NLL over valid positions, number of valid positions)``.
    """
    targets = np.asarray(targets)
    data = logits.data
    if shift:
        if data.ndim < 2:
            raise ValueError("shift=True requires (batch, seq, vocab) logits")
        scored = data[..., :-1, :]
        targets = targets[..., 1:]
    else:
        scored = data
    vocab = scored.shape[-1]
    n_rows = int(np.prod(scored.shape[:-1], dtype=np.int64))
    rows = _row_indices(n_rows)
    rec = _plan._RECORDER
    if rec is not None:
        # Recorded form.  Every target-derived array (valid mask, safe
        # targets, the per-row reductions) lives in a plan-owned buffer bound
        # once and refreshed by the replay thunk, so replaying the step heaps
        # nothing; the per-batch *scalars* (valid count, denominator) go
        # through ``st`` — shared mutable state the backward closure reads.
        probs = np.empty((n_rows, vocab), data.dtype)
        loss_buf = np.empty((), np.float32)
        valid = np.empty((n_rows,), bool)
        safe_targets = np.empty((n_rows,), np.int64)
        gather_idx = np.empty((n_rows,), np.int64)
        row_red = np.empty((n_rows, 1), data.dtype)
        target_logits = np.empty((n_rows,), data.dtype)
        picked = np.empty((n_rows,), data.dtype)
        if shift:
            flat_logits = np.empty((n_rows, vocab), data.dtype)
            flat_view = flat_logits.reshape(scored.shape)
            flat_targets = np.empty((n_rows,), np.asarray(targets).dtype)
            targets_view = flat_targets.reshape(targets.shape)
        else:
            flat_logits = scored.reshape(-1, vocab)
            flat_view = None
            flat_targets = targets.reshape(-1)
            targets_view = None
            if not np.may_share_memory(flat_logits, data):
                rec.fail("cross entropy over non-contiguous logits")
        st = {}

        def run(data=data, targets=targets, probs=probs, loss_buf=loss_buf,
                flat_logits=flat_logits, flat_view=flat_view,
                flat_targets=flat_targets, targets_view=targets_view, st=st):
            if flat_view is not None:
                np.copyto(flat_view, scored)
            if targets_view is not None:
                np.copyto(targets_view, targets)
            np.not_equal(flat_targets, ignore_index, out=valid)
            n_valid = int(valid.sum())
            np.multiply(flat_targets, valid, out=safe_targets)
            flat_logits.max(axis=-1, keepdims=True, out=row_red)
            np.subtract(flat_logits, row_red, out=probs)
            np.multiply(rows, vocab, out=gather_idx)
            np.add(gather_idx, safe_targets, out=gather_idx)
            np.take(probs.reshape(-1), gather_idx, out=target_logits)
            np.exp(probs, out=probs)
            probs.sum(axis=-1, keepdims=True, out=row_red)
            np.log(row_red[:, 0], out=picked)
            np.subtract(target_logits, picked, out=picked)
            np.divide(probs, row_red, out=probs)
            denom = max(n_valid, 1)
            np.multiply(picked, valid, out=picked)
            loss_buf[...] = -picked.sum() / denom
            st["denom"] = denom
            st["n_valid"] = n_valid

        run()
        reads = (data, targets)
        writes = [probs, loss_buf, valid, safe_targets, gather_idx, row_red,
                  target_logits, picked]
        if shift:
            writes += [flat_logits, flat_targets]
        rec.record(run, reads, tuple(writes), tag="cross_entropy")
        rec.extras["cross_entropy_state"] = st
        n_valid = st["n_valid"]

        def backward(grad):
            grad = np.asarray(grad).reshape(())
            denom = st["denom"]
            grad_flat = _arena.empty(probs.shape, probs.dtype)
            np.copyto(grad_flat, probs)
            grad_flat[rows, safe_targets] -= 1.0
            np.multiply(grad_flat, valid[:, None], out=grad_flat)
            grad_flat *= float(grad) / denom
            if not shift:
                return (grad_flat.reshape(data.shape),)
            full = _arena.empty(data.shape, data.dtype)
            full[..., :-1, :] = grad_flat.reshape(scored.shape)
            full[..., -1:, :] = 0.0
            _arena.release(grad_flat)
            return (full,)

        loss = custom_op(loss_buf, (logits,), backward)
        return loss, n_valid

    if shift:
        # The shifted slices are non-contiguous, so reshape would copy
        # anyway; route the copies through the arena instead.
        flat_logits = _arena.empty((n_rows, vocab), data.dtype)
        np.copyto(flat_logits.reshape(scored.shape), scored)
        flat_targets = _arena.empty((n_rows,), np.asarray(targets).dtype)
        np.copyto(flat_targets.reshape(targets.shape), targets)
    else:
        flat_logits = scored.reshape(-1, vocab)
        flat_targets = targets.reshape(-1)
    valid = _arena.empty((n_rows,), bool)
    np.not_equal(flat_targets, ignore_index, out=valid)
    n_valid = int(valid.sum())
    safe_targets = _arena.empty((n_rows,), np.int64)
    np.multiply(flat_targets, valid, out=safe_targets)
    if shift:
        _arena.release(flat_targets)

    row_red = flat_logits.max(axis=-1, keepdims=True,
                              out=_arena.empty((n_rows, 1), data.dtype))
    shifted = np.subtract(flat_logits, row_red,
                          out=_arena.empty((n_rows, vocab), data.dtype))
    if shift:
        _arena.release(flat_logits)
    # Pull the target-token logits out *before* exponentiating in place: the
    # probabilities then reuse the shifted buffer, so the op keeps a single
    # (rows, vocab) array alive for the backward instead of two.
    gather_idx = _arena.empty((n_rows,), np.int64)
    np.multiply(rows, vocab, out=gather_idx)
    gather_idx += safe_targets
    target_logits = np.take(shifted.reshape(-1), gather_idx,
                            out=_arena.empty((n_rows,), data.dtype))
    _arena.release(gather_idx)
    probs = np.exp(shifted, out=shifted)
    probs.sum(axis=-1, keepdims=True, out=row_red)
    # log-prob of the target token only — the full log-prob matrix is never
    # materialised; ``probs`` doubles as the saved state for the backward.
    picked = np.log(row_red[:, 0], out=_arena.empty((n_rows,), data.dtype))
    np.subtract(target_logits, picked, out=picked)
    np.divide(probs, row_red, out=probs)
    _arena.release(row_red, target_logits)
    denom = max(n_valid, 1)
    np.multiply(picked, valid, out=picked)
    loss_value = -picked.sum() / denom
    _arena.release(picked)

    def backward(grad):
        grad = np.asarray(grad).reshape(())
        grad_flat = _arena.empty(probs.shape, probs.dtype)
        np.copyto(grad_flat, probs)
        grad_flat[rows, safe_targets] -= 1.0
        np.multiply(grad_flat, valid[:, None], out=grad_flat)
        grad_flat *= float(grad) / denom
        _arena.release(probs, valid, safe_targets)
        if not shift:
            return (grad_flat.reshape(data.shape),)
        full = _arena.empty(data.shape, data.dtype)
        full[..., :-1, :] = grad_flat.reshape(scored.shape)
        full[..., -1:, :] = 0.0
        _arena.release(grad_flat)
        return (full,)

    loss = custom_op(np.asarray(loss_value, dtype=np.float32), (logits,), backward)
    return loss, n_valid


# ---------------------------------------------------------------------------
# fused dense attention core
# ---------------------------------------------------------------------------

def scaled_dot_product_attention(q: Tensor, k: Tensor, v: Tensor,
                                 attn_mask: Optional[np.ndarray] = None,
                                 scale: Optional[float] = None,
                                 return_probs: bool = False
                                 ) -> Union[Tensor, Tuple[Tensor, np.ndarray]]:
    """Fused ``softmax(Q K^T * scale) V`` with a hand-written backward.

    ``q``/``k``/``v`` are ``(batch, heads, seq, head_dim)``; ``attn_mask`` is
    an optional boolean keep-mask broadcastable to the score shape.  The
    whole core is one tape node that keeps a single ``(batch, heads, seq,
    seq)`` probability buffer alive for the backward — the taped composition
    keeps four (scores, masked scores, exp, probs) plus per-op closures.

    With ``return_probs=True`` also returns a copy of the attention
    probabilities (predictor data collection reads them as ground truth).
    """
    scale = float(scale) if scale is not None else float(1.0 / np.sqrt(q.shape[-1]))
    if attn_mask is not None:
        attn_mask = np.asarray(attn_mask, dtype=bool)

    score_shape = q.shape[:-1] + (k.shape[-2],)
    rec = _plan._RECORDER
    if rec is not None and return_probs:
        # The probability snapshot is a per-call copy (predictor collection);
        # it has no stable replay form.
        rec.fail("scaled_dot_product_attention with return_probs")
        rec = None
    if rec is not None:
        q_data, k_data, v_data = q.data, k.data, v.data
        kT = np.swapaxes(k_data, -1, -2)
        drop_mask = None if attn_mask is None else ~attn_mask
        probs = np.empty(score_shape, q_data.dtype)
        red = np.empty(score_shape[:-1] + (1,), q_data.dtype)
        zero_rows = np.empty(red.shape, bool)
        out = np.empty(q.shape[:-1] + (v.shape[-1],), q_data.dtype)

        def run(q_data=q_data, kT=kT, v_data=v_data, probs=probs, red=red,
                zero_rows=zero_rows, out=out, attn_mask=attn_mask,
                drop_mask=drop_mask, scale=scale):
            np.matmul(q_data, kT, out=probs)
            probs *= scale
            if attn_mask is not None:
                np.copyto(probs, _NEG_FILL, where=drop_mask)
            probs.max(axis=-1, keepdims=True, out=red)
            probs -= red
            np.exp(probs, out=probs)
            if attn_mask is not None:
                np.multiply(probs, attn_mask, out=probs)
            probs.sum(axis=-1, keepdims=True, out=red)
            guard_zero_rows(red, scratch=zero_rows)
            probs /= red
            np.matmul(probs, v_data, out=out)

        run()
        rec.record(run, (q_data, k_data, v_data),
                   (probs, red, zero_rows, out), tag="sdpa")
    else:
        probs = np.matmul(q.data, np.swapaxes(k.data, -1, -2),
                          out=_arena.empty(score_shape, q.data.dtype))
        probs *= scale
        if attn_mask is not None:
            # Negate into arena scratch: a bare ``~attn_mask`` is a fresh
            # O(seq^2)-scale bool allocation on every captured-mode step.
            drop = np.logical_not(attn_mask,
                                  out=_arena.empty(attn_mask.shape, bool))
            np.copyto(probs, _NEG_FILL, where=drop)
            _arena.release(drop)
        red = probs.max(axis=-1, keepdims=True,
                        out=_arena.empty(score_shape[:-1] + (1,),
                                         q.data.dtype))
        probs -= red
        np.exp(probs, out=probs)
        if attn_mask is not None:
            np.multiply(probs, attn_mask, out=probs)
        probs.sum(axis=-1, keepdims=True, out=red)
        guard_zero_rows(red)
        probs /= red
        _arena.release(red)
        out = np.matmul(probs, v.data,
                        out=_arena.empty(q.shape[:-1] + (v.shape[-1],),
                                         q.data.dtype))

    def backward(grad_out):
        grad_v = np.matmul(np.swapaxes(probs, -1, -2), grad_out,
                           out=_arena.empty(v.shape, v.data.dtype))
        # dP, then softmax backward in the same buffer.
        dS = np.matmul(grad_out, np.swapaxes(v.data, -1, -2),
                       out=_arena.empty(score_shape, q.data.dtype))
        tmp = np.multiply(dS, probs, out=_arena.empty(score_shape, q.data.dtype))
        dot = tmp.sum(axis=-1, keepdims=True,
                      out=_arena.empty(score_shape[:-1] + (1,), q.data.dtype))
        _arena.release(tmp)
        dS -= dot
        _arena.release(dot)
        dS *= probs
        dS *= scale
        grad_q = np.matmul(dS, k.data, out=_arena.empty(q.shape, q.data.dtype))
        grad_k = np.matmul(np.swapaxes(dS, -1, -2), q.data,
                           out=_arena.empty(k.shape, k.data.dtype))
        _arena.release(dS, probs)
        return grad_q, grad_k, grad_v

    result = custom_op(out, (q, k, v), backward)
    if return_probs:
        return result, probs.copy()
    return result


# ---------------------------------------------------------------------------
# streaming tiled attention (FlashAttention-style online softmax)
# ---------------------------------------------------------------------------

def _stream_attention_forward(q_data, kT, v_data, keep_b, drop_map, scale,
                              tiles, s_map, red, corr, m_buf, lse,
                              zero_rows, pv, out):
    """One online-softmax sweep over the K/V tiles, entirely into the given
    buffers.  Shared verbatim by the recorded thunk and the interpreted path
    so captured and uncaptured execution stay bitwise identical.

    ``m_buf``/``lse`` carry the running row max and exp-sum; after the sweep
    ``lse`` is rewritten in place to the per-row logsumexp the recompute
    backward needs.  ``s_map`` maps tile width -> score scratch (the final
    ragged tile gets its own exact-width buffer so every matmul writes a
    contiguous destination).  ``drop_map`` is the matching bool scratch the
    masked fill negates each keep tile into — negating per tile keeps the
    drop mask O(seq * tile); a whole-matrix ``~mask`` would be a fresh
    O(seq^2) allocation on every call.
    """
    m_buf.fill(-np.inf)
    lse.fill(0.0)
    out.fill(0.0)
    for j0, j1 in tiles:
        s = s_map[j1 - j0]
        np.matmul(q_data, kT[..., j0:j1], out=s)
        s *= scale
        if keep_b is not None:
            drop = np.logical_not(keep_b[..., j0:j1], out=drop_map[j1 - j0])
            np.copyto(s, _NEG_FILL, where=drop)
        s.max(axis=-1, keepdims=True, out=red)
        np.maximum(m_buf, red, out=red)
        # corr = exp(m_old - m_new) rescales the running sum/accumulator;
        # exactly 0.0 on the first tile (m_old = -inf), so the fills above
        # are what the first rescale multiplies.
        np.subtract(m_buf, red, out=corr)
        np.exp(corr, out=corr)
        np.copyto(m_buf, red)
        s -= m_buf
        np.exp(s, out=s)
        if keep_b is not None:
            np.multiply(s, keep_b[..., j0:j1], out=s)
        lse *= corr
        s.sum(axis=-1, keepdims=True, out=red)
        lse += red
        out *= corr
        np.matmul(s, v_data[..., j0:j1, :], out=pv)
        out += pv
    guard_zero_rows(lse, scratch=zero_rows)
    out /= lse
    np.log(lse, out=lse)
    lse += m_buf


def streaming_attention(q: Tensor, k: Tensor, v: Tensor,
                        attn_mask: Optional[np.ndarray] = None,
                        scale: Optional[float] = None,
                        tile: Optional[int] = None) -> Tensor:
    """Streaming tiled ``softmax(Q K^T * scale) V`` — O(seq * tile) scratch.

    Numerically equivalent to :func:`scaled_dot_product_attention` (same
    masking and fully-masked-row conventions via :func:`guard_zero_rows`)
    but the full ``(seq, seq)`` score matrix is never materialised: the
    forward streams K/V tiles with online max/sum rescaling, keeping only a
    ``(batch, heads, seq, tile)`` score scratch plus per-row running
    statistics, and saves the per-row logsumexp so the backward can
    re-stream the same tiles and recompute each probability block on the
    fly while accumulating dQ/dK/dV.

    Forward results differ from the materializing kernel only by
    accumulation order (one rescaled partial sum per tile instead of a
    single row-wide reduction); the parity suite bounds the drift.
    """
    scale = float(scale) if scale is not None else float(1.0 / np.sqrt(q.shape[-1]))
    tile = int(tile) if tile is not None else streaming_tile()
    if tile <= 0:
        raise ValueError(f"tile must be positive, got {tile}")
    if attn_mask is not None:
        attn_mask = np.asarray(attn_mask, dtype=bool)

    q_data, k_data, v_data = q.data, k.data, v.data
    sk = k.shape[-2]
    tile = min(tile, sk)
    tiles = tuple((j0, min(j0 + tile, sk)) for j0 in range(0, sk, tile))
    tail = sk % tile
    red_shape = q.shape[:-1] + (1,)
    out_shape = q.shape[:-1] + (v.shape[-1],)
    kT = np.swapaxes(k_data, -1, -2)
    if attn_mask is not None:
        full_shape = q.shape[:-1] + (sk,)
        keep_b = np.broadcast_to(attn_mask, full_shape)
    else:
        keep_b = None
    widths = (tile, tail) if tail else (tile,)

    rec = _plan._RECORDER
    if rec is not None:
        s_map = {w: np.empty(q.shape[:-1] + (w,), q_data.dtype)
                 for w in widths}
        drop_map = ({w: np.empty(q.shape[:-1] + (w,), bool) for w in widths}
                    if keep_b is not None else None)
        red = np.empty(red_shape, q_data.dtype)
        corr = np.empty(red_shape, q_data.dtype)
        m_buf = np.empty(red_shape, q_data.dtype)
        lse = np.empty(red_shape, q_data.dtype)
        zero_rows = np.empty(red_shape, bool)
        pv = np.empty(out_shape, q_data.dtype)
        out = np.empty(out_shape, q_data.dtype)

        def run(q_data=q_data, kT=kT, v_data=v_data, keep_b=keep_b,
                drop_map=drop_map, scale=scale, tiles=tiles, s_map=s_map,
                red=red, corr=corr, m_buf=m_buf, lse=lse,
                zero_rows=zero_rows, pv=pv, out=out):
            _stream_attention_forward(q_data, kT, v_data, keep_b, drop_map,
                                      scale, tiles, s_map, red, corr, m_buf,
                                      lse, zero_rows, pv, out)

        run()
        writes = tuple(s_map.values()) + (red, corr, m_buf, lse, zero_rows,
                                          pv, out)
        if drop_map is not None:
            writes += tuple(drop_map.values())
        rec.record(run, (q_data, k_data, v_data), writes,
                   tag="streaming_attention")
    else:
        s_map = {w: _arena.empty(q.shape[:-1] + (w,), q_data.dtype)
                 for w in widths}
        drop_map = ({w: _arena.empty(q.shape[:-1] + (w,), bool)
                     for w in widths}
                    if keep_b is not None else None)
        red = _arena.empty(red_shape, q_data.dtype)
        corr = _arena.empty(red_shape, q_data.dtype)
        m_buf = _arena.empty(red_shape, q_data.dtype)
        lse = _arena.empty(red_shape, q_data.dtype)
        zero_rows = _arena.empty(red_shape, bool)
        pv = _arena.empty(out_shape, q_data.dtype)
        out = _arena.empty(out_shape, q_data.dtype)
        _stream_attention_forward(q_data, kT, v_data, keep_b, drop_map, scale,
                                  tiles, s_map, red, corr, m_buf, lse,
                                  zero_rows, pv, out)
        # lse survives for the recompute backward; out is the op result.
        _arena.release(*s_map.values())
        if drop_map is not None:
            _arena.release(*drop_map.values())
        _arena.release(red, corr, m_buf, zero_rows, pv)

    def backward(grad_out):
        dtype = q_data.dtype
        # delta_i = sum_d dO_id * O_id (the softmax-backward row dot).
        tmp = np.multiply(grad_out, out, out=_arena.empty(out_shape, dtype))
        delta = tmp.sum(axis=-1, keepdims=True,
                        out=_arena.empty(red_shape, dtype))
        _arena.release(tmp)
        p_map = {w: _arena.empty(q.shape[:-1] + (w,), dtype) for w in widths}
        dp_map = {w: _arena.empty(q.shape[:-1] + (w,), dtype) for w in widths}
        bd_map = ({w: _arena.empty(q.shape[:-1] + (w,), bool) for w in widths}
                  if keep_b is not None else None)
        dq_scratch = _arena.empty(q.shape, dtype)
        grad_q = _arena.zeros(q.shape, dtype)
        grad_k = _arena.empty(k.shape, k_data.dtype)
        grad_v = _arena.empty(v.shape, v_data.dtype)
        for j0, j1 in tiles:
            w = j1 - j0
            p = p_map[w]
            # Recompute the probability tile from the saved logsumexp — no
            # second max pass needed since lse >= every kept score.
            np.matmul(q_data, kT[..., j0:j1], out=p)
            p *= scale
            if keep_b is not None:
                drop = np.logical_not(keep_b[..., j0:j1], out=bd_map[w])
                np.copyto(p, _NEG_FILL, where=drop)
            p -= lse
            np.exp(p, out=p)
            if keep_b is not None:
                np.multiply(p, keep_b[..., j0:j1], out=p)
            # Each K/V position lives in exactly one tile, so dK/dV tiles
            # are written once, directly into their slices.
            np.matmul(np.swapaxes(p, -1, -2), grad_out,
                      out=grad_v[..., j0:j1, :])
            dp = dp_map[w]
            np.matmul(grad_out, np.swapaxes(v_data[..., j0:j1, :], -1, -2),
                      out=dp)
            dp -= delta
            dp *= p
            dp *= scale
            np.matmul(dp, k_data[..., j0:j1, :], out=dq_scratch)
            grad_q += dq_scratch
            np.matmul(np.swapaxes(dp, -1, -2), q_data,
                      out=grad_k[..., j0:j1, :])
        _arena.release(*p_map.values())
        _arena.release(*dp_map.values())
        if bd_map is not None:
            _arena.release(*bd_map.values())
        # lse is plan-owned in the recorded branch; release() ignores it
        # there and frees the arena buffer otherwise.
        _arena.release(delta, dq_scratch, lse)
        return grad_q, grad_k, grad_v

    return custom_op(out, (q, k, v), backward)
