"""Reverse-mode automatic differentiation engine on top of NumPy.

This subpackage is the computational substrate that replaces PyTorch in the
reproduction: a :class:`~repro.tensor.tensor.Tensor` wraps a ``numpy.ndarray``
and records the operations applied to it so that gradients can be obtained by
calling :meth:`Tensor.backward`.  All higher layers (``repro.nn``,
``repro.models``, ``repro.peft``, ``repro.sparsity``) are written against this
engine, so the forward *and* backward FLOP structure of fine-tuning — the
thing LongExposure's sparsity attacks — is fully materialised in Python and
can be timed, instrumented and sparsified.

Design notes
------------
* Operations are vectorised NumPy calls; the graph is a thin closure-based
  tape (similar in spirit to micrograd, but fully broadcast-aware and
  batched).
* Gradients are accumulated into ``Tensor.grad`` as plain ``numpy.ndarray``
  objects to avoid building second-order graphs.
* Custom primitives used by the sparse operators register their own backward
  closures (see :mod:`repro.sparsity.ops`), which is how the paper's claim
  that "inactive parameters are excluded from the gradient computation"
  (Section II-D) is realised here.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor import functional

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "functional"]
