"""Reverse-mode automatic differentiation engine on top of NumPy.

This subpackage is the computational substrate that replaces PyTorch in the
reproduction: a :class:`~repro.tensor.tensor.Tensor` wraps a ``numpy.ndarray``
and records the operations applied to it so that gradients can be obtained by
calling :meth:`Tensor.backward`.  All higher layers (``repro.nn``,
``repro.models``, ``repro.peft``, ``repro.sparsity``) are written against this
engine, so the forward *and* backward FLOP structure of fine-tuning — the
thing LongExposure's sparsity attacks — is fully materialised in Python and
can be timed, instrumented and sparsified.

Design notes
------------
* Operations are vectorised NumPy calls; the graph is a thin closure-based
  tape (similar in spirit to micrograd, but fully broadcast-aware and
  batched).
* Gradients are accumulated into ``Tensor.grad`` as plain ``numpy.ndarray``
  objects to avoid building second-order graphs.
* Custom primitives used by the sparse operators register their own backward
  closures (see :mod:`repro.sparsity.ops`), which is how the paper's claim
  that "inactive parameters are excluded from the gradient computation"
  (Section II-D) is realised here.
* The training hot path runs on the fused single-node kernels in
  :mod:`repro.tensor.fused` (softmax, layer norm, linear+activation, cross
  entropy, the dense attention core); :mod:`repro.tensor.reference` holds
  the equivalent primitive compositions used for gradchecking and as the
  perf-regression baseline, selectable at runtime via
  :func:`repro.tensor.fused.set_fused_kernels`.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor import fused
from repro.tensor import functional
from repro.tensor import reference

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "functional", "fused", "reference"]
