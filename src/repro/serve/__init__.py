"""Multi-tenant fine-tuning service over one shared frozen base model.

Public surface:

* :class:`FineTuningService` / :class:`ServiceConfig` — the serving facade:
  ``submit`` per-tenant step requests, ``step``/``flush`` to serve them
  through signature-bucketed continuous batching, ``fetch_adapter`` to copy
  a tenant's trained adapter out.
* :class:`AdapterRegistry` — per-tenant adapter + optimizer state paging
  (LRU-resident over a buffer arena, cold storage beyond that).
* :class:`SignatureBucketQueue` / :class:`StepRequest` — the request queue
  with the max-wait anti-starvation policy.
* :class:`TenantStateStore` — atomic, SHA-256-verified checkpoint files
  giving cold tenant state a durable tier (service crash-restart safe).
"""

from repro.serve.queue import SignatureBucketQueue, StepRequest
from repro.serve.registry import AdapterRegistry, AdapterSnapshot, TenantState
from repro.serve.service import FineTuningService, ServiceConfig, StepResult
from repro.serve.store import CheckpointCorruptError, TenantStateStore

__all__ = [
    "AdapterRegistry",
    "AdapterSnapshot",
    "CheckpointCorruptError",
    "FineTuningService",
    "ServiceConfig",
    "SignatureBucketQueue",
    "StepRequest",
    "StepResult",
    "TenantState",
    "TenantStateStore",
]
