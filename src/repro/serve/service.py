"""Multi-tenant fine-tuning service: one frozen base, many adapters.

:class:`FineTuningService` is the public serving facade over the training
stack: tenants submit per-step fine-tuning requests against a shared frozen
base model, and the service drives them through signature-bucketed continuous
batching so steady-state steps replay the compiled plans of PR 5/6 instead of
rebuilding graphs.

Architecture (one instance, N tenants, K adapter kinds)::

    submit(tenant, batch) ── pad to seq bucket ── signature key
           │                                          │
           ▼                                          ▼
    SignatureBucketQueue ──select──▶ lane[kind]: FineTuner + Adam
           │                            │  per-bucket StepCapture (plan cache)
           │                            │  AdapterRegistry.attach(tenant)
           ▼                            ▼
        StepResult ◀── compiled replay over the SAME live buffers

* **One resident base.**  Every lane (one per adapter kind) is a model whose
  frozen parameters *alias* the shared base model's ndarrays — K lanes cost
  one backbone plus K adapter sets, which is the economics the PEFT paper's
  frozen-base regime promises at fleet scale.
* **Values-only tenant switches.**  The :class:`AdapterRegistry` pages tenant
  state in and out with ``np.copyto`` so the buffers compiled plans are bound
  to never change identity; switching tenants inside one bucket costs two
  flat copies, never a recapture.
* **Per-bucket captures.**  Each signature bucket owns its own
  :class:`StepCapture` (bounded LRU plan cache, evictions call
  ``StepCapture.retire``), so alternating buckets never thrash one capture's
  signature — every bucket captures once, then replays forever.

The service pins ``mixed_precision`` off and ``executor_threads`` to the
configured value (default 1): the tenant-isolation contract is *bitwise* —
adapters trained interleaved through the service are bit-identical to the
same tenants trained back-to-back on dedicated tuners — and that contract
holds only on the deterministic single-thread replay path.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.models import build_model
from repro.nn import Module
from repro.optim import Adam
from repro.peft import PEFTResult, get_peft_method
from repro.runtime.arena import StepCapture
from repro.runtime.fault import FaultInjector
from repro.runtime.profiler import PhaseProfiler
from repro.runtime.trainer import (AttentionConfig, CaptureConfig, FineTuner,
                                   TrainingConfig)
from repro.serve.queue import SignatureBucketQueue, StepRequest
from repro.serve.registry import AdapterRegistry, AdapterSnapshot
from repro.serve.store import TenantStateStore


@dataclass
class ServiceConfig:
    """Configuration of a :class:`FineTuningService`."""

    model: str = "opt-tiny"
    seed: int = 0
    adapters: Sequence[str] = ("lora",)
    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    # Paging / batching knobs.
    max_resident_tenants: int = 8
    max_wait_steps: int = 8
    seq_buckets: Sequence[int] = (16, 32, 64, 128)
    max_plan_cache: int = 4
    pad_token_id: int = 0
    # Execution: compiled single-thread replay is the default — the bitwise
    # tenant-isolation contract requires executor_threads == 1.
    compile_full_step: bool = True
    executor_threads: int = 1
    fused_kernels: bool = True
    streaming_attention: Optional[bool] = None
    streaming_tile: int = 128
    # Sparsity routing mode; part of every bucket key.  The service currently
    # always runs dense ("dense"); the key slot keeps signatures forward-
    # compatible with predicted-sparsity lanes.
    sparsity_mode: str = "dense"
    # Durability: when set, each lane's registry pages cold tenants to
    # atomic checkpoint files under <state_dir>/<kind>/ and rehydrates them
    # at construction (see repro.serve.store).
    state_dir: Optional[str] = None
    # PEFT-economics guard: a lane whose *trainable* state exceeds this
    # byte budget is rejected at construction.  The service's whole design
    # (values-only tenant swaps, per-tenant flat slabs, N tenants per box)
    # assumes adapter-sized trainable state; a `full` fine-tuning lane on a
    # real model breaks that arithmetic by 3-4 orders of magnitude and is a
    # documented anti-goal (README "Scope and anti-goals").  None disables
    # the guard.
    max_lane_trainable_bytes: Optional[int] = 1 << 20


@dataclass
class StepResult:
    """Outcome of one served step."""

    request_id: int
    tenant: str
    adapter: str
    bucket: Hashable
    loss: float
    step_seconds: float
    latency_seconds: float
    replayed: bool


class _Lane:
    """One adapter kind's execution lane: adapted model + tuner + registry."""

    __slots__ = ("kind", "model", "peft_result", "optimizer", "tuner",
                 "registry", "captures")

    def __init__(self, kind: str, model: Module, peft_result: PEFTResult,
                 optimizer: Adam, tuner: FineTuner,
                 registry: AdapterRegistry):
        self.kind = kind
        self.model = model
        self.peft_result = peft_result
        self.optimizer = optimizer
        self.tuner = tuner
        self.registry = registry
        # Per-signature StepCaptures, LRU-ordered (dicts preserve insertion
        # order; re-use re-inserts at the tail).
        self.captures: Dict[Hashable, StepCapture] = {}


class FineTuningService:
    """Serve many tenants' PEFT fine-tuning over one shared frozen base."""

    def __init__(self, config: Optional[ServiceConfig] = None,
                 fault_injector: Optional[FaultInjector] = None):
        self.config = config or ServiceConfig()
        cfg = self.config
        if not cfg.adapters:
            raise ValueError("at least one adapter kind is required")
        self.fault_injector = fault_injector
        self.profiler = PhaseProfiler()
        self.base_model = build_model(cfg.model, seed=cfg.seed)
        base_params = dict(self.base_model.named_parameters())
        base_ids = {id(p.data) for p in base_params.values()}
        self._lanes: Dict[str, _Lane] = {}
        self._tenant_lanes: Dict[str, str] = {}
        for kind in cfg.adapters:
            self._lanes[kind] = self._build_lane(kind, base_params, base_ids)
        self.queue = SignatureBucketQueue(max_wait_steps=cfg.max_wait_steps)
        self._current_key: Optional[Hashable] = None
        self._next_request_id = 1
        self.steps = 0
        self.capture_hits = 0
        self._keys_served: set = set()

    def _build_lane(self, kind: str, base_params, base_ids) -> _Lane:
        cfg = self.config
        # A second instance built from the same seed is value-identical to
        # the base, so aliasing every parameter onto the base's ndarrays
        # changes nothing numerically — it just makes the backbone's storage
        # shared.  PEFT then freezes the backbone and adds adapter state;
        # any parameter the method leaves trainable while still aliased
        # (BitFit's biases, full FT) gets a private copy, because tenants
        # write trainable parameters and the base must never see that.
        model = build_model(cfg.model, seed=cfg.seed)
        for name, param in model.named_parameters():
            param.data = base_params[name].data
        model, result = get_peft_method(kind)(model)
        for _, param in model.named_parameters():
            if param.requires_grad and id(param.data) in base_ids:
                param.data = param.data.copy()
        training = TrainingConfig(
            learning_rate=cfg.learning_rate,
            weight_decay=cfg.weight_decay,
            mixed_precision=False,
            capture=CaptureConfig(enabled=False,
                                  compile_full_step=cfg.compile_full_step,
                                  executor_threads=cfg.executor_threads),
            attention=AttentionConfig(streaming=cfg.streaming_attention,
                                      streaming_tile=cfg.streaming_tile,
                                      fused_kernels=cfg.fused_kernels))
        named_trainable = [(n, p) for n, p in model.named_parameters()
                           if p.requires_grad]
        trainable_bytes = sum(int(p.data.nbytes) for _, p in named_trainable)
        budget = cfg.max_lane_trainable_bytes
        if budget is not None and trainable_bytes > budget:
            raise ValueError(
                f"lane {kind!r} has {trainable_bytes} trainable bytes, over "
                f"the {budget}-byte per-lane budget "
                f"(max_lane_trainable_bytes).  The service's per-tenant "
                f"paging economics assume adapter-sized trainable state; "
                f"full fine-tuning at scale is a documented anti-goal "
                f"(README: Scope and anti-goals).  Raise the budget or set "
                f"it to None to opt in anyway.")
        optimizer = Adam([p for _, p in named_trainable],
                         lr=cfg.learning_rate, weight_decay=cfg.weight_decay)
        tuner = FineTuner(model, training, optimizer=optimizer)
        store = None
        if cfg.state_dir is not None:
            store = TenantStateStore(os.path.join(cfg.state_dir, kind),
                                     fault_injector=self.fault_injector)
        registry = AdapterRegistry(optimizer, named_trainable,
                                   max_resident=cfg.max_resident_tenants,
                                   store=store)
        # Rehydrated tenants must be routable before their first submit.
        for tenant in registry.tenants():
            self._tenant_lanes.setdefault(tenant, kind)
        return _Lane(kind, model, result, optimizer, tuner, registry)

    # -- request intake ------------------------------------------------------
    def pad_to_bucket(self, input_ids: np.ndarray,
                      labels: Optional[np.ndarray] = None):
        """Right-pad the batch to the smallest configured sequence bucket.

        Padding uses ``pad_token_id`` for both inputs and (when provided)
        labels — the padded positions train like real tokens, which is the
        price of bucketed batching without a masked loss; callers who care
        submit bucket-sized batches.
        """
        input_ids = np.asarray(input_ids)
        seq = int(input_ids.shape[-1])
        buckets = sorted(int(b) for b in self.config.seq_buckets)
        target = next((b for b in buckets if b >= seq), None)
        if target is None:
            raise ValueError(f"sequence length {seq} exceeds the largest "
                             f"configured bucket ({buckets[-1]})")
        if target == seq:
            return input_ids, None if labels is None else np.asarray(labels)
        pad = [(0, 0)] * (input_ids.ndim - 1) + [(0, target - seq)]
        padded = np.pad(input_ids, pad, constant_values=self.config.pad_token_id)
        padded_labels = None
        if labels is not None:
            padded_labels = np.pad(np.asarray(labels), pad,
                                   constant_values=self.config.pad_token_id)
        return padded, padded_labels

    def bucket_key(self, adapter: str, input_ids: np.ndarray,
                   labels: Optional[np.ndarray] = None) -> Hashable:
        """The signature bucket a batch lands in (adapter × mode × signature)."""
        lane = self._lane(adapter)
        return (adapter, self.config.sparsity_mode,
                lane.tuner.step_signature(input_ids, labels))

    def submit(self, tenant: str, input_ids: np.ndarray,
               labels: Optional[np.ndarray] = None,
               adapter: Optional[str] = None) -> int:
        """Queue one fine-tuning step for ``tenant``; returns the request id."""
        adapter = adapter or next(iter(self._lanes))
        self._lane(adapter)  # validates the kind
        self._tenant_lanes.setdefault(tenant, adapter)
        input_ids, labels = self.pad_to_bucket(input_ids, labels)
        key = self.bucket_key(adapter, input_ids, labels)
        request = StepRequest(request_id=self._next_request_id, tenant=tenant,
                              adapter=adapter, input_ids=input_ids,
                              labels=labels, submit_step=self.steps)
        self._next_request_id += 1
        self.queue.submit(key, request)
        return request.request_id

    # -- serving -------------------------------------------------------------
    def step(self) -> Optional[StepResult]:
        """Serve the next request per the scheduling policy (None when idle)."""
        key = self.queue.select(self._current_key, self.steps)
        if key is None:
            return None
        request = self.queue.pop(key)
        lane = self._lane(request.adapter)
        lane.registry.attach(request.tenant)
        capture = self._bucket_capture(lane, key)
        lane.tuner.capture = capture
        hits_before = capture.replay_steps + capture.full_replays
        start = time.perf_counter()
        loss, timing = lane.tuner.step(request.input_ids, request.labels)
        step_seconds = time.perf_counter() - start
        replayed = (capture.replay_steps + capture.full_replays) > hits_before
        self._current_key = key
        self._keys_served.add(key)
        self.steps += 1
        self.capture_hits += int(replayed)
        return StepResult(request_id=request.request_id, tenant=request.tenant,
                          adapter=request.adapter, bucket=key,
                          loss=float(loss), step_seconds=step_seconds,
                          latency_seconds=time.perf_counter() - request.submit_time,
                          replayed=replayed)

    def flush(self) -> List[StepResult]:
        """Drain the queue; returns every step's result in service order."""
        results: List[StepResult] = []
        while self.queue:
            result = self.step()
            if result is None:
                break
            results.append(result)
        return results

    def _bucket_capture(self, lane: _Lane, key: Hashable) -> StepCapture:
        capture = lane.captures.pop(key, None)
        if capture is None:
            # warmup=0: the bucket's first step captures, the rest replay.
            capture = StepCapture(warmup_steps=0)
        lane.captures[key] = capture  # (re-)insert at the LRU tail
        while len(lane.captures) > self.config.max_plan_cache:
            victim_key = next(iter(lane.captures))
            if victim_key == key:
                break
            lane.captures.pop(victim_key).retire()
        return capture

    # -- tenant state --------------------------------------------------------
    def _lane(self, adapter: str) -> _Lane:
        try:
            return self._lanes[adapter]
        except KeyError:
            raise KeyError(f"no lane for adapter kind {adapter!r}; "
                           f"configured: {sorted(self._lanes)}") from None

    def _tenant_lane(self, tenant: str, adapter: Optional[str]) -> _Lane:
        if adapter is None:
            adapter = self._tenant_lanes.get(tenant)
            if adapter is None:
                raise KeyError(f"unknown tenant {tenant!r}")
        return self._lane(adapter)

    def fetch_adapter(self, tenant: str,
                      adapter: Optional[str] = None) -> AdapterSnapshot:
        """Copy a tenant's trained adapter out of the service."""
        return self._tenant_lane(tenant, adapter).registry.fetch(tenant)

    def tenant_digest(self, tenant: str, adapter: Optional[str] = None) -> str:
        """SHA-256 of the tenant's flat adapter parameters."""
        return self._tenant_lane(tenant, adapter).registry.digest(tenant)

    def base_digest(self) -> str:
        """SHA-256 over the shared frozen base parameters (leakage check)."""
        digest = hashlib.sha256()
        for name, param in sorted(self.base_model.named_parameters()):
            digest.update(name.encode())
            digest.update(np.ascontiguousarray(param.data).tobytes())
        return digest.hexdigest()

    def checkpoint(self) -> int:
        """Persist every tenant in every lane through the durable store.

        Returns the number of checkpoint files written.  Requires
        ``config.state_dir``; a service constructed over the same directory
        rehydrates all tenants bit-exact (same ``tenant_digest``) — the
        crash-restart contract locked by the fault test tier.
        """
        if self.config.state_dir is None:
            raise RuntimeError("ServiceConfig.state_dir is not set; the "
                               "service has no durable store to checkpoint to")
        with self.profiler.phase("checkpoint"):
            written = sum(lane.registry.checkpoint_all()
                          for lane in self._lanes.values())
        self.gauges()  # refresh the durability gauges on the profiler
        return written

    # -- reporting -----------------------------------------------------------
    def gauges(self) -> Dict[str, float]:
        gauges = {
            "serve_steps": float(self.steps),
            "capture_hits": float(self.capture_hits),
            "capture_hit_rate": (self.capture_hits / self.steps
                                 if self.steps else 0.0),
            # Hit rate after warm-up: each bucket's first step is its one
            # unavoidable capture.
            "warm_capture_hit_rate": (
                self.capture_hits / max(1, self.steps - len(self._keys_served))
                if self.steps > len(self._keys_served) else 0.0),
            "pending_requests": float(self.queue.pending()),
            "buckets_live": float(len(self.queue.keys())),
            "plan_caches": float(sum(len(l.captures)
                                     for l in self._lanes.values())),
        }
        for name in ("tenants", "resident_tenants", "tenant_evictions",
                     "tenant_pageins", "tenant_attaches", "tenant_state_bytes",
                     "tenant_checkpoint_writes", "tenant_restores",
                     "tenant_quarantined"):
            gauges[name] = float(sum(l.registry.gauges()[name]
                                     for l in self._lanes.values()))
        # Mirror onto the service profiler so durability/traffic counters
        # travel with phase timings in PhaseProfiler.summary_dict().
        for name, value in gauges.items():
            self.profiler.set_gauge(name, value)
        return gauges
