"""Durable tenant state: atomic, checksummed checkpoint files per tenant.

The :class:`~repro.serve.registry.AdapterRegistry` keeps cold tenant slabs as
process-memory bytes — bit-exact, but gone on restart.  This module gives the
registry a disk tier with the guarantees a multi-tenant service actually
needs:

* **Atomic writes.**  Every checkpoint is written to a temp file in the same
  directory, flushed and ``fsync``\\ ed, then ``os.replace``\\ d over the final
  name (followed by a directory fsync).  A crash at any point leaves either
  the old complete file or the new complete file — never a torn one — and
  stray temp files are ignored by the loader.
* **End-to-end integrity.**  The file is one JSON header line (magic, tenant,
  step count, dtype, element count, SHA-256 of the body) followed by the raw
  flat slabs (``params | m | v`` concatenated).  The loader verifies
  everything before a single byte reaches the optimizer; any mismatch —
  truncation, bit rot, a half-written legacy file — **quarantines** the file
  (renamed to ``<name>.corrupt``) and raises :class:`CheckpointCorruptError`.
  A corrupt checkpoint can cost one tenant its saved progress; it can never
  poison a live lane or stop the service from starting.
* **Bounded retries.**  Transient write failures (including injected ones —
  the ``checkpoint_write_failure`` site of
  :class:`~repro.runtime.fault.FaultInjector`) are retried on a seeded
  backoff schedule via :class:`~repro.runtime.fault.RetryPolicy`.

Round-trips are bitwise: ``save`` → ``load`` returns byte-identical slabs
(the serve test tier locks digest equality across a full service restart).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.fault import FaultInjector, InjectedFault, RetryPolicy

__all__ = ["CheckpointCorruptError", "TenantStateStore", "MAGIC"]

MAGIC = "lexckpt1"

_SUFFIX = ".ckpt"
_QUARANTINE_SUFFIX = ".corrupt"


class CheckpointCorruptError(RuntimeError):
    """A checkpoint file failed verification and was quarantined."""


def _safe_name(tenant: str) -> str:
    """Filesystem-safe encoding of a tenant id (header keeps the truth)."""
    return "".join(c if c.isalnum() or c in "._-" else f"%{ord(c):02x}"
                   for c in tenant)


class TenantStateStore:
    """Atomic, checksummed per-tenant checkpoint files (see module docstring).

    Parameters
    ----------
    directory:
        Checkpoint directory; created on first use.
    retry:
        :class:`RetryPolicy` for transient write failures; default three
        retries with deterministic-jitter backoff.
    fault_injector:
        Optional injector consulted at the ``checkpoint_write_failure`` site
        on every write attempt.
    """

    def __init__(self, directory: str,
                 retry: Optional[RetryPolicy] = None,
                 fault_injector: Optional[FaultInjector] = None):
        self.directory = str(directory)
        self.retry = retry or RetryPolicy()
        self.fault_injector = fault_injector
        self.writes = 0
        self.restores = 0
        self.quarantined = 0
        os.makedirs(self.directory, exist_ok=True)

    # -- paths ---------------------------------------------------------------
    def path(self, tenant: str) -> str:
        return os.path.join(self.directory, _safe_name(tenant) + _SUFFIX)

    def exists(self, tenant: str) -> bool:
        return os.path.exists(self.path(tenant))

    # -- write ---------------------------------------------------------------
    def save(self, tenant: str, step_count: int, params: np.ndarray,
             m: np.ndarray, v: np.ndarray) -> str:
        """Atomically persist one tenant's flat slabs; returns the path."""
        params = np.ascontiguousarray(params)
        m = np.ascontiguousarray(m)
        v = np.ascontiguousarray(v)
        if not (params.shape == m.shape == v.shape
                and params.dtype == m.dtype == v.dtype):
            raise ValueError("params/m/v slabs must share shape and dtype")
        body = params.tobytes() + m.tobytes() + v.tobytes()
        header = json.dumps({
            "magic": MAGIC,
            "tenant": tenant,
            "step_count": int(step_count),
            "dtype": params.dtype.name,
            "total": int(params.size),
            "sha256": hashlib.sha256(body).hexdigest(),
        }, sort_keys=True).encode("utf-8")
        final_path = self.path(tenant)

        def _write() -> None:
            if self.fault_injector is not None:
                self.fault_injector.maybe_raise("checkpoint_write_failure")
            fd, tmp_path = tempfile.mkstemp(dir=self.directory,
                                            prefix=_safe_name(tenant) + ".",
                                            suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(header)
                    handle.write(b"\n")
                    handle.write(body)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_path, final_path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
            # Make the rename itself durable.
            dir_fd = os.open(self.directory, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)

        self.retry.call(_write, retry_on=(OSError, InjectedFault))
        self.writes += 1
        return final_path

    # -- read ----------------------------------------------------------------
    def _quarantine(self, path: str, why: str) -> CheckpointCorruptError:
        quarantine_path = path + _QUARANTINE_SUFFIX
        try:
            os.replace(path, quarantine_path)
        except OSError:
            quarantine_path = path
        self.quarantined += 1
        return CheckpointCorruptError(
            f"checkpoint {path} failed verification ({why}); quarantined as "
            f"{quarantine_path} — the tenant restarts from its last good "
            f"state, the corrupt bytes were never loaded")

    def _read_verified(self, path: str) -> Tuple[dict, bytes]:
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError as exc:
            raise FileNotFoundError(f"no checkpoint at {path}") from exc
        newline = raw.find(b"\n")
        if newline < 0:
            raise self._quarantine(path, "no header line")
        try:
            header = json.loads(raw[:newline].decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise self._quarantine(path, "unparsable header") from None
        if not isinstance(header, dict) or header.get("magic") != MAGIC:
            raise self._quarantine(path, "bad magic")
        body = raw[newline + 1:]
        try:
            dtype = np.dtype(header["dtype"])
            total = int(header["total"])
            expected_sha = str(header["sha256"])
        except (KeyError, TypeError, ValueError):
            raise self._quarantine(path, "incomplete header") from None
        if len(body) != 3 * total * dtype.itemsize:
            raise self._quarantine(
                path, f"torn body: {len(body)} bytes, expected "
                      f"{3 * total * dtype.itemsize}")
        if hashlib.sha256(body).hexdigest() != expected_sha:
            raise self._quarantine(path, "SHA-256 mismatch")
        return header, body

    def load(self, tenant: str) -> Tuple[int, np.ndarray, np.ndarray, np.ndarray]:
        """Verified read of one tenant: ``(step_count, params, m, v)``.

        Raises :class:`FileNotFoundError` when no checkpoint exists and
        :class:`CheckpointCorruptError` (after quarantining the file) when
        verification fails.
        """
        path = self.path(tenant)
        header, body = self._read_verified(path)
        if header.get("tenant") != tenant:
            raise self._quarantine(
                path, f"tenant mismatch: header says "
                      f"{header.get('tenant')!r}")
        dtype = np.dtype(header["dtype"])
        total = int(header["total"])
        span = total * dtype.itemsize
        params = np.frombuffer(body[:span], dtype=dtype).copy()
        m = np.frombuffer(body[span:2 * span], dtype=dtype).copy()
        v = np.frombuffer(body[2 * span:], dtype=dtype).copy()
        self.restores += 1
        return int(header["step_count"]), params, m, v

    # -- discovery -----------------------------------------------------------
    def scan(self) -> Dict[str, int]:
        """Verify every checkpoint in the directory; quarantine the corrupt.

        Returns ``{tenant: step_count}`` for the files that passed.  Corrupt
        or torn files are renamed aside (never loaded, never fatal): a
        restarted service always comes up, with every recoverable tenant.
        """
        survivors: Dict[str, int] = {}
        for name in sorted(os.listdir(self.directory)):
            if not name.endswith(_SUFFIX):
                continue
            path = os.path.join(self.directory, name)
            try:
                header, _ = self._read_verified(path)
            except CheckpointCorruptError:
                continue
            except FileNotFoundError:
                continue
            survivors[str(header["tenant"])] = int(header["step_count"])
        return survivors

    def quarantined_files(self) -> List[str]:
        return sorted(name for name in os.listdir(self.directory)
                      if name.endswith(_QUARANTINE_SUFFIX))

    def gauges(self) -> Dict[str, float]:
        return {
            "tenant_checkpoint_writes": float(self.writes),
            "tenant_restores": float(self.restores),
            "tenant_quarantined": float(self.quarantined),
        }
