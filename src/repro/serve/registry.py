"""Per-tenant adapter + optimizer state paging over one shared frozen base.

The PEFT regime leaves each tenant with a tiny trainable state — adapter
parameters plus their Adam ``m``/``v`` moments and step count — while the
frozen backbone is identical for everyone.  :class:`AdapterRegistry` owns
that per-tenant state for one serving lane: it pages flat state slabs in and
out of the *live* parameter/moment buffers the lane's compiled plans were
recorded against.

The whole design hangs on one invariant: **tenant switches are values-only**.
Attaching a tenant copies (``np.copyto``) its slabs into the existing
parameter and moment arrays — never rebinds them — so the StepCapture /
ForwardPlan machinery (PR 5/6), whose replay thunks are bound to those exact
ndarray objects, stays valid across arbitrary tenant interleavings.  This is
what lets thousands of adapters share one compiled step.

Resident slabs live in a private :class:`~repro.tensor.arena.BufferArena`
(take/release only, no generations — tenant state is persistent, not
per-step).  Beyond ``max_resident`` tenants, the least-recently-attached
non-active tenant is demoted to cold storage and its arena buffers are
released; re-attaching pages it back in.  ``tenant_evictions`` counts the
demotions.

Cold storage comes in two tiers.  Without a store, demotion keeps
``tobytes`` snapshots in process memory (bit-exact round-trip, verified by
the serve test tier) — fast, but lost on restart.  With a
:class:`~repro.serve.store.TenantStateStore`, demotion writes the slabs as
an atomic, SHA-256-verified checkpoint file instead, and a registry built
over the same store *rehydrates* every saved tenant at construction — a
restarted service pages tenants back in bit-exact (same digest as before
the crash).  ``checkpoint_all()`` additionally persists every tenant on
demand, independent of eviction pressure.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.module import Parameter
from repro.optim.adam import Adam
from repro.serve.store import TenantStateStore
from repro.tensor.arena import BufferArena


@dataclass
class TenantState:
    """One tenant's pageable training state (resident, cold bytes, or disk)."""

    tenant: str
    step_count: int = 0
    # Resident form: flat slabs owned by the registry arena.
    params: Optional[np.ndarray] = None
    m: Optional[np.ndarray] = None
    v: Optional[np.ndarray] = None
    # Cold form: bit-exact byte snapshots (params, m, v).
    cold: Optional[Tuple[bytes, bytes, bytes]] = None
    # Durable form: the registry's store holds a verified checkpoint file.
    on_disk: bool = False
    last_used: int = 0

    @property
    def resident(self) -> bool:
        return self.params is not None


@dataclass
class AdapterSnapshot:
    """A fetched copy of one tenant's adapter (detached from the service)."""

    tenant: str
    step_count: int
    state: Dict[str, np.ndarray] = field(default_factory=dict)
    digest: str = ""


class AdapterRegistry:
    """LRU-paged per-tenant adapter/optimizer state for one serving lane.

    Parameters
    ----------
    optimizer:
        The lane's :class:`~repro.optim.adam.Adam` over the trainable
        (adapter) parameters.  Its flat offset layout is the slab format.
    named_params:
        ``(name, Parameter)`` pairs in the optimizer's parameter order —
        used to render slabs back into name-keyed snapshots.
    max_resident:
        Resident-tenant bound; beyond it the LRU non-attached tenant is
        demoted to cold storage.
    store:
        Optional :class:`TenantStateStore`.  When given, demotions persist
        to disk instead of process memory, and every tenant the store holds
        a verified checkpoint for is registered (non-resident) at
        construction — the durable-restart path.
    """

    def __init__(self, optimizer: Adam,
                 named_params: List[Tuple[str, Parameter]],
                 max_resident: int = 8,
                 arena: Optional[BufferArena] = None,
                 store: Optional[TenantStateStore] = None):
        if [p for _, p in named_params] != list(optimizer.params):
            raise ValueError("named_params must list the optimizer's "
                             "parameters in order")
        self.optimizer = optimizer
        self.named_params = list(named_params)
        self.max_resident = int(max_resident)
        if self.max_resident < 1:
            raise ValueError("max_resident must be >= 1")
        # Persistent slabs: unbounded free lists would never trigger here
        # (every take is matched by a release on eviction), but a generous
        # per-key bound keeps the pool honest under tenant churn.
        self.arena = arena or BufferArena(max_free_per_key=256, free_ttl=10 ** 9)
        self.total, self.dtype = optimizer.grad_layout()
        self._offsets = optimizer._grad_offsets()
        # Pristine adapter init: every new tenant starts from the lane's
        # freshly-applied PEFT state, exactly as a dedicated FineTuner would.
        self._init_params = np.empty(self.total, dtype=self.dtype)
        optimizer.gather_flat_params(self._init_params)
        self._tenants: Dict[str, TenantState] = {}
        self._attached: Optional[str] = None
        self._clock = itertools.count(1)
        self.tenant_evictions = 0
        self.attaches = 0
        self.pageins = 0
        self.store = store
        if store is not None:
            # Rehydrate: every verified checkpoint becomes a known tenant
            # whose state pages in lazily on first attach.  Corrupt files
            # were quarantined by scan() — the registry still comes up.
            for tenant, step_count in store.scan().items():
                self._tenants[tenant] = TenantState(
                    tenant=tenant, step_count=step_count, on_disk=True)

    # -- lifecycle -----------------------------------------------------------
    def attach(self, tenant: str) -> None:
        """Make ``tenant`` the live adapter (values-only swap; see module doc)."""
        if tenant == self._attached:
            self._tenants[tenant].last_used = next(self._clock)
            return
        self.sync()
        state = self._ensure_resident(tenant)
        self.optimizer.scatter_flat_params(state.params)
        self.optimizer.scatter_flat_state(state.m, state.v)
        self.optimizer.step_count = state.step_count
        self._attached = tenant
        state.last_used = next(self._clock)
        self.attaches += 1
        self._evict_overflow()

    def sync(self) -> None:
        """Write the live parameter/moment values back into the attached
        tenant's slabs (no-op when nothing is attached)."""
        if self._attached is None:
            return
        state = self._tenants[self._attached]
        self.optimizer.gather_flat_params(state.params)
        self.optimizer.gather_flat_state(state.m, state.v)
        state.step_count = int(self.optimizer.step_count)

    def _ensure_resident(self, tenant: str) -> TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = TenantState(tenant=tenant)
            state.params = self.arena.take((self.total,), self.dtype)
            state.m = self.arena.take((self.total,), self.dtype, zero=True)
            state.v = self.arena.take((self.total,), self.dtype, zero=True)
            np.copyto(state.params, self._init_params)
            self._tenants[tenant] = state
        elif not state.resident:
            if state.cold is not None:
                params_b, m_b, v_b = state.cold
                params = np.frombuffer(params_b, dtype=self.dtype)
                m = np.frombuffer(m_b, dtype=self.dtype)
                v = np.frombuffer(v_b, dtype=self.dtype)
            else:
                # Durable tier: verified read through the store.
                step_count, params, m, v = self.store.load(state.tenant)
                state.step_count = step_count
            state.params = self.arena.take((self.total,), self.dtype)
            state.m = self.arena.take((self.total,), self.dtype)
            state.v = self.arena.take((self.total,), self.dtype)
            np.copyto(state.params, params)
            np.copyto(state.m, m)
            np.copyto(state.v, v)
            state.cold = None
            self.pageins += 1
        return state

    def _evict_overflow(self) -> None:
        while True:
            resident = [s for s in self._tenants.values()
                        if s.resident and s.tenant != self._attached]
            if len(resident) + 1 <= self.max_resident:
                return
            victim = min(resident, key=lambda s: s.last_used)
            if self.store is not None:
                # Durable demotion: the slab goes to an atomic, checksummed
                # file; a restart pages it back bit-exact.
                self.store.save(victim.tenant, victim.step_count,
                                victim.params, victim.m, victim.v)
                victim.on_disk = True
            else:
                victim.cold = (victim.params.tobytes(), victim.m.tobytes(),
                               victim.v.tobytes())
            self.arena.release(victim.params)
            self.arena.release(victim.m)
            self.arena.release(victim.v)
            victim.params = victim.m = victim.v = None
            self.tenant_evictions += 1

    # -- inspection ----------------------------------------------------------
    @property
    def attached(self) -> Optional[str]:
        return self._attached

    def tenants(self) -> List[str]:
        return sorted(self._tenants)

    def resident_tenants(self) -> List[str]:
        return sorted(t for t, s in self._tenants.items() if s.resident)

    def _flat_params(self, tenant: str) -> np.ndarray:
        state = self._tenants[tenant]
        if tenant == self._attached:
            self.sync()
        if state.resident:
            return state.params
        if state.cold is not None:
            return np.frombuffer(state.cold[0], dtype=self.dtype)
        _, params, _, _ = self.store.load(tenant)
        return params

    def checkpoint_all(self) -> int:
        """Persist every tenant's current state through the store.

        Returns the number of checkpoints written.  Resident tenants (the
        attached one synced first) are written from their live slabs;
        memory-cold tenants from their byte snapshots; disk-only tenants are
        already durable and skipped.
        """
        if self.store is None:
            raise RuntimeError("registry has no TenantStateStore; pass "
                               "state_dir= / store= to enable durability")
        self.sync()
        written = 0
        for state in self._tenants.values():
            if state.resident:
                self.store.save(state.tenant, state.step_count,
                                state.params, state.m, state.v)
            elif state.cold is not None:
                params_b, m_b, v_b = state.cold
                self.store.save(state.tenant, state.step_count,
                                np.frombuffer(params_b, dtype=self.dtype),
                                np.frombuffer(m_b, dtype=self.dtype),
                                np.frombuffer(v_b, dtype=self.dtype))
                state.cold = None
            else:
                continue  # on_disk only: already durable
            state.on_disk = True
            written += 1
        return written

    def digest(self, tenant: str) -> str:
        """SHA-256 over the tenant's flat adapter parameters (leakage checks)."""
        return hashlib.sha256(self._flat_params(tenant).tobytes()).hexdigest()

    def fetch(self, tenant: str) -> AdapterSnapshot:
        """Copy the tenant's adapter out as a name-keyed snapshot."""
        if tenant not in self._tenants:
            raise KeyError(f"unknown tenant {tenant!r}")
        flat = self._flat_params(tenant)
        state = {}
        for index, (name, param) in enumerate(self.named_params):
            lo, hi = self._offsets[index], self._offsets[index + 1]
            state[name] = flat[lo:hi].reshape(param.data.shape).copy()
        return AdapterSnapshot(
            tenant=tenant,
            step_count=self._tenants[tenant].step_count
            if tenant != self._attached else int(self.optimizer.step_count),
            state=state,
            digest=hashlib.sha256(np.ascontiguousarray(flat).tobytes())
            .hexdigest())

    def gauges(self) -> Dict[str, float]:
        gauges = {
            "tenants": float(len(self._tenants)),
            "resident_tenants": float(len(self.resident_tenants())),
            "tenant_evictions": float(self.tenant_evictions),
            "tenant_pageins": float(self.pageins),
            "tenant_attaches": float(self.attaches),
            "tenant_state_bytes": float(self.arena.bytes_held),
            "tenant_checkpoint_writes": 0.0,
            "tenant_restores": 0.0,
            "tenant_quarantined": 0.0,
        }
        if self.store is not None:
            gauges.update(self.store.gauges())
        return gauges
