"""Signature-bucketed request queue with continuous batching.

Incoming per-tenant step requests are bucketed by their *capture signature*
(sequence-length bucket × adapter kind × sparsity mode — the exact key
:meth:`repro.runtime.FineTuner.step_signature` computes, prefixed with the
lane/mode): every request in one bucket replays the same compiled plan, so
the scheduler's job is to keep the service on one bucket for as long as
possible (each bucket switch is free — the per-bucket captures persist — but
cross-bucket churn during *capture* would thrash).

The policy is deliberately simple and starvation-free:

1. **Overdue first** — a bucket whose head request has waited at least
   ``max_wait_steps`` service steps is served before anything else (oldest
   head wins).  This is the max-wait deadline: low-traffic tenants in small
   buckets are bounded-latency even while a hot bucket streams.
2. Otherwise **stay on the current bucket** while it has work — signature
   locality is what keeps the capture-hit rate high.
3. Otherwise the **largest bucket** (tie-break: oldest head), so a drained
   queue restarts on the run with the most amortisation ahead of it.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Hashable, List, Optional

import numpy as np


@dataclass
class StepRequest:
    """One tenant's queued fine-tuning step."""

    request_id: int
    tenant: str
    adapter: str
    input_ids: np.ndarray
    labels: Optional[np.ndarray] = None
    submit_step: int = 0
    submit_time: float = field(default_factory=time.perf_counter)


class SignatureBucket:
    """FIFO of requests sharing one capture signature."""

    __slots__ = ("key", "requests")

    def __init__(self, key: Hashable):
        self.key = key
        self.requests: Deque[StepRequest] = deque()

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def head(self) -> StepRequest:
        return self.requests[0]


class SignatureBucketQueue:
    """Buckets requests by signature; picks the next bucket to serve."""

    def __init__(self, max_wait_steps: int = 8):
        if max_wait_steps < 1:
            raise ValueError("max_wait_steps must be >= 1")
        self.max_wait_steps = int(max_wait_steps)
        self._buckets: "OrderedDict[Hashable, SignatureBucket]" = OrderedDict()
        self.submitted = 0

    def submit(self, key: Hashable, request: StepRequest) -> None:
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = SignatureBucket(key)
        bucket.requests.append(request)
        self.submitted += 1

    def select(self, current_key: Optional[Hashable],
               now_step: int) -> Optional[Hashable]:
        """The bucket key to serve next (None when the queue is empty)."""
        if not self._buckets:
            return None
        overdue = [b for b in self._buckets.values()
                   if now_step - b.head.submit_step >= self.max_wait_steps]
        if overdue:
            return min(overdue, key=lambda b: b.head.submit_step).key
        if current_key is not None and current_key in self._buckets:
            return current_key
        return max(self._buckets.values(),
                   key=lambda b: (len(b), -b.head.submit_step)).key

    def pop(self, key: Hashable) -> StepRequest:
        bucket = self._buckets[key]
        request = bucket.requests.popleft()
        if not bucket.requests:
            del self._buckets[key]
        return request

    def pending(self) -> int:
        return sum(len(b) for b in self._buckets.values())

    def bucket_sizes(self) -> Dict[Hashable, int]:
        return {key: len(b) for key, b in self._buckets.items()}

    def keys(self) -> List[Hashable]:
        return list(self._buckets)

    def __bool__(self) -> bool:
        return bool(self._buckets)
