"""Transformer MLP (feed-forward) block with pluggable execution backends.

The block is the usual ``fc1 -> activation -> fc2`` expansion.  The default
:class:`DenseMLPBackend` runs both linear layers densely; LongExposure's
engine swaps in a neuron-sparse backend that only loads and multiplies the
columns of ``fc1`` / rows of ``fc2`` whose neuron blocks the predictor marks
active (Section VI-B of the paper).

Backends may expose ``last_activations`` with the post-activation values of
the most recent forward pass; the predictor data-collection pass and the
sparsity-statistics analysis read it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.activations import get_activation
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.tensor import Tensor, fused, functional as F


class DenseMLPBackend:
    """Baseline dense execution of the MLP block.

    On the fused path ``fc1`` and the activation collapse into a single tape
    node (``F.linear(..., activation=...)``), so a block contributes two
    nodes instead of three and never materialises the pre-activation as a
    separate graph Tensor.  The fusion only applies when both layers are
    plain :class:`~repro.nn.layers.Linear` modules — PEFT wrappers such as
    LoRA replace them with composite modules that must run their own
    forward — and is skipped while capturing activations, because the
    predictor data-collection pass needs the post-activation Tensor.
    """

    def __init__(self, capture_activations: bool = False):
        self.capture_activations = capture_activations
        self.last_activations: Optional[np.ndarray] = None

    def __call__(self, module: "MLPBlock", x: Tensor) -> Tensor:
        fc1, fc2 = module.fc1, module.fc2
        if (fused.fused_kernels_enabled() and not self.capture_activations
                and type(fc1) is Linear and type(fc2) is Linear):
            hidden = F.linear(x, fc1.weight, fc1.bias,
                              activation=module.activation_name)
            return F.linear(hidden, fc2.weight, fc2.bias)
        hidden = module.activation(fc1(x))
        if self.capture_activations:
            self.last_activations = hidden.data.copy()
        return fc2(hidden)


class MLPBlock(Module):
    """Position-wise feed-forward block ``fc2(act(fc1(x)))``.

    Parameters
    ----------
    dim:
        Model dimension.
    hidden_dim:
        Expansion dimension (4x ``dim`` for OPT/GPT-2).
    activation:
        ``"relu"`` (OPT — sparsity-friendly) or ``"gelu"`` (GPT-2).
    """

    def __init__(self, dim: int, hidden_dim: int, activation: str = "relu",
                 dropout: float = 0.0, rng: Optional[np.random.Generator] = None,
                 layer_index: int = 0):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(100 + layer_index)
        self.dim = dim
        self.hidden_dim = hidden_dim
        self.activation_name = activation
        self.layer_index = layer_index

        self.fc1 = Linear(dim, hidden_dim, rng=rng, name=f"layer{layer_index}.mlp.fc1")
        self.fc2 = Linear(hidden_dim, dim, rng=rng, name=f"layer{layer_index}.mlp.fc2")
        self.activation = get_activation(activation)
        self.dropout = Dropout(dropout, seed=1000 + layer_index)

        # Swappable kernel; LongExposure installs a neuron-sparse backend here.
        self.backend = DenseMLPBackend()

    def forward(self, x: Tensor) -> Tensor:
        return self.dropout(self.backend(self, x))

    def extra_repr(self) -> str:
        return f"dim={self.dim}, hidden={self.hidden_dim}, act={self.activation_name}"
