"""Neural-network module library built on the :mod:`repro.tensor` engine.

Provides the building blocks of decoder-only transformers (the OPT and GPT-2
families used in the paper's evaluation): parameters and modules with
recursive parameter discovery, linear/embedding/layer-norm layers, multi-head
attention with pluggable sparse execution backends, the two-layer MLP block,
and the pre-LayerNorm decoder block that composes them.

The attention and MLP modules expose *hooks* (``attention_backend`` and
``mlp_backend``) that LongExposure's engine swaps out to route computation
through the dynamic-aware sparse operators without touching model code —
mirroring how the original system patches HuggingFace modules.
"""

from repro.nn.module import Module, Parameter, ModuleList
from repro.nn.layers import Linear, Embedding, LayerNorm, Dropout
from repro.nn.activations import ReLU, GELU, get_activation
from repro.nn.attention import MultiHeadAttention, DenseAttentionBackend
from repro.nn.mlp import MLPBlock, DenseMLPBackend
from repro.nn.block import TransformerBlock

__all__ = [
    "Module",
    "Parameter",
    "ModuleList",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "GELU",
    "get_activation",
    "MultiHeadAttention",
    "DenseAttentionBackend",
    "MLPBlock",
    "DenseMLPBackend",
    "TransformerBlock",
]
