"""Activation modules.

The distinction between ReLU and GeLU matters for the reproduction: OPT uses
ReLU, which produces exact zeros and therefore exploitable MLP sparsity,
while GPT-2 uses GeLU, for which the paper only applies the attention-side
optimisations (Section VII-D / Figure 13).  ``get_activation`` is the single
switch the model configs use.
"""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import Tensor


class ReLU(Module):
    """Rectified linear unit: the source of MLP activation sparsity in OPT."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    """Gaussian error linear unit (tanh approximation), used by GPT-2."""

    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


_ACTIVATIONS = {
    "relu": ReLU,
    "gelu": GELU,
    "tanh": Tanh,
    "sigmoid": Sigmoid,
}


def get_activation(name: str) -> Module:
    """Instantiate an activation module by name (``relu``, ``gelu``, ...)."""
    key = name.lower()
    if key not in _ACTIVATIONS:
        raise KeyError(f"unknown activation {name!r}; available: {sorted(_ACTIVATIONS)}")
    return _ACTIVATIONS[key]()
