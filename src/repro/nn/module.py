"""Module / Parameter abstractions with recursive parameter discovery.

The design mirrors ``torch.nn.Module`` closely enough that the PEFT methods
(LoRA, Adapter, BitFit, prefix-tuning) can be expressed the same way they are
in the HuggingFace ``peft`` library the paper benchmarks against: freezing is
``requires_grad = False`` on parameters, injection is adding sub-modules, and
optimizers iterate ``trainable_parameters()``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as a learnable parameter.

    Parameters default to ``requires_grad=True``; PEFT methods freeze the
    backbone by flipping that flag, which removes the parameter from the
    optimizer *and* — thanks to the tape-based engine — skips the gradient
    computation for it in the backward pass.
    """

    def __init__(self, data, requires_grad: bool = True, name: str = ""):
        super().__init__(data, requires_grad=requires_grad, name=name)


class Module:
    """Base class for all neural-network modules.

    Sub-modules and parameters assigned as attributes are discovered
    automatically, giving ``named_parameters`` / ``parameters`` /
    ``state_dict`` traversal for free.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training: bool = True

    # -- attribute plumbing ---------------------------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # -- traversal -------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def trainable_parameters(self) -> List[Parameter]:
        return [p for p in self.parameters() if p.requires_grad]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> List["Module"]:
        return [m for _, m in self.named_modules()]

    def num_parameters(self, trainable_only: bool = False) -> int:
        params = self.trainable_parameters() if trainable_only else self.parameters()
        return int(sum(p.numel() for p in params))

    # -- training state ---------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def freeze(self) -> "Module":
        """Mark every parameter of this module as non-trainable."""
        for param in self.parameters():
            param.requires_grad = False
        return self

    def unfreeze(self) -> "Module":
        for param in self.parameters():
            param.requires_grad = True
        return self

    # -- (de)serialisation -------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        own = dict(self.named_parameters())
        missing = [k for k in own if k not in state]
        unexpected = [k for k in state if k not in own]
        if strict and (missing or unexpected):
            raise KeyError(f"state_dict mismatch: missing={missing}, unexpected={unexpected}")
        for name, value in state.items():
            if name in own:
                if own[name].data.shape != value.shape:
                    raise ValueError(f"shape mismatch for {name}: "
                                     f"{own[name].data.shape} vs {value.shape}")
                own[name].data = np.asarray(value, dtype=own[name].data.dtype).copy()

    # -- call protocol -------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def extra_repr(self) -> str:
        return ""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        lines = [f"{type(self).__name__}({self.extra_repr()}"]
        for name, module in self._modules.items():
            child = repr(module).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child}")
        lines.append(")")
        return "\n".join(lines) if len(lines) > 2 else f"{type(self).__name__}({self.extra_repr()})"


class ModuleList(Module):
    """An indexable container of sub-modules (transformer layer stacks)."""

    def __init__(self, modules: Optional[List[Module]] = None):
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module
        return self

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __setitem__(self, index: int, module: Module) -> None:
        self._items[index] = module
        self._modules[str(index)] = module

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def forward(self, *args, **kwargs):  # pragma: no cover - containers are not called
        raise RuntimeError("ModuleList is a container and cannot be called")
