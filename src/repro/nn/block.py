"""Pre-LayerNorm decoder block composing attention and MLP sub-layers.

Both OPT and GPT-2 are decoder-only transformers with pre-LayerNorm residual
blocks; the only structural difference relevant to LongExposure is the MLP
activation (ReLU vs. GeLU), which is configured per model family.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.attention import MultiHeadAttention
from repro.nn.layers import LayerNorm
from repro.nn.mlp import MLPBlock
from repro.nn.module import Module
from repro.tensor import Tensor


class TransformerBlock(Module):
    """One decoder layer: ``x + Attn(LN(x))`` followed by ``x + MLP(LN(x))``."""

    def __init__(self, dim: int, num_heads: int, hidden_dim: int,
                 activation: str = "relu", dropout: float = 0.0,
                 layer_index: int = 0, rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(layer_index)
        self.layer_index = layer_index
        self.attn_norm = LayerNorm(dim, name=f"layer{layer_index}.attn_norm")
        self.attention = MultiHeadAttention(dim, num_heads, dropout=dropout,
                                            rng=rng, layer_index=layer_index)
        self.mlp_norm = LayerNorm(dim, name=f"layer{layer_index}.mlp_norm")
        self.mlp = MLPBlock(dim, hidden_dim, activation=activation,
                            dropout=dropout, rng=rng, layer_index=layer_index)

    def forward(self, x: Tensor, attn_mask: Optional[np.ndarray] = None) -> Tensor:
        x = x + self.attention(self.attn_norm(x), attn_mask=attn_mask)
        x = x + self.mlp(self.mlp_norm(x))
        return x

    def extra_repr(self) -> str:
        return f"layer={self.layer_index}"
