"""Multi-head self-attention with pluggable execution backends.

The module owns the Q/K/V/output projections; the *backend* decides how the
attention scores and the context are computed.  The default
:class:`DenseAttentionBackend` is the standard O(s²) softmax attention.
LongExposure's engine replaces it with a block-sparse backend
(:class:`repro.sparsity.engine.SparseAttentionBackend`) that only computes
the score blocks selected by the per-head predicted masks — identical model
code, different kernels, exactly as the paper's system patches attention.

Backends may expose a ``last_scores`` attribute holding the most recent
attention probabilities (per head); the predictor data-collection pass uses
it as ground truth.
"""

from __future__ import annotations

import functools
from typing import Optional

import numpy as np

from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.tensor import Tensor, fused, functional as F


@functools.lru_cache(maxsize=128)
def _cached_causal_mask(seq_len: int) -> np.ndarray:
    mask = np.tril(np.ones((seq_len, seq_len), dtype=bool))
    # The cached array is shared across every forward pass; freeze it so an
    # accidental in-place edit cannot poison later steps (callers that need
    # to modify it, e.g. prefix tuning, copy first).
    mask.setflags(write=False)
    return mask


def causal_mask(seq_len: int) -> np.ndarray:
    """Lower-triangular boolean mask of shape ``(seq_len, seq_len)``.

    Cached per sequence length: every attention forward at the same length
    reuses one read-only array instead of allocating a fresh ``(seq, seq)``
    buffer per layer per step.
    """
    return _cached_causal_mask(int(seq_len))


class DenseAttentionBackend:
    """Standard dense scaled-dot-product attention (the baseline kernel).

    Runs the fused single-node attention core
    (:func:`repro.tensor.fused.scaled_dot_product_attention`) by default;
    when the fused kernels are globally disabled it falls back to the taped
    matmul / scale / masked-softmax / matmul composition.
    """

    def __init__(self, capture_scores: bool = False):
        self.capture_scores = capture_scores
        self.last_scores: Optional[np.ndarray] = None

    def __call__(self, module: "MultiHeadAttention", q: Tensor, k: Tensor, v: Tensor,
                 attn_mask: Optional[np.ndarray], x: Optional[Tensor] = None) -> Tensor:
        # q, k, v: (batch, heads, seq, head_dim); x is the pre-projection layer
        # input, unused by the dense kernel but consumed by sparse backends.
        scale = 1.0 / np.sqrt(module.head_dim)
        if fused.fused_kernels_enabled():
            if self.capture_scores:
                # Score capture needs the materialized probability matrix, so
                # the streaming kernel (which never forms it) does not apply.
                context, probs = fused.scaled_dot_product_attention(
                    q, k, v, attn_mask, scale=scale, return_probs=True)
                self.last_scores = probs
                return context
            if fused.streaming_attention_enabled():
                return fused.streaming_attention(q, k, v, attn_mask, scale=scale)
            return fused.scaled_dot_product_attention(q, k, v, attn_mask, scale=scale)
        if self.capture_scores:
            # The taped composition is spelled out only where the intermediate
            # probabilities must be captured; the plain path delegates to the
            # shared reference implementation via the functional dispatcher.
            scores = q.matmul(k.swapaxes(-1, -2)) * scale
            probs = F.masked_softmax(scores, attn_mask, axis=-1)
            self.last_scores = probs.data.copy()
            return probs.matmul(v)
        if fused.streaming_attention_enabled():
            return F.streaming_attention(q, k, v, attn_mask, scale=scale)
        return F.scaled_dot_product_attention(q, k, v, attn_mask, scale=scale)


class MultiHeadAttention(Module):
    """Multi-head self-attention block of a decoder layer.

    Parameters
    ----------
    dim:
        Model (embedding) dimension.
    num_heads:
        Number of attention heads; ``dim`` must be divisible by it.
    dropout:
        Attention-output dropout probability.
    """

    def __init__(self, dim: int, num_heads: int, dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None, layer_index: int = 0):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim={dim} is not divisible by num_heads={num_heads}")
        rng = rng if rng is not None else np.random.default_rng(layer_index + 1)
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.layer_index = layer_index

        self.q_proj = Linear(dim, dim, rng=rng, name=f"layer{layer_index}.attn.q_proj")
        self.k_proj = Linear(dim, dim, rng=rng, name=f"layer{layer_index}.attn.k_proj")
        self.v_proj = Linear(dim, dim, rng=rng, name=f"layer{layer_index}.attn.v_proj")
        self.out_proj = Linear(dim, dim, rng=rng, name=f"layer{layer_index}.attn.out_proj")
        self.dropout = Dropout(dropout, seed=layer_index)

        # Swappable kernel; LongExposure installs a sparse backend here.
        self.backend = DenseAttentionBackend()

    # -- helpers ---------------------------------------------------------------
    def split_heads(self, x: Tensor) -> Tensor:
        """(batch, seq, dim) -> (batch, heads, seq, head_dim)."""
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def merge_heads(self, x: Tensor) -> Tensor:
        """(batch, heads, seq, head_dim) -> (batch, seq, dim)."""
        batch, heads, seq, head_dim = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, seq, heads * head_dim)

    # -- forward -----------------------------------------------------------------
    def forward(self, x: Tensor, attn_mask: Optional[np.ndarray] = None) -> Tensor:
        """Self-attention over ``x`` of shape ``(batch, seq, dim)``.

        ``attn_mask`` is an optional boolean mask broadcastable to
        ``(batch, heads, seq, seq)``; ``None`` means causal masking is applied
        by default (decoder-only models).
        """
        seq_len = x.shape[1]
        if attn_mask is None:
            attn_mask = causal_mask(seq_len)

        q = self.split_heads(self.q_proj(x))
        k = self.split_heads(self.k_proj(x))
        v = self.split_heads(self.v_proj(x))

        context = self.backend(self, q, k, v, attn_mask, x)
        out = self.out_proj(self.merge_heads(context))
        return self.dropout(out)

    def extra_repr(self) -> str:
        return f"dim={self.dim}, heads={self.num_heads}"
