"""Elementary layers: Linear, Embedding, LayerNorm and Dropout.

Initialisation follows the conventions of the OPT / GPT-2 releases (normal
with small std for projections, ones/zeros for LayerNorm).  ``Linear`` stores
its weight in the ``(out_features, in_features)`` layout used by PyTorch
checkpoints so that model configs and parameter counts line up with the
paper's Table II.

``Linear`` and ``LayerNorm`` execute through ``repro.tensor.functional``,
which dispatches to the fused single-node kernels in
:mod:`repro.tensor.fused` by default — each forward contributes exactly one
tape node with a hand-derived backward, rather than a chain of primitive
ops.  ``Linear.forward`` accepts an optional ``activation`` so callers (the
MLP block) can fold the nonlinearity into the same node.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, functional as F
from repro.tensor.tensor import embedding_lookup


class Linear(Module):
    """Affine layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 init_std: float = 0.02, rng: Optional[np.random.Generator] = None,
                 name: str = ""):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            rng.normal(0.0, init_std, size=(out_features, in_features)).astype(np.float32),
            name=f"{name}.weight" if name else "weight",
        )
        self.bias: Optional[Parameter]
        if bias:
            self.bias = Parameter(np.zeros(out_features, dtype=np.float32),
                                  name=f"{name}.bias" if name else "bias")
        else:
            self.bias = None

    def forward(self, x: Tensor, activation: Optional[str] = None) -> Tensor:
        return F.linear(x, self.weight, self.bias, activation=activation)

    def extra_repr(self) -> str:
        return f"in={self.in_features}, out={self.out_features}, bias={self.bias is not None}"


class Embedding(Module):
    """Token (or position) embedding table."""

    def __init__(self, num_embeddings: int, embedding_dim: int, init_std: float = 0.02,
                 rng: Optional[np.random.Generator] = None, name: str = ""):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            rng.normal(0.0, init_std, size=(num_embeddings, embedding_dim)).astype(np.float32),
            name=f"{name}.weight" if name else "weight",
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices)
        if indices.max(initial=0) >= self.num_embeddings or indices.min(initial=0) < 0:
            raise IndexError("embedding index out of range")
        return embedding_lookup(self.weight, indices)

    def extra_repr(self) -> str:
        return f"num={self.num_embeddings}, dim={self.embedding_dim}"


class LayerNorm(Module):
    """Layer normalisation over the last dimension with learnable affine."""

    def __init__(self, dim: int, eps: float = 1e-5, name: str = ""):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim, dtype=np.float32),
                                name=f"{name}.weight" if name else "weight")
        self.bias = Parameter(np.zeros(dim, dtype=np.float32),
                              name=f"{name}.bias" if name else "bias")

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)

    def extra_repr(self) -> str:
        return f"dim={self.dim}, eps={self.eps}"


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.0, seed: int = 0):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)

    def extra_repr(self) -> str:
        return f"p={self.p}"
