"""Decoder-only causal language model shared by the OPT and GPT-2 families.

The model is a standard pre-LayerNorm transformer decoder with tied input /
output embeddings.  Two reproduction-specific details:

* ``sparsify_init`` — pre-trained OPT checkpoints exhibit ~90-95 % per-token
  ReLU activation sparsity and "heavy-hitter" attention heads (the paper's
  Figure 4 and the DejaVu / PowerInfer line of work).  Randomly initialised
  weights do not: ReLU on a symmetric pre-activation gives ~50 % sparsity and
  attention is near-uniform.  Because the *mechanism* the paper exploits is a
  property of those statistics rather than of specific pre-trained weights,
  the initialiser shifts the fc1 biases so each token activates roughly
  ``1 - target_token_mlp_sparsity`` of the neurons, gives neurons distinct
  token-dependent preferences (so the per-sequence union is much denser —
  shadowy sparsity), and sharpens the Q/K projections so attention heads form
  distinct local/global patterns.  The substitution is recorded in DESIGN.md.
* ``forward`` returns hidden states; ``loss`` composes the LM head and the
  shifted cross-entropy so that training code does not touch logits of shape
  ``(batch, seq, vocab)`` unless it needs them.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.models.config import ModelConfig
from repro.nn import Embedding, LayerNorm, Module, ModuleList, TransformerBlock
from repro.tensor import Tensor, functional as F
from repro.tensor.tensor import embedding_lookup


class CausalLMModel(Module):
    """Causal language model: embeddings, N decoder blocks, tied LM head."""

    def __init__(self, config: ModelConfig, seed: int = 0):
        super().__init__()
        self.config = config
        rng = np.random.default_rng(seed)

        self.token_embedding = Embedding(config.vocab_size, config.dim, rng=rng,
                                         name="token_embedding")
        self.position_embedding = Embedding(config.max_seq_len, config.dim, rng=rng,
                                            name="position_embedding")
        self.blocks = ModuleList([
            TransformerBlock(config.dim, config.num_heads, config.hidden_dim,
                             activation=config.activation, dropout=config.dropout,
                             layer_index=i, rng=np.random.default_rng(seed * 1000 + i))
            for i in range(config.num_layers)
        ])
        self.final_norm = LayerNorm(config.dim, name="final_norm")

        if config.sparsify_init:
            self._apply_sparsity_structure(rng)

    # -- reproduction-specific initialiser --------------------------------------
    def _apply_sparsity_structure(self, rng: np.random.Generator) -> None:
        """Shape weight statistics to match trained-LLM sparsity behaviour.

        Three properties of pre-trained checkpoints are recreated (the paper's
        Figure 4 and the DejaVu / PowerInfer observations):

        * attention is *local and peaked* — nearby tokens dominate each
          query's attention mass, with per-head variation in how sharp the
          locality is (this is what makes head-specific masks pay off);
        * per-token MLP activation is *highly sparse* (ReLU fires for only a
          few percent of neurons per token) while the per-sequence union is
          much denser — shadowy sparsity;
        * neuron importance is *heavy-tailed*: a minority of hot neurons
          carries most of the activation mass, which is what the exposer's
          importance filter exploits.
        """
        from scipy.stats import norm as _norm

        config = self.config

        # Smooth (sinusoidal) position embeddings: nearby positions get
        # similar vectors, which is the substrate for local attention.
        positions = np.arange(config.max_seq_len, dtype=np.float64)[:, None]
        dims = np.arange(config.dim, dtype=np.float64)[None, :]
        inv_freq = 1.0 / (10000.0 ** (2 * (dims // 2) / config.dim))
        angles = positions * inv_freq
        pe = np.where(dims % 2 == 0, np.sin(angles), np.cos(angles))
        self.position_embedding.weight.data = (
            0.7 * pe + 0.05 * rng.normal(size=pe.shape)).astype(np.float32)

        for block in self.blocks:
            mlp = block.mlp
            hidden = config.hidden_dim
            # Give each hidden neuron a "preferred direction": scale up a few
            # input dimensions per neuron so different tokens excite different
            # neurons.  Combined with a negative bias this yields high
            # per-token sparsity but a much denser per-sequence union.
            boost = np.zeros((hidden, config.dim), dtype=np.float32)
            n_pref = max(1, config.dim // 16)
            pref_cols = rng.integers(0, config.dim, size=(hidden, n_pref))
            boost[np.arange(hidden)[:, None], pref_cols] = rng.normal(
                0.0, 0.15, size=(hidden, n_pref))
            mlp.fc1.weight.data += boost
            # Heavy-tailed neuron importance: hot neurons (low rank fraction)
            # fire often and strongly, the long tail rarely and weakly.
            rank_frac = np.arange(hidden, dtype=np.float64) / max(hidden - 1, 1)
            target = float(np.clip(config.target_token_mlp_sparsity, 0.55, 0.99))
            low = max(0.4, target - 0.18)
            high = min(0.995, target + 0.07)
            per_neuron_sparsity = low + (high - low) * rank_frac ** 0.25
            hot_scale = (1.0 + 15.0 * (1.0 - rank_frac) ** 3).astype(np.float32)
            mlp.fc1.weight.data *= hot_scale[:, None]
            row_norm = np.linalg.norm(mlp.fc1.weight.data, axis=1)
            quantile = _norm.ppf(per_neuron_sparsity)
            mlp.fc1.bias.data -= (quantile * row_norm).astype(np.float32)

            attn = block.attention
            # Local, peaked attention: align each head's key projection with
            # its query projection (scores then measure input similarity,
            # which decays with positional distance thanks to the smooth
            # position embeddings) and sharpen the score scale per head so
            # different heads develop differently-sized local windows.
            for h in range(config.num_heads):
                lo, hi = h * attn.head_dim, (h + 1) * attn.head_dim
                sharp = config.attention_locality * (0.75 + 0.5 * rng.random())
                attn.q_proj.weight.data[lo:hi] *= sharp
                attn.k_proj.weight.data[lo:hi] = (
                    attn.q_proj.weight.data[lo:hi]
                    + 0.2 * config.attention_locality
                    * rng.normal(0.0, 0.02, size=(attn.head_dim, config.dim)).astype(np.float32))

    # -- forward ------------------------------------------------------------------
    def forward(self, input_ids: np.ndarray,
                attn_mask: Optional[np.ndarray] = None) -> Tensor:
        """Return final hidden states of shape ``(batch, seq, dim)``."""
        input_ids = np.asarray(input_ids)
        if input_ids.ndim == 1:
            input_ids = input_ids[None, :]
        batch, seq = input_ids.shape
        if seq > self.config.max_seq_len:
            raise ValueError(f"sequence length {seq} exceeds max_seq_len "
                             f"{self.config.max_seq_len}")
        positions = np.broadcast_to(np.arange(seq), (batch, seq))
        hidden = self.token_embedding(input_ids) + self.position_embedding(positions)
        for block in self.blocks:
            hidden = block(hidden, attn_mask=attn_mask)
        return self.final_norm(hidden)

    def logits(self, hidden: Tensor) -> Tensor:
        """Project hidden states onto the vocabulary with the tied embedding.

        Uses the fused linear kernel: ``hidden @ W.T`` is one tape node, with
        no explicit transpose node (and no transposed-weight temporary) in
        the graph.
        """
        return F.linear(hidden, self.token_embedding.weight)

    def loss(self, input_ids: np.ndarray, labels: Optional[np.ndarray] = None,
             attn_mask: Optional[np.ndarray] = None) -> Tuple[Tensor, int]:
        """Next-token cross-entropy loss; ``labels`` defaults to ``input_ids``."""
        input_ids = np.asarray(input_ids)
        if input_ids.ndim == 1:
            input_ids = input_ids[None, :]
        labels = input_ids if labels is None else np.asarray(labels)
        if labels.ndim == 1:
            labels = labels[None, :]
        hidden = self.forward(input_ids, attn_mask=attn_mask)
        logits = self.logits(hidden)
        # shift=True scores logit t against label t+1 inside the fused op,
        # saving the logits[:, :-1] slice node's forward copy and tape entry
        # (the backward still allocates one full-size gradient for the op).
        return F.cross_entropy(logits, labels, shift=True)

    # -- evaluation helpers ---------------------------------------------------------
    def sequence_log_likelihood(self, input_ids: np.ndarray,
                                completion_start: int) -> float:
        """Sum of token log-probabilities from ``completion_start`` onward.

        Used by the downstream multiple-choice tasks (Table IV protocol): each
        candidate completion is scored by the log-likelihood the model assigns
        to its tokens given the shared context.
        """
        from repro.tensor import no_grad
        input_ids = np.asarray(input_ids)
        if input_ids.ndim == 1:
            input_ids = input_ids[None, :]
        with no_grad():
            hidden = self.forward(input_ids)
            logits = self.logits(hidden)
            log_probs = F.log_softmax(logits, axis=-1).data
        total = 0.0
        seq = input_ids.shape[1]
        for t in range(max(completion_start, 1), seq):
            token = int(input_ids[0, t])
            total += float(log_probs[0, t - 1, token])
        return total

    def extra_repr(self) -> str:
        return f"config={self.config.name}"
