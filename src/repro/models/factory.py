"""Model factory: build the right family class from a configuration name."""

from __future__ import annotations

from typing import Union

from repro.models.base import CausalLMModel
from repro.models.config import ModelConfig, get_config
from repro.models.gpt2 import GPT2Model
from repro.models.opt import OPTModel

_FAMILIES = {
    "opt": OPTModel,
    "gpt2": GPT2Model,
}


def build_model(config: Union[str, ModelConfig], seed: int = 0) -> CausalLMModel:
    """Instantiate a model from a config name or :class:`ModelConfig`.

    Examples
    --------
    >>> model = build_model("opt-tiny")
    >>> model.config.family
    'opt'
    """
    if isinstance(config, str):
        config = get_config(config)
    if config.family not in _FAMILIES:
        raise KeyError(f"unknown model family {config.family!r}")
    return _FAMILIES[config.family](config, seed=seed)
