"""Model families used in the paper's evaluation: OPT and GPT-2.

Both are decoder-only causal language models built from
:class:`repro.nn.TransformerBlock`; OPT uses ReLU MLPs (and therefore has
exploitable MLP activation sparsity), GPT-2 uses GeLU MLPs (only the
attention optimisations apply, cf. Figure 13 of the paper).

The :mod:`repro.models.config` registry contains the paper's model sizes
(OPT-350M/1.3B/2.7B, GPT-2 Large/XL) for parameter accounting and the memory
model, plus scaled-down ``tiny``/``small``/``medium`` variants that are what
the tests and benchmarks actually execute on CPU.
"""

from repro.models.config import ModelConfig, get_config, list_configs, register_config
from repro.models.base import CausalLMModel
from repro.models.opt import OPTModel
from repro.models.gpt2 import GPT2Model
from repro.models.factory import build_model

__all__ = [
    "ModelConfig",
    "get_config",
    "list_configs",
    "register_config",
    "CausalLMModel",
    "OPTModel",
    "GPT2Model",
    "build_model",
]
