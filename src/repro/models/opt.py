"""OPT model family (Zhang et al., 2022): ReLU-activated decoder-only LM.

ReLU MLPs are what gives OPT its exploitable activation sparsity; this class
exists mostly to validate the configuration and to give the PEFT / sparsity
layers a family-specific type to dispatch on.
"""

from __future__ import annotations

from repro.models.base import CausalLMModel
from repro.models.config import ModelConfig, get_config


class OPTModel(CausalLMModel):
    """Decoder-only LM with ReLU MLP blocks (the OPT family)."""

    def __init__(self, config: ModelConfig, seed: int = 0):
        if config.family != "opt":
            raise ValueError(f"OPTModel requires an 'opt' family config, got {config.family!r}")
        if config.activation != "relu":
            raise ValueError("OPT models use ReLU activations")
        super().__init__(config, seed=seed)

    @classmethod
    def from_name(cls, name: str, seed: int = 0) -> "OPTModel":
        """Build an OPT model from a registered configuration name."""
        return cls(get_config(name), seed=seed)
