"""Model configuration dataclass and the named configuration registry.

The registry holds two kinds of entries:

* the *paper-scale* configurations from Table II (OPT-350M/1.3B/2.7B,
  GPT-2 Large/XL) — used for exact parameter counting, the analytic memory
  model (Figure 8) and the roofline estimates, but far too large to execute
  on a CPU NumPy substrate;
* *executable* scaled-down configurations (``tiny``/``small``/``medium``
  variants of each family) that preserve the structural properties relevant
  to LongExposure — ReLU vs. GeLU MLPs, multiple heads, 4x MLP expansion,
  block-divisible dimensions — and are what tests, examples and benchmarks
  actually run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Dict, List


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyper-parameters of a decoder-only causal LM."""

    name: str
    family: str                    # "opt" or "gpt2"
    vocab_size: int
    max_seq_len: int
    dim: int
    num_layers: int
    num_heads: int
    mlp_ratio: int = 4
    activation: str = "relu"       # "relu" (OPT) or "gelu" (GPT-2)
    dropout: float = 0.0
    tie_embeddings: bool = True
    # Initialiser knobs that reproduce the sparsity statistics of trained
    # checkpoints (see repro/models/base.py for how they are applied).
    sparsify_init: bool = True
    target_token_mlp_sparsity: float = 0.92
    attention_locality: float = 12.0

    @property
    def hidden_dim(self) -> int:
        return self.dim * self.mlp_ratio

    @property
    def head_dim(self) -> int:
        return self.dim // self.num_heads

    def num_parameters(self) -> int:
        """Analytic parameter count (embeddings + blocks + final norm)."""
        embed = self.vocab_size * self.dim + self.max_seq_len * self.dim
        per_block = (
            4 * (self.dim * self.dim + self.dim)          # q, k, v, out projections
            + self.dim * self.hidden_dim + self.hidden_dim  # fc1
            + self.hidden_dim * self.dim + self.dim         # fc2
            + 4 * self.dim                                   # two LayerNorms (weight+bias)
        )
        final_norm = 2 * self.dim
        lm_head = 0 if self.tie_embeddings else self.vocab_size * self.dim
        return embed + self.num_layers * per_block + final_norm + lm_head

    def to_dict(self) -> Dict:
        return asdict(self)


_REGISTRY: Dict[str, ModelConfig] = {}


def register_config(config: ModelConfig) -> ModelConfig:
    """Add (or overwrite) a named configuration in the registry."""
    _REGISTRY[config.name] = config
    return config


def get_config(name: str) -> ModelConfig:
    """Look up a configuration by name; raises ``KeyError`` with suggestions."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown model config {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[name]


def list_configs(family: str = "") -> List[str]:
    """List registered configuration names, optionally filtered by family."""
    names = sorted(_REGISTRY)
    if family:
        names = [n for n in names if _REGISTRY[n].family == family]
    return names


# ---------------------------------------------------------------------------
# Paper-scale configurations (Table II) — for accounting and memory modelling
# ---------------------------------------------------------------------------

register_config(ModelConfig(name="opt-350m", family="opt", vocab_size=50272,
                            max_seq_len=2048, dim=1024, num_layers=24, num_heads=16,
                            activation="relu"))
register_config(ModelConfig(name="opt-1.3b", family="opt", vocab_size=50272,
                            max_seq_len=2048, dim=2048, num_layers=24, num_heads=32,
                            activation="relu"))
register_config(ModelConfig(name="opt-2.7b", family="opt", vocab_size=50272,
                            max_seq_len=2048, dim=2560, num_layers=32, num_heads=32,
                            activation="relu"))
register_config(ModelConfig(name="opt-125m", family="opt", vocab_size=50272,
                            max_seq_len=2048, dim=768, num_layers=12, num_heads=12,
                            activation="relu"))
register_config(ModelConfig(name="gpt2-large", family="gpt2", vocab_size=50257,
                            max_seq_len=1024, dim=1280, num_layers=36, num_heads=20,
                            activation="gelu"))
register_config(ModelConfig(name="gpt2-xl", family="gpt2", vocab_size=50257,
                            max_seq_len=1024, dim=1600, num_layers=48, num_heads=25,
                            activation="gelu"))

# ---------------------------------------------------------------------------
# Executable scaled-down configurations — what tests/benchmarks actually run
# ---------------------------------------------------------------------------

register_config(ModelConfig(name="opt-tiny", family="opt", vocab_size=512,
                            max_seq_len=512, dim=64, num_layers=2, num_heads=4,
                            activation="relu"))
register_config(ModelConfig(name="opt-small", family="opt", vocab_size=1024,
                            max_seq_len=1024, dim=128, num_layers=4, num_heads=8,
                            activation="relu"))
register_config(ModelConfig(name="opt-medium", family="opt", vocab_size=2048,
                            max_seq_len=1024, dim=256, num_layers=6, num_heads=8,
                            activation="relu"))
register_config(ModelConfig(name="gpt2-tiny", family="gpt2", vocab_size=512,
                            max_seq_len=512, dim=64, num_layers=2, num_heads=4,
                            activation="gelu"))
register_config(ModelConfig(name="gpt2-small-repro", family="gpt2", vocab_size=1024,
                            max_seq_len=1024, dim=128, num_layers=4, num_heads=8,
                            activation="gelu"))

# Mapping from the paper's evaluation models to the executable stand-ins used
# by the benchmark harness (documented in EXPERIMENTS.md).
PAPER_TO_EXECUTABLE: Dict[str, str] = {
    "opt-350m": "opt-tiny",
    "opt-1.3b": "opt-small",
    "opt-2.7b": "opt-medium",
    "opt-125m": "opt-tiny",
    "gpt2-large": "gpt2-tiny",
    "gpt2-xl": "gpt2-small-repro",
}
