"""GPT-2 model family (Radford et al., 2019): GeLU-activated decoder-only LM.

Because GeLU does not produce exact zeros, the paper applies only the
attention-side LongExposure optimisations to GPT-2 (Figure 13); the engine
checks ``config.activation`` to make the same decision here.
"""

from __future__ import annotations

from repro.models.base import CausalLMModel
from repro.models.config import ModelConfig, get_config


class GPT2Model(CausalLMModel):
    """Decoder-only LM with GeLU MLP blocks (the GPT-2 family)."""

    def __init__(self, config: ModelConfig, seed: int = 0):
        if config.family != "gpt2":
            raise ValueError(f"GPT2Model requires a 'gpt2' family config, got {config.family!r}")
        if config.activation != "gelu":
            raise ValueError("GPT-2 models use GeLU activations")
        super().__init__(config, seed=seed)

    @classmethod
    def from_name(cls, name: str, seed: int = 0) -> "GPT2Model":
        """Build a GPT-2 model from a registered configuration name."""
        return cls(get_config(name), seed=seed)
