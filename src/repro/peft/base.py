"""Shared PEFT plumbing: result record and trainable-parameter accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.nn import Module


@dataclass
class PEFTResult:
    """What a PEFT method did to a model.

    Attributes
    ----------
    method:
        Name of the PEFT method ("lora", "adapter", ...).
    trainable_parameters:
        Number of parameters left trainable after applying the method.
    total_parameters:
        Total parameter count of the adapted model (backbone + injected).
    injected_parameters:
        Number of *new* parameters the method added (0 for BitFit / full FT).
    trainable_names:
        Names of the trainable parameters, for inspection and tests.
    extra:
        Method-specific details (rank, bottleneck size, prefix length, ...).
    """

    method: str
    trainable_parameters: int
    total_parameters: int
    injected_parameters: int = 0
    trainable_names: List[str] = field(default_factory=list)
    extra: Dict = field(default_factory=dict)

    @property
    def trainable_fraction(self) -> float:
        """Fraction of all parameters that are trainable (paper quotes <0.01 for LoRA)."""
        if self.total_parameters == 0:
            return 0.0
        return self.trainable_parameters / self.total_parameters

    def summary(self) -> str:
        return (f"{self.method}: {self.trainable_parameters:,} trainable "
                f"of {self.total_parameters:,} total "
                f"({100 * self.trainable_fraction:.4f}%)")


def count_trainable(model: Module) -> int:
    """Number of trainable parameters in ``model``."""
    return int(sum(p.numel() for p in model.parameters() if p.requires_grad))


def describe_trainable(model: Module) -> List[str]:
    """Names of trainable parameters (sorted for deterministic output)."""
    return sorted(name for name, p in model.named_parameters() if p.requires_grad)


def adapter_state_dict(model: Module) -> Dict[str, np.ndarray]:
    """Copies of the model's *trainable* (adapter) parameters, by name.

    The frozen backbone is excluded — this is the whole per-tenant state the
    serving layer ships around, and for the PEFT regime it is tiny compared
    with the shared base model.
    """
    return {name: p.data.copy()
            for name, p in model.named_parameters() if p.requires_grad}


def load_adapter_state(model: Module, state: Dict[str, np.ndarray]) -> None:
    """Write ``state`` back into the model's trainable parameters, in place.

    Values are copied into the existing parameter buffers (``np.copyto``),
    never rebound — compiled/captured plans recorded against those buffers
    stay valid, which is what lets the service hot-swap tenant adapters
    without recapturing.  Raises ``KeyError`` on a missing entry and
    ``ValueError`` on a shape mismatch.
    """
    for name, param in model.named_parameters():
        if not param.requires_grad:
            continue
        value = state[name]
        if tuple(value.shape) != tuple(param.data.shape):
            raise ValueError(f"adapter state {name!r}: shape {value.shape} "
                             f"does not match parameter {param.data.shape}")
        np.copyto(param.data, value)


def make_result(model: Module, method: str, injected: int, extra: Dict) -> PEFTResult:
    """Assemble a :class:`PEFTResult` from the model's current state."""
    return PEFTResult(
        method=method,
        trainable_parameters=count_trainable(model),
        total_parameters=model.num_parameters(),
        injected_parameters=injected,
        trainable_names=describe_trainable(model),
        extra=dict(extra),
    )
