"""BitFit (Ben Zaken et al., 2021): train only the bias terms.

No new parameters are injected; every parameter whose name ends in ``bias``
(and, optionally, the LayerNorm affine parameters) stays trainable while the
rest of the backbone is frozen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.models.base import CausalLMModel
from repro.peft.base import PEFTResult, make_result


@dataclass
class BitFitConfig:
    """Which parameters BitFit leaves trainable."""

    include_layernorm: bool = False


def apply_bitfit(model: CausalLMModel, config: Optional[BitFitConfig] = None) -> PEFTResult:
    """Freeze everything except bias (and optionally LayerNorm) parameters."""
    config = config or BitFitConfig()
    n_trainable_tensors = 0
    for name, param in model.named_parameters():
        is_bias = name.endswith("bias") or name.endswith(".bias")
        is_norm = ("norm" in name) and config.include_layernorm
        param.requires_grad = bool(is_bias or is_norm)
        n_trainable_tensors += int(param.requires_grad)
    if n_trainable_tensors == 0:
        raise RuntimeError("BitFit found no bias parameters to train")
    return make_result(model, "bitfit", 0,
                       {"include_layernorm": config.include_layernorm,
                        "trainable_tensors": n_trainable_tensors})
