"""Prefix / prompt tuning (Li & Liang, 2021; "P-Tuning" in the paper).

A block of trainable virtual-token embeddings is prepended to the input
embedding sequence.  The backbone is frozen; only the prefix parameters (and
a small reparameterisation MLP, if enabled) train.  The attention mask is
extended so every real token may attend to all prefix positions.

Implementation note: prefix tuning changes the *sequence length* seen by the
attention and MLP blocks (``s + prefix_len``), which the sparsity engine must
account for when building block layouts; :class:`PrefixEncoder` therefore
exposes ``prefix_length`` for that purpose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.models.base import CausalLMModel
from repro.nn import Linear, Module
from repro.nn.module import Parameter
from repro.peft.base import PEFTResult, make_result
from repro.tensor import Tensor, functional as F
from repro.tensor.tensor import concatenate


@dataclass
class PrefixTuningConfig:
    """Hyper-parameters of prefix tuning."""

    prefix_length: int = 8
    reparameterize: bool = True
    bottleneck_dim: int = 32
    seed: int = 0

    def __post_init__(self):
        if self.prefix_length <= 0:
            raise ValueError("prefix_length must be positive")


class PrefixEncoder(Module):
    """Produces the trainable prefix embeddings for a batch."""

    def __init__(self, dim: int, config: PrefixTuningConfig):
        super().__init__()
        rng = np.random.default_rng(config.seed)
        self.prefix_length = config.prefix_length
        self.reparameterize = config.reparameterize
        self.embedding = Parameter(
            rng.normal(0.0, 0.02, size=(config.prefix_length, dim)).astype(np.float32),
            name="prefix.embedding")
        if config.reparameterize:
            self.down = Linear(dim, config.bottleneck_dim, rng=rng, name="prefix.down")
            self.up = Linear(config.bottleneck_dim, dim, rng=rng, name="prefix.up")
            self.up.weight.data[:] = 0.0

    def forward(self, batch_size: int) -> Tensor:
        prefix = Tensor(self.embedding.data, requires_grad=False)
        prefix = self.embedding.reshape(1, self.prefix_length, -1)
        if self.reparameterize:
            prefix = prefix + self.up(self.down(prefix).tanh())
        # Broadcast over the batch by stacking views (cheap for small prefixes).
        tiled = concatenate([prefix] * batch_size, axis=0)
        return tiled


class PrefixedModel(Module):
    """Wrapper that prepends the prefix to the embedded input sequence."""

    def __init__(self, model: CausalLMModel, encoder: PrefixEncoder):
        super().__init__()
        self.model = model
        self.prefix_encoder = encoder
        self.config = model.config

    @property
    def prefix_length(self) -> int:
        return self.prefix_encoder.prefix_length

    def forward(self, input_ids: np.ndarray,
                attn_mask: Optional[np.ndarray] = None) -> Tensor:
        input_ids = np.asarray(input_ids)
        if input_ids.ndim == 1:
            input_ids = input_ids[None, :]
        batch, seq = input_ids.shape
        plen = self.prefix_length
        total = seq + plen
        positions = np.broadcast_to(np.arange(seq), (batch, seq))
        hidden = (self.model.token_embedding(input_ids)
                  + self.model.position_embedding(positions))
        prefix = self.prefix_encoder(batch)
        hidden = concatenate([prefix, hidden], axis=1)

        if attn_mask is None:
            from repro.nn.attention import causal_mask
            attn_mask = causal_mask(total)
            # Prefix positions are visible to every token.
            attn_mask = attn_mask.copy()
            attn_mask[:, :plen] = True
        for block in self.model.blocks:
            hidden = block(hidden, attn_mask=attn_mask)
        hidden = self.model.final_norm(hidden)
        return hidden[:, plen:, :]

    def logits(self, hidden: Tensor) -> Tensor:
        return self.model.logits(hidden)

    def loss(self, input_ids: np.ndarray, labels: Optional[np.ndarray] = None,
             attn_mask: Optional[np.ndarray] = None) -> Tuple[Tensor, int]:
        input_ids = np.asarray(input_ids)
        if input_ids.ndim == 1:
            input_ids = input_ids[None, :]
        labels = input_ids if labels is None else np.asarray(labels)
        if labels.ndim == 1:
            labels = labels[None, :]
        hidden = self.forward(input_ids, attn_mask=attn_mask)
        logits = self.logits(hidden)
        return F.cross_entropy(logits, labels, shift=True)

    # Delegate attribute access so the trainer / sparsity engine can treat a
    # prefixed model like the underlying CausalLMModel (blocks, config, ...).
    def __getattr__(self, item):
        model = self.__dict__.get("model")
        if model is not None and hasattr(model, item):
            return getattr(model, item)
        raise AttributeError(item)


def apply_prefix_tuning(model: CausalLMModel,
                        config: Optional[PrefixTuningConfig] = None
                        ) -> Tuple[PrefixedModel, PEFTResult]:
    """Freeze the backbone and wrap it with a trainable prefix encoder.

    Unlike the other PEFT methods this returns a *wrapper* model (the forward
    signature changes because virtual tokens are prepended), plus the usual
    :class:`PEFTResult`.
    """
    config = config or PrefixTuningConfig()
    model.freeze()
    encoder = PrefixEncoder(model.config.dim, config)
    wrapped = PrefixedModel(model, encoder)
    injected = sum(p.numel() for p in encoder.parameters())
    result = make_result(wrapped, "prefix", injected,
                         {"prefix_length": config.prefix_length,
                          "reparameterize": config.reparameterize})
    return wrapped, result
