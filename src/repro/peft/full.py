"""Full fine-tuning reference: every backbone parameter is trainable.

This is the "Full Param." row of the paper's Table I — the baseline whose
optimizer-step cost PEFT methods eliminate and whose forward/backward cost
LongExposure then attacks.
"""

from __future__ import annotations

from repro.models.base import CausalLMModel
from repro.peft.base import PEFTResult, make_result


def apply_full_finetuning(model: CausalLMModel) -> PEFTResult:
    """Mark every parameter trainable and report the accounting."""
    model.unfreeze()
    return make_result(model, "full", 0, {})
