"""Low-Rank Adaptation (LoRA) of linear projections.

LoRA freezes the pre-trained weight ``W`` and adds a trainable low-rank
update ``B @ A`` so the layer computes ``x W^T + (x A^T) B^T * (alpha/r)``.
Following the paper's Figure 2 analysis, both the frozen path and the
low-rank path participate in forward and backward, which is why LoRA alone
does not shrink forward/backward wall-clock — the motivation for
LongExposure.

``apply_lora`` wraps the chosen projections of every decoder block with
:class:`LoRALinear`; the original ``Linear`` modules (and their parameters)
are preserved inside the wrapper so sparsity backends and the memory model
keep seeing the backbone weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.models.base import CausalLMModel
from repro.nn import Linear, Module
from repro.peft.base import PEFTResult, make_result
from repro.tensor import Tensor, functional as F


@dataclass
class LoRAConfig:
    """Hyper-parameters of LoRA injection."""

    rank: int = 8
    alpha: float = 16.0
    dropout: float = 0.0
    # Which projections receive adapters; q/v is the LoRA-paper default, the
    # SC paper injects into "each transformer block" so fc1/fc2 are optional.
    target_modules: Tuple[str, ...] = ("q_proj", "v_proj")
    seed: int = 0

    def __post_init__(self):
        if self.rank <= 0:
            raise ValueError("LoRA rank must be positive")
        if self.alpha <= 0:
            raise ValueError("LoRA alpha must be positive")


class LoRALinear(Module):
    """A frozen ``Linear`` plus a trainable low-rank residual branch."""

    def __init__(self, base: Linear, rank: int, alpha: float,
                 rng: Optional[np.random.Generator] = None, name: str = ""):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.base = base
        self.rank = rank
        self.alpha = alpha
        self.scaling = alpha / rank
        in_features = base.in_features
        out_features = base.out_features
        # A ~ N(0, sigma), B = 0 so the adapted model starts identical to the
        # base model (standard LoRA initialisation).
        from repro.nn.module import Parameter
        self.lora_A = Parameter(
            rng.normal(0.0, 0.02, size=(rank, in_features)).astype(np.float32),
            name=f"{name}.lora_A")
        self.lora_B = Parameter(np.zeros((out_features, rank), dtype=np.float32),
                                name=f"{name}.lora_B")

    def forward(self, x: Tensor) -> Tensor:
        frozen = self.base(x)
        low_rank = F.linear(F.linear(x, self.lora_A, None), self.lora_B, None)
        return frozen + low_rank * self.scaling

    def merged_weight(self) -> np.ndarray:
        """Return ``W + scaling * B @ A`` (useful for tests and export)."""
        return self.base.weight.data + self.scaling * (self.lora_B.data @ self.lora_A.data)

    def extra_repr(self) -> str:
        return f"rank={self.rank}, alpha={self.alpha}"


def _iter_block_linears(block) -> List[Tuple[Module, str, Linear]]:
    """Enumerate (owner, attribute, Linear) triples inside a decoder block."""
    entries = []
    attn = block.attention
    for attr in ("q_proj", "k_proj", "v_proj", "out_proj"):
        entries.append((attn, attr, getattr(attn, attr)))
    mlp = block.mlp
    for attr in ("fc1", "fc2"):
        entries.append((mlp, attr, getattr(mlp, attr)))
    return entries


def apply_lora(model: CausalLMModel, config: Optional[LoRAConfig] = None) -> PEFTResult:
    """Freeze the backbone and inject LoRA adapters into ``model`` in-place."""
    config = config or LoRAConfig()
    rng = np.random.default_rng(config.seed)
    model.freeze()

    injected = 0
    wrapped = 0
    for index, block in enumerate(model.blocks):
        for owner, attr, linear in _iter_block_linears(block):
            if attr not in config.target_modules:
                continue
            if isinstance(linear, LoRALinear):
                raise RuntimeError("LoRA already applied to this model")
            adapter = LoRALinear(linear, config.rank, config.alpha, rng=rng,
                                 name=f"layer{index}.{attr}")
            setattr(owner, attr, adapter)
            injected += adapter.lora_A.numel() + adapter.lora_B.numel()
            wrapped += 1

    if wrapped == 0:
        raise ValueError(f"no target modules matched {config.target_modules}")
    return make_result(model, "lora", injected,
                       {"rank": config.rank, "alpha": config.alpha,
                        "target_modules": list(config.target_modules),
                        "wrapped_layers": wrapped})
