"""Bottleneck adapters (Houlsby et al., 2019).

A small two-layer network with a residual connection is inserted after the
attention and MLP sub-layers of every decoder block.  The backbone stays
frozen; only the adapter weights train.  As the paper's Table I shows, the
optimizer step becomes almost free but forward/backward still traverse the
whole backbone — the cost LongExposure then removes via sparsity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.models.base import CausalLMModel
from repro.nn import Linear, Module
from repro.nn.mlp import MLPBlock
from repro.nn.attention import MultiHeadAttention
from repro.peft.base import PEFTResult, make_result
from repro.tensor import Tensor


@dataclass
class AdapterConfig:
    """Hyper-parameters of bottleneck-adapter injection."""

    bottleneck_dim: int = 16
    activation: str = "relu"
    seed: int = 0

    def __post_init__(self):
        if self.bottleneck_dim <= 0:
            raise ValueError("bottleneck_dim must be positive")


class BottleneckAdapter(Module):
    """Residual bottleneck adapter: ``x + up(act(down(x)))``."""

    def __init__(self, dim: int, bottleneck_dim: int, activation: str = "relu",
                 rng: Optional[np.random.Generator] = None, name: str = ""):
        super().__init__()
        from repro.nn.activations import get_activation
        rng = rng if rng is not None else np.random.default_rng(0)
        self.down = Linear(dim, bottleneck_dim, rng=rng, name=f"{name}.down")
        self.up = Linear(bottleneck_dim, dim, rng=rng, name=f"{name}.up")
        # Near-identity initialisation: zero the up-projection so the adapted
        # model starts equivalent to the frozen backbone.
        self.up.weight.data[:] = 0.0
        self.activation = get_activation(activation)

    def forward(self, x: Tensor) -> Tensor:
        return x + self.up(self.activation(self.down(x)))


class _AdaptedSubLayer(Module):
    """Wrap a sub-layer (attention or MLP) with a trailing adapter."""

    def __init__(self, inner: Module, adapter: BottleneckAdapter):
        super().__init__()
        self.inner = inner
        self.adapter = adapter

    def forward(self, *args, **kwargs) -> Tensor:
        return self.adapter(self.inner(*args, **kwargs))

    def __getattr__(self, item):
        # Delegate attribute access (e.g. ``backend``, ``fc1``) to the wrapped
        # sub-layer so the sparsity engine can keep patching it.
        inner = self.__dict__.get("inner")
        if inner is not None and hasattr(inner, item):
            return getattr(inner, item)
        raise AttributeError(item)


def apply_adapter(model: CausalLMModel, config: Optional[AdapterConfig] = None) -> PEFTResult:
    """Freeze the backbone and insert bottleneck adapters after each sub-layer."""
    config = config or AdapterConfig()
    rng = np.random.default_rng(config.seed)
    model.freeze()

    injected = 0
    dim = model.config.dim
    for index, block in enumerate(model.blocks):
        if isinstance(block.attention, _AdaptedSubLayer) or isinstance(block.mlp, _AdaptedSubLayer):
            raise RuntimeError("adapters already applied to this model")
        attn_adapter = BottleneckAdapter(dim, config.bottleneck_dim, config.activation,
                                         rng=rng, name=f"layer{index}.attn_adapter")
        mlp_adapter = BottleneckAdapter(dim, config.bottleneck_dim, config.activation,
                                        rng=rng, name=f"layer{index}.mlp_adapter")
        injected += sum(p.numel() for p in attn_adapter.parameters())
        injected += sum(p.numel() for p in mlp_adapter.parameters())
        block.attention = _AdaptedSubLayer(block.attention, attn_adapter)
        block.mlp = _AdaptedSubLayer(block.mlp, mlp_adapter)

    return make_result(model, "adapter", injected,
                       {"bottleneck_dim": config.bottleneck_dim,
                        "activation": config.activation})
