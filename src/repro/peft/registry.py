"""Name-based dispatch of PEFT methods for the benchmark harness.

``get_peft_method(name)(model)`` applies the method with its default
configuration and returns ``(model, PEFTResult)``; prefix tuning returns the
wrapping model, all other methods return the (mutated) input model, so the
caller can use the returned model uniformly.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.models.base import CausalLMModel
from repro.nn import Module
from repro.peft.adapter import AdapterConfig, apply_adapter
from repro.peft.base import PEFTResult
from repro.peft.bitfit import BitFitConfig, apply_bitfit
from repro.peft.full import apply_full_finetuning
from repro.peft.lora import LoRAConfig, apply_lora
from repro.peft.prefix import PrefixTuningConfig, apply_prefix_tuning

ApplyFn = Callable[[CausalLMModel], Tuple[Module, PEFTResult]]


def _lora(model: CausalLMModel, **kwargs) -> Tuple[Module, PEFTResult]:
    return model, apply_lora(model, LoRAConfig(**kwargs) if kwargs else None)


def _adapter(model: CausalLMModel, **kwargs) -> Tuple[Module, PEFTResult]:
    return model, apply_adapter(model, AdapterConfig(**kwargs) if kwargs else None)


def _bitfit(model: CausalLMModel, **kwargs) -> Tuple[Module, PEFTResult]:
    return model, apply_bitfit(model, BitFitConfig(**kwargs) if kwargs else None)


def _prefix(model: CausalLMModel, **kwargs) -> Tuple[Module, PEFTResult]:
    return apply_prefix_tuning(model, PrefixTuningConfig(**kwargs) if kwargs else None)


def _full(model: CausalLMModel, **kwargs) -> Tuple[Module, PEFTResult]:
    return model, apply_full_finetuning(model)


PEFT_METHODS: Dict[str, ApplyFn] = {
    "lora": _lora,
    "adapter": _adapter,
    "bitfit": _bitfit,
    "prefix": _prefix,
    "p-tuning": _prefix,
    "full": _full,
}


def get_peft_method(name: str) -> ApplyFn:
    """Look up a PEFT method by name ("lora", "adapter", "bitfit", "prefix", "full")."""
    key = name.lower()
    if key not in PEFT_METHODS:
        raise KeyError(f"unknown PEFT method {name!r}; available: {sorted(PEFT_METHODS)}")
    return PEFT_METHODS[key]
