"""Parameter-efficient fine-tuning (PEFT) methods.

Implements the four PEFT techniques used in the paper's evaluation plus the
full fine-tuning reference:

* :class:`LoRAConfig` / :func:`apply_lora` — low-rank adapters injected into
  the attention and MLP projections (Hu et al., 2021);
* :class:`AdapterConfig` / :func:`apply_adapter` — bottleneck adapter layers
  inserted after each sub-layer (Houlsby et al., 2019);
* :class:`BitFitConfig` / :func:`apply_bitfit` — only bias terms trainable
  (Ben Zaken et al., 2021);
* :class:`PrefixTuningConfig` / :func:`apply_prefix_tuning` — trainable
  prefix/prompt vectors prepended to the input (Li & Liang, 2021, "P-Tuning"
  in the paper's Table I);
* :func:`apply_full_finetuning` — everything trainable (the Table I
  reference row).

Every ``apply_*`` function mutates a :class:`repro.models.CausalLMModel`
in-place (freeze backbone, add trainable parameters) and returns a
:class:`PEFTResult` describing what became trainable.  ``get_peft_method``
provides name-based dispatch for the benchmark harness.
"""

from repro.peft.base import (PEFTResult, adapter_state_dict, count_trainable,
                             describe_trainable, load_adapter_state)
from repro.peft.lora import LoRAConfig, LoRALinear, apply_lora
from repro.peft.adapter import AdapterConfig, BottleneckAdapter, apply_adapter
from repro.peft.bitfit import BitFitConfig, apply_bitfit
from repro.peft.prefix import PrefixTuningConfig, PrefixEncoder, apply_prefix_tuning
from repro.peft.full import apply_full_finetuning
from repro.peft.registry import PEFT_METHODS, get_peft_method

__all__ = [
    "PEFTResult",
    "adapter_state_dict",
    "load_adapter_state",
    "count_trainable",
    "describe_trainable",
    "LoRAConfig",
    "LoRALinear",
    "apply_lora",
    "AdapterConfig",
    "BottleneckAdapter",
    "apply_adapter",
    "BitFitConfig",
    "apply_bitfit",
    "PrefixTuningConfig",
    "PrefixEncoder",
    "apply_prefix_tuning",
    "apply_full_finetuning",
    "PEFT_METHODS",
    "get_peft_method",
]
