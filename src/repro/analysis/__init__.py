"""Reporting helpers: tables, ASCII charts and sparsity statistics.

The benchmarks print their results as plain-text tables/series shaped like
the paper's tables and figures; this package holds the shared formatting so
every bench reports consistently.
"""

from repro.analysis.reporting import format_table, ascii_bar_chart, speedup_series
from repro.analysis.sparsity_stats import model_sparsity_profile, LayerSparsityProfile

__all__ = [
    "format_table",
    "ascii_bar_chart",
    "speedup_series",
    "model_sparsity_profile",
    "LayerSparsityProfile",
]
