"""Plain-text tables and charts used by the benchmark harness."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "",
                 float_format: str = "{:.2f}") -> str:
    """Render a list of rows as an aligned plain-text table."""
    def render(value) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in rendered)) if rendered else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def ascii_bar_chart(labels: Sequence[str], values: Sequence[float], width: int = 40,
                    title: str = "", unit: str = "") -> str:
    """Horizontal ASCII bar chart (used for figure-style benchmark output)."""
    max_value = max(values) if values else 1.0
    max_value = max_value if max_value > 0 else 1.0
    label_width = max((len(l) for l in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(width * value / max_value)))
        lines.append(f"{label.ljust(label_width)} | {bar} {value:.3g}{unit}")
    return "\n".join(lines)


def speedup_series(baseline_times: Dict[str, float],
                   optimized_times: Dict[str, float]) -> Dict[str, float]:
    """Per-key speedup of ``baseline / optimized`` for matching keys."""
    out = {}
    for key, base in baseline_times.items():
        if key in optimized_times and optimized_times[key] > 0:
            out[key] = base / optimized_times[key]
    return out
