"""Per-layer sparsity profiling of a model on real batches (Figure 9 data)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.models.base import CausalLMModel
from repro.sparsity.exposer import AttentionExposer, MLPExposer
from repro.sparsity.patterns import PatternPool, build_default_pool
from repro.sparsity.predictor.collect import collect_layer_data


@dataclass
class LayerSparsityProfile:
    """Sparsity statistics of one layer under the different methods."""

    layer: int
    attention_head_specific: float
    attention_shadowy: float
    attention_longformer: float
    attention_bigbird: float
    mlp_shadowy: float
    mlp_filtered: dict            # threshold -> filtered block sparsity
    head_patterns: List[str]


def model_sparsity_profile(model: CausalLMModel, batches: Sequence[np.ndarray],
                           block_size: int = 32, coverage: float = 0.90,
                           thresholds: Sequence[float] = (0.01, 0.02, 0.03, 0.05),
                           pattern_pool: Optional[PatternPool] = None
                           ) -> List[LayerSparsityProfile]:
    """Compute the per-layer sparsity profile driving Figure 9's left panels."""
    from repro.baselines.sparse_attention import bigbird_block_masks, longformer_block_masks
    from repro.sparsity.patterns import causal_block_mask

    pattern_pool = pattern_pool or build_default_pool()
    attention_exposer = AttentionExposer(pattern_pool, block_size, coverage=coverage)
    collected = collect_layer_data(model, batches)

    seq_len = np.asarray(batches[0]).shape[-1]
    num_heads = model.config.num_heads
    n_blocks = -(-seq_len // block_size)
    causal_total = causal_block_mask(n_blocks).sum()
    longformer = longformer_block_masks(seq_len, num_heads, block_size)
    bigbird = bigbird_block_masks(seq_len, num_heads, block_size)
    longformer_sparsity = 1.0 - longformer[0].sum() / causal_total
    bigbird_sparsity = 1.0 - bigbird[0].sum() / causal_total

    profiles: List[LayerSparsityProfile] = []
    for layer_index, data in enumerate(collected):
        merged = data.merged()
        report = attention_exposer.analyze(merged["attention_probs"])
        mlp_filtered = {}
        mlp_shadowy = 0.0
        for threshold in thresholds:
            mlp_report = MLPExposer(block_size, threshold=threshold).analyze(
                merged["mlp_activations"])
            mlp_filtered[threshold] = mlp_report.filtered_sparsity
            mlp_shadowy = mlp_report.shadowy_sparsity
        profiles.append(LayerSparsityProfile(
            layer=layer_index,
            attention_head_specific=report.head_specific_sparsity,
            attention_shadowy=report.shadowy_sparsity,
            attention_longformer=float(longformer_sparsity),
            attention_bigbird=float(bigbird_sparsity),
            mlp_shadowy=mlp_shadowy,
            mlp_filtered=mlp_filtered,
            head_patterns=report.head_patterns,
        ))
    return profiles
