"""Baselines the paper compares against.

* :func:`longformer_block_masks` — sliding-window + global-token masks
  (Beltagy et al., 2020), applied uniformly to every head;
* :func:`bigbird_block_masks` — window + global + random blocks (Zaheer et
  al., 2020), also uniform across heads;
* :func:`shadowy_uniform_masks` — the "shadowy" ablation: one mask that must
  cover the significant scores of *all* heads (what you get without the
  head-specific exposer);
* :class:`UnstructuredSparseMLPBackend` — element-wise masked (unstructured)
  sparse MLP execution, the "shadowy" MLP baseline of Figure 9 whose low
  arithmetic intensity makes it *slower* than dense despite skipping work;
* the dense PEFT-library baseline is simply the model with its default dense
  backends (``repro.nn``) plus a PEFT method — no extra code needed.
"""

from repro.baselines.sparse_attention import (
    bigbird_block_masks,
    longformer_block_masks,
    shadowy_uniform_masks,
    install_fixed_mask_backend,
    FixedMaskAttentionBackend,
)
from repro.baselines.unstructured import UnstructuredSparseMLPBackend

__all__ = [
    "bigbird_block_masks",
    "longformer_block_masks",
    "shadowy_uniform_masks",
    "install_fixed_mask_backend",
    "FixedMaskAttentionBackend",
    "UnstructuredSparseMLPBackend",
]
