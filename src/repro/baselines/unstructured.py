"""Unstructured ("shadowy") sparse MLP baseline.

Figure 9 of the paper shows that exploiting the raw, scattered union
sparsity of the MLP block *hurts* performance relative to dense execution:
the pattern is unstructured, so the kernel loses arithmetic intensity even
though it skips work.  This backend reproduces that behaviour: it masks
individual inactive neurons (element-wise) instead of skipping whole neuron
blocks, paying the full gather/scatter cost with none of the blocking
benefits.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.mlp import MLPBlock
from repro.tensor import Tensor
from repro.tensor.tensor import custom_op


class UnstructuredSparseMLPBackend:
    """Element-wise masked MLP execution over the union of activated neurons."""

    def __init__(self, capture_activations: bool = False):
        self.capture_activations = capture_activations
        self.last_activations: Optional[np.ndarray] = None
        self.last_density: float = 1.0

    def __call__(self, module: MLPBlock, x: Tensor) -> Tensor:
        fc1_w, fc1_b = module.fc1.weight, module.fc1.bias
        fc2_w, fc2_b = module.fc2.weight, module.fc2.bias
        x_data = x.data
        d_model = x_data.shape[-1]
        hidden_dim = fc1_w.data.shape[0]
        x2d = x_data.reshape(-1, d_model)

        # First pass to discover the union of activated neurons, then an
        # element-wise masked recompute — the straightforward but
        # low-arithmetic-intensity way of using shadowy sparsity.
        pre = x2d @ fc1_w.data.T + fc1_b.data
        act_mask = pre > 0
        union = act_mask.any(axis=0)
        self.last_density = float(union.mean())
        active_idx = np.nonzero(union)[0]

        hidden = np.zeros_like(pre)
        # Scattered per-neuron computation (no contiguous blocks): gather the
        # active columns one strided slice at a time.
        hidden[:, active_idx] = np.maximum(pre[:, active_idx], 0.0)
        if self.capture_activations:
            self.last_activations = hidden.reshape(*x_data.shape[:-1], hidden_dim).copy()
        out2d = hidden[:, active_idx] @ fc2_w.data[:, active_idx].T + fc2_b.data
        out = out2d.reshape(*x_data.shape[:-1], d_model)

        def backward(grad_out: np.ndarray):
            grad2d = grad_out.reshape(-1, d_model)
            grad_fc2_bias = grad2d.sum(axis=0)
            grad_fc2 = np.zeros_like(fc2_w.data)
            grad_fc2[:, active_idx] = (hidden[:, active_idx].T @ grad2d).T
            grad_hidden = np.zeros_like(pre)
            grad_hidden[:, active_idx] = (grad2d @ fc2_w.data[:, active_idx]) * act_mask[:, active_idx]
            grad_fc1 = grad_hidden.T @ x2d
            grad_b1 = grad_hidden.sum(axis=0)
            grad_x = (grad_hidden @ fc1_w.data).reshape(x_data.shape)
            return grad_x, grad_fc1, grad_b1, grad_fc2, grad_fc2_bias

        return custom_op(out, (x, fc1_w, fc1_b, fc2_w, fc2_b), backward)
