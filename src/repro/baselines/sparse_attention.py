"""Classic sparse-attention baselines: Longformer, BigBird, uniform "shadowy".

All three produce *uniform* block masks — the same mask for every head —
which is precisely the design decision the Shadowy-sparsity Exposer improves
on with head-specific masks (Figure 9's comparison).  The masks are expressed
on the same block grid as LongExposure's layouts, so they can be executed by
the same dynamic-aware operators and compared like-for-like.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn.attention import MultiHeadAttention
from repro.sparsity.exposer import AttentionExposer
from repro.sparsity.ops.block_sparse import block_sparse_attention
from repro.sparsity.ops.layout import MultiHeadLayout, layout_from_block_masks
from repro.sparsity.patterns import block_count, causal_block_mask


def longformer_block_masks(seq_len: int, num_heads: int, block_size: int,
                           window_blocks: int = 4, global_blocks: int = 1) -> np.ndarray:
    """Sliding-window + leading-global-token mask, identical for every head."""
    n_blocks = block_count(seq_len, block_size)
    idx = np.arange(n_blocks)
    window = (idx[:, None] - idx[None, :] >= 0) & (idx[:, None] - idx[None, :] < window_blocks)
    mask = window.copy()
    g = min(global_blocks, n_blocks)
    mask[:, :g] = True
    mask[:g, :] = True
    mask &= causal_block_mask(n_blocks)
    np.fill_diagonal(mask, True)
    return np.repeat(mask[None], num_heads, axis=0)


def bigbird_block_masks(seq_len: int, num_heads: int, block_size: int,
                        window_blocks: int = 3, global_blocks: int = 1,
                        random_blocks: int = 2, seed: int = 0) -> np.ndarray:
    """Window + global + random blocks (the BigBird recipe), uniform across heads."""
    n_blocks = block_count(seq_len, block_size)
    rng = np.random.default_rng(seed)
    mask = longformer_block_masks(seq_len, 1, block_size, window_blocks, global_blocks)[0]
    for row in range(n_blocks):
        candidates = np.arange(0, row + 1)
        if candidates.size:
            picks = rng.choice(candidates, size=min(random_blocks, candidates.size),
                               replace=False)
            mask[row, picks] = True
    mask &= causal_block_mask(n_blocks)
    np.fill_diagonal(mask, True)
    return np.repeat(mask[None], num_heads, axis=0)


def shadowy_uniform_masks(attention_probs: np.ndarray, exposer: AttentionExposer,
                          num_heads: Optional[int] = None) -> np.ndarray:
    """The "shadowy" ablation: one mask covering the significant scores of all heads."""
    uniform = exposer.uniform_block_mask(attention_probs)
    heads = num_heads or attention_probs.shape[1]
    return np.repeat(uniform[None], heads, axis=0)


class FixedMaskAttentionBackend:
    """Attention backend executing a fixed (input-independent) block mask.

    This is how pre-defined sparse-attention methods behave: the mask is
    chosen once per sequence length, not per input, and is shared by all
    heads.  Reuses LongExposure's block-sparse kernel so the comparison in
    Figure 9 isolates the *mask quality*, not the kernel implementation.
    """

    def __init__(self, block_masks: np.ndarray, block_size: int):
        self.block_masks = np.asarray(block_masks, dtype=bool)
        self.block_size = block_size
        self.layout: MultiHeadLayout = layout_from_block_masks(self.block_masks, block_size)

    def __call__(self, module: MultiHeadAttention, q, k, v, attn_mask, x=None):
        return block_sparse_attention(q, k, v, self.layout)


def install_fixed_mask_backend(model, block_masks: np.ndarray, block_size: int) -> List:
    """Install a fixed-mask backend on every layer; returns the saved backends."""
    saved = []
    for block in model.blocks:
        attention = block.attention
        inner = getattr(attention, "inner", None)
        if inner is not None:
            attention = inner
        saved.append((attention, attention.backend))
        attention.backend = FixedMaskAttentionBackend(block_masks, block_size)
    return saved


def restore_backends(saved: List) -> None:
    """Undo :func:`install_fixed_mask_backend`."""
    for attention, backend in saved:
        attention.backend = backend
