"""Analytic memory model (reproduces Figure 8).

The paper measures GPU memory footprints; this environment has no GPU, so
the footprint is modelled analytically from the quantities that actually
drive the paper's curves:

* parameters (FP16 under mixed precision) and gradients + Adam moments for
  the *trainable* subset only (this is PEFT's memory saving);
* activations stored for the backward pass, including the attention
  score/probability buffers whose complexity LongExposure changes from
  ``O(s²)`` per head to ``O(s · nnz_blocks)``;
* optionally, only the *active* MLP neuron blocks resident on the device,
  the "LongExposure (optimal)" configuration where inactive backbone weights
  stay on the host.

The model is exact for the quantities it covers (bytes follow directly from
shapes); what it does not model is allocator fragmentation and framework
overhead, which shift absolute numbers but not the relative curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.models.config import ModelConfig


@dataclass
class MemoryBreakdown:
    """Bytes attributed to each memory consumer for one configuration."""

    parameters: float
    gradients: float
    optimizer_state: float
    activations: float
    attention_buffers: float

    @property
    def total(self) -> float:
        return (self.parameters + self.gradients + self.optimizer_state
                + self.activations + self.attention_buffers)

    def total_gb(self) -> float:
        return self.total / 1024 ** 3

    def as_dict(self) -> dict:
        return {
            "parameters_gb": self.parameters / 1024 ** 3,
            "gradients_gb": self.gradients / 1024 ** 3,
            "optimizer_state_gb": self.optimizer_state / 1024 ** 3,
            "activations_gb": self.activations / 1024 ** 3,
            "attention_buffers_gb": self.attention_buffers / 1024 ** 3,
            "total_gb": self.total_gb(),
        }


@dataclass
class MemoryModel:
    """Analytic footprint of fine-tuning one model configuration.

    Parameters
    ----------
    config:
        Model architecture (paper-scale configs give paper-scale numbers).
    param_bytes / activation_bytes:
        Bytes per element: 2 (FP16) for parameters and 4 (FP32) for
        activations under the paper's mixed-precision setup.
    """

    config: ModelConfig
    param_bytes: int = 2
    activation_bytes: int = 4
    optimizer_bytes_per_param: int = 8          # two FP32 Adam moments
    # Streaming tiled attention (repro.tensor.fused.streaming_attention):
    # forward keeps only an O(s * tile) score scratch plus the per-row
    # logsumexp, and the backward re-streams the tiles instead of reading a
    # stored (s, s) probability matrix.
    streaming: bool = False
    streaming_tile: int = 128

    # -- building blocks ------------------------------------------------------------
    def parameter_bytes(self) -> float:
        return float(self.config.num_parameters() * self.param_bytes)

    def trainable_state_bytes(self, trainable_params: int) -> float:
        grads = trainable_params * 4                      # FP32 master gradients
        optimizer = trainable_params * self.optimizer_bytes_per_param
        return float(grads + optimizer)

    def activation_bytes_per_layer(self, batch: int, seq_len: int,
                                   mlp_density: float = 1.0) -> float:
        cfg = self.config
        hidden_tokens = batch * seq_len
        # Residual stream + attention projections (q, k, v, out) + MLP hidden.
        residual = 2 * hidden_tokens * cfg.dim
        projections = 4 * hidden_tokens * cfg.dim
        mlp_hidden = hidden_tokens * cfg.hidden_dim * mlp_density
        return float((residual + projections + mlp_hidden) * self.activation_bytes)

    def attention_buffer_bytes(self, batch: int, seq_len: int,
                               block_density: float = 1.0,
                               block_size: int = 64) -> float:
        """Score/probability buffers kept for the backward pass.

        Dense attention stores ``batch * heads * s²`` probabilities per layer;
        block-sparse attention stores only the active blocks, i.e. a
        ``block_density`` fraction of the causal half.  With
        :attr:`streaming` enabled the backward recomputes probabilities tile
        by tile, so only the O(s * tile) score scratch plus the per-row
        logsumexp survives a layer — independent of ``seq_len²``.  When both
        streaming and block sparsity are active the cheaper of the two bounds
        applies (streaming block-sparse keeps one score tile per query-row
        segment, never more than either bound).
        """
        cfg = self.config
        dense_causal = batch * cfg.num_heads * (seq_len * seq_len) / 2.0
        stored = dense_causal * block_density
        if self.streaming:
            tile = min(self.streaming_tile, seq_len)
            # score scratch (s * tile) + logsumexp/max/sum/corr rows (4 * s)
            streamed = batch * cfg.num_heads * seq_len * (tile + 4.0)
            stored = min(stored, streamed)
        return float(stored * self.activation_bytes)

    # -- configurations of Figure 8 ----------------------------------------------------
    def peft_baseline(self, batch: int, seq_len: int, trainable_params: int) -> MemoryBreakdown:
        """Dense PEFT fine-tuning (the 'PEFT' curve)."""
        layers = self.config.num_layers
        return MemoryBreakdown(
            parameters=self.parameter_bytes(),
            gradients=trainable_params * 4.0,
            optimizer_state=trainable_params * float(self.optimizer_bytes_per_param),
            activations=layers * self.activation_bytes_per_layer(batch, seq_len),
            attention_buffers=layers * self.attention_buffer_bytes(batch, seq_len, 1.0),
        )

    def long_exposure(self, batch: int, seq_len: int, trainable_params: int,
                      attention_density: float, mlp_density: float,
                      offload_inactive: bool = False) -> MemoryBreakdown:
        """LongExposure footprint; ``offload_inactive`` gives the 'optimal' curve."""
        layers = self.config.num_layers
        params = self.parameter_bytes()
        if offload_inactive:
            cfg = self.config
            mlp_params = layers * 2 * cfg.dim * cfg.hidden_dim
            resident = params - mlp_params * self.param_bytes * (1.0 - mlp_density)
            params = resident
        return MemoryBreakdown(
            parameters=params,
            gradients=trainable_params * 4.0,
            optimizer_state=trainable_params * float(self.optimizer_bytes_per_param),
            activations=layers * self.activation_bytes_per_layer(batch, seq_len, mlp_density),
            attention_buffers=layers * self.attention_buffer_bytes(batch, seq_len,
                                                                   attention_density),
        )

    def full_finetuning(self, batch: int, seq_len: int) -> MemoryBreakdown:
        """Full fine-tuning reference (all parameters trainable)."""
        return self.peft_baseline(batch, seq_len, self.config.num_parameters())
