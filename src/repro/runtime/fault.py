"""Seeded fault injection and bounded retry for the resilience layer.

Production failure modes — a rank SIGKILLed mid-step, a hung barrier, a
flipped bit in a shared-memory gradient slot, a checkpoint write that dies
half-way — are exactly the events a fault-tolerant system must survive, and
exactly the events that never happen on a developer box.  This module makes
them *schedulable*: a :class:`FaultInjector` carries a list of
:class:`FaultRule`\\ s and is threaded through the comms/distributed/store
layers, which ask ``should_fire(site, ...)`` at well-defined injection
points:

``worker_crash_before_barrier``
    the worker process exits abruptly (``os._exit``) after gathering its
    gradients but *before* the ``grads`` barrier — peers discover the death
    as a barrier timeout;
``worker_crash_after_barrier``
    the abrupt exit happens after the ``reduced`` barrier — peers have the
    full reduced gradient and complete their local step before discovering
    the death;
``barrier_timeout``
    the worker sleeps past the step timeout instead of dying — a *hung*
    rank, which survivors must treat exactly like a dead one;
``shm_chunk_corruption``
    one element of the rank's own gradient slot is perturbed *after* its
    CRC32 checksums were published — the downstream verifier must detect the
    mismatch before the corrupt bytes enter the reduction;
``checkpoint_write_failure``
    the tenant-state store raises :class:`InjectedFault` mid-write — the
    atomic write-temp → fsync → rename protocol must leave no torn file
    behind.

Determinism: every decision is a pure function of ``(seed, site, rank,
occurrence index)``.  Two processes (or two runs) asking the same question
get the same answer regardless of wall clock or interleaving, which is what
lets the recovery tests assert *bitwise* equality against an uninterrupted
run.

:class:`RetryPolicy` is the reusable consumer-side half: bounded retries
with exponential backoff and deterministic jitter (same seed → same delay
sequence), used by the durable tenant store and available to any caller
that wants to survive transient faults without a thundering herd.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

__all__ = [
    "FAULT_SITES",
    "FaultRule",
    "FaultInjector",
    "InjectedFault",
    "RetryPolicy",
]

FAULT_SITES = (
    "worker_crash_before_barrier",
    "worker_crash_after_barrier",
    "barrier_timeout",
    "shm_chunk_corruption",
    "checkpoint_write_failure",
)


class InjectedFault(RuntimeError):
    """An error raised (not simulated) by an injection point."""


@dataclass
class FaultRule:
    """One scheduled fault.

    Parameters
    ----------
    site:
        One of :data:`FAULT_SITES`.
    rank:
        Restrict the rule to one worker rank (``None`` matches any rank;
        sites outside the worker protocol pass ``rank=None``).
    occurrence:
        Fire on the Nth *eligible* visit to the site (1-based) for the
        matching ``(site, rank)`` stream.  ``None`` makes every visit
        eligible, gated only by ``probability``.
    hits:
        Total number of times this rule may fire before it goes inert.
    probability:
        Seeded firing probability for eligible visits; 1.0 fires always.
    """

    site: str
    rank: Optional[int] = None
    occurrence: Optional[int] = 1
    hits: int = 1
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {self.site!r}; "
                             f"known: {FAULT_SITES}")
        if self.hits < 1:
            raise ValueError("hits must be >= 1")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")


@dataclass
class FaultInjector:
    """Deterministic, seeded fault scheduler (see module docstring).

    The injector is forked/pickled into worker processes; each process owns
    its copy's counters, but because decisions depend only on the per-
    ``(site, rank)`` visit count — never on cross-process state — the
    overall schedule is reproducible run to run.
    """

    rules: Sequence[FaultRule] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        self.rules = [rule if isinstance(rule, FaultRule) else FaultRule(**rule)
                      for rule in self.rules]
        self._visits: Dict[Tuple[str, Optional[int]], int] = {}
        self._fired: Dict[int, int] = {}        # rule index -> times fired
        self.fired_events: List[Tuple[str, Optional[int], int]] = []

    def should_fire(self, site: str, rank: Optional[int] = None) -> bool:
        """Record a visit to ``site`` (for ``rank``) and decide whether the
        scheduled fault fires there; deterministic for a given seed."""
        key = (site, rank)
        visit = self._visits.get(key, 0) + 1
        self._visits[key] = visit
        for index, rule in enumerate(self.rules):
            if rule.site != site:
                continue
            if rule.rank is not None and rank is not None and rule.rank != rank:
                continue
            if self._fired.get(index, 0) >= rule.hits:
                continue
            if rule.occurrence is not None and visit != rule.occurrence:
                continue
            if rule.probability < 1.0:
                # Hash the full coordinates into a private stream so the
                # draw is independent of every other site's call pattern.
                draw = random.Random(
                    f"{self.seed}:{site}:{rank}:{visit}").random()
                if draw >= rule.probability:
                    continue
            self._fired[index] = self._fired.get(index, 0) + 1
            self.fired_events.append((site, rank, visit))
            return True
        return False

    def maybe_raise(self, site: str, rank: Optional[int] = None) -> None:
        """Raise :class:`InjectedFault` when the schedule fires here."""
        if self.should_fire(site, rank):
            raise InjectedFault(f"injected fault at {site!r} "
                                f"(rank={rank})")


@dataclass
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``delays()`` yields the full backoff sequence up front —
    ``base_delay_s * backoff**i``, capped at ``max_delay_s``, each scaled by
    a seeded jitter factor in ``[1 - jitter, 1 + jitter]`` — so two policies
    built from the same seed retry on an identical schedule (no thundering
    herd *and* no flaky tests).
    """

    max_retries: int = 3
    base_delay_s: float = 0.01
    max_delay_s: float = 1.0
    backoff: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delays(self) -> List[float]:
        rng = random.Random(f"retry:{self.seed}")
        out: List[float] = []
        for attempt in range(self.max_retries):
            delay = min(self.base_delay_s * self.backoff ** attempt,
                        self.max_delay_s)
            out.append(delay * (1.0 + self.jitter * (2.0 * rng.random() - 1.0)))
        return out

    def call(self, fn: Callable, *args,
             retry_on: Tuple[Type[BaseException], ...] = (Exception,),
             sleep: Callable[[float], None] = time.sleep, **kwargs):
        """Run ``fn`` with up to ``max_retries`` retries on ``retry_on``.

        The last failure is re-raised once the budget is exhausted; the
        injected-vs-real distinction is the caller's business.
        """
        delays = self.delays()
        for attempt in range(self.max_retries + 1):
            try:
                return fn(*args, **kwargs)
            except retry_on:
                if attempt >= self.max_retries:
                    raise
                sleep(delays[attempt])
