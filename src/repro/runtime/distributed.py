"""Simulated data-parallel scaling (reproduces Figure 14).

The paper's strong-scaling study holds the global batch fixed and spreads it
over 1/2/4 GPUs; because every LongExposure optimisation is local to the
model computation, no extra communication is introduced and scaling is
linear.  Without multiple GPUs, the reproduction simulates data parallelism:

* the global batch is split into per-worker shards;
* each worker's compute time is *measured* by running its shard through the
  real model (sequentially, but timed per shard);
* the step time of the simulated N-worker system is the maximum shard time
  (workers run concurrently in the real system) plus an all-reduce term from
  a simple latency/bandwidth communication model over the gradient volume —
  which is tiny under PEFT, preserving the paper's "no extra communication
  overhead" conclusion.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.nn import Module


@dataclass
class CommunicationModel:
    """Ring all-reduce cost model: latency + volume / bandwidth per step."""

    latency_s: float = 5e-5
    bandwidth_gbps: float = 300.0        # NVLink-class interconnect

    def allreduce_time(self, gradient_bytes: float, num_workers: int) -> float:
        if num_workers <= 1:
            return 0.0
        volume = 2.0 * gradient_bytes * (num_workers - 1) / num_workers
        return self.latency_s * np.log2(num_workers) + volume / (self.bandwidth_gbps * 1e9)


@dataclass
class ScalingResult:
    """Outcome of a strong-scaling measurement for one worker count."""

    num_workers: int
    step_time_s: float
    compute_time_s: float
    communication_time_s: float
    speedup_vs_single: float = 1.0
    efficiency: float = 1.0


class DataParallelSimulator:
    """Simulates strong scaling of fine-tuning across data-parallel workers."""

    def __init__(self, step_fn: Callable[[np.ndarray], float],
                 gradient_bytes: float,
                 comm: Optional[CommunicationModel] = None):
        """
        Parameters
        ----------
        step_fn:
            Callable executing one fine-tuning step on a batch shard and
            returning nothing of interest; it is timed with ``perf_counter``.
        gradient_bytes:
            Bytes of gradients that would be all-reduced per step (trainable
            parameters x 4 for FP32 gradients) — tiny under PEFT.
        comm:
            Communication model; defaults to an NVLink-class ring all-reduce.
        """
        self.step_fn = step_fn
        self.gradient_bytes = float(gradient_bytes)
        self.comm = comm or CommunicationModel()

    def _measure_shard(self, shard: np.ndarray, repeats: int = 1) -> float:
        best = float("inf")
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            self.step_fn(shard)
            best = min(best, time.perf_counter() - start)
        return best

    def run(self, global_batch: np.ndarray, worker_counts: Sequence[int],
            repeats: int = 1) -> List[ScalingResult]:
        """Measure simulated step time for each worker count (strong scaling)."""
        global_batch = np.asarray(global_batch)
        results: List[ScalingResult] = []
        single_time = None
        for workers in worker_counts:
            if global_batch.shape[0] % workers != 0:
                raise ValueError(f"global batch of {global_batch.shape[0]} sequences "
                                 f"cannot be split over {workers} workers")
            shards = np.split(global_batch, workers, axis=0)
            shard_times = [self._measure_shard(shard, repeats) for shard in shards]
            compute = max(shard_times)
            communication = self.comm.allreduce_time(self.gradient_bytes, workers)
            step_time = compute + communication
            if single_time is None:
                single_time = step_time
            speedup = single_time / step_time if step_time > 0 else float("inf")
            results.append(ScalingResult(
                num_workers=workers, step_time_s=step_time, compute_time_s=compute,
                communication_time_s=communication, speedup_vs_single=speedup,
                efficiency=speedup / workers))
        return results
