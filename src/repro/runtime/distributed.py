"""Real shared-memory data parallelism: sharded workers + flat all-reduce.

This module replaces the original analytic scaling *simulator* with a working
data-parallel trainer on one box.  ``N`` worker processes each build an
identical :class:`~repro.runtime.trainer.FineTuner` (same factory, same
seeds), run the captured/compiled training step on their contiguous shard of
every global batch, and exchange gradients through a single flat contiguous
buffer in ``multiprocessing.shared_memory`` — a chunked fixed-order
reduce-scatter over the PR-2 flat gradient population (one message per step,
no per-parameter storm), followed by a *replicated* flat optimizer tail so
parameters stay bitwise-identical across workers without ever being
broadcast.

Determinism contract
--------------------
* For a fixed seed **and fixed worker count**, losses and parameters are
  bitwise-reproducible run to run: shards are contiguous fixed splits, the
  chunk reduction always sums rank slots in rank order, and every worker
  applies the same optimizer arithmetic to the same reduced gradient.
* With ``workers=1`` the trainer is bitwise-identical to the single-process
  :class:`FineTuner` on the same batches (the one-slot reduce is an exact
  copy and the division by ``world`` is skipped).
* Across *different* worker counts results agree to float tolerance only:
  shard-shaped GEMMs take different BLAS blocking paths, so the per-shard
  gradients — and hence their fixed-order mean — differ in final bits from
  the full-batch gradient.
* **Recovery preserves bitwise identity.**  The optimizer tail only runs
  after both all-reduce barriers complete, so a failure detected anywhere in
  the step means *no* rank has applied a partial update whose inputs other
  ranks lack.  Every worker snapshots its flat parameter/moment state at the
  top of each step; on failure the survivors roll back to that snapshot and
  the whole step is replayed from identical state and identical inputs —
  the run's losses and final parameters are bit-for-bit what an
  uninterrupted run produces (locked by the ``fault`` test tier).

Failure contract (elastic)
--------------------------
Every barrier wait carries a timeout.  When a rank dies, hangs past the
timeout, or detects gradient corruption (per-chunk CRC32, see
:mod:`repro.runtime.comms`), the run no longer dies with it:

1. **quiesce** — survivors catch the broken rendezvous, restore their
   pre-step snapshot, and park in a polling loop outside every barrier;
2. **respawn** — the parent identifies dead/hung ranks (killing hung ones),
   resets the barrier set, and forks replacement processes for the victims;
3. **restore** — a surviving donor rank exports its (pre-step) parameters,
   Adam moments, step count and sparsity layouts as one pickled slab through
   the shared blob region, SHA-256-stamped; each replacement verifies the
   digest and scatters the slab into its fresh tuner via the optimizer's
   flat-state API;
4. **replay** — the parent releases everyone and re-issues the in-flight
   step.

``max_restarts`` bounds respawns across the trainer's lifetime; exhaustion
(or an application-level worker exception, which would simply recur on
replay) degrades to the fail-fast behaviour: :class:`DistributedError` with
per-rank diagnostics *plus* the recovery history, stragglers terminated and
both segments unlinked — never a hang, never an orphaned ``/dev/shm`` entry.

Predictor-refresh amortization
------------------------------
When workers carry a :class:`~repro.sparsity.LongExposure` engine, sparsity
masks would ordinarily be re-derived *per worker shard* at every refresh
step.  Instead, on steps where the schedule is due, rank 0 refreshes from
its shard and broadcasts the resulting layouts (tiny per-head block masks)
through the shared blob region; the other ranks adopt them before their
forward pass.  All workers therefore compute with identical layouts, and the
probe/oracle cost is paid once per refresh instead of once per worker.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
import traceback
import uuid
import weakref
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import multiprocessing as mp

import numpy as np

from repro.runtime.comms import (
    BarrierBroken, BarrierSet, BootViews, CommIntegrityError, CommSpec,
    DataViews, DistributedError, GradientAllReducer, SharedSegment,
    boot_regions, chunk_schedule, data_regions, wait_barrier,
    CMD_IDLE, CMD_PARAMS, CMD_STEP, CMD_STOP,
    CTL_BLOB_CAP, CTL_COMMAND, CTL_DONATION_READY, CTL_DONOR,
    CTL_GRAD_ELEMS, CTL_MASK_BLOB_LEN, CTL_PARAM_BLOB_LEN,
    CTL_RECOVERY_SEQ, CTL_RESUME, CTL_STEP_ID,
    ST_BOOTING, ST_ERROR, ST_READY, ST_RECOVERING, ST_STEPPED,
    STAT_BACKWARD, STAT_CHECKSUM_FAILURES, STAT_CHECKSUM_S, STAT_COMM,
    STAT_FORWARD, STAT_MASK_SYNCS, STAT_NAMES, STAT_OPTIMIZER,
    STAT_RECAPTURES, STAT_REPLAY_STEPS, STAT_FULL_REPLAYS, STATS_SLOTS,
    _CODE_DTYPES, _DTYPE_CODES,
)
from repro.runtime.fault import FaultInjector
from repro.runtime.profiler import PhaseProfiler
from repro.runtime.trainer import (FineTuner, PhaseTimings, TrainingConfig,
                                   TrainingReport)

__all__ = [
    "DistributedError",
    "DistributedReport",
    "DataParallelTrainer",
    "train_data_parallel",
]

_PICKLE = pickle.HIGHEST_PROTOCOL

# Poll period of the quiesced-worker recovery loop (seconds).
_RECOVERY_POLL_S = 0.002


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------

def _param_digest(params) -> bytes:
    digest = hashlib.sha256()
    for param in params:
        digest.update(np.ascontiguousarray(param.data).tobytes())
    return digest.digest()


def _worker_fail(views: Optional[BootViews], rank: int,
                 barriers: BarrierSet, exc: BaseException) -> None:
    """Record the failure for the parent and wake every blocked peer."""
    try:
        if views is not None:
            views.write_error(rank, "".join(traceback.format_exception(exc)))
    except Exception:
        pass
    barriers.abort_all()


class _StepSnapshot:
    """Pre-step state capture enabling exact in-flight-step replay.

    Taken at the top of every CMD_STEP (two flat memcpys plus three
    scalars — microseconds for PEFT populations).  ``restore()`` rolls the
    worker back to the exact state the interrupted step started from:
    parameters, Adam moments, step count, the sparsity engine's schedule
    position, the loss-scaler's scale, and zeroed gradients (the backward
    accumulates, so stale grads would double-count on replay).
    """

    def __init__(self, tuner: FineTuner, grad_elems: int, dtype: np.dtype):
        self.tuner = tuner
        self.params = np.empty(grad_elems, dtype)
        self.m = np.empty(grad_elems, dtype)
        self.v = np.empty(grad_elems, dtype)
        self.step_count = 0
        self.engine_step = 0
        self.engine_layouts: Optional[list] = None
        self.engine_refresh_steps: Optional[List[int]] = None
        self.scale = 1.0

    def take(self) -> None:
        optimizer = self.tuner.optimizer
        optimizer.gather_flat_params(self.params)
        optimizer.gather_flat_state(self.m, self.v)
        self.step_count = int(optimizer.step_count)
        engine = self.tuner.engine
        if engine is not None:
            self.engine_step = int(engine.step_index)
            # Refresh bookkeeping must roll back too: a mask refresh that
            # ran inside the interrupted step would otherwise leave this
            # rank thinking no refresh is due on replay while peers still
            # wait at the masks barrier.
            self.engine_layouts = engine.export_layouts()
            self.engine_refresh_steps = [b._last_refresh_step
                                         for b in engine._sparse_backends]
        self.scale = float(self.tuner.scaler.scale)

    def restore(self) -> None:
        optimizer = self.tuner.optimizer
        optimizer.scatter_flat_params(self.params)
        optimizer.scatter_flat_state(self.m, self.v)
        optimizer.step_count = self.step_count
        engine = self.tuner.engine
        if engine is not None:
            engine.step_index = self.engine_step
            for backend, entry, refresh in zip(engine._sparse_backends,
                                               self.engine_layouts,
                                               self.engine_refresh_steps):
                if entry[0] == "attn":
                    backend.last_layout = entry[1]
                    backend._layout_seq_len = entry[2]
                else:
                    backend.last_active_blocks = entry[1]
                backend._last_refresh_step = refresh
        self.tuner.scaler.scale = self.scale
        optimizer.zero_grad()
        self.tuner.model.zero_grad()


def _export_donation(tuner: FineTuner) -> bytes:
    """The donor's current (pre-step) state as one pickled flat slab."""
    optimizer = tuner.optimizer
    total, dtype = optimizer.grad_layout()
    params = np.empty(total, dtype)
    m = np.empty(total, dtype)
    v = np.empty(total, dtype)
    optimizer.gather_flat_params(params)
    optimizer.gather_flat_state(m, v)
    engine = tuner.engine
    payload = {
        "params": params.tobytes(),
        "m": m.tobytes(),
        "v": v.tobytes(),
        "step_count": int(optimizer.step_count),
        "scale": float(tuner.scaler.scale),
        "engine_step": int(engine.step_index) if engine is not None else None,
        "layouts": engine.export_layouts() if engine is not None else None,
    }
    return pickle.dumps(payload, protocol=_PICKLE)


def _adopt_donation(views: BootViews, data_views: DataViews,
                    tuner: FineTuner, rank: int, spec: CommSpec) -> bool:
    """Replacement-rank boot: restore state from the donor's verified slab.

    Returns False when the parent stopped the session while we waited.
    """
    ctl = views.ctl
    deadline = time.monotonic() + max(spec.step_timeout_s * 4, 60.0)
    while int(ctl[CTL_DONATION_READY]) != int(ctl[CTL_RECOVERY_SEQ]):
        if int(ctl[CTL_COMMAND]) == CMD_STOP:
            return False
        if time.monotonic() > deadline:
            raise DistributedError(
                f"rank {rank}: donor slab never arrived during recovery")
        time.sleep(_RECOVERY_POLL_S)
    donor = int(ctl[CTL_DONOR])
    blob = data_views.read_blob(int(ctl[CTL_PARAM_BLOB_LEN]))
    if hashlib.sha256(blob).digest() != bytes(views.digest[donor]):
        raise DistributedError(
            f"rank {rank}: donated state from rank {donor} failed its "
            f"SHA-256 digest check — refusing to train from corrupt state")
    payload = pickle.loads(blob)
    optimizer = tuner.optimizer
    total, dtype = optimizer.grad_layout()
    optimizer.scatter_flat_params(np.frombuffer(payload["params"], dtype))
    optimizer.scatter_flat_state(np.frombuffer(payload["m"], dtype),
                                 np.frombuffer(payload["v"], dtype))
    optimizer.step_count = int(payload["step_count"])
    tuner.scaler.scale = float(payload["scale"])
    engine = tuner.engine
    if engine is not None and payload["engine_step"] is not None:
        engine.step_index = int(payload["engine_step"])
        if payload["layouts"]:
            engine.adopt_layouts(payload["layouts"],
                                 refresh_step=int(payload["engine_step"]))
    return True


def _elastic_wait(views: BootViews, data_views: DataViews, rank: int,
                  spec: CommSpec, tuner: FineTuner) -> str:
    """Quiesced-survivor loop: park outside every barrier until the parent
    resumes (``"resume"``) or stops (``"stop"``) the session, serving donor
    requests along the way.

    The entry value of ``CTL_RESUME`` is read *before* the rank advertises
    itself as ST_RECOVERING: the parent only bumps CTL_RESUME after seeing
    every rank recovering, so reading first closes the race where a resume
    issued between the two reads would be mistaken for the entry state.
    """
    ctl = views.ctl
    entry_resume = int(ctl[CTL_RESUME])
    views.status[rank] = ST_RECOVERING
    deadline = time.monotonic() + max(spec.step_timeout_s * 10, 120.0)
    while True:
        if int(ctl[CTL_COMMAND]) == CMD_STOP:
            return "stop"
        if int(ctl[CTL_RESUME]) != entry_resume:
            return "resume"
        seq = int(ctl[CTL_RECOVERY_SEQ])
        if seq != int(ctl[CTL_DONATION_READY]) and int(ctl[CTL_DONOR]) == rank:
            blob = _export_donation(tuner)
            views.digest[rank] = np.frombuffer(
                hashlib.sha256(blob).digest(), np.uint8)
            ctl[CTL_PARAM_BLOB_LEN] = data_views.write_blob(blob)
            ctl[CTL_DONATION_READY] = seq
        if time.monotonic() > deadline:
            raise DistributedError(
                f"rank {rank} quiesced for recovery but the parent never "
                f"resumed the session")
        time.sleep(_RECOVERY_POLL_S)


def _worker_main(spec: CommSpec, rank: int,
                 tuner_factory: Callable[[], FineTuner],
                 barriers: BarrierSet, step_delay_s: float = 0.0,
                 fault_injector: Optional[FaultInjector] = None,
                 resume_boot: bool = False) -> None:
    """Entry point of one data-parallel worker process.

    ``resume_boot=True`` is the replacement-rank path: the session is
    already live, so the boot/setup rendezvous are skipped — the worker
    validates its layout against the agreed ctl values, restores state from
    the donor slab, and joins the quiesced ranks waiting for resume.
    """
    boot_seg = data_seg = None
    views = data_views = None
    try:
        boot_seg = SharedSegment.attach(spec.boot_name)
        views = BootViews(boot_seg, spec.world, spec.batch_capacity)
    except BaseException as exc:                      # cannot even report
        _worker_fail(None, rank, barriers, exc)
        return
    try:
        tuner = tuner_factory()
        if not isinstance(tuner, FineTuner):
            raise DistributedError(
                f"tuner_factory must return a FineTuner, got {type(tuner)!r}")
        optimizer = tuner.optimizer
        if not hasattr(optimizer, "gather_flat_grad"):
            raise DistributedError(
                f"optimizer {type(optimizer).__name__} does not expose the "
                f"flat gradient buffer (gather_flat_grad/scatter_flat_grad)")
        grad_elems, grad_dtype = optimizer.grad_layout()
        params_bytes = sum(int(p.data.nbytes) for p in optimizer.params)
        blob_capacity = max(4 * params_bytes + (1 << 16), 1 << 20)
        views.meta[rank] = (grad_elems, _DTYPE_CODES[grad_dtype.name])
        if resume_boot:
            if int(views.ctl[CTL_GRAD_ELEMS]) != grad_elems:
                raise DistributedError(
                    f"replacement rank {rank} built a tuner with "
                    f"{grad_elems} gradient elements; the live session "
                    f"agreed on {int(views.ctl[CTL_GRAD_ELEMS])} — the "
                    f"factory is not deterministic")
        else:
            if rank == 0:
                views.ctl[CTL_GRAD_ELEMS] = grad_elems
                views.ctl[CTL_BLOB_CAP] = blob_capacity
            views.status[rank] = ST_READY
            boot_timeout = max(spec.step_timeout_s * 4, 60.0)
            wait_barrier(barriers.boot, boot_timeout, "boot")
            wait_barrier(barriers.setup, boot_timeout, "setup")

        session_elems = int(views.ctl[CTL_GRAD_ELEMS])
        n_chunks = len(chunk_schedule(session_elems, spec.world,
                                      spec.chunk_elems))
        data_seg = SharedSegment.attach(spec.data_name)
        data_views = DataViews(data_seg, spec.world, session_elems,
                               grad_dtype, int(views.ctl[CTL_BLOB_CAP]),
                               n_chunks)
        reducer = GradientAllReducer(optimizer, data_views, rank, spec.world,
                                     barriers, spec.step_timeout_s,
                                     spec.chunk_elems,
                                     verify_checksums=spec.verify_checksums,
                                     fault_injector=fault_injector)
        tuner.grad_reducer = reducer
        engine = tuner.engine
        mask_syncs = 0
        snapshot = (_StepSnapshot(tuner, grad_elems, grad_dtype)
                    if spec.elastic else None)

        if resume_boot:
            if not _adopt_donation(views, data_views, tuner, rank, spec):
                return
            if _elastic_wait(views, data_views, rank, spec, tuner) == "stop":
                return
            views.status[rank] = ST_READY

        while True:
            # Between train() calls the parent may stay away arbitrarily
            # long, so this wait is unbounded; workers are daemons (they die
            # with the parent) and a failing peer aborts the barrier, which
            # wakes this wait with BrokenBarrierError.
            try:
                barriers.step_begin.wait()
            except Exception as exc:
                if not spec.elastic:
                    raise DistributedError("step_begin rendezvous broke") \
                        from exc
                # Nothing to roll back — the step never started.
                if _elastic_wait(views, data_views, rank, spec,
                                 tuner) == "stop":
                    break
                views.status[rank] = ST_READY
                continue
            command = int(views.ctl[CTL_COMMAND])
            if command == CMD_STOP:
                break
            if command == CMD_PARAMS:
                views.digest[rank] = np.frombuffer(
                    _param_digest(optimizer.params), np.uint8)
                if rank == 0:
                    blob = pickle.dumps(
                        [np.ascontiguousarray(p.data) for p in optimizer.params],
                        protocol=_PICKLE)
                    views.ctl[CTL_PARAM_BLOB_LEN] = data_views.write_blob(blob)
                wait_barrier(barriers.step_end, spec.step_timeout_s, "step_end")
                continue
            if command != CMD_STEP:
                raise DistributedError(f"unknown command {command}")

            try:
                if snapshot is not None:
                    snapshot.take()
                if step_delay_s > 0.0:  # test seam: slow the compute window
                    time.sleep(step_delay_s)
                batch = views.read_batch()
                shard_rows = batch.shape[0] // spec.world
                shard = np.ascontiguousarray(
                    batch[rank * shard_rows:(rank + 1) * shard_rows])

                mask_wait_s = 0.0
                refresh_due = (engine is not None and spec.world > 1
                               and spec.mask_broadcast
                               and engine.refresh_due_next(shard.shape[-1]))
                if refresh_due:
                    mask_syncs += 1
                    if rank == 0:
                        def _broadcast_masks() -> None:
                            # Runs inside the reducer (post-backward, so the
                            # refreshed layouts exist) while the other ranks
                            # are still waiting to start their forward pass.
                            blob = pickle.dumps(engine.export_layouts(),
                                                protocol=_PICKLE)
                            views.ctl[CTL_MASK_BLOB_LEN] = \
                                data_views.write_blob(blob)
                            wait_barrier(barriers.masks, spec.step_timeout_s,
                                         "masks")
                        reducer.pre_reduce = _broadcast_masks
                    else:
                        mask_start = time.perf_counter()
                        wait_barrier(barriers.masks, spec.step_timeout_s,
                                     "masks")
                        blob = data_views.read_blob(
                            int(views.ctl[CTL_MASK_BLOB_LEN]))
                        engine.adopt_layouts(pickle.loads(blob),
                                             refresh_step=engine.step_index + 1)
                        mask_wait_s = time.perf_counter() - mask_start

                checksum_s_before = reducer.checksum_seconds
                loss, timing = tuner.step(shard)
                views.loss[rank] = loss
                stats = views.stats[rank]
                stats[STAT_COMM] = timing.comm + mask_wait_s
                stats[STAT_FORWARD] = timing.forward
                stats[STAT_BACKWARD] = timing.backward
                stats[STAT_OPTIMIZER] = timing.optimizer
                capture = tuner.capture
                if capture is not None:
                    stats[STAT_RECAPTURES] = capture.recaptures
                    stats[STAT_REPLAY_STEPS] = capture.replay_steps
                    stats[STAT_FULL_REPLAYS] = capture.full_replays
                stats[STAT_MASK_SYNCS] = mask_syncs
                stats[STAT_CHECKSUM_FAILURES] = reducer.checksum_failures
                stats[STAT_CHECKSUM_S] = (reducer.checksum_seconds
                                          - checksum_s_before)
                views.status[rank] = ST_STEPPED
                wait_barrier(barriers.step_end, spec.step_timeout_s,
                             "step_end")
            except (BarrierBroken, CommIntegrityError) as exc:
                if not spec.elastic or snapshot is None:
                    raise
                # Survivable step failure: wake every blocked peer (and the
                # parent), roll back to the pre-step snapshot, quiesce.  The
                # parent respawns dead ranks and replays this step.
                barriers.abort_all()
                snapshot.restore()
                if _elastic_wait(views, data_views, rank, spec,
                                 tuner) == "stop":
                    break
                views.status[rank] = ST_READY
    except BaseException as exc:
        _worker_fail(views, rank, barriers, exc)
    finally:
        # Drop every exported view before closing; only the parent unlinks.
        if data_views is not None:
            data_views.release()
        if views is not None:
            views.release()
        for seg in (data_seg, boot_seg):
            if seg is not None:
                seg.close()


# ---------------------------------------------------------------------------
# parent-side trainer
# ---------------------------------------------------------------------------

@dataclass
class DistributedReport(TrainingReport):
    """A :class:`TrainingReport` plus data-parallel evidence.

    ``step_timings`` aggregate each phase as the **max over ranks** (the
    critical path of the concurrent step); ``step_wall_s`` is the parent's
    wall clock per step, which is what throughput claims should use.
    ``worker_restarts`` counts ranks respawned by elastic recovery;
    ``recovery_events`` records each recovery (victims, reason, wall time);
    ``comm_checksum_failures`` sums CRC32 mismatches detected (and rolled
    back) on the all-reduce path.
    """

    workers: int = 1
    step_wall_s: List[float] = field(default_factory=list)
    comm_s_per_step: List[float] = field(default_factory=list)
    worker_stats: List[Dict[str, float]] = field(default_factory=list)
    param_digest: str = ""
    final_params: List[np.ndarray] = field(default_factory=list)
    worker_restarts: int = 0
    recovery_events: List[Dict] = field(default_factory=list)
    comm_checksum_failures: float = 0.0

    def mean_comm_ms(self, skip_warmup: int = 1) -> float:
        values = self.comm_s_per_step[skip_warmup:] or self.comm_s_per_step
        return float(np.mean(values) * 1000.0) if values else 0.0

    def steps_per_second(self, skip_warmup: int = 1) -> float:
        walls = self.step_wall_s[skip_warmup:] or self.step_wall_s
        total = float(np.sum(walls))
        return len(walls) / total if total > 0 else float("inf")


def _static_cleanup(state: dict) -> None:
    """Last-resort teardown shared by close(), _fail() and the finalizer."""
    for process in state.get("processes", ()):
        try:
            if process.is_alive():
                process.terminate()
        except Exception:
            pass
    for process in state.get("processes", ()):
        try:
            process.join(timeout=2.0)
        except Exception:
            pass
    for key in ("boot_views", "data_views"):
        views = state.pop(key, None)
        if views is not None:
            try:
                views.release()
            except Exception:
                pass
    for key in ("boot_shm", "data_shm"):
        seg = state.pop(key, None)
        if seg is not None:
            seg.close()
            seg.unlink()
    state["processes"] = []


class DataParallelTrainer:
    """Drives N sharded worker processes through the shared-memory protocol.

    Parameters
    ----------
    tuner_factory:
        Zero-argument callable, run *inside every worker*, returning the
        :class:`FineTuner` to train.  It must be deterministic (same seeds →
        bitwise-identical models in every rank) and, under the ``spawn``
        start method, picklable (a module-level function or
        ``functools.partial`` over one).
    config:
        The :class:`TrainingConfig`; ``config.data_parallel_workers`` sets
        the worker count unless ``workers`` overrides it.
    workers:
        Explicit worker count override.
    start_method:
        ``multiprocessing`` start method; default ``fork`` where available
        (no pickling constraints, instant startup), else ``spawn``.
    step_timeout_s:
        Bound on every intra-step barrier wait; a worker death surfaces as
        a recovery (or :class:`DistributedError`) within a small multiple
        of this.
    chunk_elems:
        Chunk size (elements) of the fixed-order reduce schedule.
    mask_broadcast:
        Broadcast rank 0's sparsity layouts at refresh steps instead of
        letting every worker probe its own shard (requires an engine).
    batch_capacity:
        Size in bytes of the shared batch region; default 4x the first
        published batch.
    max_restarts:
        Total rank respawns the trainer may perform before degrading to
        fail-fast :class:`DistributedError` (with the recovery history in
        the diagnostics).  ``0`` disables elastic recovery entirely.
    verify_checksums:
        Per-chunk CRC32 verification on the all-reduce path (default on);
        a mismatch triggers a step rollback + replay instead of silently
        reducing corrupt bytes.
    fault_injector:
        Optional :class:`~repro.runtime.fault.FaultInjector` forwarded to
        the *original* worker incarnations (replacement ranks run
        fault-free so a one-shot schedule cannot re-fire after respawn).
    """

    def __init__(self, tuner_factory: Callable[[], FineTuner],
                 config: Optional[TrainingConfig] = None,
                 workers: Optional[int] = None, *,
                 start_method: Optional[str] = None,
                 step_timeout_s: float = 60.0,
                 chunk_elems: int = 1 << 16,
                 mask_broadcast: bool = True,
                 batch_capacity: Optional[int] = None,
                 max_restarts: int = 2,
                 verify_checksums: bool = True,
                 fault_injector: Optional[FaultInjector] = None,
                 _test_step_delay_s: float = 0.0):
        config = config or TrainingConfig()
        world = int(workers if workers is not None
                    else config.data_parallel_workers)
        if world < 1:
            raise ValueError(f"need at least one worker, got {world}")
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        self.tuner_factory = tuner_factory
        self.config = config
        self.world = world
        self.step_timeout_s = float(step_timeout_s)
        self.chunk_elems = int(chunk_elems)
        self.mask_broadcast = bool(mask_broadcast)
        self.batch_capacity = batch_capacity
        self.max_restarts = int(max_restarts)
        self.verify_checksums = bool(verify_checksums)
        self.fault_injector = fault_injector
        self.profiler = PhaseProfiler()
        self._test_step_delay_s = float(_test_step_delay_s)
        if start_method is None:
            start_method = ("fork" if "fork" in mp.get_all_start_methods()
                            else "spawn")
        self._ctx = mp.get_context(start_method)
        self.session = f"lexdp-{os.getpid():x}-{uuid.uuid4().hex[:8]}"
        self._state: dict = {"processes": []}
        self._finalizer = weakref.finalize(self, _static_cleanup, self._state)
        self._started = False
        self._closed = False
        self._step_id = 0
        self._restarts = 0
        self._recovery_history: List[Dict] = []
        self._spec: Optional[CommSpec] = None
        self._barriers: Optional[BarrierSet] = None

    # -- lifecycle ---------------------------------------------------------------

    @property
    def _parent_timeout(self) -> float:
        return self.step_timeout_s * 2 + 5.0

    @property
    def elastic(self) -> bool:
        return self.max_restarts > 0

    @property
    def worker_restarts(self) -> int:
        return self._restarts

    @property
    def recovery_history(self) -> List[Dict]:
        return list(self._recovery_history)

    def _ensure_started(self, first_batch: np.ndarray) -> None:
        if self._closed:
            raise DistributedError("trainer is closed")
        if self._started:
            return
        capacity = self.batch_capacity
        if capacity is None:
            capacity = max(4 * int(first_batch.nbytes), 1 << 20)
        spec = CommSpec(session=self.session, world=self.world,
                        batch_capacity=int(capacity),
                        step_timeout_s=self.step_timeout_s,
                        chunk_elems=self.chunk_elems,
                        mask_broadcast=self.mask_broadcast,
                        elastic=self.elastic,
                        verify_checksums=self.verify_checksums)
        _, boot_bytes = boot_regions(self.world, spec.batch_capacity)
        boot_seg = SharedSegment.create(spec.boot_name, boot_bytes)
        self._state["boot_shm"] = boot_seg
        boot_views = BootViews(boot_seg, self.world, spec.batch_capacity)
        # Shared memory arrives zeroed on Linux, but make the protocol fields
        # explicit rather than rely on it.
        boot_views.ctl[:] = 0
        boot_views.status[:] = 0
        self._state["boot_views"] = boot_views
        barriers = BarrierSet(self._ctx, self.world)
        processes = []
        for rank in range(self.world):
            process = self._ctx.Process(
                target=_worker_main,
                args=(spec, rank, self.tuner_factory, barriers,
                      self._test_step_delay_s, self.fault_injector, False),
                name=f"{self.session}-rank{rank}", daemon=True)
            process.start()
            processes.append(process)
        self._state["processes"] = processes
        self._spec = spec
        self._barriers = barriers
        self._boot_views = boot_views
        boot_timeout = max(self.step_timeout_s * 4, 60.0)
        self._guarded_wait(barriers.boot, "boot", timeout=boot_timeout)

        # Workers reported their flat gradient population; they must agree.
        meta = boot_views.meta.copy()
        if np.any(boot_views.status.copy() == ST_ERROR):
            self._fail("a worker failed during startup")
        if len({tuple(row) for row in meta.tolist()}) != 1:
            self._fail(f"workers disagree on the gradient layout: "
                       f"{meta.tolist()} — the tuner factory is not "
                       f"deterministic across ranks")
        grad_elems = int(meta[0, 0])
        grad_dtype = _CODE_DTYPES[int(meta[0, 1])]
        blob_capacity = int(boot_views.ctl[CTL_BLOB_CAP])
        n_chunks = len(chunk_schedule(grad_elems, self.world,
                                      self.chunk_elems))
        _, data_bytes = data_regions(self.world, grad_elems,
                                     grad_dtype.itemsize, blob_capacity,
                                     n_chunks)
        data_seg = SharedSegment.create(spec.data_name, data_bytes)
        self._state["data_shm"] = data_seg
        data_views = DataViews(data_seg, self.world, grad_elems, grad_dtype,
                               blob_capacity, n_chunks)
        self._state["data_views"] = data_views
        self._data_views = data_views
        self._grad_dtype = grad_dtype
        self._grad_elems = grad_elems
        self._guarded_wait(barriers.setup, "setup", timeout=boot_timeout)
        self._started = True

    def worker_pids(self) -> List[int]:
        return [process.pid for process in self._state["processes"]]

    def segment_names(self) -> List[str]:
        if self._spec is None:
            return []
        return [self._spec.boot_name, self._spec.data_name]

    def close(self) -> None:
        """Stop the workers and unlink both segments; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._started:
            try:
                self._boot_views.ctl[CTL_COMMAND] = CMD_STOP
                self._barriers.step_begin.wait(timeout=min(
                    self.step_timeout_s, 10.0))
                for process in self._state["processes"]:
                    process.join(timeout=min(self.step_timeout_s, 10.0))
            except Exception:
                pass
        if self._barriers is not None:
            self._barriers.abort_all()
        _static_cleanup(self._state)
        self._finalizer.detach()

    def __enter__(self) -> "DataParallelTrainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- failure handling --------------------------------------------------------

    def _guarded_wait(self, barrier, what: str,
                      timeout: Optional[float] = None) -> None:
        try:
            wait_barrier(barrier, timeout if timeout is not None
                         else self._parent_timeout, what)
        except DistributedError:
            self._fail(f"rendezvous {what!r} broke or timed out")

    def _fail(self, reason: str) -> None:
        diagnostic = [f"data-parallel run failed: {reason}"]
        views = self._state.get("boot_views")
        processes = self._state.get("processes", [])
        statuses = (views.status.copy().tolist()
                    if views is not None else [])
        for rank, process in enumerate(processes):
            line = (f"  rank {rank}: pid={process.pid} "
                    f"alive={process.is_alive()} exitcode={process.exitcode}")
            if rank < len(statuses):
                line += f" status={statuses[rank]}"
            diagnostic.append(line)
            if views is not None:
                error = views.read_error(rank)
                if error:
                    indented = "\n".join("    " + l
                                         for l in error.strip().splitlines())
                    diagnostic.append(indented)
        if self._recovery_history:
            diagnostic.append(f"  restart history ({self._restarts} restarts, "
                              f"max_restarts={self.max_restarts}):")
            for event in self._recovery_history:
                diagnostic.append(f"    step {event['step_id']}: "
                                  f"victims={event['victims']} "
                                  f"wall={event['wall_s']:.2f}s — "
                                  f"{event['reason']}")
        if self._barriers is not None:
            self._barriers.abort_all()
        self._closed = True
        _static_cleanup(self._state)
        self._finalizer.detach()
        raise DistributedError("\n".join(diagnostic))

    def _check_worker_errors(self) -> None:
        status = self._boot_views.status.copy()
        if np.any(status == ST_ERROR):
            failed = [rank for rank, value in enumerate(status.tolist())
                      if value == ST_ERROR]
            self._fail(f"rank(s) {failed} reported an error")

    # -- elastic recovery --------------------------------------------------------

    def _recover(self, reason: str) -> None:
        """Quiesce → respawn → restore → release; raises via _fail when the
        failure is not survivable (see the module docstring)."""
        views = self._boot_views
        barriers = self._barriers
        processes = self._state["processes"]
        recover_start = time.perf_counter()
        if np.any(views.status.copy() == ST_ERROR):
            # An application-level worker exception would simply recur on
            # replay; surface it instead of burning restarts.
            self._fail(f"{reason}; a worker reported an error")
        if not self.elastic:
            self._fail(reason)
        # Wake everything still blocked in a barrier; survivors roll back
        # and park in the recovery loop, outside every barrier.
        barriers.abort_all()
        deadline = time.monotonic() + self.step_timeout_s * 2 + 10.0
        while True:
            status = views.status.copy()
            pending = [rank for rank, process in enumerate(processes)
                       if process.is_alive() and status[rank] != ST_RECOVERING]
            if not pending:
                break
            if time.monotonic() > deadline:
                # Hung ranks (alive, never quiesced — e.g. stuck in user
                # code): treat them exactly like dead ones.
                for rank in pending:
                    try:
                        processes[rank].terminate()
                        processes[rank].join(timeout=2.0)
                        if processes[rank].is_alive():
                            processes[rank].kill()
                    except Exception:
                        pass
                break
            time.sleep(_RECOVERY_POLL_S)
        for process in processes:           # reap zombies so is_alive is real
            if not process.is_alive():
                process.join(timeout=1.0)
        victims = [rank for rank, process in enumerate(processes)
                   if not process.is_alive()]
        survivors = [rank for rank in range(self.world)
                     if rank not in victims]
        event = {"step_id": self._step_id, "reason": reason,
                 "victims": victims, "wall_s": 0.0}
        if not survivors:
            self._recovery_history.append(event)
            self._fail(f"{reason}; every rank died — no survivor to "
                       f"recover from")
        if self._restarts + len(victims) > self.max_restarts:
            self._recovery_history.append(event)
            self._fail(f"{reason}; respawning rank(s) {victims} would exceed "
                       f"max_restarts={self.max_restarts}")
        # Everyone alive is quiesced outside the barriers: safe to reset.
        barriers.reset_all()
        ctl = views.ctl
        if victims:
            ctl[CTL_DONOR] = survivors[0]
            ctl[CTL_RECOVERY_SEQ] = int(ctl[CTL_RECOVERY_SEQ]) + 1
            for rank in victims:
                views.status[rank] = ST_BOOTING
                views.err_len[rank] = 0
                # Replacements run without the fault injector: their visit
                # counters would restart from zero, so a one-shot schedule
                # ("crash on the 2nd reduce") would re-fire forever.
                replacement = self._ctx.Process(
                    target=_worker_main,
                    args=(self._spec, rank, self.tuner_factory, barriers,
                          self._test_step_delay_s, None, True),
                    name=f"{self.session}-rank{rank}-r{self._restarts + 1}",
                    daemon=True)
                replacement.start()
                processes[rank] = replacement
            self._restarts += len(victims)
        # Replacements build a whole tuner before reporting in: boot-scale
        # patience, not step-scale.
        deadline = time.monotonic() + max(self.step_timeout_s * 4, 60.0)
        while True:
            status = views.status.copy()
            if np.any(status == ST_ERROR):
                self._recovery_history.append(event)
                self._fail(f"{reason}; a rank errored during recovery")
            if any(not processes[rank].is_alive() for rank in range(self.world)):
                self._recovery_history.append(event)
                self._fail(f"{reason}; a rank died during recovery")
            if all(status[rank] == ST_RECOVERING
                   for rank in range(self.world)):
                break
            if time.monotonic() > deadline:
                self._recovery_history.append(event)
                self._fail(f"{reason}; ranks never finished quiescing/"
                           f"restoring for recovery")
            time.sleep(_RECOVERY_POLL_S)
        event["wall_s"] = time.perf_counter() - recover_start
        self._recovery_history.append(event)
        self.profiler.set_gauge("worker_restarts", float(self._restarts))
        # Release every quiesced rank back into the command loop; the caller
        # replays the in-flight step.
        ctl[CTL_RESUME] = int(ctl[CTL_RESUME]) + 1

    # -- stepping ----------------------------------------------------------------

    def step(self, batch: np.ndarray) -> (float, PhaseTimings):
        """Run one global step; returns (global mean loss, max-phase timings).

        Under the elastic protocol a failed step is recovered and *replayed*
        (same batch, same step id, rolled-back state) until it completes or
        recovery itself gives up with :class:`DistributedError`.
        """
        batch = np.asarray(batch)
        if batch.shape[0] % self.world != 0:
            raise ValueError(f"global batch of {batch.shape[0]} sequences "
                             f"cannot be split over {self.world} workers")
        self._ensure_started(batch)
        views = self._boot_views
        self._step_id += 1
        while True:
            views.publish_batch(self._step_id, batch)
            views.ctl[CTL_COMMAND] = CMD_STEP
            wall_start = time.perf_counter()
            try:
                wait_barrier(self._barriers.step_begin, self._parent_timeout,
                             "step_begin")
                wait_barrier(self._barriers.step_end, self._parent_timeout,
                             "step_end")
            except BarrierBroken:
                self._recover(f"step {self._step_id} rendezvous broke")
                continue
            break
        wall = time.perf_counter() - wall_start
        self._check_worker_errors()
        losses = views.loss.copy()
        stats = views.stats.copy()
        # Fixed-order mean over equal shards: for world == 1 this is exactly
        # the worker's loss (sum of one element over 1).
        loss = float(losses.sum() / self.world)
        timing = PhaseTimings(
            forward=float(stats[:, STAT_FORWARD].max()),
            backward=float(stats[:, STAT_BACKWARD].max()),
            optimizer=float(stats[:, STAT_OPTIMIZER].max()),
            comm=float(stats[:, STAT_COMM].max()),
        )
        self._last_wall_s = wall
        self._last_stats = stats
        self.profiler.set_gauge("worker_restarts", float(self._restarts))
        self.profiler.set_gauge(
            "comm_checksum_failures",
            float(stats[:, STAT_CHECKSUM_FAILURES].sum()))
        return loss, timing

    def fetch_params(self) -> (List[np.ndarray], str):
        """Final trainable parameters (rank 0) + the cross-rank digest.

        Raises :class:`DistributedError` if any rank's parameter bytes
        diverged — the bitwise-replication invariant of the replicated
        optimizer tail failed.
        """
        if not self._started:
            raise DistributedError("no step has run yet")
        views = self._boot_views
        views.ctl[CTL_COMMAND] = CMD_PARAMS
        self._guarded_wait(self._barriers.step_begin, "step_begin")
        self._guarded_wait(self._barriers.step_end, "step_end")
        self._check_worker_errors()
        digests = views.digest.copy()
        unique = {bytes(digests[rank]) for rank in range(self.world)}
        if len(unique) != 1:
            self._fail("parameters diverged across workers: "
                       + ", ".join(f"rank{r}={bytes(digests[r]).hex()[:12]}"
                                   for r in range(self.world)))
        blob = self._data_views.read_blob(
            int(views.ctl[CTL_PARAM_BLOB_LEN]))
        return pickle.loads(blob), unique.pop().hex()

    # -- full loop ---------------------------------------------------------------

    def train(self, batches: Iterable[np.ndarray],
              max_steps: Optional[int] = None,
              fetch_params: bool = True) -> DistributedReport:
        """Train over an iterable of global token-id batches."""
        max_steps = (max_steps if max_steps is not None
                     else self.config.max_steps)
        losses: List[float] = []
        timings: List[PhaseTimings] = []
        walls: List[float] = []
        comms: List[float] = []
        tokens = 0
        for step_index, batch in enumerate(batches):
            if max_steps is not None and step_index >= max_steps:
                break
            batch = np.asarray(batch)
            loss, timing = self.step(batch)
            losses.append(loss)
            timings.append(timing)
            walls.append(self._last_wall_s)
            comms.append(timing.comm)
            tokens += int(batch.size)
            if self.config.log_every and (step_index + 1) % self.config.log_every == 0:
                print(f"step {step_index + 1}: loss={loss:.4f} "
                      f"wall={self._last_wall_s * 1000:.1f}ms "
                      f"comm={timing.comm * 1000:.1f}ms")
        worker_stats = []
        checksum_failures = 0.0
        stats = getattr(self, "_last_stats", None)
        if stats is not None:
            worker_stats = [dict(zip(STAT_NAMES, stats[rank].tolist()))
                            for rank in range(self.world)]
            checksum_failures = float(stats[:, STAT_CHECKSUM_FAILURES].sum())
        params: List[np.ndarray] = []
        digest = ""
        if fetch_params and losses:
            params, digest = self.fetch_params()
        return DistributedReport(
            steps=len(losses), losses=losses, step_timings=timings,
            tokens_processed=tokens, workers=self.world, step_wall_s=walls,
            comm_s_per_step=comms, worker_stats=worker_stats,
            param_digest=digest, final_params=params,
            worker_restarts=self._restarts,
            recovery_events=self.recovery_history,
            comm_checksum_failures=checksum_failures)


def train_data_parallel(tuner_factory: Callable[[], FineTuner],
                        batches: Sequence[np.ndarray],
                        config: Optional[TrainingConfig] = None,
                        **trainer_kwargs) -> DistributedReport:
    """One-shot convenience wrapper: spawn, train, tear down."""
    with DataParallelTrainer(tuner_factory, config, **trainer_kwargs) as trainer:
        return trainer.train(batches)
