"""Phase-timed fine-tuning trainer.

The trainer reproduces the measurement protocol behind the paper's Table I,
Figure 7, Figure 10 and Figure 13: every training step is split into the
forward pass, the backward pass and the optimizer step, each timed with
``time.perf_counter``; when a LongExposure engine is attached, the prediction
overhead its backends accumulate is reported as a separate phase (it is part
of the forward/backward wall-clock, shown separately for the breakdown).
"""

from __future__ import annotations

import contextlib
import time
import warnings
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.nn import Module
from repro.optim import Adam, GradScaler, MixedPrecisionConfig, clip_grad_norm
from repro.optim.base import Optimizer
from repro.runtime.arena import StepCapture
from repro.runtime.profiler import PhaseProfiler
from repro.tensor import fused


@dataclass
class CaptureConfig:
    """Steady-state step capture and full-step compilation knobs.

    * ``enabled`` — after ``warmup`` uncaptured steps, record the tape's
      execution schedule and buffer population, then replay subsequent steps
      through recycled buffers with the topological re-sort skipped (see
      :mod:`repro.runtime.arena`).  Bitwise identical to the uncaptured
      path; a shape change triggers exactly one re-capture.
    * ``compile_full_step`` — requires capture: during a captured step the
      forward's kernel calls are additionally recorded into a flat
      ForwardPlan and the backward schedule is retained, so steady-state
      steps replay forward + backward + optimizer tail without building a
      single Python graph node.  Steps where the sparsity engine is due to
      refresh its masks run interpreted through the backward-only replay.
    * ``executor_threads`` — thread count for the dependency-levelled
      forward executor.  1 replays the recorded kernel order — bitwise
      identical to the interpreted step.  >1 dispatches each dependency
      level across a thread pool (NumPy releases the GIL inside BLAS);
      entries on one level never read each other's output, so results are
      value-identical, but cross-entry accumulation order is not pinned —
      the bitwise contract holds only at ``executor_threads=1``.
    """

    enabled: bool = False
    warmup: int = 1
    compile_full_step: bool = False
    executor_threads: int = 1


@dataclass
class AttentionConfig:
    """Attention-kernel routing, scoped per tuner.

    * ``streaming`` / ``streaming_tile`` — streaming tiled attention (see
      :func:`repro.tensor.fused.streaming_attention`): the dense-attention
      path runs the online-softmax kernel over K/V tiles of
      ``streaming_tile`` keys, never materialising the quadratic score
      matrix — the long-context switch.
    * ``fused_kernels`` — route through the fused single-node kernels
      (True) or the primitive-composition reference tape (False).

    Both switches are process globals in :mod:`repro.tensor.fused`; an
    explicit (non-``None``) value here is applied via a scoping context
    around each step and restored afterwards, so interleaved tuners — and
    the multi-tenant service's lanes — never inherit another tuner's
    setting.  ``None`` leaves the ambient global alone.  The effective
    values are part of the capture signature, so a differing ambient
    setting forces a re-capture rather than a silent kernel mismatch.
    """

    streaming: Optional[bool] = None
    streaming_tile: int = 128
    fused_kernels: Optional[bool] = None


# Legacy flat TrainingConfig kwargs -> (nested group, attribute).  Kept
# working through the compat constructor and the property aliases installed
# below; new code should set the nested dataclasses directly.
_LEGACY_TRAINING_KWARGS = {
    "capture_steps": ("capture", "enabled"),
    "capture_warmup": ("capture", "warmup"),
    "compile_full_step": ("capture", "compile_full_step"),
    "executor_threads": ("capture", "executor_threads"),
    "streaming_attention": ("attention", "streaming"),
    "streaming_tile": ("attention", "streaming_tile"),
    "fused_kernels": ("attention", "fused_kernels"),
}


@dataclass
class TrainingConfig:
    """Hyper-parameters of the fine-tuning loop.

    The capture/compiler and attention-routing toggles live in the nested
    :class:`CaptureConfig` and :class:`AttentionConfig` groups::

        TrainingConfig(capture=CaptureConfig(enabled=True,
                                             compile_full_step=True),
                       attention=AttentionConfig(streaming=True))

    The pre-grouping flat keyword arguments (``capture_steps``,
    ``capture_warmup``, ``compile_full_step``, ``executor_threads``,
    ``streaming_attention``, ``streaming_tile``) are still accepted — they
    are forwarded into the nested groups with a :class:`DeprecationWarning`
    — and remain readable/assignable through property aliases, so existing
    code keeps working unchanged.
    """

    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    max_steps: Optional[int] = None
    grad_clip: float = 0.0
    mixed_precision: bool = False
    log_every: int = 0
    seed: int = 0
    capture: CaptureConfig = field(default_factory=CaptureConfig)
    attention: AttentionConfig = field(default_factory=AttentionConfig)
    # Data parallelism: with N > 1,
    # :class:`repro.runtime.distributed.DataParallelTrainer` runs N worker
    # processes over this config, each stepping its batch shard and
    # exchanging gradients through a shared-memory flat-buffer all-reduce.
    # FineTuner itself always runs one process; the knob tells the
    # distributed front-end how wide to go.
    data_parallel_workers: int = 1


_TRAINING_CONFIG_INIT = TrainingConfig.__init__


def _training_config_compat_init(self, *args, **kwargs):
    legacy = {key: kwargs.pop(key)
              for key in tuple(kwargs) if key in _LEGACY_TRAINING_KWARGS}
    _TRAINING_CONFIG_INIT(self, *args, **kwargs)
    if legacy:
        warnings.warn(
            "flat TrainingConfig kwargs "
            f"({', '.join(sorted(legacy))}) are deprecated; use the nested "
            "capture=CaptureConfig(...) / attention=AttentionConfig(...) "
            "groups instead", DeprecationWarning, stacklevel=2)
        for key, value in legacy.items():
            group, attr = _LEGACY_TRAINING_KWARGS[key]
            setattr(getattr(self, group), attr, value)


TrainingConfig.__init__ = _training_config_compat_init


def _legacy_alias(group: str, attr: str) -> property:
    def _get(self):
        return getattr(getattr(self, group), attr)

    def _set(self, value):
        setattr(getattr(self, group), attr, value)

    return property(_get, _set, doc=f"Alias of ``{group}.{attr}`` "
                                    "(legacy flat TrainingConfig field).")


for _name, (_group, _attr) in _LEGACY_TRAINING_KWARGS.items():
    setattr(TrainingConfig, _name, _legacy_alias(_group, _attr))
del _name, _group, _attr


@dataclass
class PhaseTimings:
    """Per-phase timing of one training step (seconds).

    ``comm`` is the data-parallel gradient-exchange time (barrier waits +
    chunked reduce + mask broadcast); it is zero for single-process training
    and broken out of the optimizer phase so scaling regressions are
    attributable from the step breakdown alone.
    """

    forward: float
    backward: float
    optimizer: float
    prediction: float = 0.0
    comm: float = 0.0

    @property
    def total(self) -> float:
        return self.forward + self.backward + self.optimizer + self.comm

    def as_milliseconds(self) -> dict:
        return {
            "forward_ms": self.forward * 1000,
            "backward_ms": self.backward * 1000,
            "optimizer_ms": self.optimizer * 1000,
            "prediction_ms": self.prediction * 1000,
            "comm_ms": self.comm * 1000,
            "total_ms": self.total * 1000,
        }


@dataclass
class TrainingReport:
    """Aggregate result of a fine-tuning run."""

    steps: int
    losses: List[float]
    step_timings: List[PhaseTimings]
    tokens_processed: int

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    def mean_timings(self, skip_warmup: int = 1) -> PhaseTimings:
        """Average phase timings, skipping warm-up steps (cache effects)."""
        timings = self.step_timings[skip_warmup:] or self.step_timings
        return PhaseTimings(
            forward=float(np.mean([t.forward for t in timings])),
            backward=float(np.mean([t.backward for t in timings])),
            optimizer=float(np.mean([t.optimizer for t in timings])),
            prediction=float(np.mean([t.prediction for t in timings])),
            comm=float(np.mean([t.comm for t in timings])),
        )

    def mean_step_ms(self, skip_warmup: int = 1) -> float:
        return self.mean_timings(skip_warmup).total * 1000

    def breakdown_table(self) -> str:
        """Table-I-style row: phase times and their share of the total."""
        mean = self.mean_timings()
        total = mean.total or 1.0
        return (f"fwd {mean.forward * 1000:7.1f}ms ({mean.forward / total:5.1%})  "
                f"bwd {mean.backward * 1000:7.1f}ms ({mean.backward / total:5.1%})  "
                f"optim {mean.optimizer * 1000:6.1f}ms ({mean.optimizer / total:5.1%})  "
                f"total {total * 1000:7.1f}ms")


class FineTuner:
    """Runs fine-tuning steps on a (PEFT-adapted, optionally sparsified) model.

    Parameters
    ----------
    model:
        Any module exposing ``loss(input_ids) -> (Tensor, int)`` — a
        :class:`repro.models.CausalLMModel` or a PEFT wrapper around one.
    optimizer:
        Optimizer over the *trainable* parameters; defaults to Adam, matching
        the paper's setup.
    engine:
        Optional :class:`repro.sparsity.LongExposure` whose prediction
        overhead should be read out per step.
    grad_reducer:
        Optional callable ``(params) -> seconds`` run between the backward
        pass and the optimizer update — the data-parallel gradient exchange
        (see :class:`repro.runtime.comms.GradientAllReducer`).  It must
        mutate every ``param.grad`` in place with the globally-reduced
        gradient and return the seconds it spent; the trainer reports that
        as the ``comm`` phase.  May also be assigned after construction
        (``tuner.grad_reducer = ...``), which is how the worker harness
        wires it.
    """

    def __init__(self, model: Module, config: Optional[TrainingConfig] = None,
                 optimizer: Optional[Optimizer] = None, engine=None,
                 capture=None, grad_reducer=None):
        self.model = model
        self.config = config or TrainingConfig()
        trainable = model.trainable_parameters()
        if not trainable:
            raise ValueError("model has no trainable parameters; apply a PEFT method first")
        self.optimizer = optimizer or Adam(trainable, lr=self.config.learning_rate,
                                           weight_decay=self.config.weight_decay)
        self.engine = engine
        self.scaler = GradScaler(MixedPrecisionConfig(enabled=self.config.mixed_precision))
        self.profiler = PhaseProfiler()
        # Step capture: pass a StepCapture, True, or enable via the config.
        if capture is None:
            capture = self.config.capture.enabled
        if capture is True:
            capture = StepCapture(warmup_steps=self.config.capture.warmup)
        self.capture: Optional[StepCapture] = capture or None
        self.grad_reducer = grad_reducer
        # Kernel-routing scopes: an explicit config value is applied around
        # each step and restored afterwards (never left set process-wide),
        # so interleaved tuners cannot inherit each other's setting; None
        # means "inherit whatever is ambient".  This is the audited list of
        # process globals a step consults: the fused-kernel switch, the
        # streaming-attention switch + tile (both scoped here), the active
        # arena and tape and the forward recorder (set and restored by
        # StepCapture's begin/end machinery inside the step), and the
        # content-keyed geometry/causal-mask caches (value caches, safe to
        # share across tuners and tenants).
        attention = self.config.attention
        self._streaming_scope = (
            None if attention.streaming is None
            else (bool(attention.streaming), attention.streaming_tile))
        self._fused_scope = (None if attention.fused_kernels is None
                             else bool(attention.fused_kernels))
        # Flat-update closure for compiled steps (None -> ordinary step()).
        self._optim_plan_tail = getattr(self.optimizer, "plan_tail",
                                        lambda: None)()

    def _capture_signature(self, input_ids: np.ndarray,
                           labels: Optional[np.ndarray]):
        """Everything that shapes the step's graph; a change forces re-capture."""
        return (input_ids.shape, str(input_ids.dtype),
                None if labels is None else np.asarray(labels).shape,
                fused.fused_kernels_enabled(),
                fused.streaming_attention_enabled(), fused.streaming_tile(),
                float(self.scaler.scale))

    def _kernel_scopes(self) -> contextlib.ExitStack:
        """Enter the tuner's explicit kernel-routing scopes (see __init__)."""
        stack = contextlib.ExitStack()
        if self._fused_scope is not None:
            stack.enter_context(fused.fused_kernel_state(self._fused_scope))
        if self._streaming_scope is not None:
            enabled, tile = self._streaming_scope
            stack.enter_context(fused.streaming_kernels(enabled, tile))
        return stack

    def step_signature(self, input_ids: np.ndarray,
                       labels: Optional[np.ndarray] = None):
        """The capture signature :meth:`step` would see for this batch.

        Evaluated under the tuner's own kernel scopes, so the answer does not
        depend on whatever some other caller left in the process globals.
        The multi-tenant service buckets requests by this key: requests with
        equal signatures replay one compiled plan.
        """
        with self._kernel_scopes():
            return self._capture_signature(np.asarray(input_ids), labels)

    # -- single step -------------------------------------------------------------
    def step(self, input_ids: np.ndarray,
             labels: Optional[np.ndarray] = None) -> (float, PhaseTimings):
        """One fine-tuning step; returns (loss value, phase timings)."""
        with self._kernel_scopes():
            return self._step_inner(input_ids, labels)

    def _step_inner(self, input_ids: np.ndarray,
                    labels: Optional[np.ndarray] = None) -> (float, PhaseTimings):
        if self.engine is not None:
            # Drive the prediction scheduler: with predict_interval=K the
            # sparse backends re-derive their masks every K-th step and reuse
            # them in between.
            self.engine.advance_step()
        engine_pred_before = self.engine.stats.prediction_seconds if self.engine else 0.0

        capture = self.capture
        if capture is not None:
            input_ids = np.asarray(input_ids)
            capture.begin_step(self._capture_signature(input_ids, labels))
        loss_value: Optional[float] = None
        forward_s = backward_s = 0.0
        replayed = False
        try:
            # Full-step compilation is only sound on steps whose forward is
            # pure kernel calls: fused kernels on, and no sparsity-mask
            # refresh due (probe/oracle logic runs between ops and cannot be
            # recorded — those steps run interpreted via the PR-5 replay).
            full = (capture is not None
                    and self.config.capture.compile_full_step
                    and fused.fused_kernels_enabled()
                    and (self.engine is None
                         or not self.engine.refresh_due(input_ids.shape[-1])))
            if full and capture.full_ready() and self.engine is not None \
                    and self.engine.layout_state() != capture.full_layout_state:
                # A refresh since capture moved the masks; the plan's
                # closed-over gather geometry is stale.
                capture.drop_full_plan(fallback=True)
            if full and capture.full_ready():
                capture.stage("input_ids", input_ids)
                if labels is not None:
                    capture.stage("labels", labels)
                start = time.perf_counter()
                try:
                    capture.replay_full_forward(
                        self.config.capture.executor_threads)
                    forward_s = time.perf_counter() - start
                    start = time.perf_counter()
                    capture.replay_full_backward()
                    backward_s = time.perf_counter() - start
                    loss_value = capture.full_loss_value()
                    replayed = True
                except Exception:
                    # A partial replay may have half-written gradients; zero
                    # them and fall through to the interpreted step, which
                    # recomputes everything from scratch.
                    capture.drop_full_plan(fallback=True)
                    self.optimizer.zero_grad()
                    self.model.zero_grad()
                    loss_value = None

            if loss_value is None:
                rec = None
                ids, lab = input_ids, labels
                if full and capture.wants_full_capture():
                    # Run this forward over the persistent staging buffers so
                    # the recorded thunks are bound to arrays every later
                    # replay refreshes in place.
                    ids = capture.stage("input_ids", input_ids)
                    lab = (capture.stage("labels", labels)
                           if labels is not None else None)
                    rec = capture.begin_full_capture()
                start = time.perf_counter()
                try:
                    loss, _ = self.model.loss(ids, labels=lab)
                    scaled = self.scaler.scale_loss(loss)
                except BaseException:
                    if rec is not None:
                        capture.abort_full_capture()
                    raise
                forward_s = time.perf_counter() - start

                start = time.perf_counter()
                if rec is not None:
                    capture.finish_full_capture(
                        scaled, loss,
                        self.engine.layout_state()
                        if self.engine is not None else None)
                elif capture is not None:
                    capture.run_backward(scaled)
                else:
                    scaled.backward()
                backward_s = time.perf_counter() - start
                loss_value = float(loss.data)

            start = time.perf_counter()
            comm_s = 0.0
            if self.grad_reducer is not None:
                # Data-parallel gradient exchange: every worker's shard
                # gradients are reduced to their fixed-order mean before the
                # (replicated) optimizer tail, so parameters stay bitwise
                # identical across workers.  The reducer times itself —
                # barrier waits included — and that time is reported as the
                # ``comm`` phase, not as optimizer time.
                comm_s = float(self.grad_reducer(self.optimizer.params))
            finite = self.scaler.unscale_and_check(self.optimizer.params)
            if self.config.grad_clip > 0:
                clip_grad_norm(self.optimizer.params, self.config.grad_clip)
            if finite:
                if replayed and self._optim_plan_tail is not None:
                    self._optim_plan_tail()
                else:
                    self.optimizer.step()
            self.scaler.update(found_overflow=not finite)
            self.optimizer.zero_grad()
            self.model.zero_grad()
            optimizer_s = time.perf_counter() - start - comm_s
        finally:
            if capture is not None:
                capture.end_step()

        prediction_s = 0.0
        if self.engine is not None:
            prediction_s = self.engine.stats.prediction_seconds - engine_pred_before

        self.profiler.add("forward", forward_s)
        self.profiler.add("backward", backward_s)
        self.profiler.add("optimizer", optimizer_s)
        if self.grad_reducer is not None:
            self.profiler.add("comm", comm_s)
        if self.engine is not None:
            self.profiler.add("prediction", prediction_s)
            # Derived scheduler health metrics ride along with the phase
            # timings (see PhaseProfiler.summary_dict).
            stats = self.engine.stats
            self.profiler.set_gauge("prediction_fraction", stats.prediction_fraction())
            self.profiler.set_gauge("attention_reuse_rate", stats.attention_reuse_rate())
            self.profiler.set_gauge("mlp_reuse_rate", stats.mlp_reuse_rate())
            self.profiler.set_gauge("attention_mask_drift", stats.mean_attention_drift())
            self.profiler.set_gauge("mlp_block_drift", stats.mean_mlp_drift())
            # Achieved sparsity of the executed layouts plus the calibration-
            # time predicted-vs-oracle density gap, so a drifting predicted
            # density is visible next to the phase timings.
            self.profiler.set_gauge("attention_sparsity",
                                    stats.mean_attention_sparsity())
            self.profiler.set_gauge("mlp_sparsity", stats.mean_mlp_sparsity())
            gaps = getattr(self.engine, "calibration_gap", dict)()
            for kind, gap in gaps.items():
                self.profiler.set_gauge(f"{kind}_calibration_gap", gap)
        if capture is not None:
            # Steady-state allocation counts + arena footprint next to the
            # phase timings: allocations/step must read ~0 once captured.
            for name, value in capture.gauges().items():
                self.profiler.set_gauge(name, value)

        timing = PhaseTimings(forward=forward_s, backward=backward_s,
                              optimizer=optimizer_s, prediction=prediction_s,
                              comm=comm_s)
        return loss_value, timing

    # -- full loop ------------------------------------------------------------------
    def train(self, batches: Iterable[np.ndarray],
              max_steps: Optional[int] = None) -> TrainingReport:
        """Fine-tune over an iterable of token-id batches."""
        max_steps = max_steps if max_steps is not None else self.config.max_steps
        losses: List[float] = []
        timings: List[PhaseTimings] = []
        tokens = 0
        for step_index, batch in enumerate(batches):
            if max_steps is not None and step_index >= max_steps:
                break
            batch = np.asarray(batch)
            loss_value, timing = self.step(batch)
            losses.append(loss_value)
            timings.append(timing)
            tokens += int(batch.size)
            if self.config.log_every and (step_index + 1) % self.config.log_every == 0:
                print(f"step {step_index + 1}: loss={loss_value:.4f} "
                      f"step_time={timing.total * 1000:.1f}ms")
        return TrainingReport(steps=len(losses), losses=losses,
                              step_timings=timings, tokens_processed=tokens)
