"""Steady-state step capture: buffer arena + planned tape replay.

PEFT fine-tuning is a steady-state workload — thousands of steps with
bit-identical shapes — yet every step of the seed runtime rebuilt the Python
autograd graph node by node, re-sorted it topologically, and allocated fresh
output/temporary ndarrays for every op.  :class:`StepCapture` captures that
steady state, CUDA-graph-style, for the NumPy tape:

1. **warm-up** — the first step(s) run exactly as before (one-time caches:
   geometry, causal masks, packed probe weights).
2. **capture** — the next step runs with the :class:`BufferArena` installed
   (every allocation seam takes recycled buffers; on this step they are all
   fresh) and the tensor tape recording creation order.  The backward pass
   runs its ordinary DFS once and records the processed schedule as a
   :class:`~repro.tensor.tensor.TapePlan` — tape positions for interior
   nodes, direct references for persistent leaves, plus the full parent
   wiring for validation.
3. **replay** — subsequent steps reuse the plan: the topological re-sort is
   skipped (the recorded schedule is validated against the new tape with
   cheap integer/identity checks and then executed), and every arena take
   hits the pool, so the steady-state allocation count is zero.  The
   replayed order *is* the recorded DFS order, so captured and uncaptured
   execution are bitwise identical (locked by the parity suite).
4. **invalidation** — a signature change (input shape/dtype, label shape,
   fused-kernel toggle, loss scale) or a plan validation failure falls back
   to the uncaptured path for that backward and triggers exactly one
   re-capture, mirroring how a sequence-length change forces a predictor
   refresh in the PR-3 scheduler.

On top of the backward-only tape replay, the *full-step compiler* (PR 6)
records the forward's kernel calls as well: during a captured step the
trainer installs a :class:`~repro.tensor.plan.ForwardRecorder`, every
instrumented op seam contributes a replay thunk over buffers bound exactly
once, and the backward runs with ``retain_graph=True`` so its validated
schedule survives the step.  A steady-state step then becomes **stage inputs
→ run the flat ForwardPlan → execute the retained backward schedule →
optimizer tail**, with the Python autograd graph built exactly once, at
capture, and never touched during replay.  Coverage is checked (every graph
node built must be recorded or noted as a view); any gap falls back to the
PR-5 backward-only capture.  Full-plan buffers are plain allocations — never
arena takes — so generation recycling cannot reclaim live plan state, and
the backward's arena discipline (zero steady-state allocations) is
unchanged.

Contract: capture mode assumes the standard training-step shape — gradients
are consumed and zeroed within the step, and no Tensor from step ``N`` is
read at step ``N + 1`` (the arena recycles step ``N``'s buffers wholesale).
User-level ``retain_graph=True`` double-backwards are not supported while
capturing (the full-step compiler's internal graph retention is not a
double backward: each retained schedule is executed once per step).

The shape/dtype-keyed :class:`BufferArena` itself lives in
:mod:`repro.tensor.arena` (the lowest layer, importable by the tensor core
without cycles) and is re-exported here, which is the public entry point.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

import numpy as np

from repro.tensor import arena as _tensor_arena
from repro.tensor import plan as _tensor_plan
from repro.tensor import tensor as _tensor_module
from repro.tensor.arena import BufferArena
from repro.tensor.plan import ForwardPlan, ForwardRecorder
from repro.tensor.tensor import PlanMismatchError, TapePlan, Tensor

__all__ = [
    "BufferArena",
    "ForwardPlan",
    "ForwardRecorder",
    "PlanMismatchError",
    "StepCapture",
]


class StepCapture:
    """Per-trainer capture state machine (warm-up → capture → replay).

    Parameters
    ----------
    warmup_steps:
        Uncaptured steps before the capture step (one is enough to populate
        the one-time caches; the capture step itself must see steady-state
        control flow).
    max_failures:
        After this many failed capture attempts or replay fallbacks *without
        an intervening healthy replay streak* the capture is switched off
        entirely (``state == "off"``) — the workload is not steady-state and
        paying the bookkeeping is pointless.  A streak of
        ``FAILURE_RESET_REPLAYS`` consecutive successful replays clears the
        counter, so isolated, individually-recovered fallbacks thousands of
        steps apart do not eventually disable capture.  Switching off also
        swaps in a fresh empty arena so the retired pool is reclaimed.
    """

    WARMUP = "warmup"
    CAPTURE = "capture"
    REPLAY = "replay"
    OFF = "off"
    # Consecutive successful replays that prove the workload steady-state
    # again and forgive earlier capture failures / fallbacks.
    FAILURE_RESET_REPLAYS = 8

    def __init__(self, warmup_steps: int = 1, max_failures: int = 3):
        self.arena = BufferArena()
        self.state = self.WARMUP if warmup_steps > 0 else self.CAPTURE
        self.signature: Optional[Hashable] = None
        self.plan: Optional[TapePlan] = None
        self.tape: Optional[List[Tensor]] = None
        self.warmup_steps = int(warmup_steps)
        self.max_failures = int(max_failures)
        # Counters (surfaced as profiler gauges by the trainer).
        self.steps = 0
        self.captures = 0
        self.recaptures = 0
        self.replay_steps = 0
        self.fallbacks = 0
        self.last_step_allocations = 0
        self._warmup_left = self.warmup_steps
        self._failures = 0
        self._replay_streak = 0
        self._replays_since_capture = 0
        self._alloc_before = 0
        self._prev_arena: Optional[BufferArena] = None
        self._step_open = False
        # Full-step compiler state (see module docstring).  ``forward_plan``
        # replays the forward's kernel calls; ``full_schedule`` is the
        # retained backward schedule over the capture step's graph;
        # ``full_root`` / ``full_loss`` are the retained scaled/unscaled loss
        # tensors (their ``.data`` are plan buffers refreshed by every
        # forward replay); ``full_seed`` is the persistent backward seed.
        self.forward_plan: Optional[ForwardPlan] = None
        self.full_schedule = None
        self.full_root: Optional[Tensor] = None
        self.full_loss: Optional[Tensor] = None
        self.full_seed = None
        self.full_layout_state = None
        self.full_captures = 0
        self.full_replays = 0
        self.full_fallbacks = 0
        self.full_fail_reason = ""
        self._full_failures = 0
        self._recorder: Optional[ForwardRecorder] = None
        self._staged: Dict[str, np.ndarray] = {}

    # -- step lifecycle ------------------------------------------------------
    def begin_step(self, signature: Hashable) -> None:
        """Enter a step; ``signature`` pins everything that shapes the graph.

        The trainer passes input/label shapes and the fused-kernel toggle; a
        change invalidates the plan and schedules exactly one re-capture.
        """
        self.steps += 1
        if self.state == self.OFF:
            return
        trim_stale = False
        if signature != self.signature:
            # Shapes/dtypes moved: every full-plan buffer binding is stale.
            self.drop_full_plan()
            if self.signature is not None and self.state != self.WARMUP:
                # Shape change mid-run: drop the plan and (below, once the
                # previous step's outstanding buffers have been recycled by
                # next_generation) the stale-shape buffer pools — a
                # bucketed-length loader would otherwise accumulate one full
                # working set per length seen.  Then re-capture once.
                if self.captures:
                    # Only a signature change after a successful capture is a
                    # *re*-capture (the gauge advertises exactly-one-per-
                    # shape-change; a flip before the first capture is not
                    # one).
                    if (self.plan is not None
                            and self._replays_since_capture == 0):
                        # The previous plan was never replayed: the signature
                        # is flipping at least as fast as we can capture
                        # (shape-alternating batches).  Sterile captures
                        # count toward the kill-switch — without this, such
                        # a workload would pay capture bookkeeping plus a
                        # full working-set reallocation on every single
                        # step, forever.
                        self._failures += 1
                    self.recaptures += 1
                self.state = (self.OFF if self._failures >= self.max_failures
                              else self.CAPTURE)
                trim_stale = True
            self.signature = signature
            self.plan = None
            if self.state == self.OFF:
                # Retired at the transition: the previous generation's
                # buffers are dead, so drop the whole pool right away.
                self.arena = BufferArena()
                self.tape = None
                return
        if self.state == self.WARMUP:
            self.tape = None
            self._step_open = True
            return
        self.arena.next_generation()
        if trim_stale:
            self.arena.trim()
        self._alloc_before = self.arena.misses
        self._prev_arena = _tensor_arena.set_active(self.arena)
        self.tape = []
        _tensor_module.set_tape(self.tape)
        self._step_open = True

    def run_backward(self, loss: Tensor, grad=None) -> None:
        """Backward through the capture machinery (replay / record / plain)."""
        if self.state == self.REPLAY and self.plan is not None:
            try:
                loss.backward(grad, tape=self.tape, plan=self.plan)
                self.replay_steps += 1
                self._replay_streak += 1
                self._replays_since_capture += 1
                if self._replay_streak >= self.FAILURE_RESET_REPLAYS:
                    self._failures = 0
                return
            except PlanMismatchError:
                # Validation failed *before* any gradient was touched: fall
                # through to an ordinary recording pass on this very step.
                # Repeated fallbacks without a healthy replay streak in
                # between mean the graph is not steady-state, so they count
                # toward the kill-switch like failed captures.  The full
                # plan was compiled against the same graph — drop it too.
                self.fallbacks += 1
                self._failures += 1
                self._replay_streak = 0
                self.plan = None
                self.drop_full_plan(fallback=True)
                self.state = (self.OFF if self._failures >= self.max_failures
                              else self.CAPTURE)
        if self.state == self.CAPTURE and self.tape is not None:
            plan = loss.backward(grad, tape=self.tape, record=True)
            if plan is None:
                self._failures += 1
                if self._failures >= self.max_failures:
                    self.state = self.OFF
            else:
                self.plan = plan
                self.captures += 1
                self.state = self.REPLAY
                self._replays_since_capture = 0
            return
        loss.backward(grad)

    def end_step(self) -> None:
        """Leave the step: detach the arena/tape, roll the state machine."""
        if not self._step_open:
            return
        self._step_open = False
        if self.state == self.WARMUP:
            self._warmup_left -= 1
            if self._warmup_left <= 0:
                self.state = self.CAPTURE
            return
        if self.tape is not None or self.state == self.OFF:
            _tensor_module.set_tape(None)
            _tensor_arena.set_active(self._prev_arena)
            self._prev_arena = None
            self.tape = None
            self.last_step_allocations = self.arena.misses - self._alloc_before
            if self.state == self.OFF and self.arena.takes:
                # Retired for good: swap in an empty arena so the whole pool
                # (free lists *and* this step's outstanding buffers) becomes
                # unreferenced once the step's tensors die, instead of being
                # held for the trainer's lifetime.
                self.arena = BufferArena()
                self.drop_full_plan()

    # -- full-step compiler --------------------------------------------------
    def stage(self, name: str, value) -> np.ndarray:
        """Copy ``value`` into the persistent staging buffer for ``name``.

        The full plan's thunks are bound to these buffers at capture; each
        replay refreshes them in place so the compiled step sees the new
        batch through the very same arrays.  A shape/dtype change replaces
        the buffer (and the step signature invalidates the plan anyway).
        """
        value = np.asarray(value)
        buf = self._staged.get(name)
        if buf is None or buf.shape != value.shape or buf.dtype != value.dtype:
            buf = np.array(value)
            self._staged[name] = buf
        else:
            np.copyto(buf, value)
        return buf

    def full_ready(self) -> bool:
        """Whether a compiled full-step plan is installed and replayable."""
        return self.forward_plan is not None and self.state == self.REPLAY

    def wants_full_capture(self) -> bool:
        """Whether this step should record a full plan (trainer consults)."""
        return (self.forward_plan is None
                and self._step_open
                and self.state in (self.CAPTURE, self.REPLAY)
                and self._full_failures < self.max_failures)

    def begin_full_capture(self) -> ForwardRecorder:
        """Install a :class:`ForwardRecorder` around this step's forward."""
        rec = ForwardRecorder()
        self._recorder = rec
        _tensor_plan.set_recorder(rec)
        return rec

    def abort_full_capture(self) -> None:
        """Uninstall the recorder after a failed forward (exception path)."""
        if self._recorder is not None:
            self._recorder = None
            _tensor_plan.set_recorder(None)

    def finish_full_capture(self, root: Tensor, loss: Tensor,
                            layout_state=None) -> bool:
        """Run this step's backward and compile the full plan if covered.

        ``root`` is the backward root (the scaled loss); ``loss`` is the
        unscaled loss tensor whose plan buffer replays read the step's loss
        value from.  Returns True when the full plan is installed; on a
        coverage gap the step degrades to the ordinary PR-5 capture/replay
        backward and False is returned.
        """
        rec = self._recorder
        self._recorder = None
        _tensor_plan.set_recorder(None)
        if rec is None:
            self.run_backward(root)
            return False
        if not rec.ok():
            self._full_failures += 1
            self.full_fail_reason = rec.fail_reason
            self.run_backward(root)
            return False
        schedule = self._backward_retained(root)
        if schedule is None:
            self._full_failures += 1
            self.full_fail_reason = "backward schedule not capturable"
            return False
        self.forward_plan = ForwardPlan(rec.entries)
        self.full_schedule = schedule
        self.full_root = root
        self.full_loss = loss
        self.full_seed = np.ones_like(root.data)
        self.full_layout_state = layout_state
        self.full_captures += 1
        self._full_failures = 0
        return True

    def _backward_retained(self, root: Tensor):
        """This step's backward, keeping the graph alive for later replays.

        Mirrors :meth:`run_backward`'s accounting exactly (replay / record /
        fallback), but executes with ``retain_graph=True`` and returns the
        validated schedule — the node sequence every compiled step will
        re-execute.  Returns None when no plan could be used or recorded.
        """
        if self.state == self.REPLAY and self.plan is not None:
            try:
                schedule = root._validated_schedule(self.tape, self.plan)
            except PlanMismatchError:
                self.fallbacks += 1
                self._failures += 1
                self._replay_streak = 0
                self.plan = None
                self.state = (self.OFF if self._failures >= self.max_failures
                              else self.CAPTURE)
            else:
                root._execute_backward(schedule, np.ones_like(root.data),
                                       True, True)
                self.replay_steps += 1
                self._replay_streak += 1
                self._replays_since_capture += 1
                if self._replay_streak >= self.FAILURE_RESET_REPLAYS:
                    self._failures = 0
                return schedule
        if self.state == self.CAPTURE and self.tape is not None:
            plan = root.backward(tape=self.tape, record=True,
                                 retain_graph=True)
            if plan is None:
                self._failures += 1
                if self._failures >= self.max_failures:
                    self.state = self.OFF
                return None
            self.plan = plan
            self.captures += 1
            self.state = self.REPLAY
            self._replays_since_capture = 0
            return root._validated_schedule(self.tape, plan)
        root.backward(retain_graph=True)
        return None

    def replay_full_forward(self, threads: int = 1) -> None:
        """Run the compiled forward plan (caller staged the inputs first)."""
        self.forward_plan.run(threads)

    def replay_full_backward(self) -> None:
        """Execute the retained backward schedule over the refreshed buffers."""
        self.full_root._execute_backward(self.full_schedule, self.full_seed,
                                         False, True)
        self.full_replays += 1

    def full_loss_value(self) -> float:
        """The (unscaled) loss of the last full replay."""
        return float(self.full_loss.data)

    def drop_full_plan(self, fallback: bool = False) -> None:
        """Invalidate the compiled full-step plan (idempotent)."""
        if getattr(self, "forward_plan", None) is None:
            return
        try:
            self.forward_plan.close()
        except Exception:
            pass
        self.forward_plan = None
        self.full_schedule = None
        self.full_root = None
        self.full_loss = None
        self.full_seed = None
        self.full_layout_state = None
        if fallback:
            self.full_fallbacks = getattr(self, "full_fallbacks", 0) + 1

    def retire(self) -> None:
        """Drop every plan and release the arena pool (terminal, idempotent).

        The serving layer keeps one capture per signature bucket in a bounded
        plan cache; evicting a bucket must reclaim its whole working set —
        the compiled plan's buffers, the retained backward schedule, and the
        arena pool they came from — not just forget the plan object.

        Recovery paths call this unconditionally from any failure point, so
        it must be safe to call twice and safe on an instance whose
        construction never completed (every attribute access is defensive).
        """
        self.drop_full_plan()
        self.plan = None
        self.tape = None
        self.signature = None
        self.state = self.OFF
        self.arena = BufferArena()

    # -- reporting -----------------------------------------------------------
    def gauges(self) -> Dict[str, float]:
        """Point-in-time metrics for :meth:`PhaseProfiler.set_gauge`."""
        return {
            "arena_allocations_step": float(self.last_step_allocations),
            "arena_bytes": float(self.arena.bytes_held),
            "arena_hit_rate": self.arena.hit_rate(),
            "arena_evictions": float(self.arena.evictions),
            "capture_replay_steps": float(self.replay_steps),
            "capture_recaptures": float(self.recaptures),
            "capture_fallbacks": float(self.fallbacks),
            "capture_full_captures": float(self.full_captures),
            "capture_full_replays": float(self.full_replays),
            "capture_full_fallbacks": float(self.full_fallbacks),
        }

    def summary(self) -> str:
        return (f"StepCapture(state={self.state}, steps={self.steps}, "
                f"captures={self.captures}, replays={self.replay_steps}, "
                f"recaptures={self.recaptures}, fallbacks={self.fallbacks}, "
                f"full_captures={self.full_captures}, "
                f"full_replays={self.full_replays}, "
                f"arena={self.arena.bytes_held / 1024 ** 2:.1f} MiB, "
                f"allocs/step={self.last_step_allocations})")
