"""Lightweight phase profiler used by the trainer and the benchmarks."""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from typing import Dict, Iterator, List


class PhaseProfiler:
    """Accumulates wall-clock time per named phase.

    Usage::

        profiler = PhaseProfiler()
        with profiler.phase("forward"):
            ...
        profiler.totals()["forward"]   # seconds

    For per-call hot loops, the explicit :meth:`start` / :meth:`stop` pair
    avoids the generator-based context manager's allocation per entry::

        profiler.start("step")
        ...
        profiler.stop("step")
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = defaultdict(float)
        self._counts: Dict[str, int] = defaultdict(int)
        self._open: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._totals[name] += elapsed
            self._counts[name] += 1

    def start(self, name: str) -> None:
        """Open a phase without a context manager (hot-loop friendly)."""
        self._open[name] = time.perf_counter()

    def stop(self, name: str) -> float:
        """Close a phase opened with :meth:`start`; returns elapsed seconds."""
        begin = self._open.pop(name, None)
        if begin is None:
            raise RuntimeError(f"stop({name!r}) without a matching start()")
        elapsed = time.perf_counter() - begin
        self._totals[name] += elapsed
        self._counts[name] += 1
        return elapsed

    def set_gauge(self, name: str, value: float) -> None:
        """Record a point-in-time metric (latest value wins, not accumulated).

        Used for derived ratios the phases cannot express — e.g. the sparse
        engine's prediction fraction or layout-reuse rate — so they travel
        with the phase timings in :meth:`summary_dict`.
        """
        self._gauges[name] = float(value)

    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    def summary_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-friendly {phase: {total_s, calls, mean_s}} (benchmark output).

        When gauges were recorded, an extra ``"gauges"`` entry maps each
        gauge name to its latest value.
        """
        out: Dict[str, Dict[str, float]] = {
            name: {
                "total_s": seconds,
                "calls": self._counts[name],
                "mean_s": seconds / self._counts[name] if self._counts[name] else 0.0,
            }
            for name, seconds in self._totals.items()
        }
        if self._gauges:
            out["gauges"] = dict(self._gauges)
        return out

    def add(self, name: str, seconds: float) -> None:
        """Record externally-measured time (e.g. the engine's predictor overhead)."""
        self._totals[name] += seconds
        self._counts[name] += 1

    def totals(self) -> Dict[str, float]:
        return dict(self._totals)

    def counts(self) -> Dict[str, int]:
        return dict(self._counts)

    def mean(self, name: str) -> float:
        count = self._counts.get(name, 0)
        return self._totals.get(name, 0.0) / count if count else 0.0

    def reset(self) -> None:
        self._totals.clear()
        self._counts.clear()
        self._gauges.clear()

    def report(self) -> str:
        """Human-readable table of phase totals and shares."""
        total = sum(self._totals.values()) or 1.0
        lines = [f"{'phase':<18}{'total (ms)':>12}{'share':>9}{'calls':>8}"]
        for name, seconds in sorted(self._totals.items(), key=lambda kv: -kv[1]):
            lines.append(f"{name:<18}{seconds * 1000:>12.1f}{seconds / total:>8.1%}"
                         f"{self._counts[name]:>8}")
        return "\n".join(lines)
