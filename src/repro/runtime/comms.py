"""Shared-memory communication substrate for data-parallel training.

This module owns everything three-or-more processes have to agree on:

* **Segment lifecycle** — the parent process creates two named
  ``multiprocessing.shared_memory`` segments (a *boot* segment whose size is
  known up front, and a *data* segment sized from the gradient population the
  workers report during the boot handshake), and is the only process that
  ever ``unlink()``\\ s them.  Workers attach by name and only ``close()``;
  on this interpreter (CPython 3.11) attaching does not register with the
  resource tracker, so creator-unlinks is the whole protocol and a clean run
  leaves nothing in ``/dev/shm``.
* **Chunk schedule** — :func:`chunk_schedule` partitions the flat gradient
  buffer into fixed-size chunks striped round-robin across ranks.  Each rank
  reduces *its* chunks by summing the per-rank slots in rank order
  ``0..world-1`` — the summation order is a function of the chunk alone,
  never of which rank happens to execute it, so the reduced values are
  bitwise-reproducible for a given worker count.
* **Barrier/epoch protocol** — a :class:`BarrierSet` carries the rendezvous
  points of one step: ``step_begin``/``step_end`` include the parent
  (commands and results cross there), ``grads``/``reduced`` are
  workers-only (the two halves of the all-reduce), and ``masks`` orders the
  rank-0 layout broadcast at sparsity-refresh steps.  Every wait carries a
  timeout; a worker that dies mid-step breaks its peers' barrier within that
  timeout, survivors abort the remaining barriers, and the parent turns the
  broken rendezvous into a :class:`DistributedError` instead of a hang.

The gradient exchange itself is :class:`GradientAllReducer`: one contiguous
gather of the optimizer's flat gradient population into the rank's slot, a
fixed-order chunked reduce-scatter into the shared ``reduced`` buffer, and a
scatter back into ``param.grad`` — a single message per step regardless of
parameter count, which is exactly what the flat optimizer layout exists to
enable.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np


class DistributedError(RuntimeError):
    """A data-parallel run failed (worker death, divergence, protocol error)."""


class BarrierBroken(DistributedError):
    """A rendezvous broke or timed out — a peer died, hung, or aborted.

    Kept distinct from :class:`DistributedError` because it is the one
    failure the elastic recovery path treats as *survivable*: the worker's
    own state is intact, only the rendezvous is gone.
    """


class CommIntegrityError(DistributedError):
    """A per-chunk CRC32 checksum mismatched on the all-reduce path.

    Raised *before* the corrupt chunk enters the reduction, so corruption is
    detected, never propagated into the optimizer state.
    """


# -- protocol constants ---------------------------------------------------------

CMD_IDLE, CMD_STEP, CMD_PARAMS, CMD_STOP = 0, 1, 2, 3

ST_BOOTING, ST_READY, ST_STEPPED, ST_ERROR, ST_RECOVERING = 0, 1, 2, 3, 4

# ctl slot indices (int64 array in the boot segment)
CTL_COMMAND = 0
CTL_STEP_ID = 1
CTL_NDIM = 2
CTL_SHAPE = 3          # 3..6: up to 4 batch dimensions
CTL_DTYPE = 7
CTL_GRAD_ELEMS = 8     # written by the parent after the boot handshake
CTL_BLOB_CAP = 9
CTL_PARAM_BLOB_LEN = 10
CTL_MASK_BLOB_LEN = 11
# Elastic-recovery slots (parent-driven; see runtime/distributed.py).
CTL_RECOVERY_SEQ = 12  # bumped by the parent when a respawn needs a donor slab
CTL_DONOR = 13         # surviving rank asked to export its state
CTL_DONATION_READY = 14  # donor echoes CTL_RECOVERY_SEQ once the blob is up
CTL_RESUME = 15        # bumped by the parent to release quiesced workers
CTL_SLOTS = 16

_DTYPE_CODES = {"int32": 1, "int64": 2, "float32": 3, "float64": 4}
_CODE_DTYPES = {code: np.dtype(name) for name, code in _DTYPE_CODES.items()}

# per-rank float64 stats slots written after every step
STAT_COMM = 0
STAT_FORWARD = 1
STAT_BACKWARD = 2
STAT_OPTIMIZER = 3
STAT_RECAPTURES = 4
STAT_REPLAY_STEPS = 5
STAT_FULL_REPLAYS = 6
STAT_MASK_SYNCS = 7
STAT_CHECKSUM_FAILURES = 8
STAT_CHECKSUM_S = 9
STATS_SLOTS = 10

STAT_NAMES = ("comm_s", "forward_s", "backward_s", "optimizer_s",
              "recaptures", "replay_steps", "full_replays", "mask_syncs",
              "checksum_failures", "checksum_s")

DIGEST_BYTES = 32
ERROR_BYTES = 4096

_ALIGN = 64

BrokenBarrier = threading.BrokenBarrierError


def _layout(regions: Sequence[Tuple[str, int]]) -> Tuple[Dict[str, int], int]:
    """Cache-line-aligned offsets for named byte regions; returns total size."""
    offsets: Dict[str, int] = {}
    cursor = 0
    for name, nbytes in regions:
        cursor = (cursor + _ALIGN - 1) // _ALIGN * _ALIGN
        offsets[name] = cursor
        cursor += int(nbytes)
    return offsets, cursor


def boot_regions(world: int, batch_capacity: int) -> Tuple[Dict[str, int], int]:
    return _layout([
        ("ctl", CTL_SLOTS * 8),
        ("status", world * 8),
        ("meta", world * 2 * 8),          # (grad_elems, dtype_code) per rank
        ("err_len", world * 8),
        ("loss", world * 8),
        ("stats", world * STATS_SLOTS * 8),
        ("digest", world * DIGEST_BYTES),
        ("errors", world * ERROR_BYTES),
        ("batch", batch_capacity),
    ])


def data_regions(world: int, grad_elems: int, itemsize: int,
                 blob_capacity: int,
                 n_chunks: int = 0) -> Tuple[Dict[str, int], int]:
    return _layout([
        ("grad", world * grad_elems * itemsize),
        ("reduced", grad_elems * itemsize),
        ("crc", world * max(1, n_chunks) * 4),
        ("blob", blob_capacity),
    ])


class SharedSegment:
    """Idempotent lifecycle wrapper over one named shared-memory segment.

    ``multiprocessing.shared_memory.SharedMemory`` raises on double
    ``close()``/``unlink()`` and leaves no safe way to tear down a handle
    whose construction failed half-way.  Recovery paths need the opposite
    contract — cleanup must be callable unconditionally, any number of
    times, from any failure point — so this wrapper guarantees:

    * ``close()`` and ``unlink()`` are no-ops after the first call;
    * both are safe on an instance whose constructor raised (or that was
      never ``__init__``-ed at all);
    * ``unlink()`` only ever removes the name once, and swallows the
      already-gone case.
    """

    def __init__(self, name: str, create: bool = False, size: int = 0):
        self.name = name
        self._shm: Optional[shared_memory.SharedMemory] = None
        self._closed = False
        self._unlinked = False
        self._shm = shared_memory.SharedMemory(
            name=name, create=create, size=size)

    @classmethod
    def create(cls, name: str, size: int) -> "SharedSegment":
        return cls(name, create=True, size=size)

    @classmethod
    def attach(cls, name: str) -> "SharedSegment":
        return cls(name)

    @property
    def buf(self):
        if getattr(self, "_shm", None) is None:
            raise DistributedError(
                f"shared segment {getattr(self, 'name', '?')!r} is closed")
        return self._shm.buf

    @property
    def closed(self) -> bool:
        return bool(getattr(self, "_closed", True))

    def close(self) -> None:
        if getattr(self, "_closed", False):
            return
        self._closed = True
        shm = getattr(self, "_shm", None)
        self._shm = None
        if shm is not None:
            try:
                shm.close()
            except Exception:
                pass

    def unlink(self) -> None:
        if getattr(self, "_unlinked", False):
            return
        self._unlinked = True
        name = getattr(self, "name", None)
        if name is None:
            return
        shm = getattr(self, "_shm", None)
        try:
            if shm is not None:
                shm.unlink()
            else:
                # Already closed: unlink through a fresh handle by name.
                handle = shared_memory.SharedMemory(name=name)
                handle.close()
                handle.unlink()
        except Exception:
            pass


def chunk_schedule(total_elems: int, world: int,
                   chunk_elems: int) -> List[Tuple[int, int, int]]:
    """``(start, end, owner_rank)`` chunks striped round-robin across ranks.

    The owner only decides *who computes* a chunk; the reduction order inside
    each chunk is always rank ``0..world-1``, so ownership never affects the
    reduced bits.
    """
    if total_elems <= 0:
        return []
    chunk_elems = max(1, int(chunk_elems))
    starts = list(range(0, total_elems, chunk_elems))
    return [(start, min(start + chunk_elems, total_elems), index % world)
            for index, start in enumerate(starts)]


class BarrierSet:
    """The rendezvous points of the step protocol (see module docstring)."""

    _WORKER_NAMES = ("grads", "reduced", "masks")
    _ALL_NAMES = ("boot", "setup", "step_begin", "step_end") + _WORKER_NAMES

    def __init__(self, ctx, world: int):
        self.boot = ctx.Barrier(world + 1)
        self.setup = ctx.Barrier(world + 1)
        self.step_begin = ctx.Barrier(world + 1)
        self.step_end = ctx.Barrier(world + 1)
        self.grads = ctx.Barrier(world)
        self.reduced = ctx.Barrier(world)
        self.masks = ctx.Barrier(world)

    def abort_all(self) -> None:
        """Break every barrier so no process can block on this session again."""
        for name in self._ALL_NAMES:
            try:
                getattr(self, name).abort()
            except Exception:
                pass

    def reset_all(self) -> None:
        """Return every barrier to the empty, unbroken state.

        The elastic recovery path aborts the set to wake blocked peers, waits
        for every survivor to quiesce *outside* the barriers, then resets so
        the next step generation can rendezvous on the same objects (new
        worker processes inherit them through fork/pickle at respawn).
        """
        for name in self._ALL_NAMES:
            try:
                getattr(self, name).reset()
            except Exception:
                pass


@dataclass
class CommSpec:
    """Everything a worker needs to find and speak the session's segments."""

    session: str                 # shm name prefix; segments are <session>-boot/-data
    world: int
    batch_capacity: int
    step_timeout_s: float
    chunk_elems: int
    mask_broadcast: bool
    elastic: bool = True         # quiesce + recover on peer failure (vs die)
    verify_checksums: bool = True  # per-chunk CRC32 on the all-reduce path

    @property
    def boot_name(self) -> str:
        return f"{self.session}-boot"

    @property
    def data_name(self) -> str:
        return f"{self.session}-data"


class BootViews:
    """Typed NumPy views over the boot segment's regions."""

    def __init__(self, shm, world: int, batch_capacity: int):
        offsets, _ = boot_regions(world, batch_capacity)
        buf = shm.buf
        self._batch_offset = offsets["batch"]
        self._batch_capacity = batch_capacity
        self._shm = shm
        self.ctl = np.ndarray((CTL_SLOTS,), np.int64, buf, offsets["ctl"])
        self.status = np.ndarray((world,), np.int64, buf, offsets["status"])
        self.meta = np.ndarray((world, 2), np.int64, buf, offsets["meta"])
        self.err_len = np.ndarray((world,), np.int64, buf, offsets["err_len"])
        self.loss = np.ndarray((world,), np.float64, buf, offsets["loss"])
        self.stats = np.ndarray((world, STATS_SLOTS), np.float64, buf,
                                offsets["stats"])
        self.digest = np.ndarray((world, DIGEST_BYTES), np.uint8, buf,
                                 offsets["digest"])
        self.errors = np.ndarray((world, ERROR_BYTES), np.uint8, buf,
                                 offsets["errors"])

    # -- batch publication -----------------------------------------------------
    def publish_batch(self, step_id: int, batch: np.ndarray) -> None:
        batch = np.ascontiguousarray(batch)
        if batch.ndim > 4:
            raise DistributedError(f"batches of ndim {batch.ndim} > 4 are not "
                                   f"supported by the comms header")
        code = _DTYPE_CODES.get(batch.dtype.name)
        if code is None:
            raise DistributedError(f"unsupported batch dtype {batch.dtype}")
        if batch.nbytes > self._batch_capacity:
            raise DistributedError(
                f"batch of {batch.nbytes} bytes exceeds the shared batch "
                f"capacity of {self._batch_capacity} bytes (sized from the "
                f"first published batch; pass batch_capacity= to raise it)")
        ctl = self.ctl
        ctl[CTL_STEP_ID] = step_id
        ctl[CTL_NDIM] = batch.ndim
        ctl[CTL_SHAPE:CTL_SHAPE + 4] = 0
        ctl[CTL_SHAPE:CTL_SHAPE + batch.ndim] = batch.shape
        ctl[CTL_DTYPE] = code
        view = np.ndarray(batch.shape, batch.dtype, self._shm.buf,
                          self._batch_offset)
        np.copyto(view, batch)

    def read_batch(self) -> np.ndarray:
        """A *copy* of the published batch (the region is reused next step)."""
        ctl = self.ctl
        ndim = int(ctl[CTL_NDIM])
        shape = tuple(int(d) for d in ctl[CTL_SHAPE:CTL_SHAPE + ndim])
        dtype = _CODE_DTYPES[int(ctl[CTL_DTYPE])]
        view = np.ndarray(shape, dtype, self._shm.buf, self._batch_offset)
        return view.copy()

    # -- error slots -----------------------------------------------------------
    def write_error(self, rank: int, message: str) -> None:
        data = message.encode("utf-8", errors="replace")[:ERROR_BYTES]
        self.errors[rank, :len(data)] = np.frombuffer(data, np.uint8)
        self.err_len[rank] = len(data)
        self.status[rank] = ST_ERROR

    def read_error(self, rank: int) -> str:
        length = int(self.err_len[rank])
        if length <= 0:
            return ""
        return bytes(self.errors[rank, :length]).decode("utf-8",
                                                        errors="replace")

    def release(self) -> None:
        """Drop every exported view so the segment can be closed."""
        self.__dict__ = {"_shm": None}


class DataViews:
    """Typed views over the data segment: grad slots, reduced buffer, blob."""

    def __init__(self, shm, world: int,
                 grad_elems: int, dtype: np.dtype, blob_capacity: int,
                 n_chunks: int = 0):
        offsets, _ = data_regions(world, grad_elems, dtype.itemsize,
                                  blob_capacity, n_chunks)
        self._shm = shm
        self._blob_offset = offsets["blob"]
        self.blob_capacity = blob_capacity
        self.grad = np.ndarray((world, grad_elems), dtype, shm.buf,
                               offsets["grad"])
        self.reduced = np.ndarray((grad_elems,), dtype, shm.buf,
                                  offsets["reduced"])
        self.crc = np.ndarray((world, max(1, n_chunks)), np.uint32, shm.buf,
                              offsets["crc"])

    def write_blob(self, payload: bytes) -> int:
        if len(payload) > self.blob_capacity:
            raise DistributedError(
                f"blob of {len(payload)} bytes exceeds the shared blob "
                f"capacity of {self.blob_capacity} bytes")
        view = np.ndarray((len(payload),), np.uint8, self._shm.buf,
                          self._blob_offset)
        view[:] = np.frombuffer(payload, np.uint8)
        return len(payload)

    def read_blob(self, length: int) -> bytes:
        view = np.ndarray((int(length),), np.uint8, self._shm.buf,
                          self._blob_offset)
        return bytes(view)

    def release(self) -> None:
        self.__dict__ = {"_shm": None}


def wait_barrier(barrier, timeout: Optional[float], what: str) -> None:
    """Barrier wait that converts breakage/timeout into :class:`BarrierBroken`."""
    try:
        barrier.wait(timeout=timeout)
    except BrokenBarrier as exc:
        raise BarrierBroken(
            f"barrier {what!r} broken or timed out after {timeout}s — a peer "
            f"likely died or errored mid-step") from exc


class GradientAllReducer:
    """Flat-buffer chunked all-reduce over a shared-memory segment.

    Installed on a worker's :class:`~repro.runtime.trainer.FineTuner` as its
    ``grad_reducer``; called once per step between the backward pass and the
    optimizer update.  The three phases:

    1. *gather* — :meth:`repro.optim.Adam.gather_flat_grad` copies every
       ``param.grad`` into this rank's contiguous slot (one buffer, not one
       message per parameter);
    2. *reduce* — after the ``grads`` barrier, each rank sums its scheduled
       chunks across all slots in rank order and divides by the worker count
       (the mean matches the single-process full-batch gradient up to float
       rounding; for ``world == 1`` the copy is exact, keeping the one-worker
       trainer bitwise-identical to the single-process trainer);
    3. *scatter* — after the ``reduced`` barrier,
       :meth:`~repro.optim.Adam.scatter_flat_grad` copies the reduced buffer
       back into every ``param.grad`` in place.

    A ``pre_reduce`` callback (set by the worker harness on rank 0 at
    sparsity-refresh steps) runs first, inside the timed window, so the mask
    broadcast is accounted as communication time.

    With ``verify_checksums`` on (the default) every rank publishes a CRC32
    per chunk of its own gradient slot before the ``grads`` barrier, and a
    chunk owner re-verifies every rank's checksum *before* summing that
    rank's bytes into the reduction.  A mismatch — shared memory corrupted
    between the writer's hash and the reader's use — raises
    :class:`CommIntegrityError` on the detecting rank instead of silently
    feeding garbage into every rank's optimizer; under the elastic protocol
    the whole step is then rolled back and replayed.  The checksum time is
    tracked separately (``checksum_seconds``) so the bench can prove the
    overhead stays a rounding error against the barrier-dominated comm time.
    """

    def __init__(self, optimizer, data: DataViews, rank: int, world: int,
                 barriers: BarrierSet, timeout_s: float, chunk_elems: int,
                 verify_checksums: bool = True, fault_injector=None):
        self.optimizer = optimizer
        self.data = data
        self.rank = rank
        self.world = world
        self.barriers = barriers
        self.timeout_s = timeout_s
        self.schedule = chunk_schedule(data.reduced.size, world, chunk_elems)
        self.verify_checksums = bool(verify_checksums)
        self.fault_injector = fault_injector
        self.pre_reduce: Optional[Callable[[], None]] = None
        self.comm_seconds = 0.0
        self.checksum_seconds = 0.0
        self.checksum_failures = 0
        self.steps = 0

    def _publish_checksums(self, slot: np.ndarray) -> None:
        crc_row = self.data.crc[self.rank]
        for index, (chunk_start, chunk_end, _) in enumerate(self.schedule):
            crc_row[index] = zlib.crc32(slot[chunk_start:chunk_end])

    def _verify_chunk(self, index: int, chunk_start: int, chunk_end: int) -> None:
        grad, crc = self.data.grad, self.data.crc
        for other in range(self.world):
            expected = int(crc[other, index])
            actual = zlib.crc32(grad[other, chunk_start:chunk_end])
            if actual != expected:
                self.checksum_failures += 1
                raise CommIntegrityError(
                    f"gradient chunk {index} [{chunk_start}:{chunk_end}) from "
                    f"rank {other} failed its CRC32 check "
                    f"(expected {expected:#010x}, got {actual:#010x}) — "
                    f"corrupt bytes were NOT reduced")

    def __call__(self, params) -> float:
        start = time.perf_counter()
        injector, rank = self.fault_injector, self.rank
        if self.pre_reduce is not None:
            callback, self.pre_reduce = self.pre_reduce, None
            callback()
        slot = self.data.grad[rank]
        self.optimizer.gather_flat_grad(slot)
        checksum_s = 0.0
        if self.verify_checksums:
            crc_start = time.perf_counter()
            self._publish_checksums(slot)
            checksum_s += time.perf_counter() - crc_start
        if injector is not None:
            if injector.should_fire("shm_chunk_corruption", rank):
                # Perturb after the CRC was published: in-flight corruption
                # the verifier on the other side must catch.
                slot[0] += 1.0
            if injector.should_fire("barrier_timeout", rank):
                time.sleep(self.timeout_s + 1.0)
            if injector.should_fire("worker_crash_before_barrier", rank):
                import os
                os._exit(17)
        wait_barrier(self.barriers.grads, self.timeout_s, "grads")
        grad, reduced, world = self.data.grad, self.data.reduced, self.world
        for index, (chunk_start, chunk_end, owner) in enumerate(self.schedule):
            if owner != rank:
                continue
            if self.verify_checksums:
                crc_start = time.perf_counter()
                self._verify_chunk(index, chunk_start, chunk_end)
                checksum_s += time.perf_counter() - crc_start
            segment = reduced[chunk_start:chunk_end]
            np.copyto(segment, grad[0, chunk_start:chunk_end])
            for other in range(1, world):
                segment += grad[other, chunk_start:chunk_end]
            if world > 1:
                segment /= world
        wait_barrier(self.barriers.reduced, self.timeout_s, "reduced")
        if injector is not None and injector.should_fire(
                "worker_crash_after_barrier", rank):
            import os
            os._exit(18)
        self.optimizer.scatter_flat_grad(reduced)
        elapsed = time.perf_counter() - start
        self.comm_seconds += elapsed
        self.checksum_seconds += checksum_s
        self.steps += 1
        return elapsed
