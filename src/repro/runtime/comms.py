"""Shared-memory communication substrate for data-parallel training.

This module owns everything three-or-more processes have to agree on:

* **Segment lifecycle** — the parent process creates two named
  ``multiprocessing.shared_memory`` segments (a *boot* segment whose size is
  known up front, and a *data* segment sized from the gradient population the
  workers report during the boot handshake), and is the only process that
  ever ``unlink()``\\ s them.  Workers attach by name and only ``close()``;
  on this interpreter (CPython 3.11) attaching does not register with the
  resource tracker, so creator-unlinks is the whole protocol and a clean run
  leaves nothing in ``/dev/shm``.
* **Chunk schedule** — :func:`chunk_schedule` partitions the flat gradient
  buffer into fixed-size chunks striped round-robin across ranks.  Each rank
  reduces *its* chunks by summing the per-rank slots in rank order
  ``0..world-1`` — the summation order is a function of the chunk alone,
  never of which rank happens to execute it, so the reduced values are
  bitwise-reproducible for a given worker count.
* **Barrier/epoch protocol** — a :class:`BarrierSet` carries the rendezvous
  points of one step: ``step_begin``/``step_end`` include the parent
  (commands and results cross there), ``grads``/``reduced`` are
  workers-only (the two halves of the all-reduce), and ``masks`` orders the
  rank-0 layout broadcast at sparsity-refresh steps.  Every wait carries a
  timeout; a worker that dies mid-step breaks its peers' barrier within that
  timeout, survivors abort the remaining barriers, and the parent turns the
  broken rendezvous into a :class:`DistributedError` instead of a hang.

The gradient exchange itself is :class:`GradientAllReducer`: one contiguous
gather of the optimizer's flat gradient population into the rank's slot, a
fixed-order chunked reduce-scatter into the shared ``reduced`` buffer, and a
scatter back into ``param.grad`` — a single message per step regardless of
parameter count, which is exactly what the flat optimizer layout exists to
enable.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np


class DistributedError(RuntimeError):
    """A data-parallel run failed (worker death, divergence, protocol error)."""


# -- protocol constants ---------------------------------------------------------

CMD_IDLE, CMD_STEP, CMD_PARAMS, CMD_STOP = 0, 1, 2, 3

ST_BOOTING, ST_READY, ST_STEPPED, ST_ERROR = 0, 1, 2, 3

# ctl slot indices (int64 array in the boot segment)
CTL_COMMAND = 0
CTL_STEP_ID = 1
CTL_NDIM = 2
CTL_SHAPE = 3          # 3..6: up to 4 batch dimensions
CTL_DTYPE = 7
CTL_GRAD_ELEMS = 8     # written by the parent after the boot handshake
CTL_BLOB_CAP = 9
CTL_PARAM_BLOB_LEN = 10
CTL_MASK_BLOB_LEN = 11
CTL_SLOTS = 16

_DTYPE_CODES = {"int32": 1, "int64": 2, "float32": 3, "float64": 4}
_CODE_DTYPES = {code: np.dtype(name) for name, code in _DTYPE_CODES.items()}

# per-rank float64 stats slots written after every step
STAT_COMM = 0
STAT_FORWARD = 1
STAT_BACKWARD = 2
STAT_OPTIMIZER = 3
STAT_RECAPTURES = 4
STAT_REPLAY_STEPS = 5
STAT_FULL_REPLAYS = 6
STAT_MASK_SYNCS = 7
STATS_SLOTS = 8

STAT_NAMES = ("comm_s", "forward_s", "backward_s", "optimizer_s",
              "recaptures", "replay_steps", "full_replays", "mask_syncs")

DIGEST_BYTES = 32
ERROR_BYTES = 4096

_ALIGN = 64

BrokenBarrier = threading.BrokenBarrierError


def _layout(regions: Sequence[Tuple[str, int]]) -> Tuple[Dict[str, int], int]:
    """Cache-line-aligned offsets for named byte regions; returns total size."""
    offsets: Dict[str, int] = {}
    cursor = 0
    for name, nbytes in regions:
        cursor = (cursor + _ALIGN - 1) // _ALIGN * _ALIGN
        offsets[name] = cursor
        cursor += int(nbytes)
    return offsets, cursor


def boot_regions(world: int, batch_capacity: int) -> Tuple[Dict[str, int], int]:
    return _layout([
        ("ctl", CTL_SLOTS * 8),
        ("status", world * 8),
        ("meta", world * 2 * 8),          # (grad_elems, dtype_code) per rank
        ("err_len", world * 8),
        ("loss", world * 8),
        ("stats", world * STATS_SLOTS * 8),
        ("digest", world * DIGEST_BYTES),
        ("errors", world * ERROR_BYTES),
        ("batch", batch_capacity),
    ])


def data_regions(world: int, grad_elems: int, itemsize: int,
                 blob_capacity: int) -> Tuple[Dict[str, int], int]:
    return _layout([
        ("grad", world * grad_elems * itemsize),
        ("reduced", grad_elems * itemsize),
        ("blob", blob_capacity),
    ])


def chunk_schedule(total_elems: int, world: int,
                   chunk_elems: int) -> List[Tuple[int, int, int]]:
    """``(start, end, owner_rank)`` chunks striped round-robin across ranks.

    The owner only decides *who computes* a chunk; the reduction order inside
    each chunk is always rank ``0..world-1``, so ownership never affects the
    reduced bits.
    """
    if total_elems <= 0:
        return []
    chunk_elems = max(1, int(chunk_elems))
    starts = list(range(0, total_elems, chunk_elems))
    return [(start, min(start + chunk_elems, total_elems), index % world)
            for index, start in enumerate(starts)]


class BarrierSet:
    """The rendezvous points of the step protocol (see module docstring)."""

    _WORKER_NAMES = ("grads", "reduced", "masks")
    _ALL_NAMES = ("boot", "setup", "step_begin", "step_end") + _WORKER_NAMES

    def __init__(self, ctx, world: int):
        self.boot = ctx.Barrier(world + 1)
        self.setup = ctx.Barrier(world + 1)
        self.step_begin = ctx.Barrier(world + 1)
        self.step_end = ctx.Barrier(world + 1)
        self.grads = ctx.Barrier(world)
        self.reduced = ctx.Barrier(world)
        self.masks = ctx.Barrier(world)

    def abort_all(self) -> None:
        """Break every barrier so no process can block on this session again."""
        for name in self._ALL_NAMES:
            try:
                getattr(self, name).abort()
            except Exception:
                pass


@dataclass
class CommSpec:
    """Everything a worker needs to find and speak the session's segments."""

    session: str                 # shm name prefix; segments are <session>-boot/-data
    world: int
    batch_capacity: int
    step_timeout_s: float
    chunk_elems: int
    mask_broadcast: bool

    @property
    def boot_name(self) -> str:
        return f"{self.session}-boot"

    @property
    def data_name(self) -> str:
        return f"{self.session}-data"


class BootViews:
    """Typed NumPy views over the boot segment's regions."""

    def __init__(self, shm: shared_memory.SharedMemory, world: int,
                 batch_capacity: int):
        offsets, _ = boot_regions(world, batch_capacity)
        buf = shm.buf
        self._batch_offset = offsets["batch"]
        self._batch_capacity = batch_capacity
        self._shm = shm
        self.ctl = np.ndarray((CTL_SLOTS,), np.int64, buf, offsets["ctl"])
        self.status = np.ndarray((world,), np.int64, buf, offsets["status"])
        self.meta = np.ndarray((world, 2), np.int64, buf, offsets["meta"])
        self.err_len = np.ndarray((world,), np.int64, buf, offsets["err_len"])
        self.loss = np.ndarray((world,), np.float64, buf, offsets["loss"])
        self.stats = np.ndarray((world, STATS_SLOTS), np.float64, buf,
                                offsets["stats"])
        self.digest = np.ndarray((world, DIGEST_BYTES), np.uint8, buf,
                                 offsets["digest"])
        self.errors = np.ndarray((world, ERROR_BYTES), np.uint8, buf,
                                 offsets["errors"])

    # -- batch publication -----------------------------------------------------
    def publish_batch(self, step_id: int, batch: np.ndarray) -> None:
        batch = np.ascontiguousarray(batch)
        if batch.ndim > 4:
            raise DistributedError(f"batches of ndim {batch.ndim} > 4 are not "
                                   f"supported by the comms header")
        code = _DTYPE_CODES.get(batch.dtype.name)
        if code is None:
            raise DistributedError(f"unsupported batch dtype {batch.dtype}")
        if batch.nbytes > self._batch_capacity:
            raise DistributedError(
                f"batch of {batch.nbytes} bytes exceeds the shared batch "
                f"capacity of {self._batch_capacity} bytes (sized from the "
                f"first published batch; pass batch_capacity= to raise it)")
        ctl = self.ctl
        ctl[CTL_STEP_ID] = step_id
        ctl[CTL_NDIM] = batch.ndim
        ctl[CTL_SHAPE:CTL_SHAPE + 4] = 0
        ctl[CTL_SHAPE:CTL_SHAPE + batch.ndim] = batch.shape
        ctl[CTL_DTYPE] = code
        view = np.ndarray(batch.shape, batch.dtype, self._shm.buf,
                          self._batch_offset)
        np.copyto(view, batch)

    def read_batch(self) -> np.ndarray:
        """A *copy* of the published batch (the region is reused next step)."""
        ctl = self.ctl
        ndim = int(ctl[CTL_NDIM])
        shape = tuple(int(d) for d in ctl[CTL_SHAPE:CTL_SHAPE + ndim])
        dtype = _CODE_DTYPES[int(ctl[CTL_DTYPE])]
        view = np.ndarray(shape, dtype, self._shm.buf, self._batch_offset)
        return view.copy()

    # -- error slots -----------------------------------------------------------
    def write_error(self, rank: int, message: str) -> None:
        data = message.encode("utf-8", errors="replace")[:ERROR_BYTES]
        self.errors[rank, :len(data)] = np.frombuffer(data, np.uint8)
        self.err_len[rank] = len(data)
        self.status[rank] = ST_ERROR

    def read_error(self, rank: int) -> str:
        length = int(self.err_len[rank])
        if length <= 0:
            return ""
        return bytes(self.errors[rank, :length]).decode("utf-8",
                                                        errors="replace")

    def release(self) -> None:
        """Drop every exported view so the segment can be closed."""
        self.__dict__ = {"_shm": None}


class DataViews:
    """Typed views over the data segment: grad slots, reduced buffer, blob."""

    def __init__(self, shm: shared_memory.SharedMemory, world: int,
                 grad_elems: int, dtype: np.dtype, blob_capacity: int):
        offsets, _ = data_regions(world, grad_elems, dtype.itemsize,
                                  blob_capacity)
        self._shm = shm
        self._blob_offset = offsets["blob"]
        self.blob_capacity = blob_capacity
        self.grad = np.ndarray((world, grad_elems), dtype, shm.buf,
                               offsets["grad"])
        self.reduced = np.ndarray((grad_elems,), dtype, shm.buf,
                                  offsets["reduced"])

    def write_blob(self, payload: bytes) -> int:
        if len(payload) > self.blob_capacity:
            raise DistributedError(
                f"blob of {len(payload)} bytes exceeds the shared blob "
                f"capacity of {self.blob_capacity} bytes")
        view = np.ndarray((len(payload),), np.uint8, self._shm.buf,
                          self._blob_offset)
        view[:] = np.frombuffer(payload, np.uint8)
        return len(payload)

    def read_blob(self, length: int) -> bytes:
        view = np.ndarray((int(length),), np.uint8, self._shm.buf,
                          self._blob_offset)
        return bytes(view)

    def release(self) -> None:
        self.__dict__ = {"_shm": None}


def wait_barrier(barrier, timeout: Optional[float], what: str) -> None:
    """Barrier wait that converts breakage/timeout into DistributedError."""
    try:
        barrier.wait(timeout=timeout)
    except BrokenBarrier as exc:
        raise DistributedError(
            f"barrier {what!r} broken or timed out after {timeout}s — a peer "
            f"likely died or errored mid-step") from exc


class GradientAllReducer:
    """Flat-buffer chunked all-reduce over a shared-memory segment.

    Installed on a worker's :class:`~repro.runtime.trainer.FineTuner` as its
    ``grad_reducer``; called once per step between the backward pass and the
    optimizer update.  The three phases:

    1. *gather* — :meth:`repro.optim.Adam.gather_flat_grad` copies every
       ``param.grad`` into this rank's contiguous slot (one buffer, not one
       message per parameter);
    2. *reduce* — after the ``grads`` barrier, each rank sums its scheduled
       chunks across all slots in rank order and divides by the worker count
       (the mean matches the single-process full-batch gradient up to float
       rounding; for ``world == 1`` the copy is exact, keeping the one-worker
       trainer bitwise-identical to the single-process trainer);
    3. *scatter* — after the ``reduced`` barrier,
       :meth:`~repro.optim.Adam.scatter_flat_grad` copies the reduced buffer
       back into every ``param.grad`` in place.

    A ``pre_reduce`` callback (set by the worker harness on rank 0 at
    sparsity-refresh steps) runs first, inside the timed window, so the mask
    broadcast is accounted as communication time.
    """

    def __init__(self, optimizer, data: DataViews, rank: int, world: int,
                 barriers: BarrierSet, timeout_s: float, chunk_elems: int):
        self.optimizer = optimizer
        self.data = data
        self.rank = rank
        self.world = world
        self.barriers = barriers
        self.timeout_s = timeout_s
        self.schedule = chunk_schedule(data.reduced.size, world, chunk_elems)
        self.pre_reduce: Optional[Callable[[], None]] = None
        self.comm_seconds = 0.0
        self.steps = 0

    def __call__(self, params) -> float:
        start = time.perf_counter()
        if self.pre_reduce is not None:
            callback, self.pre_reduce = self.pre_reduce, None
            callback()
        slot = self.data.grad[self.rank]
        self.optimizer.gather_flat_grad(slot)
        wait_barrier(self.barriers.grads, self.timeout_s, "grads")
        grad, reduced, world = self.data.grad, self.data.reduced, self.world
        for chunk_start, chunk_end, owner in self.schedule:
            if owner != self.rank:
                continue
            segment = reduced[chunk_start:chunk_end]
            np.copyto(segment, grad[0, chunk_start:chunk_end])
            for other in range(1, world):
                segment += grad[other, chunk_start:chunk_end]
            if world > 1:
                segment /= world
        wait_barrier(self.barriers.reduced, self.timeout_s, "reduced")
        self.optimizer.scatter_flat_grad(reduced)
        elapsed = time.perf_counter() - start
        self.comm_seconds += elapsed
        self.steps += 1
        return elapsed
