"""Hardware platform specifications and roofline estimates.

The paper evaluates on an A100-80GB workstation ("Platform A") and a 4x
A6000 server ("Platform B").  The reproduction cannot run on those GPUs, so
this module carries their published specifications and a simple roofline
model that converts the *algorithmic* work of a fine-tuning step (FLOPs and
bytes moved, both of which the sparsity machinery changes) into an estimated
step time per platform.  The estimates contextualise the measured CPU
wall-clock: relative speedups transfer because both numerator and denominator
use the same kernel structure; absolute numbers are indicative only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.models.config import ModelConfig


@dataclass(frozen=True)
class PlatformSpec:
    """Peak specifications of an evaluation platform."""

    name: str
    memory_gb: float
    memory_bandwidth_gbps: float      # GB/s
    fp32_tflops: float
    fp16_tflops: float
    num_devices: int = 1

    def flop_time(self, flops: float, fp16: bool = True, efficiency: float = 0.45) -> float:
        """Seconds to execute ``flops`` at a realistic fraction of peak."""
        peak = (self.fp16_tflops if fp16 else self.fp32_tflops) * 1e12
        return flops / (peak * efficiency)

    def memory_time(self, bytes_moved: float, efficiency: float = 0.7) -> float:
        """Seconds to move ``bytes_moved`` at a realistic fraction of peak bandwidth."""
        return bytes_moved / (self.memory_bandwidth_gbps * 1e9 * efficiency)


# Published specifications (the paper quotes 19.5 FP32 TFLOPs / 1555 GB/s for
# the A100 and 38.71 FP32 TFLOPs / 768 GB/s for the A6000).
PLATFORMS: Dict[str, PlatformSpec] = {
    "A100": PlatformSpec(name="A100", memory_gb=80, memory_bandwidth_gbps=1555,
                         fp32_tflops=19.5, fp16_tflops=312.0, num_devices=1),
    "A6000": PlatformSpec(name="A6000", memory_gb=48, memory_bandwidth_gbps=768,
                          fp32_tflops=38.71, fp16_tflops=155.0, num_devices=4),
}


def training_step_flops(config: ModelConfig, batch: int, seq_len: int,
                        attention_density: float = 1.0,
                        mlp_density: float = 1.0) -> float:
    """Approximate FLOPs of one fine-tuning step (forward + backward).

    The backward pass costs roughly 2x the forward pass; attention score /
    context work scales with the retained block density and MLP work with the
    retained neuron density — the two quantities LongExposure reduces.
    """
    cfg = config
    tokens = batch * seq_len
    proj_flops = 4 * 2 * tokens * cfg.dim * cfg.dim                       # q,k,v,out
    attn_flops = 2 * 2 * batch * cfg.num_heads * seq_len * seq_len * cfg.head_dim
    attn_flops *= attention_density
    mlp_flops = 2 * 2 * tokens * cfg.dim * cfg.hidden_dim * mlp_density
    per_layer = proj_flops + attn_flops + mlp_flops
    lm_head = 2 * tokens * cfg.dim * cfg.vocab_size
    forward = cfg.num_layers * per_layer + lm_head
    return float(forward * 3.0)                                           # fwd + ~2x bwd


def roofline_step_time(config: ModelConfig, platform: PlatformSpec, batch: int,
                       seq_len: int, attention_density: float = 1.0,
                       mlp_density: float = 1.0) -> float:
    """Roofline estimate of one step's wall-clock on ``platform`` (seconds)."""
    flops = training_step_flops(config, batch, seq_len, attention_density, mlp_density)
    # Weight traffic dominates the memory side for small batches.
    bytes_moved = config.num_parameters() * 2 * 3.0
    return max(platform.flop_time(flops), platform.memory_time(bytes_moved))
