"""Fine-tuning runtime: trainer, profiling, memory model, platforms, scaling.

This package is the harness the paper's evaluation is built on:

* :class:`FineTuner` — the training loop with per-phase wall-clock timing
  (forward / backward / optimizer step / prediction overhead), producing the
  breakdowns of Table I and Figure 10 and the per-batch times of Figures 7
  and 13;
* :mod:`repro.runtime.memory` — analytic memory model for Figure 8;
* :mod:`repro.runtime.platform` — A100 / A6000 specifications and roofline
  estimates used to contextualise the measured CPU numbers;
* :mod:`repro.runtime.distributed` — real shared-memory data parallelism
  (sharded worker processes + flat-buffer chunked all-reduce) for the
  strong-scaling study of Figure 14, with elastic rank recovery;
* :mod:`repro.runtime.fault` — seeded fault injection + bounded retry, the
  harness behind the resilience test tier.
"""

from repro.runtime.arena import BufferArena, StepCapture
from repro.runtime.trainer import (AttentionConfig, CaptureConfig, FineTuner,
                                   PhaseTimings, TrainingConfig, TrainingReport)
from repro.runtime.profiler import PhaseProfiler
from repro.runtime.memory import MemoryModel, MemoryBreakdown
from repro.runtime.platform import PlatformSpec, PLATFORMS, roofline_step_time
from repro.runtime.comms import (BarrierBroken, CommIntegrityError,
                                 DistributedError, GradientAllReducer,
                                 SharedSegment, chunk_schedule)
from repro.runtime.distributed import (DataParallelTrainer, DistributedReport,
                                       train_data_parallel)
from repro.runtime.fault import (FAULT_SITES, FaultInjector, FaultRule,
                                 InjectedFault, RetryPolicy)

__all__ = [
    "BufferArena",
    "StepCapture",
    "AttentionConfig",
    "CaptureConfig",
    "FineTuner",
    "PhaseTimings",
    "TrainingConfig",
    "TrainingReport",
    "PhaseProfiler",
    "MemoryModel",
    "MemoryBreakdown",
    "PlatformSpec",
    "PLATFORMS",
    "roofline_step_time",
    "BarrierBroken",
    "CommIntegrityError",
    "DistributedError",
    "GradientAllReducer",
    "SharedSegment",
    "chunk_schedule",
    "DataParallelTrainer",
    "DistributedReport",
    "train_data_parallel",
    "FAULT_SITES",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "RetryPolicy",
]
