"""Synthetic data substrate.

The paper fine-tunes on E2E (table-to-text NLG) and Alpaca (instruction
following) and evaluates on five multiple-choice suites (PIQA, Winogrande,
RTE, COPA, HellaSwag).  None of those datasets are available offline, so this
package provides synthetic equivalents with matched *structure*:

* :class:`Vocabulary` / :class:`Tokenizer` — a small word-level vocabulary;
* :mod:`repro.data.e2e` — a grammar-based restaurant-description corpus
  (attribute table -> short text) used for the timing experiments;
* :mod:`repro.data.alpaca` — instruction/response pairs used for the
  accuracy experiments (Table IV protocol);
* :mod:`repro.data.tasks` — five synthetic multiple-choice suites scored by
  LM log-likelihood, the same protocol lm-eval-harness uses.

What matters for the reproduction is that (a) the token statistics exercise
the sparsity machinery the same way real text does, and (b) accuracy
comparisons are like-for-like between dense and LongExposure fine-tuning on
the *same* data, which is how the paper's Table IV is constructed.
"""

from repro.data.tokenizer import Vocabulary, Tokenizer
from repro.data.e2e import E2EDatasetGenerator, E2EExample
from repro.data.alpaca import AlpacaDatasetGenerator, InstructionExample
from repro.data.tasks import (
    MultipleChoiceExample,
    MultipleChoiceTask,
    TaskSuite,
    build_task_suite,
    evaluate_model_on_task,
)
from repro.data.loader import BatchLoader

__all__ = [
    "Vocabulary",
    "Tokenizer",
    "E2EDatasetGenerator",
    "E2EExample",
    "AlpacaDatasetGenerator",
    "InstructionExample",
    "MultipleChoiceExample",
    "MultipleChoiceTask",
    "TaskSuite",
    "build_task_suite",
    "evaluate_model_on_task",
    "BatchLoader",
]
