"""Synthetic Alpaca-like instruction-tuning corpus.

The Alpaca dataset pairs a natural-language instruction (optionally with an
input) with a response.  The synthetic generator creates instruction /
response pairs from composable templates over a small world of entities and
relations.  Crucially, the responses are *systematic* functions of the
instructions, so fine-tuning on this corpus genuinely improves the model's
ability to answer the held-out multiple-choice tasks built from the same
world (:mod:`repro.data.tasks`) — giving the Table IV accuracy comparison
something real to measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.tokenizer import Tokenizer, Vocabulary

# A tiny world model shared with the downstream tasks: objects with category,
# typical location and a salient property.
WORLD: Dict[str, Dict[str, str]] = {
    "hammer": {"category": "tool", "place": "workshop", "property": "heavy"},
    "needle": {"category": "tool", "place": "sewing_kit", "property": "sharp"},
    "kettle": {"category": "appliance", "place": "kitchen", "property": "hot"},
    "pillow": {"category": "furnishing", "place": "bedroom", "property": "soft"},
    "icicle": {"category": "nature", "place": "roof", "property": "cold"},
    "candle": {"category": "furnishing", "place": "table", "property": "hot"},
    "sponge": {"category": "tool", "place": "kitchen", "property": "soft"},
    "anvil": {"category": "tool", "place": "workshop", "property": "heavy"},
    "feather": {"category": "nature", "place": "nest", "property": "light"},
    "snowball": {"category": "nature", "place": "yard", "property": "cold"},
    "razor": {"category": "tool", "place": "bathroom", "property": "sharp"},
    "blanket": {"category": "furnishing", "place": "bedroom", "property": "soft"},
}

_QUESTION_TEMPLATES = [
    ("where would you find a {obj}", "you would find a {obj} in the {place}"),
    ("what kind of thing is a {obj}", "a {obj} is a {category}"),
    ("describe the {obj}", "the {obj} is {property}"),
    ("is a {obj} {property}", "yes a {obj} is {property}"),
    ("which property fits the {obj}", "the property that fits the {obj} is {property}"),
]


@dataclass
class InstructionExample:
    """One instruction-tuning pair."""

    instruction: str
    response: str
    text: str


class AlpacaDatasetGenerator:
    """Generates synthetic instruction/response pairs over the shared world."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        words = set("instruction response where would you find a what kind of thing is "
                    "describe the which property fits yes in no".split())
        for obj, facts in WORLD.items():
            words.add(obj)
            words.update(facts.values())
        self.vocabulary = Vocabulary(words=sorted(words))
        self.tokenizer = Tokenizer(self.vocabulary)

    def sample_example(self) -> InstructionExample:
        rng = self._rng
        obj = str(rng.choice(list(WORLD)))
        facts = WORLD[obj]
        template = _QUESTION_TEMPLATES[int(rng.integers(0, len(_QUESTION_TEMPLATES)))]
        instruction = template[0].format(obj=obj, **facts)
        response = template[1].format(obj=obj, **facts)
        text = f"instruction {instruction} response {response}"
        return InstructionExample(instruction=instruction, response=response, text=text)

    def sample_examples(self, count: int) -> List[InstructionExample]:
        return [self.sample_example() for _ in range(count)]

    def token_batches(self, num_batches: int, batch_size: int, seq_len: int,
                      vocab_size: Optional[int] = None) -> List[np.ndarray]:
        """Packed token-id batches for fine-tuning (same packing as E2E)."""
        vocab_size = vocab_size or len(self.vocabulary)
        batches = []
        for _ in range(num_batches):
            rows = []
            for _ in range(batch_size):
                ids: List[int] = []
                while len(ids) < seq_len:
                    ids.extend(self.tokenizer.encode(self.sample_example().text))
                rows.append(np.asarray(ids[:seq_len], dtype=np.int64) % vocab_size)
            batches.append(np.stack(rows))
        return batches
