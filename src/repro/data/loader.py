"""Simple batch loader utilities shared by examples and benchmarks."""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np


class BatchLoader:
    """Cycles over a fixed list of token-id batches, optionally shuffling rows.

    Keeping a *fixed* set of pre-generated batches (rather than generating on
    the fly) makes timing runs reproducible and keeps data-generation cost out
    of the measured step time — the same methodology the paper uses by timing
    steady-state steps over a real dataset.
    """

    def __init__(self, batches: Sequence[np.ndarray], shuffle: bool = False, seed: int = 0):
        if not batches:
            raise ValueError("BatchLoader needs at least one batch")
        self.batches: List[np.ndarray] = [np.asarray(b) for b in batches]
        self.shuffle = shuffle
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return len(self.batches)

    def __iter__(self) -> Iterator[np.ndarray]:
        order = np.arange(len(self.batches))
        if self.shuffle:
            self._rng.shuffle(order)
        for index in order:
            yield self.batches[index]

    def take(self, count: int) -> Iterator[np.ndarray]:
        """Yield ``count`` batches, cycling over the stored set as needed."""
        produced = 0
        while produced < count:
            for batch in self:
                if produced >= count:
                    return
                yield batch
                produced += 1

    @property
    def batch_size(self) -> int:
        return int(self.batches[0].shape[0])

    @property
    def seq_len(self) -> int:
        return int(self.batches[0].shape[1])
