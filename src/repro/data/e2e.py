"""Synthetic E2E-like table-to-text corpus (Novikova et al., 2017 analogue).

The real E2E dataset maps restaurant attribute tables ("name[Alimentum],
food[French], priceRange[cheap], ...") to short natural-language
descriptions.  The synthetic generator reproduces that structure with a small
attribute grammar so sequences have the repeated-field statistics and
moderate vocabulary of the original — which is what matters for the sparsity
patterns the timing experiments exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.tokenizer import Tokenizer, Vocabulary

_NAMES = ["alimentum", "aromi", "bibimbap", "clowns", "cocum", "cotto", "fitzbillies",
          "giraffe", "strada", "vaults", "wildwood", "zizzi"]
_FOODS = ["french", "italian", "japanese", "chinese", "indian", "english", "fast"]
_PRICES = ["cheap", "moderate", "high", "less_than_20", "more_than_30"]
_RATINGS = ["low", "average", "high", "3_out_of_5", "5_out_of_5"]
_AREAS = ["riverside", "city_centre"]
_FAMILY = ["yes", "no"]
_NEAR = ["cafe_sicilia", "burger_king", "rainbow_vegetarian", "the_bakers", "crowne_plaza"]

_TEMPLATES = [
    "{name} is a {food} restaurant in the {area} with a {rating} customer rating "
    "and {price} prices located near {near} family friendly {family}",
    "near {near} in the {area} you can find {name} which serves {food} food at "
    "{price} prices it has a {rating} rating and family friendly is {family}",
    "{name} serves {food} food its price range is {price} the customer rating is "
    "{rating} it is in the {area} near {near} and family friendly {family}",
]


@dataclass
class E2EExample:
    """One table-to-text pair."""

    attributes: Dict[str, str]
    meaning_representation: str
    reference: str
    text: str                      # "MR <sep> reference" — the LM training string


class E2EDatasetGenerator:
    """Generates synthetic E2E-like examples and token batches."""

    def __init__(self, vocab_size: int = 1024, seed: int = 0):
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        words = sorted(set(_NAMES + _FOODS + _PRICES + _RATINGS + _AREAS + _FAMILY + _NEAR
                           + "is a restaurant in the with customer rating and prices located "
                             "near family friendly you can find which serves food at it has "
                             "its price range the <sep> name area".split()))
        self.vocabulary = Vocabulary(words=words)
        self.tokenizer = Tokenizer(self.vocabulary)
        self.vocab_size = max(vocab_size, len(self.vocabulary))

    def sample_example(self) -> E2EExample:
        rng = self._rng
        attributes = {
            "name": str(rng.choice(_NAMES)),
            "food": str(rng.choice(_FOODS)),
            "price": str(rng.choice(_PRICES)),
            "rating": str(rng.choice(_RATINGS)),
            "area": str(rng.choice(_AREAS)),
            "family": str(rng.choice(_FAMILY)),
            "near": str(rng.choice(_NEAR)),
        }
        meaning = " ".join(f"{key} {value}" for key, value in attributes.items())
        template = _TEMPLATES[int(rng.integers(0, len(_TEMPLATES)))]
        reference = template.format(**attributes)
        return E2EExample(attributes=attributes, meaning_representation=meaning,
                          reference=reference, text=f"{meaning} <sep> {reference}")

    def sample_examples(self, count: int) -> List[E2EExample]:
        return [self.sample_example() for _ in range(count)]

    def token_batches(self, num_batches: int, batch_size: int, seq_len: int,
                      vocab_size: Optional[int] = None) -> List[np.ndarray]:
        """Token-id batches sized for a given model vocabulary.

        Multiple examples are packed into each row until ``seq_len`` is filled
        (the standard LM packing used for throughput measurements).  Token ids
        are taken modulo ``vocab_size`` so the batches remain valid for the
        scaled-down model vocabularies.
        """
        vocab_size = vocab_size or self.vocab_size
        batches = []
        for _ in range(num_batches):
            rows = []
            for _ in range(batch_size):
                ids: List[int] = []
                while len(ids) < seq_len:
                    ids.extend(self.tokenizer.encode(self.sample_example().text))
                rows.append(np.asarray(ids[:seq_len], dtype=np.int64) % vocab_size)
            batches.append(np.stack(rows))
        return batches
