"""Synthetic downstream multiple-choice tasks (Table III / Table IV analogue).

The paper evaluates fine-tuned models on PIQA, Winogrande, RTE, COPA and
HellaSwag via likelihood scoring: for each question, every candidate
continuation is scored by the log-probability the model assigns to it and the
highest-scoring candidate is chosen.  Each synthetic suite below follows the
same protocol over the small world model shared with the Alpaca-like
instruction corpus, so fine-tuning on that corpus measurably improves
accuracy — giving the "with vs. without LongExposure" comparison of Table IV
real signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.alpaca import WORLD, AlpacaDatasetGenerator
from repro.data.tokenizer import Tokenizer


@dataclass
class MultipleChoiceExample:
    """A context with candidate continuations, one of which is correct."""

    context: str
    choices: List[str]
    answer_index: int


@dataclass
class MultipleChoiceTask:
    """A named task with a description (Table III) and its examples."""

    name: str
    description: str
    examples: List[MultipleChoiceExample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.examples)


@dataclass
class TaskSuite:
    """The five evaluation tasks plus the tokenizer used to score them."""

    tasks: Dict[str, MultipleChoiceTask]
    tokenizer: Tokenizer

    def names(self) -> List[str]:
        return list(self.tasks)


def _wrong_value(rng: np.random.Generator, field_name: str, correct: str) -> str:
    values = sorted({facts[field_name] for facts in WORLD.values() if facts[field_name] != correct})
    return str(rng.choice(values))


def build_task_suite(examples_per_task: int = 40, seed: int = 0) -> TaskSuite:
    """Construct the five synthetic suites over the shared world model.

    The mapping to the paper's tasks is structural, not semantic:

    =============  =====================================================
    paper task     synthetic analogue
    =============  =====================================================
    PIQA           physical-property selection ("the X is <property>")
    Winogrande     location resolution ("you would find a X in the <place>")
    RTE            entailment between a fact and a hypothesis (yes/no)
    COPA           cause/effect style choice between two facts
    HellaSwag      continuation of a two-sentence description
    =============  =====================================================
    """
    rng = np.random.default_rng(seed)
    generator = AlpacaDatasetGenerator(seed=seed)
    tokenizer = generator.tokenizer
    objects = sorted(WORLD)

    def sample_obj() -> str:
        return str(rng.choice(objects))

    tasks: Dict[str, MultipleChoiceTask] = {}

    piqa = MultipleChoiceTask("piqa", "Physical commonsense reasoning")
    for _ in range(examples_per_task):
        obj = sample_obj()
        correct = WORLD[obj]["property"]
        wrong = _wrong_value(rng, "property", correct)
        answer = int(rng.integers(0, 2))
        choices = [f"the {obj} is {correct}", f"the {obj} is {wrong}"]
        if answer == 1:
            choices.reverse()
        piqa.examples.append(MultipleChoiceExample(
            context=f"instruction describe the {obj} response",
            choices=choices, answer_index=answer if answer == 0 else 1))
    tasks["piqa"] = piqa

    winogrande = MultipleChoiceTask("winogrande", "Physical interactions understanding")
    for _ in range(examples_per_task):
        obj = sample_obj()
        correct = WORLD[obj]["place"]
        wrong = _wrong_value(rng, "place", correct)
        answer = int(rng.integers(0, 2))
        choices = [f"you would find a {obj} in the {correct}",
                   f"you would find a {obj} in the {wrong}"]
        if answer == 1:
            choices.reverse()
        winogrande.examples.append(MultipleChoiceExample(
            context=f"instruction where would you find a {obj} response",
            choices=choices, answer_index=answer))
    tasks["winogrande"] = winogrande

    rte = MultipleChoiceTask("rte", "Natural language understanding")
    for _ in range(examples_per_task):
        obj = sample_obj()
        true_prop = WORLD[obj]["property"]
        entailed = bool(rng.integers(0, 2))
        prop = true_prop if entailed else _wrong_value(rng, "property", true_prop)
        answer = 0 if entailed else 1
        rte.examples.append(MultipleChoiceExample(
            context=f"instruction is a {obj} {prop} response",
            choices=[f"yes a {obj} is {prop}", f"no a {obj} is not {prop}"],
            answer_index=answer))
    tasks["rte"] = rte

    copa = MultipleChoiceTask("copa", "Commonsense causal reasoning")
    for _ in range(examples_per_task):
        obj = sample_obj()
        correct = WORLD[obj]["category"]
        wrong = _wrong_value(rng, "category", correct)
        answer = int(rng.integers(0, 2))
        choices = [f"a {obj} is a {correct}", f"a {obj} is a {wrong}"]
        if answer == 1:
            choices.reverse()
        copa.examples.append(MultipleChoiceExample(
            context=f"instruction what kind of thing is a {obj} response",
            choices=choices, answer_index=answer))
    tasks["copa"] = copa

    hellaswag = MultipleChoiceTask("hellaswag", "Natural language commonsense")
    for _ in range(examples_per_task):
        obj = sample_obj()
        correct_place = WORLD[obj]["place"]
        correct_prop = WORLD[obj]["property"]
        wrong_prop = _wrong_value(rng, "property", correct_prop)
        answer = int(rng.integers(0, 2))
        choices = [f"the property that fits the {obj} is {correct_prop}",
                   f"the property that fits the {obj} is {wrong_prop}"]
        if answer == 1:
            choices.reverse()
        hellaswag.examples.append(MultipleChoiceExample(
            context=(f"instruction where would you find a {obj} response you would find "
                     f"a {obj} in the {correct_place} instruction which property fits "
                     f"the {obj} response"),
            choices=choices, answer_index=answer))
    tasks["hellaswag"] = hellaswag

    return TaskSuite(tasks=tasks, tokenizer=tokenizer)


def evaluate_model_on_task(model, task: MultipleChoiceTask, tokenizer: Tokenizer,
                           vocab_size: Optional[int] = None,
                           max_examples: Optional[int] = None) -> Dict[str, float]:
    """Likelihood-scored accuracy of ``model`` on one task.

    Returns ``{"accuracy": ..., "stderr": ..., "n": ...}`` matching the
    accuracy/stderr pairs of the paper's Table IV.
    """
    vocab_size = vocab_size or model.config.vocab_size
    correct = 0
    examples = task.examples[:max_examples] if max_examples else task.examples
    for example in examples:
        scores = []
        context_ids = tokenizer.encode(example.context, add_eos=False)
        for choice in example.choices:
            choice_ids = tokenizer.encode(choice, add_bos=False, add_eos=False)
            ids = np.asarray(context_ids + choice_ids, dtype=np.int64) % vocab_size
            score = model.sequence_log_likelihood(ids, completion_start=len(context_ids))
            # Length-normalised likelihood, as lm-eval-harness does for PIQA-style tasks.
            scores.append(score / max(len(choice_ids), 1))
        predicted = int(np.argmax(scores))
        correct += int(predicted == example.answer_index)
    n = len(examples)
    accuracy = correct / max(n, 1)
    stderr = float(np.sqrt(accuracy * (1 - accuracy) / max(n, 1)))
    return {"accuracy": accuracy, "stderr": stderr, "n": n}
