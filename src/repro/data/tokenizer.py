"""Word-level vocabulary and tokenizer for the synthetic corpora."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np


@dataclass
class Vocabulary:
    """Bidirectional word <-> id mapping with reserved special tokens."""

    pad_token: str = "<pad>"
    bos_token: str = "<bos>"
    eos_token: str = "<eos>"
    unk_token: str = "<unk>"
    words: List[str] = field(default_factory=list)

    def __post_init__(self):
        specials = [self.pad_token, self.bos_token, self.eos_token, self.unk_token]
        ordered = specials + [w for w in self.words if w not in specials]
        self._word_to_id: Dict[str, int] = {w: i for i, w in enumerate(ordered)}
        self._id_to_word: List[str] = ordered

    def __len__(self) -> int:
        return len(self._id_to_word)

    @property
    def pad_id(self) -> int:
        return self._word_to_id[self.pad_token]

    @property
    def bos_id(self) -> int:
        return self._word_to_id[self.bos_token]

    @property
    def eos_id(self) -> int:
        return self._word_to_id[self.eos_token]

    @property
    def unk_id(self) -> int:
        return self._word_to_id[self.unk_token]

    def id_of(self, word: str) -> int:
        return self._word_to_id.get(word, self.unk_id)

    def word_of(self, index: int) -> str:
        if 0 <= index < len(self._id_to_word):
            return self._id_to_word[index]
        return self.unk_token

    @classmethod
    def from_corpus(cls, texts: Iterable[str], max_size: Optional[int] = None) -> "Vocabulary":
        """Build a frequency-sorted vocabulary from whitespace-tokenised texts."""
        counts: Dict[str, int] = {}
        for text in texts:
            for word in text.split():
                counts[word] = counts.get(word, 0) + 1
        ordered = [w for w, _ in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))]
        if max_size is not None:
            ordered = ordered[: max(0, max_size - 4)]
        return cls(words=ordered)


class Tokenizer:
    """Whitespace tokenizer over a :class:`Vocabulary` with padding helpers."""

    def __init__(self, vocabulary: Vocabulary):
        self.vocabulary = vocabulary

    def encode(self, text: str, add_bos: bool = True, add_eos: bool = True) -> List[int]:
        ids = [self.vocabulary.id_of(w) for w in text.split()]
        if add_bos:
            ids = [self.vocabulary.bos_id] + ids
        if add_eos:
            ids = ids + [self.vocabulary.eos_id]
        return ids

    def decode(self, ids: Iterable[int]) -> str:
        specials = {self.vocabulary.pad_id, self.vocabulary.bos_id, self.vocabulary.eos_id}
        return " ".join(self.vocabulary.word_of(int(i)) for i in ids if int(i) not in specials)

    def encode_batch(self, texts: List[str], seq_len: int,
                     pad_to_multiple: Optional[int] = None) -> np.ndarray:
        """Encode, truncate/pad to ``seq_len`` and stack into an int array."""
        if pad_to_multiple:
            seq_len = -(-seq_len // pad_to_multiple) * pad_to_multiple
        batch = np.full((len(texts), seq_len), self.vocabulary.pad_id, dtype=np.int64)
        for row, text in enumerate(texts):
            ids = self.encode(text)[:seq_len]
            batch[row, :len(ids)] = ids
        return batch
