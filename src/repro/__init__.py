"""LongExposure reproduction: accelerating parameter-efficient fine-tuning
for LLMs under shadowy sparsity (SC 2024).

Top-level convenience imports::

    from repro import build_model, get_peft_method, LongExposure, LongExposureConfig, FineTuner

See ``README.md`` for the quickstart, ``DESIGN.md`` for the system inventory
and ``EXPERIMENTS.md`` for the paper-vs-measured record of every table and
figure.
"""

from repro.models import build_model, get_config, list_configs
from repro.peft import get_peft_method
from repro.sparsity import LongExposure, LongExposureConfig
from repro.runtime import FineTuner, TrainingConfig

__version__ = "0.1.0"

__all__ = [
    "build_model",
    "get_config",
    "list_configs",
    "get_peft_method",
    "LongExposure",
    "LongExposureConfig",
    "FineTuner",
    "TrainingConfig",
    "__version__",
]
