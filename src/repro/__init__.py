"""LongExposure reproduction: accelerating parameter-efficient fine-tuning
for LLMs under shadowy sparsity (SC 2024).

This module is the supported public surface — import from here, not from the
deep module paths (which keep working, but are implementation layout)::

    from repro import (create_model, apply_lora, FineTuner, TrainingConfig,
                       FineTuningService, ServiceConfig)

* **Models** — :func:`create_model` (alias :func:`build_model`),
  :func:`get_config`, :func:`list_configs`.
* **PEFT** — :func:`apply_lora`, :func:`apply_adapter`, :func:`apply_bitfit`,
  :func:`apply_prefix_tuning`, :func:`apply_full_finetuning`, or name-based
  dispatch via :func:`get_peft_method`.
* **Training** — :class:`FineTuner` with :class:`TrainingConfig` (capture and
  attention knobs grouped in :class:`CaptureConfig` /
  :class:`AttentionConfig`), :func:`train_data_parallel` for multi-process
  data parallelism.
* **Sparsity** — :class:`LongExposure` / :class:`LongExposureConfig`.
* **Serving** — :class:`FineTuningService` / :class:`ServiceConfig`: many
  tenants' adapters time-sharing one frozen base through signature-bucketed
  continuous batching (see ``repro.serve``).
* **Resilience** — :class:`FaultInjector` / :class:`FaultRule` /
  :class:`RetryPolicy` (seeded fault injection and bounded retry) and
  :class:`TenantStateStore` (durable tenant checkpoints); elastic rank
  recovery is built into the data-parallel trainer.

See ``README.md`` for the quickstart, ``DESIGN.md`` for the system inventory
and ``EXPERIMENTS.md`` for the paper-vs-measured record of every table and
figure.
"""

from repro.models import build_model, get_config, list_configs
from repro.peft import (apply_adapter, apply_bitfit, apply_full_finetuning,
                        apply_lora, apply_prefix_tuning, get_peft_method)
from repro.runtime import (AttentionConfig, CaptureConfig, FaultInjector,
                           FaultRule, FineTuner, InjectedFault, RetryPolicy,
                           TrainingConfig, TrainingReport, train_data_parallel)
from repro.serve import (AdapterRegistry, CheckpointCorruptError,
                         FineTuningService, ServiceConfig, StepResult,
                         TenantStateStore)
from repro.sparsity import LongExposure, LongExposureConfig

# Public alias: the facade's model constructor.  ``build_model`` remains as
# the original name.
create_model = build_model

__version__ = "0.2.0"

__all__ = [
    # models
    "create_model",
    "build_model",
    "get_config",
    "list_configs",
    # peft
    "apply_lora",
    "apply_adapter",
    "apply_bitfit",
    "apply_prefix_tuning",
    "apply_full_finetuning",
    "get_peft_method",
    # training
    "FineTuner",
    "TrainingConfig",
    "CaptureConfig",
    "AttentionConfig",
    "TrainingReport",
    "train_data_parallel",
    # sparsity
    "LongExposure",
    "LongExposureConfig",
    # serving
    "FineTuningService",
    "ServiceConfig",
    "StepResult",
    "AdapterRegistry",
    # resilience
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "RetryPolicy",
    "TenantStateStore",
    "CheckpointCorruptError",
    "__version__",
]
