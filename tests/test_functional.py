"""Tests of the fused composite functions (softmax, layernorm, losses)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tensor import Tensor, functional as F


class TestSoftmax:
    def setup_method(self):
        self.rng = np.random.default_rng(0)

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(self.rng.normal(size=(3, 7)).astype(np.float32))
        probs = F.softmax(x)
        np.testing.assert_allclose(probs.data.sum(axis=-1), np.ones(3), rtol=1e-5)

    def test_softmax_gradient_matches_jacobian(self):
        x_data = self.rng.normal(size=(5,)).astype(np.float32)
        g = self.rng.normal(size=(5,)).astype(np.float32)
        x = Tensor(x_data, requires_grad=True)
        F.softmax(x).backward(g)
        p = np.exp(x_data - x_data.max())
        p /= p.sum()
        jac = np.diag(p) - np.outer(p, p)
        np.testing.assert_allclose(x.grad, jac @ g, rtol=1e-4, atol=1e-5)

    def test_log_softmax_consistency(self):
        x = Tensor(self.rng.normal(size=(2, 6)).astype(np.float32))
        np.testing.assert_allclose(F.log_softmax(x).data, np.log(F.softmax(x).data + 1e-12),
                                   rtol=1e-4, atol=1e-5)

    def test_masked_softmax_zeroes_masked_positions(self):
        x = Tensor(self.rng.normal(size=(2, 4, 4)).astype(np.float32))
        mask = np.tril(np.ones((4, 4), dtype=bool))
        probs = F.masked_softmax(x, mask)
        assert np.all(probs.data[:, 0, 1:] == 0)
        np.testing.assert_allclose(probs.data.sum(axis=-1), np.ones((2, 4)), rtol=1e-5)

    def test_masked_softmax_fully_masked_row_is_finite(self):
        x = Tensor(np.zeros((1, 2, 2), dtype=np.float32))
        mask = np.zeros((2, 2), dtype=bool)
        probs = F.masked_softmax(x, mask)
        assert np.all(np.isfinite(probs.data))


class TestLayerNorm:
    def test_normalises_last_dim(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(2.0, 3.0, size=(4, 8)).astype(np.float32), requires_grad=True)
        w = Tensor(np.ones(8, dtype=np.float32), requires_grad=True)
        b = Tensor(np.zeros(8, dtype=np.float32), requires_grad=True)
        out = F.layer_norm(x, w, b)
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(4), atol=1e-5)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones(4), atol=1e-2)

    def test_gradients_against_finite_differences(self):
        rng = np.random.default_rng(2)
        x_data = rng.normal(size=(2, 5)).astype(np.float32)
        w_data = rng.normal(1.0, 0.1, size=(5,)).astype(np.float32)
        b_data = np.zeros(5, dtype=np.float32)

        def loss_fn(xv):
            return float(F.layer_norm(Tensor(xv), Tensor(w_data), Tensor(b_data)).sum().data)

        x = Tensor(x_data.copy(), requires_grad=True)
        w = Tensor(w_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        F.layer_norm(x, w, b).sum().backward()

        eps = 1e-2
        numeric = np.zeros_like(x_data)
        for i in range(x_data.shape[0]):
            for j in range(x_data.shape[1]):
                pert = x_data.copy(); pert[i, j] += eps
                up = loss_fn(pert)
                pert[i, j] -= 2 * eps
                down = loss_fn(pert)
                numeric[i, j] = (up - down) / (2 * eps)
        np.testing.assert_allclose(x.grad, numeric, atol=5e-2, rtol=5e-2)
        np.testing.assert_allclose(b.grad, np.full(5, 2.0), rtol=1e-5)


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = Tensor(np.array([[[2.0, 0.0, 0.0], [0.0, 2.0, 0.0]]], dtype=np.float32),
                        requires_grad=True)
        targets = np.array([[0, 1]])
        loss, n = F.cross_entropy(logits, targets)
        assert n == 2
        manual = -np.log(np.exp(2.0) / (np.exp(2.0) + 2.0))
        np.testing.assert_allclose(float(loss.data), manual, rtol=1e-5)

    def test_cross_entropy_ignore_index(self):
        logits = Tensor(np.zeros((1, 3, 4), dtype=np.float32), requires_grad=True)
        targets = np.array([[1, -100, 2]])
        loss, n = F.cross_entropy(logits, targets)
        assert n == 2
        loss.backward()
        # Ignored position contributes no gradient.
        assert np.allclose(logits.grad[0, 1], 0.0)

    def test_cross_entropy_gradient_sums_to_zero_per_position(self):
        rng = np.random.default_rng(3)
        logits = Tensor(rng.normal(size=(2, 4, 6)).astype(np.float32), requires_grad=True)
        targets = rng.integers(0, 6, size=(2, 4))
        loss, _ = F.cross_entropy(logits, targets)
        loss.backward()
        np.testing.assert_allclose(logits.grad.sum(axis=-1), np.zeros((2, 4)), atol=1e-6)

    def test_bce_with_logits_pos_weight_increases_positive_grad(self):
        logits_data = np.zeros((4,), dtype=np.float32)
        targets = np.array([1.0, 1.0, 0.0, 0.0], dtype=np.float32)
        plain = Tensor(logits_data.copy(), requires_grad=True)
        F.binary_cross_entropy_with_logits(plain, targets, pos_weight=1.0).backward()
        weighted = Tensor(logits_data.copy(), requires_grad=True)
        F.binary_cross_entropy_with_logits(weighted, targets, pos_weight=4.0).backward()
        # Positive positions push harder (more negative gradient) under pos_weight.
        assert weighted.grad[0] < plain.grad[0] < 0
        np.testing.assert_allclose(weighted.grad[2], plain.grad[2], rtol=1e-5)

    def test_mse_loss_gradient(self):
        pred = Tensor(np.array([1.0, 2.0], dtype=np.float32), requires_grad=True)
        F.mse_loss(pred, np.array([0.0, 0.0])).backward()
        np.testing.assert_allclose(pred.grad, [1.0, 2.0], rtol=1e-5)

    def test_dropout_eval_is_identity_and_train_scales(self):
        x = Tensor(np.ones((100, 10), dtype=np.float32), requires_grad=True)
        out_eval = F.dropout(x, 0.5, training=False)
        np.testing.assert_allclose(out_eval.data, x.data)
        out_train = F.dropout(x, 0.5, training=True, rng=np.random.default_rng(0))
        kept = out_train.data != 0
        # Inverted dropout: kept elements are scaled by 1/(1-p).
        np.testing.assert_allclose(out_train.data[kept], 2.0)
        assert 0.3 < kept.mean() < 0.7


@settings(max_examples=20, deadline=None)
@given(
    batch=st.integers(1, 3), classes=st.integers(2, 6),
    seed=st.integers(0, 9999),
)
def test_cross_entropy_is_nonnegative_and_grad_bounded(batch, classes, seed):
    """Property: CE loss >= 0 and per-position gradients lie in [-1/n, 1/n]."""
    rng = np.random.default_rng(seed)
    logits = Tensor(rng.normal(size=(batch, 3, classes)).astype(np.float32), requires_grad=True)
    targets = rng.integers(0, classes, size=(batch, 3))
    loss, n = F.cross_entropy(logits, targets)
    assert float(loss.data) >= 0
    loss.backward()
    assert np.all(np.abs(logits.grad) <= 1.0 / n + 1e-6)
