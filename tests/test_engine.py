"""Tests of the end-to-end LongExposure engine."""

import numpy as np
import pytest

from repro.models import build_model
from repro.peft import apply_lora, LoRAConfig, get_peft_method
from repro.sparsity import LongExposure, LongExposureConfig
from repro.sparsity.engine import SparseAttentionBackend, SparseMLPBackend
from repro.nn.attention import DenseAttentionBackend
from repro.nn.mlp import DenseMLPBackend


class TestConfigValidation:
    def test_block_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            LongExposureConfig(block_size=48)

    def test_threshold_ranges(self):
        with pytest.raises(ValueError):
            LongExposureConfig(mlp_threshold=1.5)
        with pytest.raises(ValueError):
            LongExposureConfig(attention_coverage=0.0)
        with pytest.raises(ValueError):
            LongExposureConfig(predictor_rank=0)


class TestEngineLifecycle:
    def test_install_requires_prepare(self, tiny_model):
        engine = LongExposure(LongExposureConfig(block_size=16))
        with pytest.raises(RuntimeError):
            engine.install(tiny_model)

    def test_install_and_uninstall_swap_backends(self, prepared_engine):
        model, engine = prepared_engine
        engine.install(model)
        try:
            for block in model.blocks:
                assert isinstance(block.attention.backend, SparseAttentionBackend)
                assert isinstance(block.mlp.backend, SparseMLPBackend)
        finally:
            engine.uninstall(model)
        for block in model.blocks:
            assert isinstance(block.attention.backend, DenseAttentionBackend)
            assert isinstance(block.mlp.backend, DenseMLPBackend)

    def test_sparse_and_dense_losses_are_close(self, prepared_engine, tiny_batches):
        model, engine = prepared_engine
        ids = tiny_batches[0]
        dense_loss, _ = model.loss(ids)
        engine.install(model)
        try:
            sparse_loss, _ = model.loss(ids)
        finally:
            engine.uninstall(model)
        # Sparsity only drops negligible work, so the losses agree closely
        # (Table IV's "minimal loss in accuracy" at the loss level).
        assert abs(float(dense_loss.data) - float(sparse_loss.data)) < 0.05

    def test_stats_accumulate_and_reset(self, prepared_engine, tiny_batches):
        model, engine = prepared_engine
        engine.stats.reset()
        engine.install(model)
        try:
            model.loss(tiny_batches[0])
        finally:
            engine.uninstall(model)
        assert engine.stats.attention_calls == len(model.blocks)
        assert engine.stats.mlp_calls == len(model.blocks)
        assert engine.stats.prediction_seconds > 0
        assert 0 <= engine.stats.mean_attention_sparsity() <= 1
        engine.stats.reset()
        assert engine.stats.attention_calls == 0

    def test_predictor_recall_reported(self, prepared_engine):
        _, engine = prepared_engine
        recalls = engine.mean_predictor_recall()
        assert set(recalls) == {"attention", "mlp"}
        assert all(0 <= value <= 1 for value in recalls.values())
        assert "LongExposure" in engine.summary()


class TestOracleAndFamilies:
    def test_oracle_mode_skips_predictor_training(self, tiny_batches):
        model = build_model("opt-tiny", seed=0)
        engine = LongExposure(LongExposureConfig(block_size=16, oracle_mode=True))
        engine.prepare(model, tiny_batches)
        assert engine.attention_predictors == []
        engine.install(model)
        try:
            loss, _ = model.loss(tiny_batches[0])
            loss.backward()
        finally:
            engine.uninstall(model)
        assert np.isfinite(float(loss.data))

    def test_gelu_model_only_gets_attention_optimisation(self, tiny_batches):
        model = build_model("gpt2-tiny", seed=0)
        engine = LongExposure(LongExposureConfig(block_size=16, oracle_mode=True))
        engine.prepare(model, tiny_batches)
        engine.install(model)
        try:
            for block in model.blocks:
                assert isinstance(block.attention.backend, SparseAttentionBackend)
                assert isinstance(block.mlp.backend, DenseMLPBackend)
        finally:
            engine.uninstall(model)

    def test_depth_mismatch_detected(self, tiny_batches):
        shallow = build_model("opt-tiny", seed=0)
        engine = LongExposure(LongExposureConfig(block_size=16, predictor_epochs=1))
        engine.prepare(shallow, tiny_batches[:1])
        deeper = build_model("opt-small", seed=0)
        with pytest.raises(RuntimeError):
            engine.install(deeper)

    def test_lora_in_mlp_falls_back_to_dense_kernel(self, tiny_batches):
        """LoRA targeting fc1/fc2 invalidates the frozen-weight sparse MLP path;
        the engine must still produce correct results by falling back."""
        model = build_model("opt-tiny", seed=0)
        engine = LongExposure(LongExposureConfig(block_size=16, oracle_mode=True))
        engine.prepare(model, tiny_batches)
        apply_lora(model, LoRAConfig(rank=2, target_modules=("fc1", "fc2")))
        engine.install(model)
        try:
            loss, _ = model.loss(tiny_batches[0])
            loss.backward()
        finally:
            engine.uninstall(model)
        assert np.isfinite(float(loss.data))

    def test_sparse_backward_only_touches_trainable_lora_params(self, tiny_batches):
        model = build_model("opt-tiny", seed=0)
        engine = LongExposure(LongExposureConfig(block_size=16, oracle_mode=True))
        engine.prepare(model, tiny_batches)
        apply_lora(model)
        engine.install(model)
        try:
            loss, _ = model.loss(tiny_batches[0])
            loss.backward()
        finally:
            engine.uninstall(model)
        for name, param in model.named_parameters():
            if "lora" in name:
                assert param.grad is not None
            else:
                assert param.grad is None
