"""Tests of the Shadowy-sparsity Exposer and the Sequence-oriented Predictors."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparsity.exposer import AttentionExposer, MLPExposer
from repro.sparsity.patterns import build_default_pool, causal_block_mask
from repro.sparsity.predictor import (
    AttentionPredictor,
    MLPPredictor,
    PredictorTrainingConfig,
    collect_layer_data,
    train_attention_predictor,
    train_mlp_predictor,
)
from repro.sparsity.predictor.training import mlp_token_block_labels
from repro.tensor import Tensor


def local_attention_probs(batch=1, heads=2, seq=64, window=8, seed=0):
    """Synthetic attention probabilities concentrated in a local causal window."""
    rng = np.random.default_rng(seed)
    idx = np.arange(seq)
    causal = idx[:, None] >= idx[None, :]
    local = (idx[:, None] - idx[None, :]) < window
    base = np.where(causal & local, 1.0, 1e-4) * causal
    probs = base / base.sum(axis=-1, keepdims=True)
    probs = np.repeat(np.repeat(probs[None, None], heads, 1), batch, 0)
    return probs + rng.uniform(0, 1e-6, size=probs.shape)


class TestAttentionExposer:
    def setup_method(self):
        self.pool = build_default_pool()
        self.exposer = AttentionExposer(self.pool, block_size=16, coverage=0.9)

    def test_block_reduce_shape_and_causality(self):
        probs = local_attention_probs(seq=64)
        reduced = self.exposer.block_reduce(probs)
        assert reduced.shape == (2, 4, 4)
        assert not np.any(np.triu(reduced[0], k=1))

    def test_local_attention_matches_local_pattern(self):
        probs = local_attention_probs(seq=128, window=8)
        masks, names = self.exposer.head_block_masks(probs)
        assert masks.shape[0] == 2
        assert all("local" in name or name == "diag" for name in names)

    def test_head_specific_sparser_than_uniform(self):
        """Two heads with different local windows: the uniform ("shadowy") mask
        must be denser than the per-head masks — the paper's core observation."""
        a = local_attention_probs(heads=1, seq=128, window=4, seed=1)
        b = local_attention_probs(heads=1, seq=128, window=40, seed=2)
        probs = np.concatenate([a, b], axis=1)
        report = self.exposer.analyze(probs)
        assert report.head_specific_sparsity >= report.shadowy_sparsity - 1e-9
        assert 0 <= report.per_token_sparsity <= 1

    def test_raw_masks_reach_coverage(self):
        probs = local_attention_probs(seq=64, window=16)
        raw = self.exposer.raw_block_masks(probs)
        mass = self.exposer.block_reduce(probs)
        for h in range(raw.shape[0]):
            assert mass[h][raw[h]].sum() / mass[h].sum() >= 0.9 - 1e-9

    def test_invalid_coverage_rejected(self):
        with pytest.raises(ValueError):
            AttentionExposer(self.pool, 16, coverage=0.0)


class TestMLPExposer:
    def _activations(self, batch=2, seq=32, hidden=64, hot_blocks=(0,), seed=0):
        """Activations where the listed blocks (of 16) carry most of the mass."""
        rng = np.random.default_rng(seed)
        acts = rng.random((batch, seq, hidden)) * 0.01
        for block in hot_blocks:
            acts[:, :, block * 16:(block + 1) * 16] += rng.random((batch, seq, 16)) * 5
        return np.maximum(acts, 0)

    def test_active_blocks_identify_hot_blocks(self):
        exposer = MLPExposer(block_size=16, threshold=0.05)
        acts = self._activations(hot_blocks=(0, 2))
        np.testing.assert_array_equal(exposer.active_blocks(acts), [0, 2])

    def test_sparsity_increases_with_threshold(self):
        acts = self._activations(hot_blocks=(0,))
        sparsities = [MLPExposer(16, threshold=t).analyze(acts).filtered_sparsity
                      for t in (0.0, 0.01, 0.05, 0.2)]
        assert sparsities == sorted(sparsities)

    def test_zero_activations_keep_minimum_blocks(self):
        exposer = MLPExposer(block_size=16, threshold=0.05, min_active_blocks=2)
        active = exposer.active_blocks(np.zeros((1, 4, 64)))
        assert active.size == 2

    def test_block_labels_binary(self):
        exposer = MLPExposer(block_size=16, threshold=0.05)
        labels = exposer.block_labels(self._activations(hot_blocks=(1,)))
        assert set(np.unique(labels)) <= {0.0, 1.0}
        assert labels[1] == 1.0

    def test_report_fields_consistent(self):
        exposer = MLPExposer(block_size=16, threshold=0.05)
        report = exposer.analyze(self._activations())
        assert 0 <= report.per_token_sparsity <= 1
        assert 0 <= report.filtered_sparsity <= 1
        assert report.n_blocks == 4
        assert "blocks" in report.summary()

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            MLPExposer(16, threshold=1.0)


class TestPredictors:
    def test_attention_predictor_shapes(self):
        pool = build_default_pool()
        predictor = AttentionPredictor(dim=32, num_heads=2, rank=4, block_size=16,
                                       pattern_pool=pool)
        x = np.random.default_rng(0).normal(size=(2, 64, 32)).astype(np.float32)
        scores = predictor.approximate_scores(x)
        assert scores.shape == (2, 2, 4, 4)
        out = predictor(Tensor(x))
        assert out.shape == (2, 2, 4, 4)
        masks = predictor.block_masks(x)
        assert masks.shape == (2, 4, 4)
        assert all(np.all(np.diag(masks[h])) for h in range(2))
        patterns = predictor.predict_patterns(x)
        assert len(patterns) == 2 and all(p in pool.names() for p in patterns)

    def test_attention_predictor_rank_validation(self):
        with pytest.raises(ValueError):
            AttentionPredictor(dim=8, num_heads=1, rank=16, block_size=16,
                               pattern_pool=build_default_pool())

    def test_predictor_overhead_is_linear_in_sequence(self):
        pool = build_default_pool()
        predictor = AttentionPredictor(dim=64, num_heads=4, rank=8, block_size=32,
                                       pattern_pool=pool)
        # O(s) scaling: doubling the sequence roughly doubles the overhead.
        ratio = predictor.overhead_flops(1024) / predictor.overhead_flops(512)
        assert 1.5 < ratio < 3.0
        mlp = MLPPredictor(dim=64, hidden_dim=256, block_size=32)
        assert mlp.overhead_flops(1024) == 2 * mlp.overhead_flops(512)

    def test_mlp_predictor_shapes_and_minimum(self):
        predictor = MLPPredictor(dim=16, hidden_dim=64, block_size=16, min_active_blocks=2)
        x = np.random.default_rng(0).normal(size=(1, 8, 16)).astype(np.float32)
        logits = predictor(Tensor(x))
        assert logits.shape == (1, 8, 4)
        active = predictor.predict_active_blocks(x)
        assert active.size >= 2

    def test_mlp_token_block_labels_threshold(self):
        acts = np.zeros((1, 2, 8), dtype=np.float32)
        acts[0, :, :4] = 10.0       # block 0 dominant
        acts[0, :, 4:] = 0.01       # block 1 negligible
        labels = mlp_token_block_labels(acts, block_size=4, threshold=0.05)
        np.testing.assert_array_equal(labels[0, 0], [1.0, 0.0])

    def test_training_improves_attention_predictor_recall(self, tiny_model, tiny_batches):
        collected = collect_layer_data(tiny_model, tiny_batches[:1])
        merged = collected[0].merged()
        pool = build_default_pool()
        exposer = AttentionExposer(pool, block_size=16, coverage=0.9)
        predictor = AttentionPredictor(tiny_model.config.dim, tiny_model.config.num_heads,
                                       rank=4, block_size=16, pattern_pool=pool, seed=0)
        config = PredictorTrainingConfig(epochs=0)
        untrained = train_attention_predictor(predictor, merged["attention_inputs"],
                                              merged["attention_probs"], exposer, config)
        config = PredictorTrainingConfig(epochs=8)
        trained = train_attention_predictor(predictor, merged["attention_inputs"],
                                            merged["attention_probs"], exposer, config)
        assert trained.recall >= untrained.recall
        assert trained.recall > 0.6

    def test_training_mlp_predictor_reaches_high_recall(self, tiny_model, tiny_batches):
        collected = collect_layer_data(tiny_model, tiny_batches[:1])
        merged = collected[0].merged()
        exposer = MLPExposer(block_size=16, threshold=0.03)
        predictor = MLPPredictor(tiny_model.config.dim, tiny_model.config.hidden_dim,
                                 block_size=16, seed=0)
        metrics = train_mlp_predictor(predictor, merged["mlp_inputs"],
                                      merged["mlp_activations"], exposer,
                                      PredictorTrainingConfig(epochs=10))
        assert metrics.recall > 0.8
        assert "recall" in metrics.summary()

    def test_collect_layer_data_shapes(self, tiny_model, tiny_batches):
        collected = collect_layer_data(tiny_model, tiny_batches, max_batches=1)
        assert len(collected) == len(tiny_model.blocks)
        merged = collected[0].merged()
        batch, seq = np.asarray(tiny_batches[0]).shape
        assert merged["attention_inputs"].shape == (batch, seq, tiny_model.config.dim)
        assert merged["attention_probs"].shape[2:] == (seq, seq)
        assert merged["mlp_activations"].shape[-1] == tiny_model.config.hidden_dim
