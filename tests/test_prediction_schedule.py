"""Prediction-scheduler correctness (``predict_interval``, ``-m schedule``).

The scheduler lets the sparse backends reuse the last layout / active-block
set between mask refreshes.  These tests lock its contract:

* with frozen inputs and frozen weights, ``predict_interval=K`` produces
  bitwise-identical losses and refresh-invariant layouts vs.
  ``predict_interval=1``;
* refreshes happen exactly every K scheduler steps, reuses fill the gaps,
  and drifting inputs record nonzero mask drift;
* a sequence-length change always forces a refresh;
* the trainer advances the scheduler and surfaces the staleness gauges in
  the profiler summary.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import build_model
from repro.runtime.trainer import FineTuner, TrainingConfig
from repro.sparsity import LongExposure, LongExposureConfig
from repro.sparsity.engine import _active_block_drift, _layout_drift
from repro.sparsity.ops.layout import layout_from_block_masks

pytestmark = pytest.mark.schedule


def _oracle_engine(model, batches, interval, block_size=16):
    engine = LongExposure(LongExposureConfig(
        block_size=block_size, oracle_mode=True, predict_interval=interval, seed=0))
    engine.prepare(model, batches)
    return engine


class TestConfig:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            LongExposureConfig(predict_interval=0)
        assert LongExposureConfig(predict_interval=3).predict_interval == 3


class TestDriftMetric:
    def test_identical_layouts_have_zero_drift(self):
        masks = np.zeros((2, 4, 4), dtype=bool)
        masks[:, np.arange(4), np.arange(4)] = True
        masks[:, 2, 0] = True
        a = layout_from_block_masks(masks, block_size=16)
        b = layout_from_block_masks(masks.copy(), block_size=16)
        assert _layout_drift(a, b) == 0.0

    def test_differing_layouts_have_positive_drift(self):
        masks_a = np.zeros((1, 4, 4), dtype=bool)
        masks_a[:, np.arange(4), np.arange(4)] = True
        masks_b = masks_a.copy()
        masks_b[0, 3, 0] = True
        a = layout_from_block_masks(masks_a, block_size=16)
        b = layout_from_block_masks(masks_b, block_size=16)
        drift = _layout_drift(a, b)
        # 4 shared diagonal blocks, 1 extra block: |AΔB|/|A∪B| = 1/5.
        assert drift == pytest.approx(0.2)
        # Symmetric.
        assert _layout_drift(b, a) == pytest.approx(0.2)

    def test_incomparable_layouts_give_none(self):
        masks = np.eye(4, dtype=bool)[None]
        a = layout_from_block_masks(masks, block_size=16)
        b = layout_from_block_masks(np.eye(2, dtype=bool)[None], block_size=16)
        assert _layout_drift(None, a) is None
        assert _layout_drift(b, a) is None

    def test_active_block_drift(self):
        assert _active_block_drift(None, np.array([0, 1])) is None
        assert _active_block_drift(np.array([0, 1]), np.array([0, 1])) == 0.0
        drift = _active_block_drift(np.array([0, 1, 2]), np.array([1, 2, 3]))
        assert drift == pytest.approx(0.5)  # {0,3} differ out of {0,1,2,3}


class TestFrozenInputsBitwiseIdentical:
    @pytest.mark.parametrize("interval", [2, 3])
    def test_interval_k_matches_interval_1(self, tiny_batches, interval):
        """Frozen inputs + frozen weights: reuse must not change anything."""
        ids = tiny_batches[0]
        losses = {}
        for k in (1, interval):
            model = build_model("opt-tiny", seed=0)
            engine = _oracle_engine(model, tiny_batches, k)
            engine.install(model)
            try:
                run = []
                for _ in range(2 * interval):
                    engine.advance_step()
                    loss, _ = model.loss(ids)
                    run.append(float(loss.data))
                losses[k] = run
            finally:
                engine.uninstall(model)
        # Bitwise equality, not approximate: the reused layout is the same
        # object the refresh would have recomputed.
        assert losses[1] == losses[interval]

    def test_reuse_counters_with_frozen_inputs(self, tiny_batches):
        model = build_model("opt-tiny", seed=0)
        engine = _oracle_engine(model, tiny_batches, interval=3)
        engine.install(model)
        try:
            for _ in range(6):
                engine.advance_step()
                model.loss(tiny_batches[0])
        finally:
            engine.uninstall(model)
        for layer in engine.stats.attention_layers.values():
            assert layer.refreshes == 2      # steps 1 and 4
            assert layer.reuses == 4
            # Frozen inputs: every refresh reproduces the previous mask.
            assert layer.drift_samples == 1 and layer.drift_mean == 0.0
        assert engine.stats.attention_reuse_rate() == pytest.approx(4 / 6)


class TestRefreshCadenceAndDrift:
    def test_refresh_exactly_every_k_with_drifting_inputs(self, tiny_batches):
        model = build_model("opt-tiny", seed=0)
        engine = _oracle_engine(model, tiny_batches, interval=2)
        engine.install(model)
        rng = np.random.default_rng(3)
        ids_a = rng.integers(0, 512, size=(2, 64))
        ids_b = np.full((2, 64), 7)      # degenerate repeated-token stream
        try:
            for ids in (ids_a, ids_a, ids_b, ids_b, ids_a):
                engine.advance_step()
                model.loss(ids)
        finally:
            engine.uninstall(model)
        stats = engine.stats
        for layer in stats.attention_layers.values():
            assert layer.refreshes == 3      # steps 1, 3, 5 — exactly every K=2
            assert layer.reuses == 2
            assert layer.drift_samples == 2
        for layer in stats.mlp_layers.values():
            assert layer.refreshes == 3 and layer.reuses == 2
        # The input change between refreshes moves at least one layer's mask.
        assert stats.mean_attention_drift() > 0.0

    def test_interval_1_never_reuses(self, tiny_batches):
        model = build_model("opt-tiny", seed=0)
        engine = _oracle_engine(model, tiny_batches, interval=1)
        engine.install(model)
        try:
            for _ in range(3):
                engine.advance_step()
                model.loss(tiny_batches[0])
        finally:
            engine.uninstall(model)
        for layer in engine.stats.attention_layers.values():
            assert layer.refreshes == 3 and layer.reuses == 0
        assert engine.stats.attention_reuse_rate() == 0.0

    def test_seq_length_change_forces_refresh(self, tiny_batches):
        model = build_model("opt-tiny", seed=0)
        engine = _oracle_engine(model, tiny_batches, interval=8)
        engine.install(model)
        ids_long = tiny_batches[0]
        ids_short = tiny_batches[0][:, :32]
        try:
            engine.advance_step()
            model.loss(ids_long)
            model.loss(ids_short)       # same step, new block grid
        finally:
            engine.uninstall(model)
        for layer in engine.stats.attention_layers.values():
            assert layer.refreshes == 2 and layer.reuses == 0
            # Grid changed between the refreshes: no comparable drift sample.
            assert layer.drift_samples == 0

    def test_lowering_interval_mid_run_takes_effect_immediately(self, tiny_batches):
        """The refresh deadline follows the *current* predict_interval."""
        model = build_model("opt-tiny", seed=0)
        engine = _oracle_engine(model, tiny_batches, interval=64)
        engine.install(model)
        try:
            for _ in range(3):       # refresh at step 1, reuse at 2-3
                engine.advance_step()
                model.loss(tiny_batches[0])
            engine.config.predict_interval = 2
            engine.advance_step()    # step 4: 4 >= 1 + 2 -> refresh now
            model.loss(tiny_batches[0])
        finally:
            engine.uninstall(model)
        for layer in engine.stats.attention_layers.values():
            assert layer.refreshes == 2 and layer.reuses == 2

    def test_reset_schedule_forces_refresh(self, tiny_batches):
        model = build_model("opt-tiny", seed=0)
        engine = _oracle_engine(model, tiny_batches, interval=4)
        engine.install(model)
        try:
            engine.advance_step()
            model.loss(tiny_batches[0])
            engine.reset_schedule()
            assert engine.step_index == 0
            engine.advance_step()
            model.loss(tiny_batches[0])
        finally:
            engine.uninstall(model)
        for layer in engine.stats.attention_layers.values():
            assert layer.refreshes == 2 and layer.reuses == 0


class TestPredictedPathScheduling:
    def test_predicted_backends_reuse_layouts(self, prepared_engine, tiny_batches):
        model, engine = prepared_engine
        saved = engine.config.predict_interval
        engine.config.predict_interval = 2
        engine.stats.reset()
        engine.reset_schedule()
        engine.step_index = 0
        engine.install(model)
        try:
            for _ in range(4):
                engine.advance_step()
                model.loss(tiny_batches[0])
        finally:
            engine.uninstall(model)
            engine.config.predict_interval = saved
        for layer in engine.stats.attention_layers.values():
            assert layer.refreshes == 2 and layer.reuses == 2
        assert engine.stats.prediction_fraction() > 0.0
        assert engine.stats.backend_seconds >= engine.stats.prediction_seconds


class TestTrainerIntegration:
    def test_trainer_advances_schedule_and_sets_gauges(self, tiny_batches):
        model = build_model("opt-tiny", seed=0)
        engine = _oracle_engine(model, tiny_batches, interval=2)
        engine.install(model)
        try:
            from repro.peft import apply_lora
            apply_lora(model)
            tuner = FineTuner(model, TrainingConfig(learning_rate=1e-4),
                              engine=engine)
            report = tuner.train([tiny_batches[0]] * 4, max_steps=4)
        finally:
            engine.uninstall(model)
        assert engine.step_index == 4
        for layer in engine.stats.attention_layers.values():
            assert layer.refreshes == 2 and layer.reuses == 2
        summary = tuner.profiler.summary_dict()
        assert "gauges" in summary
        gauges = summary["gauges"]
        for key in ("prediction_fraction", "attention_reuse_rate",
                    "mlp_reuse_rate", "attention_mask_drift", "mlp_block_drift"):
            assert key in gauges
        assert gauges["attention_reuse_rate"] == pytest.approx(0.5)
        assert report.steps == 4
