"""Tests of the dynamic-aware operators: block-sparse attention and neuron-sparse MLP."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparsity.ops import (
    BlockSparseMatrix,
    NeuronSparseWeights,
    block_sparse_attention,
    block_sparse_dsd,
    block_sparse_sdd,
    dense_attention_reference,
    neuron_sparse_linear_pair,
    neuron_sparse_matmul,
)
from repro.sparsity.ops.layout import LayoutPool, layout_from_block_masks
from repro.sparsity.ops.neuron_sparse import expand_block_indices
from repro.sparsity.patterns import build_default_pool, causal_block_mask
from repro.tensor import Tensor, functional as F


def make_qkv(batch=2, heads=3, seq=40, dim=8, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(batch, heads, seq, dim)).astype(np.float32) for _ in range(3)]


def dense_layout(heads, seq, block):
    return LayoutPool(build_default_pool(), block).dense_layout(heads, seq)


class TestBlockSparseKernels:
    def test_sdd_matches_dense_blocks(self):
        q, k, _ = make_qkv(seq=32, dim=4)
        layout = dense_layout(3, 32, 16)
        sparse = block_sparse_sdd(q, k, layout, scale=0.5)
        dense = np.matmul(q, np.swapaxes(k, -1, -2)) * 0.5
        recovered = sparse.to_dense()
        causal_blocks = layout.to_dense_mask(32)       # (heads, seq, seq)
        np.testing.assert_allclose(recovered[:, causal_blocks],
                                   dense[:, causal_blocks], rtol=1e-5)

    def test_dsd_matches_dense_product(self):
        q, k, v = make_qkv(seq=32, dim=4)
        layout = dense_layout(3, 32, 16)
        scores = block_sparse_sdd(q, k, layout)
        out = block_sparse_dsd(scores, v)
        dense_scores = scores.to_dense()
        np.testing.assert_allclose(out, np.matmul(dense_scores, v), rtol=1e-4, atol=1e-5)

    def test_fused_attention_matches_dense_reference_forward(self):
        q, k, v = make_qkv(seq=48, dim=8)
        layout = dense_layout(3, 48, 16)
        out = block_sparse_attention(Tensor(q), Tensor(k), Tensor(v), layout)
        causal = np.tril(np.ones((48, 48), dtype=bool))
        ref = dense_attention_reference(q, k, v, mask=causal)
        np.testing.assert_allclose(out.data, ref, rtol=1e-4, atol=1e-5)

    def test_fused_attention_gradients_match_dense_autograd(self):
        q, k, v = make_qkv(seq=32, dim=4, seed=3)
        layout = dense_layout(3, 32, 16)
        qt, kt, vt = [Tensor(a, requires_grad=True) for a in (q, k, v)]
        out = block_sparse_attention(qt, kt, vt, layout)

        q2, k2, v2 = [Tensor(a, requires_grad=True) for a in (q, k, v)]
        causal = np.tril(np.ones((32, 32), dtype=bool))
        scores = q2.matmul(k2.swapaxes(-1, -2)) * (1 / np.sqrt(4))
        ref = F.masked_softmax(scores, causal).matmul(v2)

        g = np.random.default_rng(5).normal(size=out.shape).astype(np.float32)
        out.backward(g)
        ref.backward(g)
        np.testing.assert_allclose(qt.grad, q2.grad, rtol=1e-3, atol=1e-5)
        np.testing.assert_allclose(kt.grad, k2.grad, rtol=1e-3, atol=1e-5)
        np.testing.assert_allclose(vt.grad, v2.grad, rtol=1e-3, atol=1e-5)

    def test_sparse_layout_masks_excluded_blocks(self):
        q, k, v = make_qkv(seq=32, dim=4)
        masks = np.repeat(np.eye(2, dtype=bool)[None], 3, axis=0)  # diagonal blocks only
        layout = layout_from_block_masks(masks, 16)
        out = block_sparse_attention(Tensor(q), Tensor(k), Tensor(v), layout)
        # Diagonal-only attention means queries in the second block never see
        # keys from the first block: compare against a manually masked dense run.
        element_mask = layout.to_dense_mask(32)
        ref = dense_attention_reference(q, k, v, mask=element_mask[None])
        np.testing.assert_allclose(out.data, ref, rtol=1e-4, atol=1e-5)

    def test_non_multiple_sequence_length_is_padded_correctly(self):
        q, k, v = make_qkv(seq=37, dim=4)
        layout = dense_layout(3, 37, 16)
        out = block_sparse_attention(Tensor(q), Tensor(k), Tensor(v), layout)
        causal = np.tril(np.ones((37, 37), dtype=bool))
        ref = dense_attention_reference(q, k, v, mask=causal)
        assert out.shape == (2, 3, 37, 4)
        np.testing.assert_allclose(out.data, ref, rtol=1e-4, atol=1e-5)

    def test_head_count_mismatch_raises(self):
        q, k, v = make_qkv(heads=2, seq=32, dim=4)
        layout = dense_layout(3, 32, 16)
        with pytest.raises(ValueError):
            block_sparse_attention(Tensor(q), Tensor(k), Tensor(v), layout)

    def test_head_count_mismatch_raises_with_reference_kernels(self):
        # The validation must run before the toggle dispatch; the dense-mask
        # twin would otherwise broadcast a wrong-head layout silently.
        from repro.tensor import fused
        q, k, v = make_qkv(heads=2, seq=32, dim=4)
        layout = dense_layout(3, 32, 16)
        with fused.reference_kernels():
            with pytest.raises(ValueError):
                block_sparse_attention(Tensor(q), Tensor(k), Tensor(v), layout)

    def test_gradients_zero_for_masked_key_blocks(self):
        """Keys attended by no query block receive zero gradient — the paper's
        Section II-D claim that inactive units drop out of the backward pass."""
        q, k, v = make_qkv(seq=32, dim=4, seed=9)
        masks = np.zeros((3, 2, 2), dtype=bool)
        masks[:, 0, 0] = True
        masks[:, 1, 1] = True   # second row never attends to first key block
        layout = layout_from_block_masks(masks, 16)
        qt, kt, vt = [Tensor(a, requires_grad=True) for a in (q, k, v)]
        out = block_sparse_attention(qt, kt, vt, layout)
        # Upstream gradient only on the queries of the second block.
        g = np.zeros_like(out.data)
        g[:, :, 16:, :] = 1.0
        out.backward(g)
        np.testing.assert_allclose(vt.grad[:, :, :16, :], 0.0, atol=1e-7)
        np.testing.assert_allclose(kt.grad[:, :, :16, :], 0.0, atol=1e-7)


class TestNeuronSparseKernels:
    def setup_method(self):
        self.rng = np.random.default_rng(0)

    def _mlp_params(self, d=8, hidden=32):
        fc1_w = Tensor(self.rng.normal(size=(hidden, d)).astype(np.float32), requires_grad=True)
        fc1_b = Tensor(np.zeros(hidden, dtype=np.float32), requires_grad=True)
        fc2_w = Tensor(self.rng.normal(size=(d, hidden)).astype(np.float32), requires_grad=True)
        fc2_b = Tensor(np.zeros(d, dtype=np.float32), requires_grad=True)
        return fc1_w, fc1_b, fc2_w, fc2_b

    def test_expand_block_indices(self):
        np.testing.assert_array_equal(expand_block_indices(np.array([0, 2]), 4, 12),
                                      [0, 1, 2, 3, 8, 9, 10, 11])
        np.testing.assert_array_equal(expand_block_indices(np.array([1]), 8, 10), [8, 9])
        assert expand_block_indices(np.array([]), 4, 8).size == 0

    def test_all_neurons_active_matches_dense(self):
        fc1_w, fc1_b, fc2_w, fc2_b = self._mlp_params()
        x = Tensor(self.rng.normal(size=(2, 5, 8)).astype(np.float32), requires_grad=True)
        active = np.arange(32)
        out = neuron_sparse_linear_pair(x, fc1_w, fc1_b, fc2_w, fc2_b, active)
        dense = np.maximum(x.data @ fc1_w.data.T + fc1_b.data, 0) @ fc2_w.data.T + fc2_b.data
        np.testing.assert_allclose(out.data, dense, rtol=1e-4, atol=1e-5)

    def test_subset_matches_masked_dense(self):
        fc1_w, fc1_b, fc2_w, fc2_b = self._mlp_params()
        x = Tensor(self.rng.normal(size=(3, 8)).astype(np.float32))
        active = np.array([0, 1, 2, 3, 8, 9, 10, 11])
        out = neuron_sparse_linear_pair(x, fc1_w, fc1_b, fc2_w, fc2_b, active)
        hidden = np.maximum(x.data @ fc1_w.data.T + fc1_b.data, 0)
        masked = np.zeros_like(hidden)
        masked[:, active] = hidden[:, active]
        dense = masked @ fc2_w.data.T + fc2_b.data
        np.testing.assert_allclose(out.data, dense, rtol=1e-4, atol=1e-5)

    def test_gradients_only_on_active_neurons(self):
        fc1_w, fc1_b, fc2_w, fc2_b = self._mlp_params()
        x = Tensor(self.rng.normal(size=(4, 8)).astype(np.float32), requires_grad=True)
        active = np.array([4, 5, 6, 7])
        out = neuron_sparse_linear_pair(x, fc1_w, fc1_b, fc2_w, fc2_b, active)
        out.sum().backward()
        inactive = np.setdiff1d(np.arange(32), active)
        assert np.allclose(fc1_w.grad[inactive], 0)
        assert np.allclose(fc1_b.grad[inactive], 0)
        assert np.allclose(fc2_w.grad[:, inactive], 0)
        assert not np.allclose(fc1_w.grad[active], 0)
        assert x.grad is not None

    def test_gradients_match_dense_when_inactive_neurons_never_fire(self):
        """If the filtered-out neurons genuinely never activate, sparse and dense
        training steps produce identical gradients."""
        fc1_w, fc1_b, fc2_w, fc2_b = self._mlp_params()
        # Force neurons 16..31 to never fire by a large negative bias.
        fc1_b.data[16:] = -100.0
        x_data = self.rng.normal(size=(2, 6, 8)).astype(np.float32)
        active = np.arange(16)

        x1 = Tensor(x_data.copy(), requires_grad=True)
        sparse_out = neuron_sparse_linear_pair(x1, fc1_w, fc1_b, fc2_w, fc2_b, active)
        sparse_out.sum().backward()
        sparse_grads = (fc1_w.grad.copy(), fc2_w.grad.copy(), x1.grad.copy())
        for p in (fc1_w, fc1_b, fc2_w, fc2_b):
            p.zero_grad()

        x2 = Tensor(x_data.copy(), requires_grad=True)
        hidden = F.linear(x2, fc1_w, fc1_b).relu()
        dense_out = F.linear(hidden, fc2_w, fc2_b)
        dense_out.sum().backward()
        np.testing.assert_allclose(sparse_grads[0], fc1_w.grad, rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(sparse_grads[1], fc2_w.grad, rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(sparse_grads[2], x2.grad, rtol=1e-4, atol=1e-5)

    def test_coalesced_cache_matches_uncoalesced(self):
        fc1_w, fc1_b, fc2_w, fc2_b = self._mlp_params()
        x = Tensor(self.rng.normal(size=(3, 8)).astype(np.float32))
        active = np.array([0, 1, 2, 3, 20, 21, 22, 23])
        cache = NeuronSparseWeights(fc1_w.data, fc2_w.data, coalesced=True)
        out_cached = neuron_sparse_linear_pair(x, fc1_w, fc1_b, fc2_w, fc2_b, active, cache=cache)
        out_plain = neuron_sparse_linear_pair(x, fc1_w, fc1_b, fc2_w, fc2_b, active)
        np.testing.assert_allclose(out_cached.data, out_plain.data, rtol=1e-5)
        assert cache.fc2_weight_t.flags["C_CONTIGUOUS"]

    def test_empty_active_set_rejected(self):
        fc1_w, fc1_b, fc2_w, fc2_b = self._mlp_params()
        x = Tensor(np.zeros((2, 8), dtype=np.float32))
        with pytest.raises(ValueError):
            neuron_sparse_linear_pair(x, fc1_w, fc1_b, fc2_w, fc2_b, np.array([], dtype=int))

    def test_gelu_rejected(self):
        fc1_w, fc1_b, fc2_w, fc2_b = self._mlp_params()
        x = Tensor(np.zeros((2, 8), dtype=np.float32))
        with pytest.raises(ValueError):
            neuron_sparse_linear_pair(x, fc1_w, fc1_b, fc2_w, fc2_b,
                                      np.arange(4), activation="gelu")

    def test_standalone_neuron_sparse_matmul(self):
        x = self.rng.normal(size=(5, 8)).astype(np.float32)
        w = self.rng.normal(size=(16, 8)).astype(np.float32)
        active = np.array([1, 3, 5])
        np.testing.assert_allclose(neuron_sparse_matmul(x, w, active, axis=0),
                                   x @ w[active].T, rtol=1e-5)
        with pytest.raises(ValueError):
            neuron_sparse_matmul(x, w, active, axis=2)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 500), n_blocks=st.integers(2, 4), heads=st.integers(1, 3))
def test_block_sparse_attention_equals_masked_dense_for_random_layouts(seed, n_blocks, heads):
    """Property: for any random causal block mask, the fused sparse kernel equals
    dense attention under the equivalent element-level mask."""
    rng = np.random.default_rng(seed)
    block = 8
    seq = n_blocks * block
    q, k, v = [rng.normal(size=(1, heads, seq, 4)).astype(np.float32) for _ in range(3)]
    masks = rng.random((heads, n_blocks, n_blocks)) > 0.5
    layout = layout_from_block_masks(masks, block)
    out = block_sparse_attention(Tensor(q), Tensor(k), Tensor(v), layout)
    ref = dense_attention_reference(q, k, v, mask=layout.to_dense_mask(seq)[None])
    np.testing.assert_allclose(out.data, ref, rtol=1e-3, atol=1e-5)
