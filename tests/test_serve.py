"""Multi-tenant serving tests (`-m serve`): tenant isolation, state paging,
signature-bucket scheduling.

The contract under test is the service's whole reason to exist: tenants
time-sharing one frozen base through compiled-plan replay must be
*indistinguishable* — bitwise — from tenants that each owned a dedicated
trainer, no matter how their steps interleave, how often their state is
evicted to cold storage, or which signature buckets their batches land in.
"""

import numpy as np
import pytest

from repro.models import build_model
from repro.peft import get_peft_method
from repro.runtime import CaptureConfig, FineTuner, TrainingConfig
from repro.serve import (FineTuningService, ServiceConfig,
                         SignatureBucketQueue, StepRequest)

pytestmark = pytest.mark.serve

MODEL = "opt-tiny"
SEQ = 16


def make_service(**overrides) -> FineTuningService:
    defaults = dict(model=MODEL, adapters=("lora",), seq_buckets=(SEQ, 2 * SEQ),
                    max_wait_steps=4)
    defaults.update(overrides)
    return FineTuningService(ServiceConfig(**defaults))


def tenant_batches(tenants, steps, seq=SEQ, seed=11):
    rng = np.random.default_rng(seed)
    return {t: [rng.integers(0, 100, size=(2, seq)) for _ in range(steps)]
            for t in tenants}


def dedicated_adapter(kind, batch_list):
    """The adapter a dedicated capture-enabled FineTuner trains to."""
    model = build_model(MODEL, seed=0)
    model, _ = get_peft_method(kind)(model)
    tuner = FineTuner(model, TrainingConfig(
        capture=CaptureConfig(enabled=True, warmup=0, compile_full_step=True)))
    for batch in batch_list:
        tuner.step(batch)
    return {name: param.data.copy()
            for name, param in model.named_parameters() if param.requires_grad}


class TestTenantIsolation:
    def test_interleaved_matches_dedicated_bitwise(self):
        """Round-robin interleaving through the service == dedicated tuners."""
        tenants = ("alice", "bob", "carol")
        data = tenant_batches(tenants, steps=3)
        service = make_service()
        for step in range(3):
            for tenant in tenants:
                service.submit(tenant, data[tenant][step])
        results = service.flush()
        assert len(results) == 9
        for tenant in tenants:
            served = service.fetch_adapter(tenant).state
            dedicated = dedicated_adapter("lora", data[tenant])
            assert served.keys() == dedicated.keys()
            for name in dedicated:
                assert np.array_equal(served[name], dedicated[name]), (
                    f"{tenant}:{name} diverged from the dedicated trainer")

    def test_frozen_base_never_mutates(self):
        service = make_service()
        before = service.base_digest()
        data = tenant_batches(("a", "b"), steps=4)
        for step in range(4):
            for tenant in ("a", "b"):
                service.submit(tenant, data[tenant][step])
        service.flush()
        assert service.base_digest() == before

    def test_tenants_diverge_from_each_other(self):
        """Different data must produce different adapters (no state bleed)."""
        service = make_service()
        data = tenant_batches(("a", "b"), steps=2)
        for step in range(2):
            for tenant in ("a", "b"):
                service.submit(tenant, data[tenant][step])
        service.flush()
        assert service.tenant_digest("a") != service.tenant_digest("b")

    def test_bitfit_lane_does_not_leak_into_base(self):
        """BitFit trains *backbone-named* biases: they must be private copies,
        not aliases of the shared base arrays."""
        service = make_service(adapters=("bitfit",))
        before = service.base_digest()
        data = tenant_batches(("t",), steps=2)
        for batch in data["t"]:
            service.submit("t", batch, adapter="bitfit")
        service.flush()
        assert service.base_digest() == before
        dedicated = dedicated_adapter("bitfit", data["t"])
        served = service.fetch_adapter("t").state
        for name in dedicated:
            assert np.array_equal(served[name], dedicated[name])


class TestStatePaging:
    def test_eviction_round_trip_preserves_bits(self):
        """Training through evict/re-page cycles == training fully resident.

        The second round's Adam updates consume the restored m/v moments, so
        digest equality after round two proves the whole optimizer state —
        not just the parameters — survives cold storage bit-exactly.
        """
        tenants = [f"t{i}" for i in range(6)]
        data = tenant_batches(tenants, steps=2)

        def run(max_resident):
            service = make_service(max_resident_tenants=max_resident)
            for step in range(2):
                for tenant in tenants:
                    service.submit(tenant, data[tenant][step])
                service.flush()
            return service

        resident = run(8)       # everyone stays resident
        churning = run(2)       # constant evict/re-page churn
        assert resident.gauges()["tenant_evictions"] == 0
        assert churning.gauges()["tenant_evictions"] > 0
        assert churning.gauges()["tenant_pageins"] > 0
        for tenant in tenants:
            assert (resident.fetch_adapter(tenant).digest
                    == churning.fetch_adapter(tenant).digest), tenant

    def test_fetch_adapter_snapshot_is_detached(self):
        service = make_service()
        batch = tenant_batches(("t",), steps=1)["t"][0]
        service.submit("t", batch)
        service.flush()
        snapshot = service.fetch_adapter("t")
        digest = service.tenant_digest("t")
        for array in snapshot.state.values():
            array += 1.0        # mutating the copy must not touch the service
        assert service.tenant_digest("t") == digest
        assert snapshot.step_count == 1

    def test_new_tenant_starts_from_pristine_init(self):
        service = make_service()
        batch = tenant_batches(("old",), steps=1)["old"][0]
        service.submit("old", batch)
        service.flush()
        service.submit("new", batch)   # attaching after "old" trained
        service.flush()
        # Both saw the same single batch from the same init => identical.
        assert (service.tenant_digest("new")
                == dedicated_digest_of_one_step(batch))


def dedicated_digest_of_one_step(batch):
    import hashlib
    state = dedicated_adapter("lora", [batch])
    digest = hashlib.sha256()
    flat = np.concatenate([state[name].ravel() for name in
                           sorted_trainable_names(state)])
    digest.update(np.ascontiguousarray(flat).tobytes())
    return digest.hexdigest()


def sorted_trainable_names(state):
    # The registry's digest runs over the optimizer's parameter order —
    # recover it from a lane-identical model rather than sorting.
    model = build_model(MODEL, seed=0)
    model, _ = get_peft_method("lora")(model)
    return [name for name, param in model.named_parameters()
            if param.requires_grad and name in state]


class TestSchedulingAndCaptures:
    def test_signature_buckets_replay_after_first_step(self):
        service = make_service()
        data = tenant_batches(("a", "b", "c"), steps=4)
        for step in range(4):
            for tenant in ("a", "b", "c"):
                service.submit(tenant, data[tenant][step])
        results = service.flush()
        # One bucket: exactly the first step captures, everything else
        # replays the compiled plan.
        assert [r.replayed for r in results] == [False] + [True] * 11
        gauges = service.gauges()
        assert gauges["warm_capture_hit_rate"] == 1.0
        assert gauges["capture_hit_rate"] >= 0.9

    def test_mixed_lengths_bucket_separately_and_both_replay(self):
        service = make_service()
        rng = np.random.default_rng(5)
        for step in range(3):
            service.submit("short", rng.integers(0, 100, size=(2, SEQ)))
            service.submit("long", rng.integers(0, 100, size=(2, 2 * SEQ)))
        results = service.flush()
        buckets = {r.bucket for r in results}
        assert len(buckets) == 2
        captures = [r for r in results if not r.replayed]
        assert len(captures) == 2  # one per bucket, never more

    def test_padding_routes_to_bucket(self):
        service = make_service()
        rng = np.random.default_rng(6)
        ragged = rng.integers(0, 100, size=(2, SEQ - 3))
        exact = rng.integers(0, 100, size=(2, SEQ))
        key_ragged = service.bucket_key("lora", *service.pad_to_bucket(ragged))
        key_exact = service.bucket_key("lora", *service.pad_to_bucket(exact))
        assert key_ragged == key_exact
        with pytest.raises(ValueError):
            service.pad_to_bucket(rng.integers(0, 100, size=(2, 5 * SEQ)))

    def test_max_wait_deadline_prevents_starvation(self):
        queue = SignatureBucketQueue(max_wait_steps=3)
        hot, cold = ("hot",), ("cold",)
        queue.submit(cold, StepRequest(request_id=0, tenant="c", adapter="lora",
                                       input_ids=np.zeros(1), submit_step=0))
        for i in range(1, 10):
            queue.submit(hot, StepRequest(request_id=i, tenant="h",
                                          adapter="lora",
                                          input_ids=np.zeros(1),
                                          submit_step=i))
        # Serving from the hot bucket: once the cold head has waited
        # max_wait_steps service steps, it preempts the hot run.
        served = []
        current, now = hot, 1
        while queue:
            key = queue.select(current, now)
            served.append(queue.pop(key).tenant)
            current, now = key, now + 1
        assert "c" in served[:4], served  # bounded, not starved to the end

    def test_plan_cache_eviction_recaptures_cleanly(self):
        service = make_service(max_plan_cache=1)
        rng = np.random.default_rng(9)
        short = [rng.integers(0, 100, size=(2, SEQ)) for _ in range(2)]
        long = [rng.integers(0, 100, size=(2, 2 * SEQ)) for _ in range(2)]
        # Alternate buckets with a cache of one: every switch evicts the
        # other bucket's capture, so steps keep working (re-capturing), just
        # without the cross-bucket plan reuse a larger cache would keep.
        for s, l in zip(short, long):
            service.submit("t", s)
            service.flush()
            service.submit("t", l)
            service.flush()
        assert service.gauges()["serve_steps"] == 4
        assert service.gauges()["plan_caches"] <= 1


class TestServiceSurface:
    def test_public_facade_exports(self):
        import repro
        for name in ("create_model", "build_model", "apply_lora",
                     "get_peft_method", "FineTuner", "TrainingConfig",
                     "CaptureConfig", "AttentionConfig",
                     "train_data_parallel", "FineTuningService",
                     "ServiceConfig"):
            assert name in repro.__all__ and hasattr(repro, name), name
        assert repro.create_model is repro.build_model

    def test_unknown_adapter_and_tenant_raise(self):
        service = make_service()
        with pytest.raises(KeyError):
            service.submit("t", np.zeros((1, SEQ), dtype=np.int64),
                           adapter="nope")
        with pytest.raises(KeyError):
            service.fetch_adapter("ghost")

    def test_idle_step_returns_none(self):
        service = make_service()
        assert service.step() is None
        assert service.flush() == []
