"""Step-capture runtime tests: arena, planned replay, allocation regression.

Three concerns, three marker tiers:

* ``-m parity`` — captured-vs-uncaptured *bitwise* parity over full training
  steps for every backend × fused-toggle combination (losses, per-step
  gradients, optimizer state, parameters), via the shared harness in
  :mod:`parity`;
* ``-m alloc`` (also ``perf_smoke``) — the allocation-regression gate: once
  a step is captured, subsequent steps must perform **zero** new arena
  allocations for the dense, oracle-sparse and predicted configurations, and
  a sequence-length change must trigger exactly one re-capture;
* unmarked unit tests for :class:`BufferArena` and the tape-plan machinery.
"""

from __future__ import annotations

import numpy as np
import pytest

import parity
from repro.models import build_model
from repro.optim import Adam
from repro.peft import apply_lora
from repro.runtime import (AttentionConfig, BufferArena, CaptureConfig,
                           FineTuner, StepCapture, TrainingConfig)
from repro.sparsity import LongExposure, LongExposureConfig
from repro.tensor import arena as tensor_arena
from repro.tensor.tensor import PlanMismatchError, Tensor, set_tape


# ---------------------------------------------------------------------------
# BufferArena unit tests
# ---------------------------------------------------------------------------

def test_arena_take_miss_then_generation_hit():
    arena = BufferArena()
    a = arena.take((4, 3))
    b = arena.take((4, 3))
    assert a is not b                      # same generation -> distinct buffers
    assert arena.misses == 2 and arena.hits == 0
    arena.next_generation()
    c = arena.take((4, 3))
    d = arena.take((4, 3))
    assert {id(c), id(d)} == {id(a), id(b)}   # recycled wholesale
    assert arena.misses == 2 and arena.hits == 2
    assert arena.last_generation_misses == 2


def test_arena_keys_on_shape_and_dtype():
    arena = BufferArena()
    a = arena.take((8,), np.float32)
    arena.next_generation()
    assert arena.take((8,), np.float64) is not a   # dtype mismatch
    assert arena.take((4,), np.float32) is not a   # shape mismatch
    assert arena.take((8,), np.float32) is a


def test_arena_release_recycles_mid_generation():
    arena = BufferArena()
    a = arena.take((16,))
    assert arena.owns(a)
    assert arena.release(a)
    assert not arena.owns(a)
    assert arena.take((16,)) is a          # same generation reuse
    # Foreign arrays are ignored; a double release must not duplicate the
    # pool entry (two takers sharing one buffer would corrupt data).
    assert not arena.release(np.zeros(16, np.float32))
    assert arena.release(a)
    assert not arena.release(a)            # double release is a no-op
    b = arena.take((16,))
    c = arena.take((16,))
    assert b is a and c is not a           # the pool held exactly one copy
    view = arena.take((16,))[:4]
    assert not arena.release(view)         # views are never pooled


def test_arena_zeroed_take():
    arena = BufferArena()
    a = arena.take((5,), zero=True)
    assert np.all(a == 0)
    a[:] = 7.0
    arena.next_generation()
    b = arena.take((5,), zero=True)
    assert b is a and np.all(b == 0)       # re-zeroed on reuse


def test_arena_trim_drops_free_pools_only():
    arena = BufferArena()
    held = arena.take((8, 8))
    arena.take((4, 4))
    arena.next_generation()          # both free
    live = arena.take((4, 4))        # one back in flight
    freed = arena.trim()
    assert freed == 8 * 8 * 4        # only the free (8, 8) buffer dropped
    assert arena.owns(live)          # outstanding buffer untouched
    assert arena.take((8, 8)) is not held
    assert held is not None


def test_integer_division_matches_uncaptured_under_arena():
    # np.divide promotes int operands to float64; the arena out-buffer must
    # follow suit instead of handing the ufunc an integer buffer.
    a = Tensor(np.array([4, 9], dtype=np.int64))
    b = Tensor(np.array([2, 3], dtype=np.int64))
    plain = (a / b).data
    with tensor_arena.scope(BufferArena()):
        arena_backed = (a / b).data
    assert plain.dtype == arena_backed.dtype
    assert np.array_equal(plain, arena_backed)


def test_zero_warmup_captures_on_the_first_step():
    capture = StepCapture(warmup_steps=0)
    w = Tensor(np.ones(3, np.float32), requires_grad=True)
    capture.begin_step(("sig",))
    capture.run_backward(_loss_chain(w))
    capture.end_step()
    w.grad = None
    assert capture.captures == 1          # step 1 IS the capture step
    capture.begin_step(("sig",))
    capture.run_backward(_loss_chain(w))
    capture.end_step()
    assert capture.replay_steps == 1      # step 2 already replays
    assert capture.recaptures == 0        # no signature change ever happened


def test_repeated_replay_fallbacks_switch_capture_off():
    capture = StepCapture(warmup_steps=0, max_failures=2)
    w = Tensor(np.ones(3, np.float32), requires_grad=True)
    losses = []
    for step in range(4):
        capture.begin_step(("sig",))
        # Alternate graph wiring under one signature: every replay mismatches.
        loss = _loss_chain(w) if step % 2 == 0 else _loss_cross(w)
        capture.run_backward(loss)
        capture.end_step()
        losses.append(float(loss.data))
        w.grad = None
    assert capture.fallbacks >= 1
    assert capture.state == capture.OFF   # kill-switch engaged
    assert capture.arena.takes == 0       # retired pool swapped for an empty one
    assert all(np.isfinite(losses))


def test_replay_streak_forgives_isolated_fallbacks():
    capture = StepCapture(warmup_steps=0, max_failures=2)
    capture.FAILURE_RESET_REPLAYS  # class constant, default 8
    w = Tensor(np.ones(3, np.float32), requires_grad=True)

    def run_step(cross: bool):
        capture.begin_step(("sig",))
        loss = _loss_cross(w) if cross else _loss_chain(w)
        capture.run_backward(loss)
        capture.end_step()
        w.grad = None

    # capture + healthy streak, one fallback, another healthy streak, one
    # fallback: isolated recovered mismatches must NOT disable capture.
    for phase in range(2):
        run_step(cross=bool(phase))       # (re)capture on the new wiring
        for _ in range(capture.FAILURE_RESET_REPLAYS + 1):
            run_step(cross=bool(phase))   # healthy replays reset _failures
    run_step(cross=False)                 # second wiring flip -> one fallback
    assert capture.fallbacks == 2         # one per wiring flip
    assert capture.state == capture.REPLAY   # kill-switch never engaged


def test_arena_helpers_degrade_without_active_arena():
    assert tensor_arena.active() is None
    buf = tensor_arena.empty((3,))
    assert isinstance(buf, np.ndarray)
    tensor_arena.release(buf)              # no-op
    assert np.all(tensor_arena.zeros((3,)) == 0)


# ---------------------------------------------------------------------------
# tape-plan machinery
# ---------------------------------------------------------------------------

def _loss_mul(w):
    return (w * 2.0).sum()


def _loss_chain(w):
    x = w * 2.0
    return (x * x).sum()


def _loss_cross(w):
    x = w * 2.0
    return (x * w).sum()


def test_plan_record_and_replay_bitwise():
    w = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3), requires_grad=True)
    tape = []
    set_tape(tape)
    try:
        plan = _loss_mul(w).backward(tape=tape, record=True)
    finally:
        set_tape(None)
    assert plan is not None
    reference = w.grad.copy()
    w.grad = None
    tape2 = []
    set_tape(tape2)
    try:
        _loss_mul(w).backward(tape=tape2, plan=plan)
    finally:
        set_tape(None)
    assert np.array_equal(w.grad, reference)


def test_plan_mismatch_raises_before_touching_grads():
    w = Tensor(np.ones((2, 2), np.float32), requires_grad=True)
    tape = []
    set_tape(tape)
    try:
        plan = _loss_chain(w).backward(tape=tape, record=True)
    finally:
        set_tape(None)
    w.grad = None
    tape2 = []
    set_tape(tape2)
    try:
        loss = _loss_cross(w)            # same tape length, rewired parents
        with pytest.raises(PlanMismatchError):
            loss.backward(tape=tape2, plan=plan)
    finally:
        set_tape(None)
    assert w.grad is None                # validated before any accumulation
    loss.backward()                      # uncaptured fallback still works
    assert w.grad is not None


def test_unfreezing_recorded_constant_invalidates_plan():
    # A parameter frozen at capture time is recorded as a gradient-free
    # constant; flipping requires_grad mid-training must invalidate the plan
    # (its gradient is absent from the recorded schedule and would be
    # silently dropped otherwise).
    w = Tensor(np.ones(3, np.float32), requires_grad=True)
    frozen = Tensor(np.full(3, 2.0, np.float32), requires_grad=False)
    tape = []
    set_tape(tape)
    try:
        plan = (w * frozen).sum().backward(tape=tape, record=True)
    finally:
        set_tape(None)
    assert plan is not None
    w.grad = None
    frozen.requires_grad = True            # staged unfreezing
    tape2 = []
    set_tape(tape2)
    try:
        loss = (w * frozen).sum()
        with pytest.raises(PlanMismatchError):
            loss.backward(tape=tape2, plan=plan)
        loss.backward()                    # uncaptured fallback
    finally:
        set_tape(None)
    assert np.array_equal(frozen.grad, np.ones(3, np.float32))


def test_recapture_trims_previous_steps_working_set():
    tuner, ids, capture = _build_tuner("dense")
    for _ in range(4):
        tuner.step(ids)
    held_before = capture.arena.bytes_held
    tuner.step(ids[:, :16])                # shape change -> trim + re-capture
    # The old-shape working set (outstanding at trim time) must have been
    # recycled *before* the trim, so it was actually dropped.
    assert capture.arena.bytes_held < held_before
    tuner.step(ids[:, :16])
    assert capture.last_step_allocations == 0
    # Per-step constants (e.g. the fresh ``1/count`` Tensor a mean creates
    # every step) are recorded as "don't care": the plan pins only the
    # *ordering* among gradient-carrying nodes, and the replayed closures are
    # always the current step's own, so values stay exact.
    w = Tensor(np.arange(4, dtype=np.float32), requires_grad=True)
    tape = []
    set_tape(tape)
    try:
        plan = _loss_mul(w).backward(tape=tape, record=True)
    finally:
        set_tape(None)
    w.grad = None
    tape2 = []
    set_tape(tape2)
    try:
        (w * 5.0).sum().backward(tape=tape2, plan=plan)
    finally:
        set_tape(None)
    assert np.array_equal(w.grad, np.full(4, 5.0, np.float32))


def test_plan_not_recordable_with_external_interior_node():
    w = Tensor(np.ones(3, np.float32), requires_grad=True)
    outside = w * 3.0                    # interior node created off-tape
    tape = []
    set_tape(tape)
    try:
        plan = (outside * w).sum().backward(tape=tape, record=True)
    finally:
        set_tape(None)
    assert plan is None                  # capture declines, gradients still flow
    assert w.grad is not None


# ---------------------------------------------------------------------------
# captured-vs-uncaptured bitwise parity (full training steps)
# ---------------------------------------------------------------------------

@pytest.mark.parity
@pytest.mark.parametrize("fused_enabled", [True, False],
                         ids=["fused", "reference"])
@pytest.mark.parametrize("backend", parity.CAPTURE_BACKENDS)
def test_captured_steps_bitwise_identical(backend, fused_enabled):
    parity.assert_capture_parity(backend, fused_enabled, steps=3)


# ---------------------------------------------------------------------------
# full-step compiler: compiled-vs-interpreted bitwise parity
# ---------------------------------------------------------------------------
#
# The full-plan axis: with ``compile_full_step=True`` the steady-state step
# replays forward + backward + optimizer tail from the compiled plan.  The
# trajectory (losses, per-step gradients, Adam moments, final parameters)
# must stay bitwise identical to the plain interpreted run.  Where the
# compiler cannot engage — reference kernels (no recorded seams) or oracle
# mode (trainable base weights in the sparse MLP) — it must stay cold and
# degrade to the PR-5 backward-only replay, still bitwise identical.

@pytest.mark.parity
@pytest.mark.parametrize("threads", [1, 4], ids=["threads1", "threads4"])
@pytest.mark.parametrize("fused_enabled", [True, False],
                         ids=["fused", "reference"])
@pytest.mark.parametrize("backend", parity.CAPTURE_BACKENDS)
def test_full_step_bitwise_identical(backend, fused_enabled, threads):
    parity.assert_full_step_parity(backend, fused_enabled, threads=threads)


# ---------------------------------------------------------------------------
# allocation regression (-m alloc / perf_smoke)
# ---------------------------------------------------------------------------

def _build_tuner(backend: str, seq: int = 32):
    model_name = "gpt2-tiny" if backend == "dense" else "opt-tiny"
    model = build_model(model_name, seed=0)
    rng = np.random.default_rng(3)
    engine = None
    if backend != "dense":
        calib = rng.integers(0, model.config.vocab_size, size=(2, seq))
        engine = LongExposure(LongExposureConfig(
            block_size=16, seed=0, oracle_mode=(backend == "oracle"),
            predictor_epochs=2, calibration_lengths=(seq,)))
        engine.prepare(model, [calib])
    if backend == "predicted":
        apply_lora(model)
    if engine is not None:
        engine.install(model)
    optimizer = Adam(model.trainable_parameters(), lr=1e-3)
    capture = StepCapture()
    tuner = FineTuner(model, TrainingConfig(), optimizer=optimizer,
                      engine=engine, capture=capture)
    ids = rng.integers(0, model.config.vocab_size, size=(2, seq))
    return tuner, ids, capture


@pytest.mark.perf_smoke
@pytest.mark.alloc
@pytest.mark.parametrize("backend", ["dense", "oracle", "predicted"])
def test_zero_allocations_after_capture(backend):
    tuner, ids, capture = _build_tuner(backend)
    try:
        tuner.step(ids)                            # warm-up (uncaptured)
        tuner.step(ids)                            # capture step (allocates)
        assert capture.captures == 1
        capture_allocs = capture.last_step_allocations
        assert capture_allocs > 0                  # the capture step populates
        for _ in range(2):                         # steps N+1, N+2: replay
            tuner.step(ids)
            assert capture.last_step_allocations == 0, \
                f"{backend}: captured steady state still allocates"
        assert capture.replay_steps == 2
        assert capture.fallbacks == 0
    finally:
        if tuner.engine is not None:
            tuner.engine.uninstall(tuner.model)


def _build_full_tuner(backend: str, seq: int = 32, threads: int = 1,
                      predict_interval: int = 4):
    """Like :func:`_build_tuner` but with the full-step compiler armed.

    ``predict_interval=4`` leaves reuse steps 2-4 between refreshes: capture
    plus full compile on step 2, compiled replays on steps 3-4.
    """
    model_name = "gpt2-tiny" if backend == "dense" else "opt-tiny"
    model = build_model(model_name, seed=0)
    rng = np.random.default_rng(3)
    engine = None
    if backend != "dense":
        calib = rng.integers(0, model.config.vocab_size, size=(2, seq))
        engine = LongExposure(LongExposureConfig(
            block_size=16, seed=0, oracle_mode=(backend == "oracle"),
            predictor_epochs=2, predict_interval=predict_interval,
            calibration_lengths=(seq,)))
        engine.prepare(model, [calib])
    if backend == "predicted":
        apply_lora(model)
    if engine is not None:
        engine.install(model)
    optimizer = Adam(model.trainable_parameters(), lr=1e-3)
    capture = StepCapture()
    tuner = FineTuner(model,
                      TrainingConfig(capture=CaptureConfig(
                          compile_full_step=True,
                          executor_threads=threads)),
                      optimizer=optimizer, engine=engine, capture=capture)
    ids = rng.integers(0, model.config.vocab_size, size=(2, seq))
    return tuner, ids, capture


@pytest.mark.perf_smoke
@pytest.mark.alloc
@pytest.mark.parametrize("backend", ["dense", "predicted"])
def test_full_step_zero_graph_builds_and_allocations(backend):
    # The tentpole gate: once the full plan is compiled, a steady-state step
    # builds ZERO Python graph nodes (the graph was built exactly once, at
    # capture) and performs ZERO arena allocations.
    from repro.tensor.tensor import node_build_count

    tuner, ids, capture = _build_full_tuner(backend)
    try:
        tuner.step(ids)                            # warm-up (uncaptured)
        tuner.step(ids)                            # capture + full compile
        assert capture.full_captures == 1, capture.full_fail_reason
        for _ in range(2):                         # steps 3-4: compiled replay
            before = node_build_count()
            tuner.step(ids)
            assert node_build_count() == before, \
                f"{backend}: compiled step still builds graph nodes"
            assert capture.last_step_allocations == 0, \
                f"{backend}: compiled step still allocates"
        assert capture.full_replays == 2
        assert capture.full_fallbacks == 0
    finally:
        if tuner.engine is not None:
            tuner.engine.uninstall(tuner.model)


@pytest.mark.perf_smoke
@pytest.mark.alloc
def test_full_step_refresh_steps_run_interpreted():
    # Mask-refresh steps cannot replay the compiled forward (probe logic is
    # Python control flow); they must fall back to the interpreted step +
    # PR-5 backward replay, then resume compiled replays while the layouts
    # hold still (the batch is fixed, so they do).
    tuner, ids, capture = _build_full_tuner("predicted", predict_interval=4)
    try:
        for _ in range(4):                         # warm-up, capture, 2 replays
            tuner.step(ids)
        assert capture.full_replays == 2
        tuner.step(ids)                            # step 5: scheduled refresh
        assert capture.full_replays == 2           # compiled path skipped
        assert capture.replay_steps >= 1           # PR-5 replay took the step
        tuner.step(ids)                            # step 6: layouts unchanged
        assert capture.full_replays == 3           # compiled replay resumed
        assert capture.full_fallbacks == 0
    finally:
        tuner.engine.uninstall(tuner.model)


@pytest.mark.perf_smoke
@pytest.mark.alloc
def test_shape_change_triggers_exactly_one_recapture():
    tuner, ids, capture = _build_tuner("dense")
    for _ in range(4):
        tuner.step(ids)
    assert capture.state == capture.REPLAY and capture.recaptures == 0
    short = ids[:, :16]
    tuner.step(short)                              # re-capture at new shape
    assert capture.recaptures == 1
    assert capture.captures == 2
    tuner.step(short)                              # replay at new shape
    tuner.step(short)
    assert capture.recaptures == 1                 # exactly one
    assert capture.state == capture.REPLAY
    assert capture.last_step_allocations == 0


@pytest.mark.perf_smoke
@pytest.mark.alloc
def test_alternating_shapes_trip_the_kill_switch():
    # Batches whose shape flips every step re-capture without ever replaying
    # (sterile captures); capture must switch itself off instead of paying
    # capture bookkeeping + full arena reallocation forever.
    tuner, ids, capture = _build_tuner("dense")
    short = ids[:, :16]
    for step in range(12):
        tuner.step(ids if step % 2 == 0 else short)
        if capture.state == capture.OFF:
            break
    assert capture.state == capture.OFF
    assert capture.replay_steps == 0          # no plan ever got replayed
    assert capture.arena.takes == 0           # retired pool dropped
    # Training keeps working uncaptured.
    loss, _ = tuner.step(ids)
    assert np.isfinite(loss)


@pytest.mark.perf_smoke
@pytest.mark.alloc
def test_fused_toggle_change_invalidates_plan():
    from repro.tensor import fused

    tuner, ids, capture = _build_tuner("dense")
    for _ in range(3):
        tuner.step(ids)
    assert capture.state == capture.REPLAY
    fused.set_fused_kernels(False)
    try:
        tuner.step(ids)                            # signature change -> recapture
        assert capture.recaptures == 1
        tuner.step(ids)
        assert capture.last_step_allocations == 0
    finally:
        fused.set_fused_kernels(True)


@pytest.mark.perf_smoke
@pytest.mark.alloc
def test_capture_gauges_reach_profiler():
    tuner, ids, capture = _build_tuner("dense")
    for _ in range(3):
        tuner.step(ids)
    gauges = tuner.profiler.summary_dict()["gauges"]
    for key in ("arena_allocations_step", "arena_bytes", "arena_hit_rate",
                "arena_evictions", "capture_replay_steps",
                "capture_recaptures", "capture_fallbacks",
                "capture_full_captures", "capture_full_replays",
                "capture_full_fallbacks"):
        assert key in gauges
    assert gauges["arena_allocations_step"] == 0.0
    assert gauges["arena_bytes"] > 0
    assert gauges["capture_replay_steps"] >= 1.0
    assert capture.summary().startswith("StepCapture(")


@pytest.mark.perf_smoke
@pytest.mark.alloc
def test_capture_mode_leaves_globals_clean():
    from repro.tensor.tensor import current_tape

    tuner, ids, _ = _build_tuner("dense")
    for _ in range(3):
        tuner.step(ids)
    assert tensor_arena.active() is None
    assert current_tape() is None


# ---------------------------------------------------------------------------
# streaming tiled attention: capture parity, heap steadiness, the memory wall
# ---------------------------------------------------------------------------

def _build_streaming_tuner(streaming: bool, seq: int = 48, tile: int = 16,
                           full: bool = False, batch: int = 2):
    """Dense gpt2-tiny tuner with the streaming toggle wired via the config."""
    model = build_model("gpt2-tiny", seed=0)
    rng = np.random.default_rng(3)
    optimizer = Adam(model.trainable_parameters(), lr=1e-3)
    capture = StepCapture()
    tuner = FineTuner(model,
                      TrainingConfig(
                          attention=AttentionConfig(streaming=streaming,
                                                    streaming_tile=tile),
                          capture=CaptureConfig(compile_full_step=full,
                                                executor_threads=1)),
                      optimizer=optimizer, capture=capture)
    ids = rng.integers(0, model.config.vocab_size, size=(batch, seq))
    return tuner, ids, capture


@pytest.mark.parity
@pytest.mark.parametrize("full", [False, True], ids=["captured", "compiled"])
def test_streaming_capture_replay_bitwise_identical(full):
    # The streaming kernels' recorded replay thunks must reproduce the
    # interpreted streaming step bit for bit (executor_threads=1 contract);
    # seq=48 with tile=16 exercises multiple tiles per row block.
    from repro.tensor import fused

    try:
        results = []
        for use_capture in (False, True):
            tuner, ids, capture = _build_streaming_tuner(
                True, full=(full and use_capture))
            if not use_capture:
                tuner.capture = None
            losses = [tuner.step(ids)[0] for _ in range(4)]
            params = [p.data.copy() for p in tuner.optimizer.params]
            results.append((losses, params, capture))
        (base_losses, base_params, _), (cap_losses, cap_params, cap) = results
        assert base_losses == cap_losses
        for a, b in zip(base_params, cap_params):
            assert np.array_equal(a, b)
        assert cap.captures >= 1
        if full:
            assert cap.full_captures >= 1 and cap.full_replays >= 1, \
                cap.full_fail_reason
    finally:
        fused.set_streaming_attention(False)


@pytest.mark.perf_smoke
@pytest.mark.alloc
@pytest.mark.parametrize("full", [False, True], ids=["captured", "compiled"])
def test_streaming_zero_allocations_after_capture(full):
    from repro.tensor import fused

    tuner, ids, capture = _build_streaming_tuner(True, full=full)
    try:
        tuner.step(ids)                            # warm-up
        tuner.step(ids)                            # capture (+ full compile)
        assert capture.captures == 1
        if full:
            assert capture.full_captures == 1, capture.full_fail_reason
        for _ in range(2):
            tuner.step(ids)
            assert capture.last_step_allocations == 0, \
                "streaming captured steady state still allocates"
        if full:
            assert capture.full_replays == 2
    finally:
        fused.set_streaming_attention(False)


@pytest.mark.perf_smoke
@pytest.mark.alloc
@pytest.mark.parametrize("streaming", [False, True],
                         ids=["materializing", "streaming"])
def test_replayed_steps_heap_steady(streaming):
    # Deeper gate than the arena counters: tracemalloc sees *every* heap
    # allocation, so per-step ufunc temporaries the arena never notices
    # (``denom = x.sum(...)``, an ``~attn_mask`` inside a masked fill) show
    # up here as peak-traced-memory deltas at array scale — a
    # (1, 4, 256, 256) float32 temp is 1 MiB against a 128 KiB budget.
    # The irreducible floor under the budget is NumPy's constant-size
    # broadcast-iterator buffers (~32 KiB per buffered in-place broadcast
    # op, sequence-independent), ~65 KiB peak at this config.  Steady-state
    # heap *growth* is gated separately after a gc.collect() — graph-node
    # reference cycles are reclaimed by the cycle collector, not refcounts,
    # so without the collect the reading would race GC scheduling; the
    # remaining ~2 KiB/step drift is tracemalloc's own trace table plus
    # arena bookkeeping reaching steady state, far below the 64 KiB/step
    # signature of leaking even a single (256, 64) float32 tile.
    import gc
    import tracemalloc

    from repro.tensor import fused

    tuner, ids, capture = _build_streaming_tuner(streaming, seq=256, tile=64,
                                                 batch=1)
    try:
        for _ in range(8):                         # warm-up, capture, replays
            tuner.step(ids)
        assert capture.replay_steps >= 1
        gc.collect()
        tracemalloc.start()
        for _ in range(2):                         # stabilise tracer overhead
            tuner.step(ids)
        gc.collect()
        current0, _ = tracemalloc.get_traced_memory()
        for _ in range(3):
            tracemalloc.reset_peak()
            before, _ = tracemalloc.get_traced_memory()
            tuner.step(ids)
            _, peak = tracemalloc.get_traced_memory()
            assert capture.last_step_allocations == 0
            assert peak - before < 128 * 1024, \
                f"replayed step allocated {peak - before} transient heap bytes"
        gc.collect()
        current, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert current - current0 < 24 * 1024, \
            f"3 replayed steps grew the heap by {current - current0} bytes"
    finally:
        if tracemalloc.is_tracing():
            tracemalloc.stop()
        fused.set_streaming_attention(False)


@pytest.mark.perf_smoke
@pytest.mark.alloc
def test_seq4096_streaming_breaks_memory_wall():
    # The tentpole gate: a seq-4096 batch-1 LoRA step through the streaming
    # kernel must peak at < 1/4 of the materializing path's traced memory
    # (the materializing path holds (1, heads, 4096, 4096) score/probability
    # buffers; streaming keeps O(seq * tile) scratch plus the logsumexp).
    import tracemalloc

    from repro.models import ModelConfig
    from repro.tensor import fused

    cfg = ModelConfig(name="longctx-nano", family="gpt2", vocab_size=128,
                      max_seq_len=4096, dim=32, num_layers=1, num_heads=2,
                      activation="gelu", sparsify_init=False)
    ids = np.random.default_rng(5).integers(0, cfg.vocab_size, size=(1, 4096))
    peaks = {}
    try:
        for streaming in (False, True):
            model = build_model(cfg, seed=0)
            apply_lora(model)
            tuner = FineTuner(model,
                              TrainingConfig(attention=AttentionConfig(
                                  streaming=streaming, streaming_tile=128)))
            tracemalloc.start()
            loss, _ = tuner.step(ids)
            _, peaks[streaming] = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            assert np.isfinite(loss)
            fused.set_streaming_attention(False)
        assert peaks[True] * 4 < peaks[False], \
            f"streaming peak {peaks[True]} not <1/4 of " \
            f"materializing {peaks[False]}"
    finally:
        if tracemalloc.is_tracing():
            tracemalloc.stop()
        fused.set_streaming_attention(False)
