"""Tests of the synthetic data substrate and the sparse-attention baselines."""

import numpy as np
import pytest

from repro.baselines import (
    UnstructuredSparseMLPBackend,
    bigbird_block_masks,
    install_fixed_mask_backend,
    longformer_block_masks,
    shadowy_uniform_masks,
)
from repro.baselines.sparse_attention import restore_backends
from repro.data import (
    AlpacaDatasetGenerator,
    BatchLoader,
    E2EDatasetGenerator,
    Tokenizer,
    Vocabulary,
    build_task_suite,
    evaluate_model_on_task,
)
from repro.models import build_model
from repro.sparsity.exposer import AttentionExposer
from repro.sparsity.patterns import build_default_pool, causal_block_mask
from repro.tensor import Tensor


class TestTokenizer:
    def test_vocabulary_roundtrip(self):
        vocab = Vocabulary(words=["alpha", "beta"])
        assert vocab.word_of(vocab.id_of("alpha")) == "alpha"
        assert vocab.id_of("missing") == vocab.unk_id
        assert len(vocab) == 6

    def test_vocabulary_from_corpus_frequency_sorted(self):
        vocab = Vocabulary.from_corpus(["a a a b b c"], max_size=6)
        assert vocab.id_of("a") < vocab.id_of("b")

    def test_tokenizer_encode_decode(self):
        vocab = Vocabulary(words=["hello", "world"])
        tokenizer = Tokenizer(vocab)
        ids = tokenizer.encode("hello world")
        assert ids[0] == vocab.bos_id and ids[-1] == vocab.eos_id
        assert tokenizer.decode(ids) == "hello world"

    def test_encode_batch_pads_and_truncates(self):
        tokenizer = Tokenizer(Vocabulary(words=["x"]))
        batch = tokenizer.encode_batch(["x x x", "x"], seq_len=4)
        assert batch.shape == (2, 4)
        batch8 = tokenizer.encode_batch(["x"], seq_len=5, pad_to_multiple=8)
        assert batch8.shape == (1, 8)


class TestCorpora:
    @pytest.mark.parametrize("generator_cls", [E2EDatasetGenerator, AlpacaDatasetGenerator])
    def test_token_batches_shapes_and_vocab_bounds(self, generator_cls):
        generator = generator_cls(seed=0)
        batches = generator.token_batches(2, batch_size=3, seq_len=48, vocab_size=512)
        assert len(batches) == 2
        for batch in batches:
            assert batch.shape == (3, 48)
            assert batch.min() >= 0 and batch.max() < 512

    def test_e2e_examples_follow_grammar(self):
        generator = E2EDatasetGenerator(seed=1)
        example = generator.sample_example()
        assert example.attributes["name"] in example.meaning_representation
        assert "<sep>" in example.text

    def test_alpaca_responses_are_consistent_with_world(self):
        from repro.data.alpaca import WORLD
        generator = AlpacaDatasetGenerator(seed=2)
        for example in generator.sample_examples(20):
            assert example.text.startswith("instruction")
            assert any(obj in example.instruction for obj in WORLD)

    def test_generators_are_deterministic_per_seed(self):
        a = E2EDatasetGenerator(seed=5).token_batches(1, 2, 32)[0]
        b = E2EDatasetGenerator(seed=5).token_batches(1, 2, 32)[0]
        np.testing.assert_array_equal(a, b)


class TestTasks:
    def test_suite_contains_five_tasks(self):
        suite = build_task_suite(examples_per_task=4, seed=0)
        assert set(suite.names()) == {"piqa", "winogrande", "rte", "copa", "hellaswag"}
        for task in suite.tasks.values():
            assert len(task) == 4
            for example in task.examples:
                assert 0 <= example.answer_index < len(example.choices)

    def test_evaluation_returns_accuracy_and_stderr(self, tiny_model):
        suite = build_task_suite(examples_per_task=4, seed=0)
        result = evaluate_model_on_task(tiny_model, suite.tasks["copa"], suite.tokenizer,
                                        vocab_size=tiny_model.config.vocab_size)
        assert 0.0 <= result["accuracy"] <= 1.0
        assert result["n"] == 4


class TestBatchLoader:
    def test_cycles_and_shuffles(self):
        batches = [np.full((2, 4), i) for i in range(3)]
        loader = BatchLoader(batches, shuffle=True, seed=0)
        taken = list(loader.take(7))
        assert len(taken) == 7
        assert loader.batch_size == 2 and loader.seq_len == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BatchLoader([])


class TestBaselines:
    def test_longformer_masks_are_uniform_and_causal(self):
        masks = longformer_block_masks(seq_len=128, num_heads=4, block_size=16)
        assert masks.shape == (4, 8, 8)
        assert np.all(masks[0] == masks[3])
        assert not np.any(np.triu(masks[0], k=1))
        assert np.all(np.diag(masks[0]))

    def test_bigbird_adds_random_blocks(self):
        lf = longformer_block_masks(256, 2, 16, window_blocks=3, global_blocks=1)
        bb = bigbird_block_masks(256, 2, 16, window_blocks=3, global_blocks=1,
                                 random_blocks=2, seed=0)
        assert bb.sum() >= lf.sum()

    def test_shadowy_uniform_mask_covers_all_heads(self, tiny_model, tiny_batches):
        from repro.sparsity.predictor.collect import collect_layer_data
        collected = collect_layer_data(tiny_model, tiny_batches[:1])
        probs = collected[0].merged()["attention_probs"]
        exposer = AttentionExposer(build_default_pool(), block_size=16, coverage=0.9)
        uniform = shadowy_uniform_masks(probs, exposer)
        per_head = exposer.raw_block_masks(probs)
        assert uniform.shape == per_head.shape
        # The uniform mask is the union, hence at least as dense as any head.
        assert np.all(uniform[0] == np.any(per_head, axis=0))

    def test_fixed_mask_backend_runs_and_restores(self, tiny_batches):
        model = build_model("opt-tiny", seed=0)
        masks = longformer_block_masks(64, model.config.num_heads, 16)
        saved = install_fixed_mask_backend(model, masks, block_size=16)
        loss, _ = model.loss(tiny_batches[0])
        assert np.isfinite(float(loss.data))
        restore_backends(saved)
        from repro.nn.attention import DenseAttentionBackend
        assert all(isinstance(b.attention.backend, DenseAttentionBackend) for b in model.blocks)

    def test_unstructured_mlp_backend_matches_dense_output(self):
        from repro.nn.mlp import MLPBlock
        rng = np.random.default_rng(0)
        mlp = MLPBlock(dim=16, hidden_dim=32, activation="relu",
                       rng=np.random.default_rng(1))
        x = Tensor(rng.normal(size=(2, 5, 16)).astype(np.float32), requires_grad=True)
        dense = mlp(x)
        backend = UnstructuredSparseMLPBackend()
        sparse = backend(mlp, x)
        np.testing.assert_allclose(sparse.data, dense.data, rtol=1e-4, atol=1e-5)
        assert 0 < backend.last_density <= 1
        sparse.sum().backward()
        assert mlp.fc1.weight.grad is not None
