"""Unit and property-based tests of the autodiff engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor.tensor import concatenate, embedding_lookup, stack, where


def numeric_grad(fn, x, eps=1e-3):
    """Central finite differences of a scalar function of an array."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = fn(x)
        flat[i] = original - eps
        down = fn(x)
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def check_unary(op, x, **kwargs):
    t = Tensor(x.copy(), requires_grad=True)
    out = op(t, **kwargs)
    out.sum().backward()
    analytic = t.grad
    numeric = numeric_grad(lambda arr: float(op(Tensor(arr), **kwargs).sum().data), x.copy())
    np.testing.assert_allclose(analytic, numeric, rtol=2e-2, atol=2e-3)


class TestElementwiseGradients:
    def setup_method(self):
        self.rng = np.random.default_rng(0)

    def test_add_broadcast(self):
        a = Tensor(self.rng.normal(size=(3, 4)).astype(np.float32), requires_grad=True)
        b = Tensor(self.rng.normal(size=(4,)).astype(np.float32), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_mul_grad(self):
        x = self.rng.normal(size=(5,)).astype(np.float32)
        check_unary(lambda t: t * t, x)

    def test_div_grad(self):
        a = Tensor(np.array([2.0, 4.0], dtype=np.float32), requires_grad=True)
        b = Tensor(np.array([1.0, 2.0], dtype=np.float32), requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.5])
        np.testing.assert_allclose(b.grad, [-2.0, -1.0])

    def test_pow_grad(self):
        x = np.abs(self.rng.normal(size=(4,)).astype(np.float32)) + 0.5
        check_unary(lambda t: t ** 3, x)

    @pytest.mark.parametrize("op_name", ["exp", "tanh", "sigmoid", "relu", "gelu", "sqrt"])
    def test_nonlinearity_grads(self, op_name):
        x = np.abs(self.rng.normal(size=(6,)).astype(np.float32)) + 0.3
        check_unary(lambda t: getattr(t, op_name)(), x)

    def test_log_grad(self):
        x = np.abs(self.rng.normal(size=(4,)).astype(np.float32)) + 0.5
        check_unary(lambda t: t.log(), x)

    def test_abs_and_clip(self):
        x = self.rng.normal(size=(8,)).astype(np.float32)
        check_unary(lambda t: t.abs(), x)
        t = Tensor(x.copy(), requires_grad=True)
        t.clip(-0.5, 0.5).sum().backward()
        expected = ((x >= -0.5) & (x <= 0.5)).astype(np.float32)
        np.testing.assert_allclose(t.grad, expected)


class TestMatmulAndReductions:
    def setup_method(self):
        self.rng = np.random.default_rng(1)

    def test_matmul_2d(self):
        a = Tensor(self.rng.normal(size=(3, 4)).astype(np.float32), requires_grad=True)
        b = Tensor(self.rng.normal(size=(4, 5)).astype(np.float32), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 5)) @ b.data.T, rtol=1e-5)
        np.testing.assert_allclose(b.grad, a.data.T @ np.ones((3, 5)), rtol=1e-5)

    def test_matmul_batched_broadcast(self):
        a = Tensor(self.rng.normal(size=(2, 3, 4)).astype(np.float32), requires_grad=True)
        b = Tensor(self.rng.normal(size=(4, 5)).astype(np.float32), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (4, 5)

    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False), (1, True), (-1, False)])
    def test_sum_axes(self, axis, keepdims):
        x = self.rng.normal(size=(3, 4)).astype(np.float32)
        t = Tensor(x.copy(), requires_grad=True)
        t.sum(axis=axis, keepdims=keepdims).sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(x))

    def test_mean_and_var(self):
        x = self.rng.normal(size=(4, 6)).astype(np.float32)
        t = Tensor(x.copy(), requires_grad=True)
        t.mean().backward()
        np.testing.assert_allclose(t.grad, np.full_like(x, 1.0 / x.size), rtol=1e-5)
        v = Tensor(x.copy(), requires_grad=True)
        assert abs(float(v.var().data) - x.var()) < 1e-4

    def test_max_grad_distributes_over_ties(self):
        t = Tensor(np.array([[1.0, 3.0, 3.0]], dtype=np.float32), requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.0, 0.5, 0.5]])


class TestShapeOps:
    def setup_method(self):
        self.rng = np.random.default_rng(2)

    def test_reshape_transpose_roundtrip(self):
        x = self.rng.normal(size=(2, 3, 4)).astype(np.float32)
        t = Tensor(x.copy(), requires_grad=True)
        out = t.reshape(6, 4).transpose(1, 0).reshape(2, 3, 4)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(x))

    def test_getitem_basic_and_advanced(self):
        x = self.rng.normal(size=(4, 5)).astype(np.float32)
        t = Tensor(x.copy(), requires_grad=True)
        t[1:3].sum().backward()
        expected = np.zeros_like(x)
        expected[1:3] = 1.0
        np.testing.assert_allclose(t.grad, expected)

        t2 = Tensor(x.copy(), requires_grad=True)
        idx = np.array([0, 0, 2])
        t2[idx].sum().backward()
        expected2 = np.zeros_like(x)
        expected2[0] = 2.0
        expected2[2] = 1.0
        np.testing.assert_allclose(t2.grad, expected2)

    def test_concatenate_and_stack(self):
        a = Tensor(self.rng.normal(size=(2, 3)).astype(np.float32), requires_grad=True)
        b = Tensor(self.rng.normal(size=(2, 3)).astype(np.float32), requires_grad=True)
        concatenate([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, np.ones((2, 3)))
        a.zero_grad(); b.zero_grad()
        stack([a, b], axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_where_routes_gradients(self):
        cond = np.array([True, False, True])
        a = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        b = Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)
        where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])

    def test_embedding_lookup_accumulates_repeats(self):
        weight = Tensor(np.arange(12, dtype=np.float32).reshape(4, 3), requires_grad=True)
        out = embedding_lookup(weight, np.array([[1, 1], [3, 0]]))
        out.sum().backward()
        expected = np.zeros((4, 3), dtype=np.float32)
        expected[1] = 2.0
        expected[3] = 1.0
        expected[0] = 1.0
        np.testing.assert_allclose(weight.grad, expected)


class TestAutogradMachinery:
    def test_no_grad_disables_graph(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2
        assert not y.requires_grad
        assert is_grad_enabled()

    def test_backward_requires_scalar_or_grad(self):
        x = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        x = Tensor(np.ones(3, dtype=np.float32))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_grad_accumulates_across_backwards(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        (x * 2).sum().backward()
        (x * 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full(3, 4.0))

    def test_diamond_graph_gradient(self):
        x = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
        y = x * 3
        z = y + y * y
        z.sum().backward()
        # dz/dx = 3 + 2*9*x = 3 + 18x? z = 3x + 9x^2 -> dz/dx = 3 + 18x = 39
        np.testing.assert_allclose(x.grad, [39.0], rtol=1e-5)

    def test_float64_inputs_downcast(self):
        t = Tensor(np.ones(3, dtype=np.float64))
        assert t.dtype == np.float32

    def test_detach_breaks_graph(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        d = (x * 2).detach()
        assert not d.requires_grad


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=5),
    inner=st.integers(min_value=1, max_value=5),
    cols=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_matmul_gradient_matches_manual_formula(rows, inner, cols, seed):
    """Property: for C = A @ B with upstream gradient G, dA = G B^T and dB = A^T G."""
    rng = np.random.default_rng(seed)
    a_data = rng.normal(size=(rows, inner)).astype(np.float32)
    b_data = rng.normal(size=(inner, cols)).astype(np.float32)
    g = rng.normal(size=(rows, cols)).astype(np.float32)
    a = Tensor(a_data, requires_grad=True)
    b = Tensor(b_data, requires_grad=True)
    (a @ b).backward(g)
    np.testing.assert_allclose(a.grad, g @ b_data.T, rtol=1e-4, atol=1e-5)
    np.testing.assert_allclose(b.grad, a_data.T @ g, rtol=1e-4, atol=1e-5)


@settings(max_examples=25, deadline=None)
@given(
    shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_sum_of_parts_equals_whole(shape, seed):
    """Property: gradient of sum() is all-ones regardless of shape."""
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=shape).astype(np.float32), requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones(shape))
