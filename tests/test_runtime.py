"""Tests of the runtime substrate: trainer, profiler, memory, platform, scaling."""

import warnings

import numpy as np
import pytest

from repro.models import build_model, get_config
from repro.peft import get_peft_method
from repro.runtime import (
    AttentionConfig,
    CaptureConfig,
    DataParallelTrainer,
    FineTuner,
    MemoryModel,
    PLATFORMS,
    PhaseProfiler,
    TrainingConfig,
    roofline_step_time,
)
from repro.runtime.comms import chunk_schedule
from repro.runtime.platform import training_step_flops


def make_finetuner(method="lora", **config_kwargs):
    model = build_model("opt-tiny", seed=0)
    adapted, _ = get_peft_method(method)(model)
    return FineTuner(adapted, TrainingConfig(**config_kwargs))


def batches(n=3, seq=32):
    rng = np.random.default_rng(0)
    return [rng.integers(0, 512, size=(2, seq)) for _ in range(n)]


class TestFineTuner:
    def test_requires_trainable_parameters(self):
        model = build_model("opt-tiny", seed=0)
        model.freeze()
        with pytest.raises(ValueError):
            FineTuner(model)

    def test_single_step_returns_timings(self):
        tuner = make_finetuner()
        loss, timing = tuner.step(batches(1)[0])
        assert np.isfinite(loss)
        assert timing.forward > 0 and timing.backward > 0 and timing.optimizer > 0
        assert timing.total == pytest.approx(timing.forward + timing.backward + timing.optimizer)
        assert "total_ms" in timing.as_milliseconds()

    def test_training_reduces_loss(self):
        tuner = make_finetuner("full", learning_rate=5e-3)
        data = batches(8)
        report = tuner.train([data[i % len(data)] for i in range(12)])
        assert report.steps == 12
        assert report.losses[-1] < report.losses[0]
        assert report.tokens_processed == 12 * 2 * 32

    def test_max_steps_respected(self):
        tuner = make_finetuner()
        report = tuner.train(batches(5), max_steps=2)
        assert report.steps == 2

    def test_report_breakdown_table(self):
        tuner = make_finetuner()
        report = tuner.train(batches(3))
        table = report.breakdown_table()
        assert "fwd" in table and "optim" in table
        assert report.mean_step_ms() > 0

    def test_mixed_precision_step_is_finite(self):
        tuner = make_finetuner(mixed_precision=True, grad_clip=1.0)
        loss, _ = tuner.step(batches(1)[0])
        assert np.isfinite(loss)

    def test_optimizer_phase_scales_with_trainable_parameters(self):
        """PEFT's optimizer step must be cheaper than full fine-tuning's (Table I)."""
        full = make_finetuner("full")
        lora = make_finetuner("lora")
        data = batches(4)
        full_report = full.train(data)
        lora_report = lora.train(data)
        assert (lora_report.mean_timings().optimizer
                < full_report.mean_timings().optimizer)


class TestTrainingConfigGroups:
    """The nested CaptureConfig/AttentionConfig groups and their legacy
    flat-kwarg compatibility layer (locked by the api_redesign PR)."""

    def test_nested_round_trip(self):
        cfg = TrainingConfig(
            capture=CaptureConfig(enabled=True, warmup=2,
                                  compile_full_step=True, executor_threads=3),
            attention=AttentionConfig(streaming=True, streaming_tile=64,
                                      fused_kernels=False))
        # Legacy flat names read through to the nested groups...
        assert cfg.capture_steps is True
        assert cfg.capture_warmup == 2
        assert cfg.compile_full_step is True
        assert cfg.executor_threads == 3
        assert cfg.streaming_attention is True
        assert cfg.streaming_tile == 64
        assert cfg.fused_kernels is False
        # ...and writes through them land in the nested groups.
        cfg.executor_threads = 5
        cfg.streaming_tile = 32
        assert cfg.capture.executor_threads == 5
        assert cfg.attention.streaming_tile == 32

    def test_legacy_flat_kwargs_warn_and_forward(self):
        with pytest.warns(DeprecationWarning):
            cfg = TrainingConfig(learning_rate=2e-3, capture_steps=True,
                                 capture_warmup=0, compile_full_step=True,
                                 executor_threads=2, streaming_attention=True,
                                 streaming_tile=48, fused_kernels=True)
        assert cfg.learning_rate == 2e-3
        assert cfg.capture == CaptureConfig(enabled=True, warmup=0,
                                            compile_full_step=True,
                                            executor_threads=2)
        assert cfg.attention == AttentionConfig(streaming=True,
                                                streaming_tile=48,
                                                fused_kernels=True)

    def test_nested_construction_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            cfg = TrainingConfig(capture=CaptureConfig(enabled=True))
        assert cfg.capture.enabled

    def test_legacy_kwargs_train_equivalently(self):
        data = batches(2)
        with pytest.warns(DeprecationWarning):
            legacy = make_finetuner(capture_steps=True, capture_warmup=0)
        nested = make_finetuner(capture=CaptureConfig(enabled=True, warmup=0))
        for batch in data:
            loss_a, _ = legacy.step(batch)
            loss_b, _ = nested.step(batch)
            assert loss_a == loss_b


class TestProfiler:
    def test_phases_accumulate(self):
        profiler = PhaseProfiler()
        with profiler.phase("a"):
            pass
        profiler.add("a", 0.5)
        profiler.add("b", 0.25)
        totals = profiler.totals()
        assert totals["a"] > 0.5 and totals["b"] == 0.25
        assert profiler.counts()["a"] == 2
        assert "phase" in profiler.report()
        profiler.reset()
        assert profiler.totals() == {}


class TestMemoryModel:
    def setup_method(self):
        self.model = MemoryModel(get_config("opt-1.3b"))

    def test_peft_uses_less_memory_than_full(self):
        peft = self.model.peft_baseline(4, 1024, trainable_params=2_000_000)
        full = self.model.full_finetuning(4, 1024)
        assert peft.total < full.total

    def test_long_exposure_saves_memory_over_peft(self):
        peft = self.model.peft_baseline(4, 1024, trainable_params=2_000_000)
        sparse = self.model.long_exposure(4, 1024, trainable_params=2_000_000,
                                          attention_density=0.3, mlp_density=0.5)
        optimal = self.model.long_exposure(4, 1024, trainable_params=2_000_000,
                                           attention_density=0.3, mlp_density=0.5,
                                           offload_inactive=True)
        assert sparse.total < peft.total
        assert optimal.total < sparse.total

    def test_attention_buffers_grow_quadratically_with_sequence(self):
        short = self.model.peft_baseline(4, 512, 2_000_000).attention_buffers
        long = self.model.peft_baseline(4, 1024, 2_000_000).attention_buffers
        assert long == pytest.approx(4 * short)

    def test_breakdown_dict_totals(self):
        breakdown = self.model.peft_baseline(2, 256, 1_000_000)
        d = breakdown.as_dict()
        assert d["total_gb"] == pytest.approx(breakdown.total_gb())

    def test_streaming_attention_buffers_linear_in_sequence(self):
        streaming = MemoryModel(get_config("opt-1.3b"), streaming=True,
                                streaming_tile=128)
        short = streaming.peft_baseline(4, 1024, 2_000_000).attention_buffers
        long = streaming.peft_baseline(4, 2048, 2_000_000).attention_buffers
        # O(s * tile): doubling the sequence doubles the footprint instead of
        # quadrupling it, and it undercuts the materializing model.
        assert long == pytest.approx(2 * short)
        dense = self.model.peft_baseline(4, 2048, 2_000_000).attention_buffers
        assert long < dense

    def test_streaming_takes_cheaper_bound_vs_block_sparse(self):
        streaming = MemoryModel(get_config("opt-1.3b"), streaming=True,
                                streaming_tile=128)
        cfg = streaming.config
        seq, batch, density = 4096, 4, 0.05
        got = streaming.attention_buffer_bytes(batch, seq, density)
        materialized = batch * cfg.num_heads * seq * seq / 2.0 * density * 4
        streamed = batch * cfg.num_heads * seq * (128 + 4.0) * 4
        assert got == pytest.approx(min(materialized, streamed))
        # Short sequences: the streamed bound exceeds the materialized one,
        # so streaming never *adds* modelled memory.
        tiny = streaming.attention_buffer_bytes(batch, 64, 1.0)
        assert tiny == self.model.attention_buffer_bytes(batch, 64, 1.0)


class TestPlatformModel:
    def test_platform_registry(self):
        assert set(PLATFORMS) == {"A100", "A6000"}
        assert PLATFORMS["A100"].memory_bandwidth_gbps == 1555

    def test_sparsity_reduces_flops(self):
        config = get_config("opt-1.3b")
        dense = training_step_flops(config, 4, 1024)
        sparse = training_step_flops(config, 4, 1024, attention_density=0.4, mlp_density=0.5)
        assert sparse < dense

    def test_roofline_speedup_from_sparsity(self):
        config = get_config("opt-1.3b")
        platform = PLATFORMS["A100"]
        dense = roofline_step_time(config, platform, 4, 1024)
        sparse = roofline_step_time(config, platform, 4, 1024,
                                    attention_density=0.4, mlp_density=0.5)
        assert dense > sparse > 0

    def test_longer_sequences_cost_more(self):
        config = get_config("opt-1.3b")
        platform = PLATFORMS["A100"]
        assert (roofline_step_time(config, platform, 4, 1024)
                > roofline_step_time(config, platform, 4, 512))


def _dp_tuner():
    """Module-level factory for the data-parallel worker processes."""
    return make_finetuner("lora")


class TestDataParallelTrainer:
    """Smoke coverage of the real shared-memory backend from the runtime
    suite; the deep determinism/failure grid lives in test_distributed.py
    (``-m dist``)."""

    def test_two_worker_step_runs_and_reports_comm(self):
        data = np.random.default_rng(0).integers(0, 512, size=(4, 32))
        with DataParallelTrainer(_dp_tuner, workers=2,
                                 step_timeout_s=60.0) as trainer:
            loss, timing = trainer.step(data)
            assert np.isfinite(loss)
            assert timing.comm > 0.0
            assert timing.total >= timing.comm

    def test_indivisible_batch_rejected(self):
        trainer = DataParallelTrainer(_dp_tuner, workers=2,
                                      step_timeout_s=60.0)
        try:
            with pytest.raises(ValueError):
                trainer.step(np.zeros((3, 8), dtype=np.int64))
        finally:
            trainer.close()

    def test_chunk_schedule_partitions_the_buffer(self):
        schedule = chunk_schedule(300, world=4, chunk_elems=128)
        assert [owner for _, _, owner in schedule] == [0, 1, 2]
        flat = [i for start, end, _ in schedule for i in range(start, end)]
        assert flat == list(range(300))
