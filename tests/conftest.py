"""Shared fixtures for the test suite.

Model construction and predictor preparation are comparatively expensive on
the CPU substrate, so the fixtures that need them are session-scoped and the
tests treat the returned objects as read-only (or clone what they mutate).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import build_model
from repro.sparsity import LongExposure, LongExposureConfig


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_model():
    """A small OPT model shared by read-only tests."""
    return build_model("opt-tiny", seed=0)


@pytest.fixture(scope="session")
def tiny_batches():
    generator = np.random.default_rng(7)
    return [generator.integers(0, 512, size=(2, 64)) for _ in range(2)]


@pytest.fixture(scope="session")
def prepared_engine(tiny_batches):
    """A LongExposure engine prepared (predictors trained) on a tiny model."""
    model = build_model("opt-tiny", seed=0)
    config = LongExposureConfig(block_size=16, predictor_epochs=4, seed=0)
    engine = LongExposure(config)
    engine.prepare(model, tiny_batches)
    return model, engine
