"""Equivalence tests for the flattened optimizer and the reduceat scatter.

* The flattened single-buffer Adam/AdamW must reproduce the original
  per-parameter Python loop **bitwise** over a multi-step trajectory —
  including steps where some parameters have no gradient (which exercises
  the per-parameter fallback on the shared flat state), weight decay in both
  its coupled (Adam) and decoupled (AdamW) forms, and the
  ``state_size_bytes`` accounting.
* The sort/``np.add.reduceat`` embedding-backward scatter must agree with
  ``np.add.at`` — exactly on order-insensitive (integer-valued) updates,
  where any summation order produces the same floats, and to float rounding
  on arbitrary ones (``reduceat`` accumulates long duplicate segments
  pairwise, which is at least as accurate as ``add.at``'s sequential order).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import Adam, AdamW
from repro.tensor import Tensor
from repro.tensor.tensor import embedding_lookup, scatter_add_rows


# ---------------------------------------------------------------------------
# reference: the pre-flattening per-parameter loop implementations
# ---------------------------------------------------------------------------

class LoopAdam:
    """Verbatim re-implementation of the original Python-loop Adam."""

    decoupled = False

    def __init__(self, params, lr=1e-3, betas=(0.9, 0.999), eps=1e-8,
                 weight_decay=0.0):
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self):
        self.step_count += 1
        t = self.step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            if self.weight_decay and self.decoupled:
                param.data -= self.lr * self.weight_decay * param.data
                grad = param.grad
            elif self.weight_decay:
                grad = param.grad + self.weight_decay * param.data
            else:
                grad = param.grad
            m = self._m[index]
            v = self._v[index]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_size_bytes(self):
        return int(sum(m.nbytes + v.nbytes for m, v in zip(self._m, self._v)))


class LoopAdamW(LoopAdam):
    decoupled = True


SHAPES = [(10, 10), (3,), (4, 5), (1,), (2, 3, 4)]


def _param_pair(seed=0):
    rng = np.random.default_rng(seed)
    originals = [Parameter(rng.normal(size=s).astype(np.float32)) for s in SHAPES]
    clones = [Parameter(p.data.copy()) for p in originals]
    return originals, clones


def _run_trajectory(flat_cls, loop_cls, steps=10, none_grad_steps=(),
                    none_grad_param=1, **kwargs):
    pa, pb = _param_pair()
    flat = flat_cls(pa, **kwargs)
    loop = loop_cls(pb, **kwargs)
    rng = np.random.default_rng(7)
    for step in range(steps):
        for a, b in zip(pa, pb):
            g = rng.normal(size=a.data.shape).astype(np.float32)
            a.grad = g.copy()
            b.grad = g.copy()
        if step in none_grad_steps:
            pa[none_grad_param].grad = None
            pb[none_grad_param].grad = None
        flat.step()
        loop.step()
    return flat, loop, pa, pb


class TestFlattenedAdamEquivalence:
    @pytest.mark.parametrize("cls_pair,kwargs", [
        ((Adam, LoopAdam), {"lr": 0.01}),
        ((Adam, LoopAdam), {"lr": 0.02, "weight_decay": 0.05}),
        ((AdamW, LoopAdamW), {"lr": 0.01, "weight_decay": 0.1}),
        ((AdamW, LoopAdamW), {"lr": 0.005, "betas": (0.85, 0.99), "eps": 1e-6}),
    ], ids=["adam", "adam-wd", "adamw-wd", "adamw-betas"])
    def test_ten_step_trajectory_bitwise(self, cls_pair, kwargs):
        flat_cls, loop_cls = cls_pair
        flat, loop, pa, pb = _run_trajectory(flat_cls, loop_cls, steps=10,
                                             **kwargs)
        for a, b in zip(pa, pb):
            np.testing.assert_array_equal(a.data, b.data)
        for m, om, v, ov in zip(flat._m, loop._m, flat._v, loop._v):
            np.testing.assert_array_equal(m, om)
            np.testing.assert_array_equal(v, ov)

    def test_grad_none_steps_fall_back_bitwise(self):
        # Steps 3 and 7 drop one parameter's gradient: its m/v and data must
        # freeze exactly as in the loop version, and later flat steps must
        # continue from the identical shared state.
        flat, loop, pa, pb = _run_trajectory(
            Adam, LoopAdam, steps=10, none_grad_steps=(3, 7),
            lr=0.01, weight_decay=0.02)
        for a, b in zip(pa, pb):
            np.testing.assert_array_equal(a.data, b.data)
        for m, om, v, ov in zip(flat._m, loop._m, flat._v, loop._v):
            np.testing.assert_array_equal(m, om)
            np.testing.assert_array_equal(v, ov)

    def test_all_grads_none_advances_only_step_count(self):
        params, _ = _param_pair()
        before = [p.data.copy() for p in params]
        optimizer = Adam(params, lr=0.1)
        optimizer.step()
        assert optimizer.step_count == 1
        for p, b in zip(params, before):
            np.testing.assert_array_equal(p.data, b)
        assert all(np.all(m == 0) for m in optimizer._m)

    def test_state_size_bytes_matches_loop_accounting(self):
        pa, pb = _param_pair()
        flat = AdamW(pa, lr=1e-3, weight_decay=0.01)
        loop = LoopAdamW(pb, lr=1e-3, weight_decay=0.01)
        expected = sum(2 * int(np.prod(s)) * 4 for s in SHAPES)
        assert flat.state_size_bytes() == loop.state_size_bytes() == expected

    def test_moment_views_alias_the_flat_buffers(self):
        params, _ = _param_pair()
        optimizer = Adam(params, lr=1e-3)
        assert optimizer._flat_m is not None
        assert optimizer._flat_m.size == sum(int(np.prod(s)) for s in SHAPES)
        for view, param in zip(optimizer._m, params):
            assert view.shape == param.data.shape
            assert view.base is optimizer._flat_m


# ---------------------------------------------------------------------------
# embedding-backward scatter (sort + np.add.reduceat)
# ---------------------------------------------------------------------------

def _exact_updates(rng, n, dim):
    """Integer-valued float32 updates: every summation order is exact."""
    return rng.integers(-8, 9, size=(n, dim)).astype(np.float32)


class TestScatterAddRows:
    def test_duplicate_indices_exact(self):
        rng = np.random.default_rng(0)
        idx = np.array([3, 1, 3, 3, 0, 1, 3, 9, 9, 3])
        upd = _exact_updates(rng, len(idx), 5)
        expected = np.zeros((10, 5), np.float32)
        np.add.at(expected, idx, upd)
        got = np.zeros((10, 5), np.float32)
        scatter_add_rows(got, idx, upd)
        np.testing.assert_array_equal(got, expected)

    def test_empty_rows_stay_zero(self):
        rng = np.random.default_rng(1)
        idx = np.array([2, 2, 5])
        upd = rng.normal(size=(3, 4)).astype(np.float32)
        out = np.zeros((8, 4), np.float32)
        scatter_add_rows(out, idx, upd)
        untouched = np.setdiff1d(np.arange(8), idx)
        assert np.all(out[untouched] == 0.0)
        assert np.all(out[np.unique(idx)] != 0.0)

    def test_empty_index_array_is_noop(self):
        out = np.ones((4, 3), np.float32)
        scatter_add_rows(out, np.array([], dtype=np.int64),
                         np.zeros((0, 3), np.float32))
        np.testing.assert_array_equal(out, np.ones((4, 3), np.float32))

    def test_negative_indices_alias_positive_rows_exact(self):
        rng = np.random.default_rng(2)
        idx = np.array([-1, 9, 4, -6, 4, -1])
        upd = _exact_updates(rng, len(idx), 3)
        expected = np.zeros((10, 3), np.float32)
        np.add.at(expected, idx, upd)
        got = np.zeros((10, 3), np.float32)
        scatter_add_rows(got, idx, upd)
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("distribution", ["uniform", "zipf", "all-same"])
    def test_large_vocab_exact(self, distribution):
        rng = np.random.default_rng(3)
        vocab, dim, n = 50257, 16, 4096
        if distribution == "uniform":
            idx = rng.integers(0, vocab, size=n)
        elif distribution == "zipf":
            idx = np.minimum(rng.zipf(1.3, size=n) - 1, vocab - 1)
        else:
            idx = np.full(n, 42)
        upd = _exact_updates(rng, n, dim)
        expected = np.zeros((vocab, dim), np.float32)
        np.add.at(expected, idx, upd)
        got = np.zeros((vocab, dim), np.float32)
        scatter_add_rows(got, idx, upd)
        np.testing.assert_array_equal(got, expected)

    def test_gaussian_updates_match_to_float_rounding(self):
        rng = np.random.default_rng(4)
        idx = np.minimum(rng.zipf(1.3, size=2048) - 1, 999)
        upd = rng.normal(size=(2048, 8)).astype(np.float32)
        expected = np.zeros((1000, 8), np.float32)
        np.add.at(expected, idx, upd)
        got = np.zeros((1000, 8), np.float32)
        scatter_add_rows(got, idx, upd)
        np.testing.assert_allclose(got, expected, rtol=1e-5, atol=1e-4)


class TestEmbeddingBackwardScatter:
    def test_duplicate_token_gradients_accumulate_exactly(self):
        rng = np.random.default_rng(5)
        vocab, dim = 64, 8
        weight_data = rng.normal(size=(vocab, dim)).astype(np.float32)
        ids = np.array([[1, 5, 1, 1], [5, 0, 63, 1]])
        seed = _exact_updates(rng, ids.size, dim).reshape(*ids.shape, dim)

        weight = Tensor(weight_data.copy(), requires_grad=True)
        embedding_lookup(weight, ids).backward(seed)
        expected = np.zeros((vocab, dim), np.float32)
        np.add.at(expected, ids.reshape(-1), seed.reshape(-1, dim))
        np.testing.assert_array_equal(weight.grad, expected)
        untouched = np.setdiff1d(np.arange(vocab), ids.reshape(-1))
        assert np.all(weight.grad[untouched] == 0.0)

    def test_large_vocab_gradient_matches_add_at(self):
        rng = np.random.default_rng(6)
        vocab, dim = 50257, 8
        ids = np.minimum(rng.zipf(1.4, size=(2, 256)) - 1, vocab - 1)
        weight = Tensor(rng.normal(size=(vocab, dim)).astype(np.float32),
                        requires_grad=True)
        seed = _exact_updates(rng, ids.size, dim).reshape(*ids.shape, dim)
        embedding_lookup(weight, ids).backward(seed)
        expected = np.zeros((vocab, dim), np.float32)
        np.add.at(expected, ids.reshape(-1), seed.reshape(-1, dim))
        np.testing.assert_array_equal(weight.grad, expected)


class TestGetitemScatter:
    def test_single_array_index_gradient(self):
        rng = np.random.default_rng(7)
        x = Tensor(rng.normal(size=(10, 4)).astype(np.float32), requires_grad=True)
        idx = np.array([0, 3, 3, 9, 0, 3])
        seed = _exact_updates(rng, len(idx), 4)
        x[idx].backward(seed)
        expected = np.zeros((10, 4), np.float32)
        np.add.at(expected, idx, seed)
        np.testing.assert_array_equal(x.grad, expected)

    def test_two_array_index_gradient(self):
        # The gather pattern of the reference cross entropy: (rows, targets).
        rng = np.random.default_rng(8)
        x = Tensor(rng.normal(size=(6, 9)).astype(np.float32), requires_grad=True)
        rows = np.array([0, 1, 2, 2, 5, 2])
        cols = np.array([4, 4, 0, 0, 8, 0])
        seed = _exact_updates(rng, len(rows), 1).reshape(-1)
        x[rows, cols].backward(seed)
        expected = np.zeros((6, 9), np.float32)
        np.add.at(expected, (rows, cols), seed)
        np.testing.assert_array_equal(x.grad, expected)

    def test_boolean_mask_falls_back_to_add_at(self):
        rng = np.random.default_rng(9)
        x = Tensor(rng.normal(size=(7, 3)).astype(np.float32), requires_grad=True)
        mask = np.array([True, False, True, False, False, True, False])
        seed = rng.normal(size=(3, 3)).astype(np.float32)
        x[mask].backward(seed)
        expected = np.zeros((7, 3), np.float32)
        expected[mask] = seed
        np.testing.assert_array_equal(x.grad, expected)

    def test_negative_array_index_gradient(self):
        rng = np.random.default_rng(10)
        x = Tensor(rng.normal(size=(5, 2)).astype(np.float32), requires_grad=True)
        idx = np.array([-1, 4, -1, 0])
        seed = _exact_updates(rng, len(idx), 2)
        x[idx].backward(seed)
        expected = np.zeros((5, 2), np.float32)
        np.add.at(expected, idx, seed)
        np.testing.assert_array_equal(x.grad, expected)