"""Fast smoke coverage of the perf-regression harness (``-m perf_smoke``).

These tests exercise the same code paths as
``benchmarks/bench_perf_regression.py`` — the fused/reference kernel switch
on a full model, the geometry-cache on/off sparse step, and the JSON report
— at miniature scale so the tier-1 suite always runs them in a couple of
seconds.  They verify *behaviour* (both modes agree numerically, the report
has the expected structure); the real speedup numbers come from running the
benchmark script itself.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.models import build_model
from repro.optim import Adam
from repro.tensor import fused

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

import bench_perf_regression as bench  # noqa: E402

pytestmark = pytest.mark.perf_smoke


def _one_step_grads(model_name: str, seed: int = 0):
    """Loss value and a couple of parameter gradients after one step."""
    model = build_model(model_name, seed=seed)
    ids = np.random.default_rng(5).integers(0, model.config.vocab_size,
                                            size=(2, 32))
    loss, _ = model.loss(ids)
    loss.backward()
    params = model.trainable_parameters()
    return float(loss.data), [p.grad.copy() for p in params[:4]]


@pytest.mark.parametrize("model_name", ["gpt2-tiny", "opt-tiny"])
def test_fused_and_reference_modes_agree_end_to_end(model_name):
    loss_fused, grads_fused = _one_step_grads(model_name)
    with fused.reference_kernels():
        loss_ref, grads_ref = _one_step_grads(model_name)
    np.testing.assert_allclose(loss_fused, loss_ref, rtol=2e-4)
    for gf, gr in zip(grads_fused, grads_ref):
        np.testing.assert_allclose(gf, gr, rtol=5e-3, atol=1e-5)
    assert fused.fused_kernels_enabled()  # switch restored


def test_fused_training_step_reduces_loss():
    model = build_model("gpt2-tiny", seed=0)
    ids = np.random.default_rng(9).integers(0, model.config.vocab_size,
                                            size=(2, 32))
    optimizer = Adam(model.trainable_parameters(), lr=5e-3)
    first = None
    for _ in range(5):
        loss, _ = model.loss(ids)
        loss.backward()
        optimizer.step()
        optimizer.zero_grad()
        model.zero_grad()
        first = first if first is not None else float(loss.data)
    assert float(loss.data) < first


def test_bench_dense_step_structure():
    result = bench.bench_dense_step(repeats=1, batch=1, seq=32,
                                    model_name="gpt2-tiny")
    assert result["fused_s"] > 0 and result["reference_s"] > 0
    assert result["speedup"] == pytest.approx(
        result["reference_s"] / result["fused_s"])
    assert fused.fused_kernels_enabled()


def test_bench_sparse_step_structure():
    result = bench.bench_sparse_step(repeats=1, batch=1, seq=64,
                                     model_name="opt-tiny")
    for key in ("cached_s", "uncached_s", "pre_pr_chain_s", "pre_pr_full_s"):
        assert result[key] > 0
    for key in ("speedup", "chain_speedup", "pre_pr_speedup"):
        assert key in result
    # The cached-vs-uncached diagnosis rides along: the measured per-step
    # geometry recompute share must be reported (it is what bounds how much
    # end-to-end speedup the cache can possibly show).
    assert result["geometry_s_per_step"] > 0
    assert 0.0 < result["geometry_fraction"] < 1.0
    # The baseline swaps must have been undone afterwards.
    import repro.sparsity.engine as engine_module
    import repro.tensor.tensor as tensor_module
    from repro.sparsity.ops import block_sparse_attention
    assert engine_module.block_sparse_attention is block_sparse_attention
    assert tensor_module.scatter_add_rows is not bench._pre_pr_scatter_add_rows


def test_pre_pr_chain_matches_fused_chain_numerically():
    """The benchmark's embedded PR-1 baseline must compute the same op."""
    from repro.sparsity.ops import LayoutGeometryCache, block_sparse_attention
    from repro.tensor import Tensor

    layout = bench._chain_layout(64, block_size=16,
                                 patterns=["local2", "dense", "local4"])
    rng = np.random.default_rng(0)
    q, k, v = [rng.normal(size=(2, 3, 64, 8)).astype(np.float32)
               for _ in range(3)]
    cache = LayoutGeometryCache()

    def run(op):
        qt, kt, vt = [Tensor(a, requires_grad=True) for a in (q, k, v)]
        out = op(qt, kt, vt, layout, cache=cache)
        out.sum().backward()
        return out.data, qt.grad, kt.grad, vt.grad

    for new, old in zip(run(block_sparse_attention),
                        run(bench.pre_pr_block_sparse_attention)):
        np.testing.assert_allclose(new, old, rtol=1e-4, atol=1e-5)


def test_bench_sparse_chain_structure():
    result = bench.bench_sparse_chain(repeats=1, batch=1, seq=32, heads=2,
                                      dim=8, block_size=16)
    assert result["fused_s"] > 0 and result["pre_pr_s"] > 0
    assert result["layout_nnz"] > 0
    assert result["speedup"] == pytest.approx(
        result["pre_pr_s"] / result["fused_s"])


def test_bench_crossover_structure():
    result = bench.bench_crossover(repeats=1, batch=1, seq=64, heads=2,
                                   dim=8, block_size=16)
    assert result["dense_s"] > 0 and result["sparse_s"] > 0
    assert 0.0 < result["layout_sparsity"] < 1.0
    assert result["sparse_vs_dense"] == pytest.approx(
        result["dense_s"] / result["sparse_s"])


def test_bench_predicted_step_structure():
    result = bench.bench_predicted_step(repeats=1, batch=1, seq=64,
                                        model_name="opt-tiny", interval=2,
                                        predictor_epochs=1, drift_windows=1)
    for key in ("oracle_s", "oracle_intervalK_s", "interval1_s", "intervalK_s"):
        assert result[key] > 0
    assert result["interval"] == 2.0
    assert result["speedup_vs_oracle"] == pytest.approx(
        result["oracle_s"] / result["interval1_s"])
    assert result["interval_speedup"] == pytest.approx(
        result["interval1_s"] / result["intervalK_s"])
    assert result["oracle_interval_speedup"] == pytest.approx(
        result["oracle_s"] / result["oracle_intervalK_s"])
    # Reuse happened during the scheduled windows and drift was measured.
    assert 0.0 < result["attention_reuse_rate"] < 1.0
    assert result["attention_mask_drift"] >= 0.0
    assert result["mlp_block_drift"] >= 0.0
    assert 0.0 < result["prediction_fraction"] < 1.0
    # Per-schedule prediction overhead is measured and the reduction field is
    # consistent (the actual >1 reduction claim belongs to the benchmark run,
    # not this structure test — single-window timings can flake under load).
    assert result["interval1_prediction_s"] > 0
    assert result["intervalK_prediction_s"] > 0
    assert result["prediction_overhead_reduction"] == pytest.approx(
        result["interval1_prediction_s"] / result["intervalK_prediction_s"])


def test_bench_step_capture_structure():
    result = bench.bench_step_capture(repeats=1, batch=1, seq=32,
                                      predicted_seq=64, predictor_epochs=1,
                                      interval=2, dense_model="gpt2-tiny",
                                      sparse_model="opt-tiny")
    for mode in ("dense", "oracle", "predicted"):
        row = result[mode]
        assert row["uncaptured_s"] > 0 and row["captured_s"] > 0
        assert row["speedup"] == pytest.approx(
            row["uncaptured_s"] / row["captured_s"])
        # Fixed-batch windows: the captured steady state must be allocation-free
        # and actually replayed (no silent fallback to the uncaptured path).
        assert row["captured_allocs_per_step"] == 0.0
        assert row["replay_steps"] >= 1.0
        assert row["fallbacks"] == 0.0
        assert row["arena_mb"] > 0.0
    # The PR-4-form rollback baseline rides along on the predicted config
    # (and the monkeypatched ops must have been restored afterwards).
    predicted = result["predicted"]
    assert predicted["pre_pr_s"] > 0
    assert predicted["pre_pr_speedup"] == pytest.approx(
        predicted["pre_pr_s"] / predicted["captured_s"])
    from repro.tensor import fused as fused_module
    assert fused_module.linear is not bench.pre_pr_linear
    assert fused_module.layer_norm is not bench.pre_pr_layer_norm
    import repro.sparsity.engine as engine_module
    assert (engine_module.neuron_sparse_linear_pair
            is not bench.pre_pr_neuron_sparse_linear_pair)
    recap = result["recapture"]
    assert recap["recaptures"] == 1.0
    assert recap["post_change_allocs_per_step"] == 0.0
    assert recap["state_replay"] == 1.0
    # Capture state must not leak out of the benchmark.
    from repro.tensor import arena as tensor_arena
    from repro.tensor.tensor import current_tape
    assert tensor_arena.active() is None and current_tape() is None


def test_bench_prediction_overhead_structure():
    result = bench.bench_prediction_overhead(repeats=2, batch=1, seq=64,
                                             dim=32, heads=2, rank=4,
                                             block_size=16, reduce_seq=128,
                                             reduce_batch=1)
    assert set(result) == {"probe", "block_reduce", "match_many"}
    probe = result["probe"]
    assert probe["optimised_s"] > 0 and probe["pre_pr_s"] > 0
    assert probe["speedup"] == pytest.approx(
        probe["pre_pr_s"] / probe["optimised_s"])
    reduce = result["block_reduce"]
    assert reduce["seq"] == 128.0
    assert reduce["two_stage_s"] > 0 and reduce["reshape_sum_s"] > 0
    matcher = result["match_many"]
    assert matcher["vectorised_s"] > 0 and matcher["loop_s"] > 0


def test_bench_optimizer_step_structure():
    result = bench.bench_optimizer_step(repeats=2, n_params=8, param_shape=(32,))
    assert result["flat_s"] > 0 and result["loop_s"] > 0
    assert result["n_elements"] == 8 * 32
    assert result["speedup"] == pytest.approx(result["loop_s"] / result["flat_s"])


def test_bench_optimizer_regimes_structure():
    import repro.optim.adam as adam_module

    saved = adam_module.FLAT_MEAN_SIZE_THRESHOLD
    result = bench.bench_optimizer_regimes(repeats=1, sizes=(64, 256),
                                           total_elements=4096)
    # The forced-path sweep must restore the routing constant.
    assert adam_module.FLAT_MEAN_SIZE_THRESHOLD == saved
    assert result["threshold_elements"] == saved
    assert len(result["regimes"]) == 2
    for row in result["regimes"]:
        assert row["flat_s"] > 0 and row["loop_s"] > 0
        assert row["flat_speedup"] == pytest.approx(
            row["loop_s"] / row["flat_s"])
    assert isinstance(result["threshold_validated"], bool)


def test_bench_predicted_quality_structure():
    result = bench.bench_predicted_quality(batch=1, seq=64,
                                           model_name="opt-tiny",
                                           predictor_epochs=1,
                                           lengths=(32, 64), eval_batches=1)
    assert result["lengths"] == [32.0, 64.0]
    assert 0.0 < result["snap_coverage"] <= 1.0
    for length in ("32", "64"):
        row = result["per_length"][length]
        for key in ("oracle_sparsity", "calibrated_sparsity",
                    "uncalibrated_sparsity", "oracle_recall"):
            assert 0.0 <= row[key] <= 1.0
        assert row["calibrated_gap"] == pytest.approx(
            abs(row["oracle_sparsity"] - row["calibrated_sparsity"]))
    assert result["gap"] == result["per_length"]["64"]["calibrated_gap"]
    assert result["gap_reduction"] > 0


def test_bench_embedding_scatter_structure():
    result = bench.bench_embedding_scatter(repeats=2, vocab=512, dim=8,
                                           n_tokens=256)
    assert result["add_at_s"] > 0 and result["scatter_s"] > 0
    assert result["speedup"] == pytest.approx(
        result["add_at_s"] / result["scatter_s"])


def test_bench_geometry_lookup_beats_compute():
    result = bench.bench_geometry(repeats=5, seq=128, block_size=16)
    assert result["layout_nnz"] > 0
    # The memoized lookup must be strictly cheaper than recomputation; the
    # real margin (measured at ~1000x at seq 512) is reported by the script.
    assert result["lookup_s"] < result["compute_s"]


def test_bench_long_context_structure():
    # Miniature lengths keep this structural (64 fits one streaming tile, so
    # peak_ratio ~ 1 is expected there); the real wall figures come from the
    # full sweep and the seq-4096 gate in test_step_capture.
    result = bench.bench_long_context(lengths=(64, 128), repeats=1)
    assert result["tile"] > 0
    assert set(result["lengths"]) == {"64", "128"}
    for row in result["lengths"].values():
        for key in ("materializing_ms_per_token", "streaming_ms_per_token",
                    "block_sparse_streaming_ms_per_token",
                    "materializing_peak_bytes", "streaming_peak_bytes",
                    "block_sparse_streaming_peak_bytes", "peak_ratio"):
            assert row[key] > 0, key
    assert result["wall_seq"] == 128.0
    # The sweep must leave the process-global streaming switch off.
    from repro.tensor import fused
    assert not fused.streaming_attention_enabled()


def test_bench_scaling_structure():
    # Tiny shapes keep this structural; on a single-core CI worker ranks
    # time-slice one CPU, so no speedup is asserted — the section records
    # cpu_count and the single_core flag instead and the backend contract
    # (all worker counts complete, digests agree cross-rank, comm time is
    # broken out) is what this locks.
    result = bench.bench_scaling(worker_counts=(1, 2), steps=3, seq=32)
    assert result["cpu_count"] >= 1
    assert isinstance(result["single_core"], bool)
    assert set(result["workers"]) == {"1", "2"}
    for row in result["workers"].values():
        assert row["steps_per_s"] > 0
        assert row["comm_ms_per_step"] >= 0
        assert len(row["param_digest"]) == 64
    # Two ranks must pay a real (nonzero) gradient exchange.
    assert result["workers"]["2"]["comm_ms_per_step"] > 0


def test_bench_serve_structure():
    # Miniature Zipf traffic run; locks the serving contract the acceptance
    # criteria name — warm capture-hit rate >= 0.9 and the isolation
    # self-checks — not the throughput numbers.
    result = bench.bench_serve(quick=True)
    assert result["requests"] == 16
    assert result["steps_per_s"] > 0
    assert result["p99_latency_ms"] >= result["p50_latency_ms"] > 0
    assert result["warm_capture_hit_rate"] >= 0.9
    assert result["tenant_evictions"] > 0  # resident cap below tenant count
    assert result["base_digest_stable"] == 1.0
    assert result["distinct_tenant_digests"] == 1.0


def test_bench_fault_structure():
    # Structural: one injected rank crash must recover bitwise (digest and
    # losses equal to the uninterrupted run) with exactly one restart, the
    # CRC32 tax must be measured, and the durable store must round-trip its
    # slab bit-exact.  No tight ratio bar here or in CI — single-core
    # runners make μs-scale wall-clock ratios flaky; the 1–2% figure is
    # the quiet-hardware full-bench number (see README) — this locks the
    # shape and the invariants that make the numbers meaningful.
    result = bench.bench_fault(quick=True)
    recovery = result["recovery"]
    assert recovery["worker_restarts"] == 1.0
    assert recovery["recovery_wall_s"] > 0
    assert recovery["digest_match"] is True
    assert recovery["losses_match"] is True
    checksum = result["checksum"]
    assert checksum["checksum_ms_per_step"] >= 0
    assert checksum["comm_ms_per_step"] > 0
    assert checksum["checksum_overhead_pct"] >= 0
    assert checksum["checksum_failures"] == 0.0
    ckpt = result["checkpoint"]
    assert ckpt["write_mb_per_s"] > 0
    assert ckpt["read_mb_per_s"] > 0
    assert ckpt["roundtrip_bitwise"] is True


def test_bench_json_flag(tmp_path):
    json_path = tmp_path / "BENCH_perf.json"
    report = bench.main(["--json", str(json_path), "--repeats", "1",
                         "--op-repeats", "1", "--batch", "1", "--seq", "32",
                         "--predicted-seq", "64", "--predictor-epochs", "1",
                         "--predicted-repeats", "1",
                         "--long-context-max", "128"])
    assert json_path.exists()
    on_disk = json.loads(json_path.read_text())
    for key in ("meta", "dense_step", "sparse_step", "step_capture",
                "predicted_step", "predicted_quality", "prediction_overhead",
                "geometry", "sparse_chain", "crossover", "optimizer_step",
                "optimizer_regimes", "embedding_scatter", "long_context",
                "scaling", "serve", "fault", "ops"):
        assert key in on_disk and key in report
    assert on_disk["dense_step"]["fused_s"] > 0
    assert on_disk["predicted_step"]["speedup_vs_oracle"] > 0
    assert on_disk["prediction_overhead"]["block_reduce"]["speedup"] > 0
    assert set(on_disk["ops"]) == {"masked_softmax", "attention_core",
                                   "layer_norm", "cross_entropy", "linear_gelu"}
