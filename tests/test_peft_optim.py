"""Tests of the PEFT methods and optimizers."""

import numpy as np
import pytest

from repro.models import build_model
from repro.nn import Linear
from repro.optim import SGD, Adam, AdamW, GradScaler, MixedPrecisionConfig, clip_grad_norm
from repro.peft import (
    AdapterConfig,
    BitFitConfig,
    LoRAConfig,
    LoRALinear,
    PEFT_METHODS,
    apply_adapter,
    apply_bitfit,
    apply_full_finetuning,
    apply_lora,
    apply_prefix_tuning,
    get_peft_method,
)
from repro.tensor import Tensor


def fresh_model():
    return build_model("opt-tiny", seed=0)


def batch(seq=16):
    return np.random.default_rng(0).integers(0, 512, size=(2, seq))


class TestLoRA:
    def test_output_unchanged_at_initialisation(self):
        model = fresh_model()
        ids = batch()
        before = model(ids).data.copy()
        apply_lora(model, LoRAConfig(rank=4))
        after = model(ids).data
        np.testing.assert_allclose(before, after, atol=1e-5)

    def test_only_lora_parameters_trainable(self):
        model = fresh_model()
        result = apply_lora(model)
        assert all(("lora_A" in n) or ("lora_B" in n) for n in result.trainable_names)
        assert result.trainable_fraction < 0.1
        assert result.injected_parameters == result.trainable_parameters

    def test_gradients_restricted_to_lora(self):
        model = fresh_model()
        apply_lora(model)
        loss, _ = model.loss(batch())
        loss.backward()
        for name, p in model.named_parameters():
            if "lora" in name:
                assert p.grad is not None, name
            else:
                assert p.grad is None, name

    def test_double_application_raises(self):
        model = fresh_model()
        apply_lora(model)
        with pytest.raises(RuntimeError):
            apply_lora(model)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            LoRAConfig(rank=0)
        with pytest.raises(ValueError):
            apply_lora(fresh_model(), LoRAConfig(target_modules=("nonexistent",)))

    def test_merged_weight_reflects_updates(self):
        base = Linear(4, 4, rng=np.random.default_rng(0))
        lora = LoRALinear(base, rank=2, alpha=4)
        lora.lora_B.data[:] = 1.0
        merged = lora.merged_weight()
        assert not np.allclose(merged, base.weight.data)


class TestOtherPEFTMethods:
    def test_adapter_output_unchanged_at_init(self):
        model = fresh_model()
        ids = batch()
        before = model(ids).data.copy()
        apply_adapter(model, AdapterConfig(bottleneck_dim=8))
        np.testing.assert_allclose(before, model(ids).data, atol=1e-5)

    def test_adapter_trainable_names(self):
        model = fresh_model()
        result = apply_adapter(model)
        assert all("adapter" in n or "down" in n or "up" in n for n in result.trainable_names)
        assert result.injected_parameters > 0

    def test_bitfit_trains_only_biases(self):
        model = fresh_model()
        result = apply_bitfit(model, BitFitConfig())
        assert all(n.endswith("bias") for n in result.trainable_names)
        assert result.injected_parameters == 0

    def test_prefix_tuning_extends_then_trims_sequence(self):
        model = fresh_model()
        wrapped, result = apply_prefix_tuning(model)
        ids = batch(12)
        hidden = wrapped(ids)
        assert hidden.shape == (2, 12, model.config.dim)
        loss, _ = wrapped.loss(ids)
        loss.backward()
        assert any("prefix" in n for n in result.trainable_names)

    def test_full_finetuning_marks_everything_trainable(self):
        model = fresh_model()
        result = apply_full_finetuning(model)
        assert result.trainable_parameters == model.num_parameters()

    @pytest.mark.parametrize("name", sorted(PEFT_METHODS))
    def test_registry_every_method_trains_one_step(self, name):
        model = fresh_model()
        adapted, result = get_peft_method(name)(model)
        loss, _ = adapted.loss(batch())
        loss.backward()
        optimizer = Adam(adapted.trainable_parameters(), lr=1e-3)
        optimizer.step()
        assert result.trainable_parameters > 0

    def test_unknown_method_raises(self):
        with pytest.raises(KeyError):
            get_peft_method("qlora")

    def test_trainable_fraction_ordering_matches_paper(self):
        """BitFit < LoRA < Adapter < full, as in the paper's Table I setup."""
        fractions = {}
        for name in ["bitfit", "lora", "adapter", "full"]:
            model = fresh_model()
            _, result = get_peft_method(name)(model)
            fractions[name] = result.trainable_fraction
        assert fractions["bitfit"] < fractions["lora"] < fractions["adapter"] < fractions["full"]


class TestOptimizers:
    def _quadratic_problem(self):
        from repro.nn.module import Parameter
        target = np.array([3.0, -2.0, 0.5], dtype=np.float32)
        param = Parameter(np.zeros(3, dtype=np.float32))
        return param, target

    def _loss_and_grad(self, param, target):
        diff = param.data - target
        param.grad = 2 * diff
        return float((diff ** 2).sum())

    @pytest.mark.parametrize("optimizer_cls,kwargs", [
        (SGD, {"lr": 0.1}),
        (SGD, {"lr": 0.05, "momentum": 0.9}),
        (Adam, {"lr": 0.2}),
        (AdamW, {"lr": 0.2, "weight_decay": 0.001}),
    ])
    def test_converges_on_quadratic(self, optimizer_cls, kwargs):
        param, target = self._quadratic_problem()
        optimizer = optimizer_cls([param], **kwargs)
        for _ in range(200):
            self._loss_and_grad(param, target)
            optimizer.step()
            optimizer.zero_grad()
        np.testing.assert_allclose(param.data, target, atol=0.1)

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            Adam([], lr=1e-3)

    def test_adam_state_size(self):
        from repro.nn.module import Parameter
        param = Parameter(np.zeros((10, 10), dtype=np.float32))
        optimizer = Adam([param], lr=1e-3)
        assert optimizer.state_size_bytes() == 2 * 10 * 10 * 4

    def test_skips_parameters_without_grad(self):
        from repro.nn.module import Parameter
        param = Parameter(np.ones(3, dtype=np.float32))
        optimizer = SGD([param], lr=0.1)
        optimizer.step()  # no grad -> no change
        np.testing.assert_allclose(param.data, np.ones(3))

    def test_grad_clipping(self):
        from repro.nn.module import Parameter
        param = Parameter(np.zeros(4, dtype=np.float32))
        param.grad = np.full(4, 10.0, dtype=np.float32)
        norm = clip_grad_norm([param], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0, rel=1e-5)

    def test_grad_scaler_backoff_on_overflow(self):
        from repro.nn.module import Parameter
        scaler = GradScaler(MixedPrecisionConfig(enabled=True, init_scale=8.0))
        param = Parameter(np.zeros(2, dtype=np.float32))
        param.grad = np.array([np.inf, 1.0], dtype=np.float32)
        finite = scaler.unscale_and_check([param])
        assert not finite
        scaler.update(found_overflow=True)
        assert scaler.scale == 4.0
        assert scaler.overflow_count == 1

    def test_grad_scaler_scales_loss(self):
        scaler = GradScaler(MixedPrecisionConfig(enabled=True, init_scale=4.0))
        loss = Tensor(np.array(2.0, dtype=np.float32), requires_grad=True)
        assert float(scaler.scale_loss(loss).data) == pytest.approx(8.0)
