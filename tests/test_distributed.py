"""Shared-memory data-parallel trainer tests (``-m dist``).

Covers the three contracts of :mod:`repro.runtime.distributed`:

* **Determinism** — for a fixed seed and worker count, losses and final
  parameters are bitwise-reproducible run to run; ``workers=1`` is bitwise
  identical to the single-process :class:`FineTuner`; wider runs agree with
  the single-process trajectory to float tolerance (shard-shaped GEMMs take
  different BLAS blocking paths, so exact bits differ across worker counts).
* **Failure handling** — a worker killed mid-step surfaces as a
  :class:`DistributedError` with per-rank diagnostics within a bounded
  timeout, and both shared-memory segments are unlinked.
* **Segment lifecycle** — a clean run leaves nothing in ``/dev/shm``.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.models import ModelConfig, build_model
from repro.peft import apply_lora
from repro.runtime import (CaptureConfig, DataParallelTrainer,
                           DistributedError, FineTuner, TrainingConfig,
                           train_data_parallel)
from repro.runtime.comms import (STAT_MASK_SYNCS, STAT_RECAPTURES,
                                 STAT_REPLAY_STEPS, chunk_schedule)
from repro.sparsity import LongExposure, LongExposureConfig

pytestmark = pytest.mark.dist

NANO = ModelConfig(name="dp-nano", family="gpt2", vocab_size=64,
                   max_seq_len=64, dim=16, num_layers=1, num_heads=2,
                   activation="gelu", sparsify_init=False)


def _nano_tuner():
    model = build_model(NANO, seed=0)
    apply_lora(model)
    return FineTuner(model, TrainingConfig())


def _capturing_tuner():
    model = build_model(NANO, seed=0)
    apply_lora(model)
    return FineTuner(model, TrainingConfig(capture=CaptureConfig(enabled=True)))


def _engine_tuner():
    model = build_model("opt-tiny", seed=0)
    rng = np.random.default_rng(7)
    calib = rng.integers(0, model.config.vocab_size, size=(2, 32))
    engine = LongExposure(LongExposureConfig(
        block_size=16, seed=0, predictor_epochs=1, predict_interval=2,
        calibration_lengths=(32,)))
    engine.prepare(model, [calib])
    apply_lora(model)
    engine.install(model)
    return FineTuner(model, TrainingConfig(), engine=engine)


def _batches(count=4, rows=4, seq=16, seed=3):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, NANO.vocab_size, size=(rows, seq)).astype(np.int64)
            for _ in range(count)]


def _shm_entries(needle: str):
    try:
        return [name for name in os.listdir("/dev/shm") if needle in name]
    except FileNotFoundError:            # non-Linux tmpfs layout
        return []


class TestChunkSchedule:
    def test_covers_every_element_exactly_once(self):
        schedule = chunk_schedule(1000, world=3, chunk_elems=64)
        covered = []
        for start, end, owner in schedule:
            assert 0 <= owner < 3
            covered.extend(range(start, end))
        assert covered == list(range(1000))

    def test_ownership_is_round_robin_and_deterministic(self):
        schedule = chunk_schedule(256, world=2, chunk_elems=64)
        assert [owner for _, _, owner in schedule] == [0, 1, 0, 1]
        assert schedule == chunk_schedule(256, world=2, chunk_elems=64)

    def test_empty_and_tail_chunks(self):
        assert chunk_schedule(0, 4, 64) == []
        schedule = chunk_schedule(100, 4, 64)
        assert schedule[-1][1] == 100


class TestDeterminism:
    def test_one_worker_bitwise_matches_single_process(self):
        data = _batches()
        reference = _nano_tuner()
        ref_losses = [reference.step(batch)[0] for batch in data]
        report = train_data_parallel(_nano_tuner, data, workers=1,
                                     step_timeout_s=60.0)
        assert report.losses == ref_losses
        ref_params = [np.asarray(p.data) for p in reference.optimizer.params]
        assert len(report.final_params) == len(ref_params)
        for mine, theirs in zip(report.final_params, ref_params):
            assert np.array_equal(mine, theirs)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_wider_runs_are_run_to_run_bitwise_and_allclose(self, workers):
        data = _batches()
        reference = _nano_tuner()
        ref_losses = [reference.step(batch)[0] for batch in data]
        first = train_data_parallel(_nano_tuner, data, workers=workers,
                                    step_timeout_s=60.0)
        second = train_data_parallel(_nano_tuner, data, workers=workers,
                                     step_timeout_s=60.0)
        assert first.losses == second.losses
        assert first.param_digest == second.param_digest
        for mine, theirs in zip(first.final_params, second.final_params):
            assert np.array_equal(mine, theirs)
        np.testing.assert_allclose(first.losses, ref_losses, rtol=1e-5)

    def test_digest_certifies_cross_rank_replication(self):
        report = train_data_parallel(_nano_tuner, _batches(count=2),
                                     workers=2, step_timeout_s=60.0)
        # fetch_params raises if ranks diverged; a surviving digest is the
        # cross-rank bitwise-replication certificate.
        assert len(report.param_digest) == 64
        assert report.workers == 2


class TestCaptureIntegration:
    def test_exactly_one_recapture_per_worker_on_shard_shape_change(self):
        with DataParallelTrainer(_capturing_tuner, workers=2,
                                 step_timeout_s=60.0) as trainer:
            for batch in _batches(count=3, seq=16):
                trainer.step(batch)
            for batch in _batches(count=2, seq=24, seed=5):
                trainer.step(batch)
            stats = trainer._last_stats
            for rank in range(2):
                assert stats[rank, STAT_RECAPTURES] == 1
                # seq-16 steps: warm-up, capture, replay; seq-24: recapture,
                # replay — two replayed steps per worker in total.
                assert stats[rank, STAT_REPLAY_STEPS] == 2


class TestMaskBroadcast:
    def test_rank0_layouts_are_adopted_by_all_ranks(self):
        rng = np.random.default_rng(11)
        data = [rng.integers(0, 64, size=(4, 32)).astype(np.int64)
                for _ in range(4)]
        report = train_data_parallel(_engine_tuner, data, workers=2,
                                     step_timeout_s=120.0)
        syncs = [s["mask_syncs"] for s in report.worker_stats]
        assert syncs[0] == syncs[1] and syncs[0] >= 1
        assert all(np.isfinite(report.losses))

    def test_broadcast_off_probes_per_shard_and_stays_close(self):
        rng = np.random.default_rng(11)
        data = [rng.integers(0, 64, size=(4, 32)).astype(np.int64)
                for _ in range(4)]
        on = train_data_parallel(_engine_tuner, data, workers=2,
                                 step_timeout_s=120.0)
        off = train_data_parallel(_engine_tuner, data, workers=2,
                                  step_timeout_s=120.0, mask_broadcast=False)
        assert all(s["mask_syncs"] == 0 for s in off.worker_stats)
        np.testing.assert_allclose(on.losses, off.losses, rtol=1e-4)


class TestFailureHandling:
    def test_worker_killed_mid_step_raises_and_unlinks(self):
        # max_restarts=0 opts out of elastic recovery: this test locks the
        # fail-fast degradation path (the recovery path is locked by the
        # fault tier in tests/test_fault.py).
        batch = _batches(count=1)[0]
        trainer = DataParallelTrainer(_nano_tuner, workers=2,
                                      step_timeout_s=2.0,
                                      max_restarts=0,
                                      _test_step_delay_s=1.0)
        try:
            trainer.step(batch)                      # boots the workers
            session = trainer.session
            victim = trainer.worker_pids()[1]
            timer = threading.Timer(0.3, os.kill, args=(victim, signal.SIGKILL))
            timer.start()
            start = time.perf_counter()
            with pytest.raises(DistributedError) as excinfo:
                trainer.step(batch)
            elapsed = time.perf_counter() - start
            timer.cancel()
            # Bounded: the parent waits at most ~2x the step timeout + slack.
            assert elapsed < trainer._parent_timeout + 15.0
            assert "rank" in str(excinfo.value)
            assert _shm_entries(session) == []
        finally:
            trainer.close()
        assert _shm_entries(trainer.session) == []

    def test_indivisible_batch_is_rejected(self):
        trainer = DataParallelTrainer(_nano_tuner, workers=2,
                                      step_timeout_s=60.0)
        try:
            with pytest.raises(ValueError, match="cannot be split"):
                trainer.step(np.zeros((5, 16), dtype=np.int64))
        finally:
            trainer.close()

    def test_factory_error_surfaces_as_diagnostic(self):
        trainer = DataParallelTrainer(_boom_tuner, workers=2,
                                      step_timeout_s=5.0)
        try:
            with pytest.raises(DistributedError) as excinfo:
                trainer.step(_batches(count=1)[0])
            assert "boom" in str(excinfo.value)
        finally:
            trainer.close()
        assert _shm_entries(trainer.session) == []


def _boom_tuner():
    raise RuntimeError("boom: tuner factory failed")


class TestSegmentLifecycle:
    def test_clean_run_unlinks_everything(self):
        trainer = DataParallelTrainer(_nano_tuner, workers=2,
                                      step_timeout_s=60.0)
        trainer.step(_batches(count=1)[0])
        session = trainer.session
        assert len(_shm_entries(session)) == 2      # boot + data live
        trainer.close()
        assert _shm_entries(session) == []
        for process in trainer._state["processes"]:
            assert not process.is_alive()

    def test_close_is_idempotent(self):
        trainer = DataParallelTrainer(_nano_tuner, workers=1,
                                      step_timeout_s=60.0)
        trainer.step(_batches(count=1)[0])
        trainer.close()
        trainer.close()
        with pytest.raises(DistributedError, match="closed"):
            trainer.step(_batches(count=1)[0])

    def test_config_worker_count_is_honoured(self):
        config = TrainingConfig(data_parallel_workers=2)
        with DataParallelTrainer(_nano_tuner, config,
                                 step_timeout_s=60.0) as trainer:
            assert trainer.world == 2
            loss, timing = trainer.step(_batches(count=1)[0])
            assert np.isfinite(loss)
            assert timing.comm > 0.0
