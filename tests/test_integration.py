"""Integration tests: the full pipeline the examples and benchmarks rely on."""

import numpy as np
import pytest

from repro import (
    FineTuner,
    LongExposure,
    LongExposureConfig,
    TrainingConfig,
    build_model,
    get_peft_method,
)
from repro.analysis import format_table, model_sparsity_profile, speedup_series
from repro.analysis.reporting import ascii_bar_chart
from repro.data import E2EDatasetGenerator, build_task_suite, evaluate_model_on_task


@pytest.fixture(scope="module")
def e2e_batches():
    model_vocab = build_model("opt-tiny").config.vocab_size
    return E2EDatasetGenerator(seed=0).token_batches(3, batch_size=2, seq_len=64,
                                                     vocab_size=model_vocab)


class TestEndToEndFineTuning:
    def test_lora_plus_longexposure_training_reduces_loss(self, e2e_batches):
        model = build_model("opt-tiny", seed=0)
        engine = LongExposure(LongExposureConfig(block_size=16, predictor_epochs=3))
        engine.prepare(model, e2e_batches[:1])
        model, _ = get_peft_method("lora")(model)
        engine.install(model)
        try:
            tuner = FineTuner(model, TrainingConfig(learning_rate=5e-3), engine=engine)
            data = [e2e_batches[i % len(e2e_batches)] for i in range(10)]
            report = tuner.train(data)
        finally:
            engine.uninstall(model)
        assert report.losses[-1] < report.losses[0]
        assert report.mean_timings().prediction > 0

    def test_sparse_training_tracks_dense_training(self, e2e_batches):
        """Fine-tuning with LongExposure must follow the dense loss curve closely
        (the Figure 11a comparison, where only *random* masks diverge)."""
        def run(use_engine):
            model = build_model("opt-tiny", seed=0)
            engine = None
            if use_engine:
                engine = LongExposure(LongExposureConfig(block_size=16, oracle_mode=True))
                engine.prepare(model, e2e_batches[:1])
            model, _ = get_peft_method("bitfit")(model)
            if engine:
                engine.install(model)
            tuner = FineTuner(model, TrainingConfig(learning_rate=5e-3, seed=0))
            data = [e2e_batches[i % len(e2e_batches)] for i in range(6)]
            report = tuner.train(data)
            return report.losses

        dense_losses = run(False)
        sparse_losses = run(True)
        diffs = np.abs(np.array(dense_losses) - np.array(sparse_losses))
        assert diffs.max() < 0.1

    def test_downstream_accuracy_preserved_under_sparsity(self):
        """Table IV protocol at miniature scale: accuracy with LongExposure stays
        within a small margin of accuracy without it."""
        suite = build_task_suite(examples_per_task=6, seed=0)
        model = build_model("opt-tiny", seed=0)
        dense_acc = evaluate_model_on_task(model, suite.tasks["piqa"], suite.tokenizer,
                                           vocab_size=model.config.vocab_size)
        engine = LongExposure(LongExposureConfig(block_size=16, oracle_mode=True))
        calibration = [np.random.default_rng(0).integers(0, 512, size=(2, 64))]
        engine.prepare(model, calibration)
        engine.install(model)
        try:
            sparse_acc = evaluate_model_on_task(model, suite.tasks["piqa"], suite.tokenizer,
                                                vocab_size=model.config.vocab_size)
        finally:
            engine.uninstall(model)
        assert abs(dense_acc["accuracy"] - sparse_acc["accuracy"]) <= 0.35


class TestAnalysisHelpers:
    def test_sparsity_profile_covers_all_layers(self, e2e_batches):
        model = build_model("opt-tiny", seed=0)
        profiles = model_sparsity_profile(model, e2e_batches[:1], block_size=16)
        assert len(profiles) == len(model.blocks)
        for profile in profiles:
            assert 0 <= profile.attention_head_specific <= 1
            assert set(profile.mlp_filtered) == {0.01, 0.02, 0.03, 0.05}
            # Importance filtering never reduces sparsity below the raw level.
            assert profile.mlp_filtered[0.05] >= profile.mlp_filtered[0.01] - 1e-9

    def test_reporting_helpers(self):
        table = format_table(["a", "b"], [[1, 2.5], ["x", 3.0]], title="T")
        assert "T" in table and "2.50" in table
        chart = ascii_bar_chart(["one", "two"], [1.0, 2.0], title="C")
        assert chart.count("#") > 3
        speedups = speedup_series({"x": 2.0}, {"x": 1.0})
        assert speedups["x"] == pytest.approx(2.0)
