"""Tests of the atomic sparse patterns, the pattern pool and the block layouts."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparsity.patterns import (
    AtomicPattern,
    PatternPool,
    block_count,
    build_default_pool,
    causal_block_mask,
)
from repro.sparsity.ops.layout import LayoutPool, MultiHeadLayout, layout_from_block_masks


class TestPatterns:
    def setup_method(self):
        self.pool = build_default_pool()

    def test_block_count(self):
        assert block_count(64, 32) == 2
        assert block_count(65, 32) == 3
        with pytest.raises(ValueError):
            block_count(0, 32)

    @pytest.mark.parametrize("name", build_default_pool().names())
    def test_every_pattern_is_causal_with_diagonal(self, name):
        mask = self.pool.mask(name, 8)
        assert not np.any(np.triu(mask, k=1)), "pattern must stay causal"
        assert np.all(np.diag(mask)), "diagonal blocks must always be computed"

    def test_dense_pattern_covers_all_causal_blocks(self):
        mask = self.pool.mask("dense", 6)
        np.testing.assert_array_equal(mask, causal_block_mask(6))

    def test_density_ordering(self):
        assert self.pool.patterns["diag"].density(16) < self.pool.patterns["local4"].density(16)
        assert self.pool.patterns["local4"].density(16) < self.pool.patterns["dense"].density(16)

    def test_match_prefers_cheapest_covering_pattern(self):
        n = 8
        # Mass concentrated on the diagonal blocks only.
        scores = np.eye(n)
        assert self.pool.match(scores, coverage=0.95) == "diag"
        # Uniform mass over a large causal triangle requires the dense pattern
        # (every non-dense atomic pattern misses too many blocks at n=24).
        uniform = causal_block_mask(24).astype(float)
        assert self.pool.match(uniform, coverage=0.99) == "dense"

    def test_match_rejects_non_square(self):
        with pytest.raises(ValueError):
            self.pool.match(np.ones((2, 3)))

    def test_match_zero_mass_returns_cheapest(self):
        assert self.pool.match(np.zeros((4, 4))) == self.pool.names()[0]

    def test_layout_cache_reused(self):
        first = self.pool.layout("local4", 8)
        second = self.pool.layout("local4", 8)
        assert first[0] is second[0]

    def test_cost_counts_active_blocks(self):
        assert self.pool.cost("diag", 8) == 8
        assert self.pool.cost("dense", 8) == causal_block_mask(8).sum()


class TestLayouts:
    def test_layout_from_block_masks_sorted_and_causal(self):
        rng = np.random.default_rng(0)
        masks = rng.random((3, 6, 6)) > 0.5
        layout = layout_from_block_masks(masks, block_size=16)
        keys = layout.heads * 100 + layout.rows * 10 + layout.cols
        assert np.all(np.diff(keys) > 0), "blocks must be (head,row,col) sorted"
        assert np.all(layout.cols <= layout.rows), "layout must stay causal"
        # Every (head, row) has at least the diagonal block.
        for h in range(3):
            mask = layout.head_mask(h)
            assert np.all(np.diag(mask))

    def test_density_and_sparsity_are_complementary(self):
        masks = np.repeat(np.eye(4, dtype=bool)[None], 2, axis=0)
        layout = layout_from_block_masks(masks, block_size=8)
        assert layout.density() + layout.sparsity() == pytest.approx(1.0)
        assert layout.nnz == 8

    def test_to_dense_mask_respects_causality(self):
        masks = np.ones((1, 2, 2), dtype=bool)
        layout = layout_from_block_masks(masks, block_size=4)
        dense = layout.to_dense_mask(8)
        assert dense.shape == (1, 8, 8)
        assert not dense[0, 0, 5]
        assert dense[0, 5, 0]

    def test_col_geometry_covers_all_blocks(self):
        masks = np.random.default_rng(1).random((2, 5, 5)) > 0.4
        layout = layout_from_block_masks(masks, block_size=8)
        order, starts, seg_heads, seg_cols = layout.col_geometry()
        assert order.shape[0] == layout.nnz
        assert starts[0] == 0
        assert seg_heads.shape == seg_cols.shape == starts.shape

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            layout_from_block_masks(np.ones((4, 4), dtype=bool), 8)


class TestLayoutPool:
    def setup_method(self):
        self.pool = LayoutPool(build_default_pool(), block_size=16)

    def test_offline_construction_populates_tables(self):
        self.pool.construct([64, 128])
        assert self.pool.table_count() == 2 * len(self.pool.pattern_pool.names())

    def test_combine_applies_per_head_patterns(self):
        layout = self.pool.combine(["diag", "dense"], seq_len=64)
        assert layout.n_heads == 2
        diag_blocks = (layout.heads == 0).sum()
        dense_blocks = (layout.heads == 1).sum()
        assert diag_blocks == 4
        assert dense_blocks == causal_block_mask(4).sum()

    def test_combined_layout_is_cached(self):
        a = self.pool.combine(["local2", "local2"], 64)
        b = self.pool.combine(["local2", "local2"], 64)
        assert a is b

    def test_dense_layout_has_zero_sparsity(self):
        layout = self.pool.dense_layout(3, 64)
        assert layout.sparsity() == pytest.approx(0.0)

    def test_combined_layout_row_sorted(self):
        layout = self.pool.combine(["local4+global1", "strided2+local2"], 96)
        keys = (layout.heads * layout.n_blocks + layout.rows) * layout.n_blocks + layout.cols
        assert np.all(np.diff(keys) > 0)


@settings(max_examples=20, deadline=None)
@given(n_blocks=st.integers(2, 12), coverage=st.floats(0.5, 0.99),
       seed=st.integers(0, 1000))
def test_match_always_reaches_requested_coverage(n_blocks, coverage, seed):
    """Property: the matched pattern always retains >= coverage of the block mass."""
    pool = build_default_pool()
    rng = np.random.default_rng(seed)
    scores = rng.random((n_blocks, n_blocks)) * causal_block_mask(n_blocks)
    name = pool.match(scores, coverage=coverage)
    mask = pool.mask(name, n_blocks)
    retained = scores[mask].sum() / scores.sum()
    assert retained >= coverage - 1e-9


@settings(max_examples=20, deadline=None)
@given(n_heads=st.integers(1, 4), n_blocks=st.integers(2, 8), seed=st.integers(0, 1000))
def test_layout_roundtrip_preserves_masks(n_heads, n_blocks, seed):
    """Property: building a layout from masks and reading head_mask back matches
    the causal+diagonal closure of the input masks."""
    rng = np.random.default_rng(seed)
    masks = rng.random((n_heads, n_blocks, n_blocks)) > 0.6
    layout = layout_from_block_masks(masks, block_size=4)
    expected = (masks & causal_block_mask(n_blocks)) | np.eye(n_blocks, dtype=bool)[None]
    for h in range(n_heads):
        np.testing.assert_array_equal(layout.head_mask(h), expected[h])
