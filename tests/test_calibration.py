"""Tests of the predictor-calibration subsystem (threshold + snap fitting).

Covers the three calibration guarantees the ISSUE names:

* threshold calibration closes the predicted-vs-oracle block-density gap —
  including at seq 512, the regime where the uncalibrated probes were
  measured ~0.10 too dense;
* the multi-length grid round-trips (exact lookups at grid lengths,
  log-linear interpolation between them, clamping outside), so probes do not
  collapse to near-dense masks away from their training length;
* pattern snapping never violates the causal/layout invariants — snapped
  layouts stay inside the causal triangle with a guaranteed diagonal, for
  any input mask.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import build_model
from repro.sparsity import LongExposure, LongExposureConfig
from repro.sparsity.exposer import AttentionExposer, MLPExposer
from repro.sparsity.patterns import build_default_pool, causal_block_mask
from repro.sparsity.predictor import (
    AttentionCalibration,
    AttentionPredictor,
    MLPCalibration,
    MLPPredictor,
    PredictorTrainingConfig,
    calibrate_attention_predictor,
    calibrate_mlp_predictor,
    collect_layer_data,
    train_attention_predictor,
    train_mlp_predictor,
)
from repro.sparsity.predictor.calibration import _bracket, _separating_threshold


class TestPrimitives:
    def test_separating_threshold_keeps_exactly_k(self):
        rng = np.random.default_rng(0)
        vals = np.sort(rng.normal(size=50))[::-1]
        for keep in (1, 10, 49):
            tau = _separating_threshold(vals, keep)
            assert int((vals > tau).sum()) == keep

    def test_separating_threshold_edges(self):
        vals = np.array([3.0, 2.0, 1.0])
        assert (vals > _separating_threshold(vals, 0)).sum() == 0
        assert (vals > _separating_threshold(vals, 3)).sum() == 3
        assert (vals > _separating_threshold(vals, 99)).sum() == 3

    def test_separating_threshold_ties_keep_more_not_fewer(self):
        """Tied boundary scores must be kept (recall side), not all dropped."""
        vals = np.array([5.0, 3.0, 3.0, 3.0, 1.0])
        tau = _separating_threshold(vals, 3)
        assert int((vals > tau).sum()) == 4   # all tied 3.0s survive
        tau = _separating_threshold(np.zeros(6), 2)
        assert int((np.zeros(6) > tau).sum()) == 6

    def test_bracket_exact_and_clamped(self):
        assert _bracket([32, 64, 128], 64) == (64, None, 0.0)
        assert _bracket([32, 64, 128], 16) == (32, None, 0.0)
        assert _bracket([32, 64, 128], 512) == (128, None, 0.0)
        low, high, w = _bracket([32, 128], 64)
        assert (low, high) == (32, 128)
        assert w == pytest.approx(0.5)   # log-linear: 64 is halfway in log2

    def test_thresholds_for_interpolates_between_grid_points(self):
        cal = AttentionCalibration(
            block_size=16,
            thresholds={32: np.array([0.0, 2.0]), 128: np.array([1.0, 4.0])},
            snap_coverage=0.8)
        np.testing.assert_array_equal(cal.thresholds_for(32), [0.0, 2.0])
        np.testing.assert_array_equal(cal.thresholds_for(128), [1.0, 4.0])
        np.testing.assert_allclose(cal.thresholds_for(64), [0.5, 3.0])
        np.testing.assert_array_equal(cal.thresholds_for(8), [0.0, 2.0])
        np.testing.assert_array_equal(cal.thresholds_for(4096), [1.0, 4.0])

    def test_mlp_threshold_for_round_trip(self):
        cal = MLPCalibration(thresholds={32: 0.2, 128: 0.6})
        assert cal.threshold_for(32) == 0.2
        assert cal.threshold_for(128) == 0.6
        assert cal.threshold_for(64) == pytest.approx(0.4)
        assert cal.grid_lengths() == [32, 128]

    def test_set_calibration_validates_block_size(self):
        predictor = AttentionPredictor(32, 2, 4, 16, build_default_pool())
        wrong = AttentionCalibration(block_size=32, thresholds={64: np.zeros(2)},
                                     snap_coverage=0.8)
        with pytest.raises(ValueError):
            predictor.set_calibration(wrong)
        predictor.set_calibration(None)
        assert predictor.calibration is None


class TestSnapMasks:
    def setup_method(self):
        self.pool = build_default_pool()

    def test_snapped_patterns_preserve_causality_and_diagonal(self):
        """Snapping never violates the layout invariants, for any input."""
        rng = np.random.default_rng(0)
        for n_blocks in (4, 8, 16):
            masks = rng.random((5, n_blocks, n_blocks)) < 0.4
            names = self.pool.snap_masks(masks, coverage=0.8)
            assert len(names) == 5
            causal = causal_block_mask(n_blocks)
            for name in names:
                snapped = self.pool.mask(name, n_blocks)
                assert not np.any(snapped & ~causal)          # causal
                assert np.all(np.diag(snapped))               # diagonal kept

    def test_snap_retains_coverage_or_falls_back_to_dense(self):
        rng = np.random.default_rng(1)
        n_blocks = 8
        masks = (rng.random((6, n_blocks, n_blocks)) < 0.5) & \
            causal_block_mask(n_blocks)[None]
        masks |= np.eye(n_blocks, dtype=bool)[None]
        bar = 0.85
        names = self.pool.snap_masks(masks, coverage=bar)
        for mask, name in zip(masks, names):
            snapped = self.pool.mask(name, n_blocks)
            retained = (mask & snapped).sum() / mask.sum()
            assert retained >= bar - 1e-12 or name == "dense"

    def test_exact_pattern_snaps_to_itself_at_full_coverage(self):
        """At coverage 1.0 only supersets qualify and the cheapest wins, so a
        pattern snaps back to its own mask (possibly under an alias name when
        two pool patterns coincide at this grid size, e.g. dense and
        local8+global2 at 8 blocks)."""
        n_blocks = 8
        for name in ("local2", "local4+global1", "strided2+local2", "dense"):
            mask = self.pool.mask(name, n_blocks)
            snapped = self.pool.snap_masks(mask[None], coverage=1.0)[0]
            np.testing.assert_array_equal(self.pool.mask(snapped, n_blocks), mask)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            self.pool.snap_masks(np.zeros((8, 8), dtype=bool))


@pytest.fixture(scope="module")
def trained_setup(tiny_model):
    """A trained layer-0 attention predictor plus per-length collected data."""
    rng = np.random.default_rng(3)
    batches = [rng.integers(0, tiny_model.config.vocab_size, size=(2, 128))]
    pool = build_default_pool()
    exposer = AttentionExposer(pool, block_size=16, coverage=0.9)
    lengths = (32, 64, 128)
    per_length = {
        length: collect_layer_data(tiny_model, [b[..., :length] for b in batches])
        for length in lengths
    }
    merged = per_length[128][0].merged()
    predictor = AttentionPredictor(tiny_model.config.dim, tiny_model.config.num_heads,
                                   rank=4, block_size=16, pattern_pool=pool, seed=0)
    train_attention_predictor(predictor, merged["attention_inputs"],
                              merged["attention_probs"], exposer,
                              PredictorTrainingConfig(epochs=8))
    inputs = {l: per_length[l][0].merged()["attention_inputs"] for l in lengths}
    probs = {l: per_length[l][0].merged()["attention_probs"] for l in lengths}
    return predictor, exposer, inputs, probs


class TestThresholdCalibration:
    def test_calibrated_density_matches_oracle_on_calibration_data(self, trained_setup):
        predictor, exposer, inputs, probs = trained_setup
        calibration = calibrate_attention_predictor(predictor, exposer,
                                                    inputs, probs)
        assert sorted(calibration.thresholds) == [32, 64, 128]
        # The raw thresholded masks hit the oracle density by construction
        # (quantile matching); overshoot is bounded by the forced diagonal
        # (at most n_blocks of the n_blocks(n_blocks+1)/2 causal blocks, felt
        # only on coarse grids), undershoot only by quantisation.
        for entry in calibration.entries:
            n_blocks = entry.seq_len // 16
            diag_slack = 2.0 / (n_blocks + 1)
            assert entry.raw_predicted_density >= entry.oracle_density - 0.05
            assert entry.raw_predicted_density <= (
                entry.oracle_density + diag_slack + 0.05)
            assert entry.gap <= 0.2
        finest = max(calibration.entries, key=lambda e: e.seq_len)
        assert finest.raw_predicted_density == pytest.approx(
            finest.oracle_density, abs=0.06)
        assert 0.0 <= calibration.mean_gap() <= 0.2

    def test_calibration_tightens_the_density_gap(self, trained_setup):
        """Calibrated predictions must track oracle density better than the
        fixed-threshold path at every grid length."""
        predictor, exposer, inputs, probs = trained_setup
        calibration = calibrate_attention_predictor(predictor, exposer,
                                                    inputs, probs)
        pool = predictor.pattern_pool
        gaps = {}
        for calibrated in (False, True):
            predictor.set_calibration(calibration if calibrated else None)
            total = 0.0
            for length, x in inputs.items():
                n_blocks = probs[length].shape[-1] // 16
                _, oracle_names = exposer.head_block_masks(probs[length])
                causal_total = causal_block_mask(n_blocks).sum()
                oracle_density = np.mean([
                    pool.mask(n, n_blocks).sum() / causal_total
                    for n in oracle_names])
                names = predictor.predict_patterns(x)
                predicted_density = np.mean([
                    pool.mask(n, n_blocks).sum() / causal_total for n in names])
                total += abs(predicted_density - oracle_density)
            gaps[calibrated] = total / len(inputs)
        predictor.set_calibration(None)
        assert gaps[True] <= gaps[False] + 1e-9

    def test_multi_length_round_trip_no_dense_collapse(self, trained_setup):
        """A probe calibrated on the grid must stay structured at every grid
        length *and* at interpolated lengths in between — the uncalibrated
        failure mode was near-dense masks away from the training length."""
        predictor, exposer, inputs, probs = trained_setup
        calibration = calibrate_attention_predictor(predictor, exposer,
                                                    inputs, probs)
        predictor.set_calibration(calibration)
        try:
            rng = np.random.default_rng(11)
            for seq in (32, 48, 64, 96, 128):     # 48/96 are off-grid
                x = rng.normal(size=(2, seq, predictor.dim)).astype(np.float32)
                masks = predictor.block_masks(x)
                n_blocks = masks.shape[-1]
                causal_total = causal_block_mask(n_blocks).sum()
                density = masks[:, causal_block_mask(n_blocks)].sum() / (
                    masks.shape[0] * causal_total)
                assert density < 0.95    # never collapses to (near-)dense
                names = predictor.predict_patterns(x)
                assert all(n in predictor.pattern_pool.names() for n in names)
        finally:
            predictor.set_calibration(None)


class TestMLPCalibrationFit:
    def test_calibrated_active_count_matches_oracle(self, tiny_model):
        rng = np.random.default_rng(5)
        batches = [rng.integers(0, tiny_model.config.vocab_size, size=(2, 64))]
        collected = collect_layer_data(tiny_model, batches)
        merged = collected[0].merged()
        exposer = MLPExposer(block_size=16, threshold=0.03)
        predictor = MLPPredictor(tiny_model.config.dim, tiny_model.config.hidden_dim,
                                 block_size=16, seed=0)
        train_mlp_predictor(predictor, merged["mlp_inputs"],
                            merged["mlp_activations"], exposer,
                            PredictorTrainingConfig(epochs=6))
        calibration = calibrate_mlp_predictor(
            predictor, exposer,
            {64: merged["mlp_inputs"]}, {64: merged["mlp_activations"]})
        predictor.set_calibration(calibration)
        try:
            oracle = exposer.active_blocks(merged["mlp_activations"])
            predicted = predictor.predict_active_blocks(merged["mlp_inputs"])
            assert predicted.size == oracle.size
        finally:
            predictor.set_calibration(None)


class TestSeq512Gap:
    def test_predicted_sparsity_tracks_oracle_at_seq_512(self):
        """The acceptance-criteria regime at test scale: calibrated probes on
        fresh batches at seq 512 stay within tolerance of the oracle's block
        sparsity, and strictly closer than the uncalibrated probes."""
        model = build_model("opt-tiny", seed=0)
        rng = np.random.default_rng(0)
        calib = rng.integers(0, model.config.vocab_size, size=(2, 512))
        config = LongExposureConfig(block_size=32, predictor_epochs=8, seed=0,
                                    calibration_lengths=(128, 512))
        engine = LongExposure(config)
        engine.prepare(model, [calib])

        ids = rng.integers(0, model.config.vocab_size, size=(2, 512))
        layers = collect_layer_data(model, [ids])
        oracle_sp, cal_sp, uncal_sp = [], [], []
        for layer_index, predictor in enumerate(engine.attention_predictors):
            merged = layers[layer_index].merged()
            _, names = engine.attention_exposer.head_block_masks(
                merged["attention_probs"])
            oracle_sp.append(engine.layout_pool.combine(list(names), 512).sparsity())
            cal_names = predictor.predict_patterns(merged["attention_inputs"])
            cal_sp.append(engine.layout_pool.combine(cal_names, 512).sparsity())
            saved = predictor.calibration
            predictor.calibration = None
            try:
                uncal_names = predictor.predict_patterns(merged["attention_inputs"])
            finally:
                predictor.calibration = saved
            uncal_sp.append(engine.layout_pool.combine(uncal_names, 512).sparsity())
        cal_gap = abs(np.mean(oracle_sp) - np.mean(cal_sp))
        uncal_gap = abs(np.mean(oracle_sp) - np.mean(uncal_sp))
        assert cal_gap <= 0.10          # test-scale tolerance (bench bar: 0.05)
        assert cal_gap <= uncal_gap + 1e-9


class TestCollectAndMetricsSupport:
    def test_collect_truncate_to_clips_and_skips(self, tiny_model):
        rng = np.random.default_rng(2)
        long_batch = rng.integers(0, tiny_model.config.vocab_size, size=(2, 64))
        short_batch = rng.integers(0, tiny_model.config.vocab_size, size=(2, 16))
        collected = collect_layer_data(tiny_model, [long_batch, short_batch],
                                       truncate_to=32)
        merged = collected[0].merged()
        # Only the long batch survives, clipped to 32 tokens.
        assert merged["attention_inputs"].shape[:2] == (2, 32)
        assert merged["attention_probs"].shape[-2:] == (32, 32)

    def test_metrics_report_density_miscalibration(self, trained_setup):
        predictor, exposer, inputs, probs = trained_setup
        metrics = train_attention_predictor(
            predictor, inputs[128], probs[128], exposer,
            PredictorTrainingConfig(epochs=0))
        assert 0.0 <= metrics.label_density <= 1.0
        assert 0.0 <= metrics.predicted_density <= 1.0
        assert "density" in metrics.summary()


class TestEngineIntegration:
    def test_prepare_attaches_calibrations(self, prepared_engine):
        model, engine = prepared_engine
        assert len(engine.attention_calibrations) == len(model.blocks)
        assert len(engine.mlp_calibrations) == len(model.blocks)
        for predictor, calibration in zip(engine.attention_predictors,
                                          engine.attention_calibrations):
            assert predictor.calibration is calibration
            assert calibration.grid_lengths() == [64]   # native batch length
        gaps = engine.calibration_gap()
        assert set(gaps) == {"attention", "mlp"}
        assert all(0.0 <= g <= 1.0 for g in gaps.values())
        assert "calibration" in engine.summary()

    def test_calibration_can_be_disabled(self, tiny_batches):
        model = build_model("opt-tiny", seed=0)
        config = LongExposureConfig(block_size=16, predictor_epochs=1,
                                    calibrate_predictors=False)
        engine = LongExposure(config)
        engine.prepare(model, tiny_batches[:1])
        assert engine.attention_calibrations == []
        assert all(p.calibration is None for p in engine.attention_predictors)
        assert engine.calibration_gap() == {}

    def test_explicit_grid_lengths_collected(self, tiny_batches):
        model = build_model("opt-tiny", seed=0)
        config = LongExposureConfig(block_size=16, predictor_epochs=1,
                                    calibration_lengths=(32, 64))
        engine = LongExposure(config)
        engine.prepare(model, tiny_batches[:1])
        assert engine.attention_calibrations[0].grid_lengths() == [32, 64]

    def test_config_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            LongExposureConfig(calibration_lengths=(0,))

    def test_declared_seq_lens_longer_than_batches(self, tiny_batches):
        """prepare() may declare layout-pool lengths beyond the calibration
        batches; the calibration grid must follow the *actual* batch lengths
        (regression: keying by declared lengths mismatched masks vs probs)."""
        model = build_model("opt-tiny", seed=0)
        config = LongExposureConfig(block_size=16, predictor_epochs=1)
        engine = LongExposure(config)
        engine.prepare(model, tiny_batches[:1], seq_lens=[128])
        assert engine.attention_calibrations[0].grid_lengths() == [64]

    def test_trainer_surfaces_calibration_gauges(self, tiny_batches):
        from repro.peft import apply_lora
        from repro.runtime.trainer import FineTuner, TrainingConfig

        model = build_model("opt-tiny", seed=0)
        engine = LongExposure(LongExposureConfig(block_size=16,
                                                 predictor_epochs=1))
        engine.prepare(model, tiny_batches[:1])
        apply_lora(model)
        engine.install(model)
        try:
            tuner = FineTuner(model, TrainingConfig(learning_rate=1e-3),
                              engine=engine)
            tuner.step(np.asarray(tiny_batches[0]))
        finally:
            engine.uninstall(model)
        gauges = tuner.profiler.gauges()
        assert "attention_sparsity" in gauges
        assert "mlp_sparsity" in gauges
        assert "attention_calibration_gap" in gauges
        assert "mlp_calibration_gap" in gauges
        assert 0.0 <= gauges["attention_sparsity"] <= 1.0
        summary = tuner.profiler.summary_dict()
        assert "attention_calibration_gap" in summary["gauges"]
