"""Reusable fused-vs-reference parity harness.

Every fused kernel in the stack has three independent correctness anchors:

* the **primitive-composition twin** in :mod:`repro.tensor.reference`, whose
  backward is derived by autograd from elementary ops;
* **central finite differences** of the dispatched forward itself;
* the **runtime toggle** (:func:`repro.tensor.fused.set_fused_kernels`),
  which must route the same call sites through either implementation.

This module turns those anchors into data: :func:`build_cases` returns one
:class:`ParityCase` per (op, shape/dtype/sequence-length configuration), and
:func:`run_case` executes the full check for a case under either toggle
state.  Ops are always invoked through their *dispatch* entry point (the
``repro.tensor.functional`` layer for the dense kernels,
``repro.sparsity.ops.block_sparse_attention`` for the sparse chain), so a
case run with ``fused_enabled=False`` gradchecks the reference twin and the
toggle plumbing at the same time.

Adding a new fused op = appending cases in :func:`build_cases`; the test
files stay untouched.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, List, Sequence

import numpy as np

from repro.sparsity.ops import block_sparse_attention
from repro.sparsity.ops.layout import LayoutPool, layout_from_block_masks
from repro.sparsity.patterns import build_default_pool
from repro.tensor import Tensor, functional as F, fused, reference


@dataclass
class ParityCase:
    """One op under one input configuration, ready for gradchecking."""

    op: str                       # op family ("softmax", "sparse_chain", ...)
    case_id: str                  # unique pytest id, e.g. "softmax-2d-f32"
    dispatch: Callable            # toggle-routed entry point, takes Tensors
    reference: Callable           # primitive-composition twin, takes Tensors
    arrays: List[np.ndarray]      # differentiable inputs (gradchecked each)
    tol_fd: float = 1e-3          # max rel err vs central finite differences
    tol_ref: float = 5e-5         # max rel err fused vs reference autograd
    scalar_output: bool = False   # op returns a scalar loss (e.g. (loss, n))

    def __str__(self) -> str:  # pragma: no cover - pytest id helper
        return self.case_id


@contextlib.contextmanager
def kernels_enabled(enabled: bool):
    """Force the fused-kernel toggle to ``enabled`` for the duration."""
    previous = fused.fused_kernels_enabled()
    fused.set_fused_kernels(enabled)
    try:
        yield
    finally:
        fused.set_fused_kernels(previous)


# ---------------------------------------------------------------------------
# gradcheck machinery
# ---------------------------------------------------------------------------

def _unwrap(out):
    """Ops like cross entropy return ``(loss, n_valid)``; keep the Tensor."""
    return out[0] if isinstance(out, tuple) else out


def loss_fn(op: Callable, arrays: Sequence[np.ndarray],
            projection: np.ndarray) -> float:
    """Scalar probe ``sum(op(*arrays) * projection)`` evaluated in float64."""
    out = _unwrap(op(*[Tensor(a) for a in arrays]))
    return float(np.sum(out.data.astype(np.float64) * projection))


def analytic_grads(op: Callable, arrays: Sequence[np.ndarray],
                   projection: np.ndarray) -> List[np.ndarray]:
    """Gradients of the probe loss w.r.t. every input, via the tape."""
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    out = _unwrap(op(*tensors))
    loss = (out * Tensor(projection.astype(np.float32))).sum()
    loss.backward()
    return [t.grad for t in tensors]


def fd_grad(op: Callable, arrays: Sequence[np.ndarray], index: int,
            projection: np.ndarray, h: float = 1e-2) -> np.ndarray:
    """Central finite differences of the probe loss w.r.t. ``arrays[index]``."""
    base = arrays[index]
    grad = np.zeros_like(base, dtype=np.float64)
    flat = base.reshape(-1)
    for i in range(flat.shape[0]):
        original = flat[i]
        flat[i] = original + h
        plus = loss_fn(op, arrays, projection)
        flat[i] = original - h
        minus = loss_fn(op, arrays, projection)
        flat[i] = original
        grad.reshape(-1)[i] = (plus - minus) / (2 * h)
    return grad


def max_rel_err(analytic: np.ndarray, fd: np.ndarray) -> float:
    """Max absolute error scaled by the gradient's infinity norm."""
    scale = np.max(np.abs(fd)) + 1e-12
    return float(np.max(np.abs(analytic.astype(np.float64) - fd)) / scale)


def run_case(case: ParityCase, fused_enabled: bool = True) -> None:
    """Gradcheck ``case``'s dispatch entry under the given toggle state.

    Asserts, for every differentiable input: dispatch-vs-reference autograd
    agreement (``tol_ref``) and dispatch-vs-central-finite-differences
    agreement (``tol_fd``).  With ``fused_enabled=False`` the dispatch layer
    resolves to the reference twin, so the same run validates the reference
    implementations and the toggle routing.
    """
    arrays = [a.copy() for a in case.arrays]
    with kernels_enabled(fused_enabled):
        if case.scalar_output:
            projection = np.ones(1, dtype=np.float64)
        else:
            probe = _unwrap(case.dispatch(*[Tensor(a) for a in arrays]))
            rng = np.random.default_rng(99)
            projection = rng.normal(size=probe.shape).astype(np.float32)
            projection = projection.astype(np.float64)
        dispatch_grads = analytic_grads(case.dispatch, arrays, projection)
        fd_grads = [fd_grad(case.dispatch, arrays, i, projection)
                    for i in range(len(arrays))]
    reference_grads = analytic_grads(case.reference, arrays, projection)
    for index, (dg, rg, fd) in enumerate(zip(dispatch_grads, reference_grads,
                                             fd_grads)):
        assert dg is not None and rg is not None, f"missing grad for input {index}"
        ref_err = max_rel_err(dg, rg.astype(np.float64))
        assert ref_err <= case.tol_ref, \
            f"{case.case_id}: dispatch vs reference mismatch for input " \
            f"{index} (max rel err {ref_err:.2e} > {case.tol_ref:.0e})"
        fd_err = max_rel_err(dg, fd)
        assert fd_err <= case.tol_fd, \
            f"{case.case_id}: dispatch vs finite differences mismatch for " \
            f"input {index} (max rel err {fd_err:.2e} > {case.tol_fd:.0e})"


# ---------------------------------------------------------------------------
# case registry
# ---------------------------------------------------------------------------

def _normals(rng, *shapes, dtype=np.float32):
    return [rng.normal(size=s).astype(dtype) for s in shapes]


def _causal(n: int) -> np.ndarray:
    return np.tril(np.ones((n, n), dtype=bool))


def _random_layout(seed: int, heads: int, n_blocks: int, block_size: int):
    rng = np.random.default_rng(seed)
    masks = rng.random((heads, n_blocks, n_blocks)) < 0.5
    return layout_from_block_masks(masks, block_size)


def build_cases() -> List[ParityCase]:
    """The parity grid: every fused op x shapes / dtypes / odd seq lengths.

    Note on the ``f64-input`` tags: the Tensor substrate deliberately
    downcasts float64 inputs to float32 (``_as_array`` — FP32 is the stack's
    compute precision), so these cases cover the *float64 input acceptance /
    downcast* path, not float64 compute.  If a second compute precision is
    ever added, these are the cases to split.
    """
    cases: List[ParityCase] = []
    add = cases.append

    # -- softmax family ----------------------------------------------------
    for seed, (tag, shape, dtype) in enumerate([("2d-f32", (3, 5), np.float32),
                                                ("3d-odd-f32", (2, 4, 7), np.float32),
                                                ("2d-f64-input", (3, 6), np.float64)]):
        x, = _normals(np.random.default_rng(100 + seed), shape, dtype=dtype)
        add(ParityCase("softmax", f"softmax-{tag}",
                       lambda t: F.softmax(t), lambda t: reference.softmax(t), [x]))
    for seed, (tag, shape, dtype) in enumerate([("2d-f32", (4, 9), np.float32),
                                                ("2d-f64-input", (3, 5), np.float64)]):
        x, = _normals(np.random.default_rng(110 + seed), shape, dtype=dtype)
        add(ParityCase("log_softmax", f"log_softmax-{tag}",
                       lambda t: F.log_softmax(t),
                       lambda t: reference.log_softmax(t), [x]))

    # -- masked softmax: causal, ragged keep-mask with a fully-masked row --
    x, = _normals(np.random.default_rng(2), (2, 6, 6))
    causal6 = _causal(6)
    add(ParityCase("masked_softmax", "masked_softmax-causal6",
                   lambda t: F.masked_softmax(t, causal6),
                   lambda t: reference.masked_softmax(t, causal6), [x]))
    rng = np.random.default_rng(3)
    ragged = rng.random((5, 9)) < 0.6
    ragged[2] = False                      # fully-masked row -> all-zero output
    xr, = _normals(rng, (2, 5, 9))
    add(ParityCase("masked_softmax", "masked_softmax-ragged-zero-row",
                   lambda t: F.masked_softmax(t, ragged),
                   lambda t: reference.masked_softmax(t, ragged), [xr]))

    # -- layer norm --------------------------------------------------------
    for seed, (tag, shape, dtype) in enumerate([("3d-f32", (2, 3, 8), np.float32),
                                                ("2d-odd-f32", (4, 7), np.float32),
                                                ("3d-f64-input", (2, 3, 8), np.float64)]):
        rng = np.random.default_rng(120 + seed)
        x, = _normals(rng, shape, dtype=dtype)
        w = (1.0 + 0.1 * rng.normal(size=shape[-1])).astype(dtype)
        b = (0.1 * rng.normal(size=shape[-1])).astype(dtype)
        add(ParityCase("layer_norm", f"layer_norm-{tag}",
                       lambda xx, ww, bb: F.layer_norm(xx, ww, bb),
                       lambda xx, ww, bb: reference.layer_norm(xx, ww, bb),
                       [x, w, b], tol_ref=2e-4))

    # -- fused linear (+bias, +activation) ---------------------------------
    # Seed chosen so every pre-activation is >= 0.16 away from zero —
    # central differences would straddle the ReLU kink otherwise.
    for activation in (None, "relu", "gelu", "tanh", "sigmoid"):
        rng = np.random.default_rng(38)
        x = rng.normal(size=(2, 3, 4)).astype(np.float32)
        w = rng.normal(0, 0.5, size=(5, 4)).astype(np.float32)
        b = (0.1 * rng.normal(size=5)).astype(np.float32)
        add(ParityCase("linear", f"linear-{activation or 'none'}",
                       lambda xx, ww, bb, a=activation: F.linear(xx, ww, bb, activation=a),
                       lambda xx, ww, bb, a=activation: reference.linear(xx, ww, bb, activation=a),
                       [x, w, b], tol_ref=1e-4))
    rng = np.random.default_rng(39)
    x, w = _normals(rng, (7, 3), (2, 3), dtype=np.float64)
    add(ParityCase("linear", "linear-nobias-f64-input",
                   lambda xx, ww: F.linear(xx, ww),
                   lambda xx, ww: reference.linear(xx, ww), [x, w], tol_ref=1e-4))

    # -- cross entropy on logits -------------------------------------------
    rng = np.random.default_rng(5)
    logits = rng.normal(size=(2, 4, 7)).astype(np.float32)
    targets = rng.integers(0, 7, size=(2, 4))
    targets[0, 1] = -100                   # exercise ignore_index
    add(ParityCase("cross_entropy", "cross_entropy-ignore-index",
                   lambda t: F.cross_entropy(t, targets),
                   lambda t: reference.cross_entropy_logits(t, targets),
                   [logits], scalar_output=True))
    logits_s = rng.normal(size=(2, 5, 6)).astype(np.float32)
    targets_s = rng.integers(0, 6, size=(2, 5))
    add(ParityCase("cross_entropy", "cross_entropy-shifted",
                   lambda t: F.cross_entropy(t, targets_s, shift=True),
                   lambda t: reference.cross_entropy_logits(t, targets_s, shift=True),
                   [logits_s], scalar_output=True))
    logits_2d = rng.normal(size=(9, 5)).astype(np.float64)
    targets_2d = rng.integers(0, 5, size=9)
    targets_2d[3] = -100
    add(ParityCase("cross_entropy", "cross_entropy-2d-f64-input",
                   lambda t: F.cross_entropy(t, targets_2d),
                   lambda t: reference.cross_entropy_logits(t, targets_2d),
                   [logits_2d], scalar_output=True))

    # -- dense attention core ----------------------------------------------
    rng = np.random.default_rng(6)
    q, k, v = _normals(rng, (2, 2, 4, 3), (2, 2, 4, 3), (2, 2, 4, 3))
    causal4 = _causal(4)
    add(ParityCase("attention", "attention-causal4",
                   lambda a, bq, c: F.scaled_dot_product_attention(a, bq, c, causal4),
                   lambda a, bq, c: reference.scaled_dot_product_attention(a, bq, c, causal4),
                   [q, k, v], tol_ref=2e-4))
    q5, k5, v5 = _normals(rng, (1, 2, 5, 3), (1, 2, 5, 3), (1, 2, 5, 3))
    add(ParityCase("attention", "attention-odd-seq-nomask",
                   lambda a, bq, c: F.scaled_dot_product_attention(a, bq, c),
                   lambda a, bq, c: reference.scaled_dot_product_attention(a, bq, c),
                   [q5, k5, v5], tol_ref=2e-4))
    q7, k7, v7 = _normals(rng, (1, 1, 7, 2), (1, 1, 7, 2), (1, 1, 7, 2),
                          dtype=np.float64)
    causal7 = _causal(7)
    add(ParityCase("attention", "attention-seq7-f64-input",
                   lambda a, bq, c: F.scaled_dot_product_attention(a, bq, c, causal7),
                   lambda a, bq, c: reference.scaled_dot_product_attention(a, bq, c, causal7),
                   [q7, k7, v7], tol_ref=2e-4))

    # -- streaming tiled attention -----------------------------------------
    # The online-softmax kernel rescales per K/V tile, so its accumulation
    # order differs from the reference single-pass softmax; the tolerance is
    # the float32 rounding of the two orders (same as the sparse chain).
    # Tiles are chosen to *not* divide the key length so the exact-width
    # tail-tile path is gradchecked, plus a tile >= seq degenerate case.
    rng = np.random.default_rng(21)
    qs6, ks6, vs6 = _normals(rng, (2, 2, 6, 3), (2, 2, 6, 3), (2, 2, 6, 3))
    causal6s = _causal(6)
    add(ParityCase("streaming", "streaming-causal6-tile4",
                   lambda a, bq, c: F.streaming_attention(a, bq, c, causal6s, tile=4),
                   lambda a, bq, c: reference.streaming_attention(a, bq, c, causal6s, tile=4),
                   [qs6, ks6, vs6], tol_ref=5e-4))
    qo, ko, vo = _normals(rng, (1, 2, 7, 3), (1, 2, 7, 3), (1, 2, 7, 3))
    add(ParityCase("streaming", "streaming-odd-seq7-nomask-tile3",
                   lambda a, bq, c: F.streaming_attention(a, bq, c, tile=3),
                   lambda a, bq, c: reference.streaming_attention(a, bq, c, tile=3),
                   [qo, ko, vo], tol_ref=5e-4))
    # Cross sequence lengths (sq=5 queries, sk=8 keys) with one query row
    # whose keep-mask is empty: the zero-row convention must hold tile-wise.
    zmask = np.random.default_rng(22).random((5, 8)) < 0.5
    zmask[2] = False
    zmask[0, 0] = True                     # every other row keeps something
    zmask[1, :2] = True
    zmask[3, 3] = True
    zmask[4, :5] = True
    qz, kz, vz = _normals(rng, (1, 2, 5, 3), (1, 2, 8, 3), (1, 2, 8, 3))
    add(ParityCase("streaming", "streaming-zero-row-sq5-sk8-tile5",
                   lambda a, bq, c: F.streaming_attention(a, bq, c, zmask, tile=5),
                   lambda a, bq, c: reference.streaming_attention(a, bq, c, zmask, tile=5),
                   [qz, kz, vz], tol_ref=5e-4))
    qw, kw, vw = _normals(rng, (1, 1, 4, 2), (1, 1, 4, 2), (1, 1, 4, 2),
                          dtype=np.float64)
    causal4b = _causal(4)
    add(ParityCase("streaming", "streaming-tile-ge-seq-f64-input",
                   lambda a, bq, c: F.streaming_attention(a, bq, c, causal4b, tile=64),
                   lambda a, bq, c: reference.streaming_attention(a, bq, c, causal4b, tile=64),
                   [qw, kw, vw], tol_ref=5e-4))

    # -- fused block-sparse attention chain --------------------------------
    # The reference twin runs dense attention under the layout's expanded
    # element mask; the fused kernel sums in block-segment order, so the
    # fused-vs-reference tolerance is the float32 rounding of the two
    # summation orders rather than the ~1e-5 of the shared-algorithm ops.
    def sparse_case(tag, layout, seq, dim, seed, dtype=np.float32):
        rng = np.random.default_rng(seed)
        shape = (1, layout.n_heads, seq, dim)
        qs, ks, vs = _normals(rng, shape, shape, shape, dtype=dtype)
        add(ParityCase("sparse_chain", f"sparse_chain-{tag}",
                       lambda a, bq, c: block_sparse_attention(a, bq, c, layout),
                       lambda a, bq, c: reference.block_sparse_attention(a, bq, c, layout),
                       [qs, ks, vs], tol_ref=5e-4))

    dense_pool = LayoutPool(build_default_pool(), 4)
    sparse_case("dense-seq12", dense_pool.dense_layout(2, 12), 12, 3, seed=7)
    sparse_case("random-ragged-seq21", _random_layout(11, heads=2, n_blocks=3,
                                                      block_size=8), 21, 3, seed=8)
    sparse_case("random-seq16-f64-input", _random_layout(13, heads=3, n_blocks=2,
                                                   block_size=8), 16, 2, seed=9,
                dtype=np.float64)

    # -- streaming block-sparse attention ----------------------------------
    # Same dispatch entry with ``streaming=True``: the prefix-scheduled
    # online-softmax kernel must match the dense-under-mask reference (and,
    # with kernels disabled, fall back to it) across ragged lengths and a
    # layout with a query-block row that keeps zero blocks.
    def stream_sparse_case(tag, layout, seq, dim, seed):
        rng = np.random.default_rng(seed)
        shape = (1, layout.n_heads, seq, dim)
        qs, ks, vs = _normals(rng, shape, shape, shape)
        add(ParityCase("stream_sparse", f"stream_sparse-{tag}",
                       lambda a, bq, c: block_sparse_attention(a, bq, c, layout,
                                                               streaming=True),
                       lambda a, bq, c: reference.block_sparse_attention(a, bq, c,
                                                                         layout),
                       [qs, ks, vs], tol_ref=5e-4))

    stream_sparse_case("dense-seq12", dense_pool.dense_layout(2, 12), 12, 3,
                       seed=31)
    stream_sparse_case("random-ragged-seq21",
                       _random_layout(11, heads=2, n_blocks=3, block_size=8),
                       21, 3, seed=32)
    empty_row_masks = (np.random.default_rng(33).random((2, 3, 3)) < 0.6)
    empty_row_masks[0, 1, :] = False       # head 0, block row 1: no blocks
    empty_row_masks[:, 0, 0] = True        # every head keeps its first block
    empty_row_masks[1, 1, 0] = True
    empty_row_masks[:, 2, 2] = True
    stream_sparse_case("zero-block-row-seq24",
                       layout_from_block_masks(empty_row_masks, 8), 24, 3,
                       seed=34)
    return cases


ALL_CASES = build_cases()


# ---------------------------------------------------------------------------
# captured-vs-uncaptured step parity (the step-capture axis)
# ---------------------------------------------------------------------------
#
# Step capture (repro.runtime.arena.StepCapture) must be *bitwise* invisible:
# replaying the recorded backward schedule through recycled arena buffers has
# to produce exactly the floats the ordinary DFS pass produces.  The helpers
# below train a tiny model for a few steps with and without capture — same
# seeds, same batches — and return everything a step mutates: per-step
# losses, per-step parameter gradients (snapshotted inside the optimizer,
# before zero_grad), the Adam moment state and the final parameters.  The
# three-step horizon crosses the whole capture lifecycle (warm-up step,
# capture step, replay step on a *different* batch).

CAPTURE_BACKENDS = ("dense", "oracle", "predicted")


def run_capture_training(backend: str, fused_enabled: bool, steps: int = 3,
                         capture: bool = False, seq: int = 32,
                         full: bool = False, threads: int = 1,
                         predict_interval: int = 2):
    """Train ``steps`` steps; returns (losses, grad_log, moments, params, stats).

    ``full=True`` enables the full-step compiler (implies capture); ``stats``
    holds the StepCapture counters (empty dict when capture is off) so
    callers can assert the compiled path actually engaged.
    """
    from repro.models import build_model
    from repro.optim import Adam
    from repro.peft import apply_lora
    from repro.runtime import (CaptureConfig, FineTuner, StepCapture,
                               TrainingConfig)
    from repro.sparsity import LongExposure, LongExposureConfig

    class GradRecordingAdam(Adam):
        """Adam that snapshots the incoming gradients at every step."""

        grad_log: List[List[np.ndarray]]

        def _log_grads(self):
            log = getattr(self, "grad_log", None)
            if log is None:
                log = self.grad_log = []
            log.append([p.grad.copy() for p in self.params])

        def step(self):
            self._log_grads()
            super().step()

        def plan_tail(self):
            # Compiled full steps run the pre-validated flat tail instead of
            # step(); wrap it so those steps land in the grad log too.
            tail = super().plan_tail()
            if tail is None:
                return None

            def logging_tail():
                self._log_grads()
                tail()

            return logging_tail

    model_name = "gpt2-tiny" if backend == "dense" else "opt-tiny"
    with kernels_enabled(fused_enabled):
        model = build_model(model_name, seed=0)
        rng = np.random.default_rng(11)
        engine = None
        if backend != "dense":
            calib = rng.integers(0, model.config.vocab_size, size=(2, seq))
            engine = LongExposure(LongExposureConfig(
                block_size=16, seed=0, oracle_mode=(backend == "oracle"),
                predictor_epochs=2, predict_interval=predict_interval,
                calibration_lengths=(seq,)))
            engine.prepare(model, [calib])
        if backend == "predicted":
            apply_lora(model)
        if engine is not None:
            engine.install(model)
        optimizer = GradRecordingAdam(model.trainable_parameters(), lr=1e-3)
        use_capture = capture or full
        tuner = FineTuner(model,
                          TrainingConfig(capture=CaptureConfig(
                              compile_full_step=full,
                              executor_threads=threads)),
                          optimizer=optimizer, engine=engine,
                          capture=StepCapture() if use_capture else None)
        losses = []
        for _ in range(steps):
            ids = rng.integers(0, model.config.vocab_size, size=(2, seq))
            loss, _ = tuner.step(ids)
            losses.append(loss)
        moments = [m.copy() for m in optimizer._m] + [v.copy() for v in optimizer._v]
        params = [p.data.copy() for p in optimizer.params]
        if engine is not None:
            engine.uninstall(model)
        stats = {}
        if use_capture:
            # The capture must actually have engaged: one capture step and at
            # least one replayed backward.  (Zero-allocation steady state is
            # asserted by the -m alloc tests, which hold the batch fixed;
            # here every step sees a *fresh* batch, so drifting sparse
            # layouts may legitimately allocate new block shapes.)
            assert tuner.capture.captures >= 1, "capture never engaged"
            # Full-step replays bypass run_backward, so they count in
            # full_replays, not replay_steps; either means the plan replayed.
            assert (tuner.capture.replay_steps
                    + tuner.capture.full_replays) >= 1, "plan never replayed"
            stats = {
                "captures": tuner.capture.captures,
                "replay_steps": tuner.capture.replay_steps,
                "full_captures": tuner.capture.full_captures,
                "full_replays": tuner.capture.full_replays,
                "full_fallbacks": tuner.capture.full_fallbacks,
                "full_fail_reason": tuner.capture.full_fail_reason,
            }
        return losses, optimizer.grad_log, moments, params, stats


def _assert_trajectories_equal(tag: str, base, other) -> None:
    losses_a, grads_a, moments_a, params_a = base[:4]
    losses_b, grads_b, moments_b, params_b = other[:4]
    assert losses_a == losses_b, \
        f"{tag}: losses differ: {losses_a} vs {losses_b}"
    assert len(grads_a) == len(grads_b), \
        f"{tag}: grad log lengths differ: {len(grads_a)} vs {len(grads_b)}"
    for step_index, (ga, gb) in enumerate(zip(grads_a, grads_b)):
        for param_index, (a, b) in enumerate(zip(ga, gb)):
            assert np.array_equal(a, b), \
                f"{tag}: grad mismatch at step {step_index}, param {param_index}"
    for index, (a, b) in enumerate(zip(moments_a, moments_b)):
        assert np.array_equal(a, b), \
            f"{tag}: optimizer state mismatch ({index})"
    for index, (a, b) in enumerate(zip(params_a, params_b)):
        assert np.array_equal(a, b), \
            f"{tag}: parameter mismatch ({index})"


def assert_capture_parity(backend: str, fused_enabled: bool,
                          steps: int = 3) -> None:
    """Bitwise-compare captured vs. uncaptured training trajectories."""
    base = run_capture_training(backend, fused_enabled, steps, capture=False)
    captured = run_capture_training(backend, fused_enabled, steps, capture=True)
    _assert_trajectories_equal(f"{backend}/fused={fused_enabled}",
                               base, captured)


def assert_full_step_parity(backend: str, fused_enabled: bool,
                            threads: int = 1, steps: int = 4,
                            predict_interval: int = 3) -> None:
    """Bitwise-compare full-step-compiled vs. plain interpreted training.

    ``predict_interval=3`` leaves two mask-reuse steps between refreshes, so
    the plan captured on the first reuse step replays on the second before
    the next refresh can move the layouts.  With reference kernels the
    compiler never arms (the forward is not a recordable kernel stream) and
    the run must degrade gracefully to the PR-5 backward-only replay —
    still bitwise identical.
    """
    tag = f"full/{backend}/fused={fused_enabled}/threads={threads}"
    base = run_capture_training(backend, fused_enabled, steps, capture=False,
                                predict_interval=predict_interval)
    compiled = run_capture_training(backend, fused_enabled, steps,
                                    full=True, threads=threads,
                                    predict_interval=predict_interval)
    _assert_trajectories_equal(tag, base, compiled)
    stats = compiled[4]
    if fused_enabled and backend != "oracle":
        assert stats["full_captures"] >= 1, \
            f"{tag}: full plan never captured ({stats})"
        assert stats["full_replays"] >= 1, \
            f"{tag}: full plan never replayed ({stats})"
    elif fused_enabled:
        # Oracle mode fine-tunes the full model; the sparse MLP refuses to
        # close over trainable base weights, so the compiler must stay cold
        # (and say why) while the PR-5 backward replay keeps parity.
        assert stats["full_captures"] == 0, \
            f"{tag}: full plan captured over trainable base weights ({stats})"
        assert "trainable base weights" in stats["full_fail_reason"], \
            f"{tag}: unexpected fail reason ({stats})"
    else:
        # Reference kernels: no recorded seams, the compiler must stay cold.
        assert stats["full_captures"] == 0, \
            f"{tag}: full plan captured under reference kernels ({stats})"
